// xsm_cli — command-line front end for the Bellflower matcher.
//
// Subcommands:
//   gen      --elements N [--seed S] --out FILE
//            Generate a synthetic repository and save it.
//   convert  --repo-dir DIR --out FILE
//            Import .dtd/.xsd files and save the forest snapshot.
//   save     (--forest FILE | --repo-dir DIR | --synthetic N[:seed])
//            --out FILE.snap
//            Build the full repository snapshot (index, dictionary,
//            fingerprints) and persist it as a versioned, checksummed
//            binary (xsm::store) for --warm-start boots.
//   stats    (--forest FILE | --repo-dir DIR | --synthetic N[:seed]
//            | --warm-start FILE.snap)
//            Print corpus statistics.
//   match    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])
//            --personal SPEC [--delta D] [--alpha A] [--threshold T]
//            [--cluster tree|kmeans] [--join J] [--top N] [--partial]
//            [--structural] [--query XPATH]
//            Run the matcher and print the ranked mappings.
//   batch    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])
//            --queries FILE [--threads N] [--delta D] [--top N]
//            [--cluster tree|kmeans] [--join J] [--threshold T] [--alpha A]
//            [--deadline-ms MS] [--first-n N] [--cluster-events]
//            Run a MatchService batch from a query file: one query per
//            line, `SPEC [key=value ...]` (keys: id, delta, top, cluster,
//            join, threshold, alpha); '#' starts a comment. Per-line keys
//            override the command-line defaults. Results stream to stdout
//            as NDJSON events: one "mapping" line per emitted mapping the
//            moment it is found, then one "done" line per query (input
//            order) with the typed terminal status.
//   serve    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])
//            [--threads N] [--delta D] [--top N] ...
//            [--deadline-ms MS] [--first-n N] [--cluster-events]
//            Interactive loop: read one query line (same format as batch)
//            from stdin per request, stream its NDJSON mapping events.
//            Lines starting with '!' evolve the repository while serving
//            (copy-on-write generations; see live::RepositoryManager):
//              !ingest SPEC [source=NAME]      add one tree
//              !replace ID SPEC [source=NAME]  swap tree ID's payload
//              !remove ID                      retire tree ID
//              !reload (FILE|DIR)              replace the whole repository
//              !save PATH                      persist the current snapshot
//              !generation                     report the current generation
//              !stats                          cache/generation counters
//            Each successful mutation emits one "generation" NDJSON event;
//            EOF prints a session summary with the cluster-cache counters.
//
// Warm starts: every command that loads a repository also accepts
//   --warm-start FILE.snap
// instead of --forest/--repo-dir/--synthetic. The snapshot written by
// `save` (or serve-mode `!save`) is loaded whole — no re-parsing, no
// re-indexing — and serve/batch continue delta ingestion from the
// persisted generation.
//
// Streaming flags (match/batch/serve):
//   --deadline-ms MS   per-query wall-clock deadline; an expired query
//                      reports status "deadline_exceeded" with the mappings
//                      found so far.
//   --first-n N        stop each query after its first N mappings
//                      ("early_stopped") — the anytime / time-to-first mode.
//   --cluster-events   also emit one "cluster" NDJSON event per generated
//                      cluster (progress observability; off by default).
//
// Examples:
//   xsm_cli gen --elements 10000 --out corpus.forest
//   xsm_cli match --forest corpus.forest --personal "name(address,email)"
//       --cluster kmeans --join 3 --top 10
//   xsm_cli match --repo-dir examples/data --personal "book(title,author)"
//       --delta 0.55 --query '/book[title="Iliad"]/author'
//   xsm_cli batch --forest corpus.forest --queries queries.txt --threads 8
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "xsm/xsm.h"
#include "match/structural_matcher.h"
#include "schema/serialization.h"

namespace {

using namespace xsm;

// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";  // boolean flag
        }
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    return Has(key) ? std::atof(Get(key).c_str()) : fallback;
  }
  long GetInt(const std::string& key, long fallback) const {
    return Has(key) ? std::atol(Get(key).c_str()) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: xsm_cli <gen|convert|save|stats|match|batch|serve> "
      "[options]\n"
      "  gen      --elements N [--seed S] --out FILE\n"
      "  convert  --repo-dir DIR --out FILE\n"
      "  save     (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "           --out FILE.snap\n"
      "  stats    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "  match    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "           --personal SPEC [--delta D] [--alpha A] [--threshold T]\n"
      "           [--cluster tree|kmeans] [--join J] [--top N]\n"
      "           [--partial] [--structural] [--query XPATH]\n"
      "  batch    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "           --queries FILE [--threads N] [--delta D] [--top N]\n"
      "           [--cluster tree|kmeans] [--join J] [--threshold T]\n"
      "           [--alpha A] [--deadline-ms MS] [--first-n N]\n"
      "           [--cluster-events]\n"
      "  serve    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "           [--threads N] [--delta D] [--top N] [--cluster ...]\n"
      "           [--deadline-ms MS] [--first-n N] [--cluster-events]\n"
      "batch/serve stream NDJSON events (mapping / cluster / done / error)\n"
      "to stdout; match honors --deadline-ms / --first-n too.\n"
      "serve also accepts repository commands on stdin: !ingest SPEC,\n"
      "!replace ID SPEC, !remove ID, !reload FILE|DIR, !save PATH,\n"
      "!generation, !stats (each mutation publishes a new generation and\n"
      "emits a \"generation\" event).\n"
      "stats/match/batch/serve also accept --warm-start FILE.snap (a file\n"
      "written by `save` or `!save`) as the repository source: the\n"
      "snapshot loads whole, nothing is re-parsed or re-indexed, and the\n"
      "generation chain continues where it was persisted.\n");
  return 2;
}

/// Loads a forest from either a saved forest file or a directory of
/// .dtd/.xsd schemas (used by --forest/--repo-dir at startup and by the
/// serve-mode `!reload` command).
Result<schema::SchemaForest> LoadForestFromPath(const std::string& path) {
  if (std::filesystem::is_directory(path)) {
    schema::SchemaForest forest;
    XSM_ASSIGN_OR_RETURN(repo::LoadReport report,
                         repo::LoadRepositoryFromDirectory(path, &forest));
    std::fprintf(stderr, "loaded %zu files (%zu failed), %zu trees\n",
                 report.files_loaded, report.files_failed,
                 report.trees_added);
    return forest;
  }
  return schema::LoadForestFromFile(path);
}

// Loads the repository from whichever source flag is present.
Result<schema::SchemaForest> LoadRepository(const Args& args) {
  if (args.Has("forest")) {
    return schema::LoadForestFromFile(args.Get("forest"));
  }
  if (args.Has("repo-dir")) {
    return LoadForestFromPath(args.Get("repo-dir"));
  }
  if (args.Has("synthetic")) {
    std::string spec = args.Get("synthetic");
    repo::SyntheticRepoOptions options;
    size_t colon = spec.find(':');
    options.target_elements =
        static_cast<size_t>(std::atol(spec.substr(0, colon).c_str()));
    if (colon != std::string::npos) {
      options.seed =
          static_cast<uint64_t>(std::atol(spec.substr(colon + 1).c_str()));
    }
    return repo::GenerateSyntheticRepository(options);
  }
  return Status::InvalidArgument(
      "need one of --forest / --repo-dir / --synthetic / --warm-start");
}

/// The snapshot a command should serve: loaded whole from a persisted
/// snapshot file under --warm-start, otherwise built (validate + index +
/// dictionary + fingerprints) from whichever repository source flag is
/// present.
Result<std::shared_ptr<const service::RepositorySnapshot>> LoadSnapshot(
    const Args& args) {
  if (args.Has("warm-start")) {
    XSM_ASSIGN_OR_RETURN(
        std::shared_ptr<const service::RepositorySnapshot> snapshot,
        store::LoadSnapshotFromFile(args.Get("warm-start")));
    std::fprintf(stderr,
                 "warm start: %zu trees / %zu elements at generation %llu "
                 "(fingerprint %016llx)\n",
                 snapshot->num_trees(), snapshot->total_nodes(),
                 static_cast<unsigned long long>(snapshot->generation()),
                 static_cast<unsigned long long>(snapshot->fingerprint()));
    return snapshot;
  }
  XSM_ASSIGN_OR_RETURN(schema::SchemaForest forest, LoadRepository(args));
  return service::RepositorySnapshot::Create(std::move(forest));
}

int RunGen(const Args& args) {
  if (!args.Has("elements") || !args.Has("out")) {
    std::fprintf(stderr, "gen requires --elements and --out\n");
    return 2;
  }
  repo::SyntheticRepoOptions options;
  options.target_elements = static_cast<size_t>(args.GetInt("elements", 0));
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  auto forest = repo::GenerateSyntheticRepository(options);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }
  Status save = schema::SaveForestToFile(*forest, args.Get("out"));
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  repo::RepositoryStats stats = repo::ComputeStats(*forest);
  std::printf("wrote %s: %zu elements over %zu trees\n",
              args.Get("out").c_str(), stats.nodes, stats.trees);
  return 0;
}

int RunConvert(const Args& args) {
  if (!args.Has("repo-dir") || !args.Has("out")) {
    std::fprintf(stderr, "convert requires --repo-dir and --out\n");
    return 2;
  }
  auto forest = LoadRepository(args);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }
  Status save = schema::SaveForestToFile(*forest, args.Get("out"));
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu trees, %zu elements)\n",
              args.Get("out").c_str(), forest->num_trees(),
              forest->total_nodes());
  return 0;
}

int RunSave(const Args& args) {
  if (!args.Has("out")) {
    std::fprintf(stderr, "save requires --out FILE.snap\n");
    return 2;
  }
  auto snapshot = LoadSnapshot(args);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  auto info = store::SaveSnapshotToFile(**snapshot, args.Get("out"));
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: format v%u, generation %llu, %zu trees / %zu "
              "elements, %llu bytes (fingerprint %016llx)\n",
              args.Get("out").c_str(), info->format_version,
              static_cast<unsigned long long>(info->generation),
              (*snapshot)->num_trees(), (*snapshot)->total_nodes(),
              static_cast<unsigned long long>(info->total_bytes),
              static_cast<unsigned long long>(info->fingerprint));
  return 0;
}

int RunStats(const Args& args) {
  // Stats only needs the forest; building the full snapshot (index,
  // dictionary, fingerprints) would be pure waste — except under
  // --warm-start, where the snapshot file is the source and already
  // carries everything.
  std::shared_ptr<const service::RepositorySnapshot> snapshot;
  schema::SchemaForest loaded;
  const schema::SchemaForest* forest = nullptr;
  if (args.Has("warm-start")) {
    auto result = LoadSnapshot(args);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    snapshot = std::move(*result);
    forest = &snapshot->forest();
  } else {
    auto result = LoadRepository(args);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    loaded = std::move(*result);
    forest = &loaded;
  }
  repo::RepositoryStats stats = repo::ComputeStats(*forest);
  std::printf("trees:          %zu\n", stats.trees);
  std::printf("elements:       %zu\n", stats.nodes);
  std::printf("avg tree size:  %.1f\n", stats.avg_tree_size);
  std::printf("max tree size:  %zu\n", stats.max_tree_size);
  std::printf("max depth:      %d\n", stats.max_depth);
  std::printf("distinct names: %zu\n", stats.distinct_names);
  return 0;
}

int RunMatch(const Args& args) {
  auto snapshot = LoadSnapshot(args);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const schema::SchemaForest& forest = (*snapshot)->forest();
  if (!args.Has("personal")) {
    std::fprintf(stderr, "match requires --personal SPEC\n");
    return 2;
  }
  auto personal = schema::ParseTreeSpec(args.Get("personal"));
  if (!personal.ok()) {
    std::fprintf(stderr, "bad --personal: %s\n",
                 personal.status().ToString().c_str());
    return 1;
  }

  core::MatchOptions options;
  options.delta = args.GetDouble("delta", 0.75);
  options.objective.alpha = args.GetDouble("alpha", 0.5);
  options.element.threshold = args.GetDouble("threshold", 0.5);
  options.top_n = static_cast<size_t>(args.GetInt("top", 20));
  std::string mode = args.Get("cluster", "kmeans");
  if (mode == "tree") {
    options.clustering = core::ClusteringMode::kTreeClusters;
  } else if (mode == "kmeans") {
    options.clustering = core::ClusteringMode::kKMeans;
    options.kmeans.join_distance =
        static_cast<int>(args.GetInt("join", 3));
  } else {
    std::fprintf(stderr, "--cluster must be tree or kmeans\n");
    return 2;
  }
  if (args.Has("partial")) {
    options.include_partial_mappings = true;
    options.partial.delta = options.delta * 0.7;
  }
  if (args.Has("structural")) {
    options.structural_matcher =
        &match::CompositeStructuralMatcher::Default();
  }

  core::ExecutionControl control;
  if (args.Has("deadline-ms")) {
    control = core::ExecutionControl::WithDeadline(
        args.GetDouble("deadline-ms", 0) / 1e3);
  }
  long first_n = args.GetInt("first-n", 0);
  if (first_n > 0) {
    control.stop_after_n_mappings = static_cast<uint64_t>(first_n);
  }

  const core::Bellflower& system = (*snapshot)->matcher();
  auto result = system.Match(*personal, options, control);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (result->execution != core::ExecutionStatus::kCompleted) {
    std::fprintf(stderr, "run stopped early: %s (results are partial)\n",
                 std::string(core::ExecutionStatusName(result->execution))
                     .c_str());
  }

  const core::MatchStats& stats = result->stats;
  std::printf("repository: %zu elements / %zu trees | mapping elements: %zu"
              " | clusters: %zu (%zu useful)\n",
              stats.repository_nodes, stats.repository_trees,
              stats.total_mapping_elements, stats.num_clusters,
              stats.num_useful_clusters);
  std::printf("search space: %.0f | partial mappings generated: %llu | "
              "mappings (delta>=%.2f): %zu\n\n",
              stats.search_space,
              static_cast<unsigned long long>(
                  stats.generator.partial_mappings),
              options.delta, stats.num_mappings);

  int rank = 1;
  for (const auto& mapping : result->mappings) {
    std::printf("%3d. %s\n", rank++,
                generate::MappingToString(mapping, *personal, forest)
                    .c_str());
  }
  if (options.include_partial_mappings) {
    std::printf("\npartial mappings (%zu):\n",
                result->partial_mappings.size());
    int prank = 1;
    for (const auto& pm : result->partial_mappings) {
      if (prank > 10) break;
      std::printf("%3d. tree=%d delta=%.3f coverage=%.2f\n", prank++,
                  pm.tree, pm.delta, pm.Coverage());
    }
  }

  if (args.Has("query") && !result->mappings.empty()) {
    auto query = query::ParseXPath(args.Get("query"));
    if (!query.ok()) {
      std::fprintf(stderr, "bad --query: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    std::printf("\nquery rewrites of %s:\n", args.Get("query").c_str());
    int qrank = 1;
    for (const auto& mapping : result->mappings) {
      if (qrank > 5) break;
      auto rewritten =
          query::RewriteQuery(*query, *personal, mapping, forest);
      std::printf("%3d. %s\n", qrank++,
                  rewritten.ok()
                      ? rewritten->ToString().c_str()
                      : rewritten.status().ToString().c_str());
    }
  }
  return 0;
}

// Options shared by batch and serve: command-line defaults that each query
// line may override.
core::MatchOptions DefaultServiceOptions(const Args& args, bool* ok) {
  core::MatchOptions options;
  options.delta = args.GetDouble("delta", 0.75);
  options.objective.alpha = args.GetDouble("alpha", 0.5);
  options.element.threshold = args.GetDouble("threshold", 0.5);
  options.top_n = static_cast<size_t>(args.GetInt("top", 10));
  options.kmeans.join_distance = static_cast<int>(args.GetInt("join", 3));
  std::string mode = args.Get("cluster", "kmeans");
  if (mode == "tree") {
    options.clustering = core::ClusteringMode::kTreeClusters;
  } else if (mode == "kmeans") {
    options.clustering = core::ClusteringMode::kKMeans;
  } else {
    std::fprintf(stderr, "--cluster must be tree or kmeans\n");
    *ok = false;
  }
  return options;
}

// Parses one query line of the batch/serve format:
//   SPEC [id=NAME] [delta=D] [top=N] [cluster=tree|kmeans] [join=J]
//        [threshold=T] [alpha=A]
Result<service::MatchQuery> ParseQueryLine(
    const std::string& line, const core::MatchOptions& defaults,
    size_t index) {
  std::istringstream stream(line);
  std::string spec;
  stream >> spec;
  if (spec.empty()) {
    return Status::InvalidArgument("empty query line");
  }

  service::MatchQuery query;
  query.id = "q" + std::to_string(index);
  query.options = defaults;
  XSM_ASSIGN_OR_RETURN(query.personal, schema::ParseTreeSpec(spec));

  std::string token;
  while (stream >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key=value, got: " + token);
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "id") {
      query.id = value;
    } else if (key == "delta") {
      query.options.delta = std::atof(value.c_str());
    } else if (key == "top") {
      query.options.top_n = static_cast<size_t>(std::atol(value.c_str()));
    } else if (key == "join") {
      query.options.kmeans.join_distance =
          static_cast<int>(std::atol(value.c_str()));
    } else if (key == "threshold") {
      query.options.element.threshold = std::atof(value.c_str());
    } else if (key == "alpha") {
      query.options.objective.alpha = std::atof(value.c_str());
    } else if (key == "cluster") {
      if (value == "tree") {
        query.options.clustering = core::ClusteringMode::kTreeClusters;
      } else if (value == "kmeans") {
        query.options.clustering = core::ClusteringMode::kKMeans;
      } else {
        return Status::InvalidArgument("cluster must be tree or kmeans");
      }
    } else {
      return Status::InvalidArgument("unknown query key: " + key);
    }
  }
  return query;
}

Result<std::unique_ptr<service::MatchService>> MakeService(const Args& args) {
  long threads = args.GetInt("threads", 0);
  if (threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  service::MatchServiceOptions options;
  options.num_threads = static_cast<size_t>(threads);
  // --deadline-ms becomes the service's default per-query deadline; the
  // clock starts at SubmitMatch, so pool queue wait counts against it.
  options.default_deadline_seconds = args.GetDouble("deadline-ms", 0) / 1e3;
  // Warm start included: LoadSnapshot dispatches on --warm-start, and the
  // service then continues delta ingestion from the loaded generation.
  XSM_ASSIGN_OR_RETURN(
      std::shared_ptr<const service::RepositorySnapshot> snapshot,
      LoadSnapshot(args));
  return std::make_unique<service::MatchService>(std::move(snapshot),
                                                 options);
}

// --- NDJSON event streaming (batch / serve) --------------------------------

std::mutex g_stdout_mu;  // one complete event line at a time

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void EmitEventLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_stdout_mu);
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);  // streaming: every event visible immediately
}

/// Streams one query's run as NDJSON events. Event lines are composed as
/// strings — unbounded fields (query ids, mapping text) can never truncate
/// the JSON; fixed snprintf buffers only ever hold numeric fields.
/// Callbacks fire on the pool thread executing the query; EmitEventLine
/// keeps lines atomic under concurrent batch output.
class NdjsonObserver : public core::MatchObserver {
 public:
  NdjsonObserver(std::string id, const schema::SchemaTree* personal,
                 const schema::SchemaForest* forest, bool cluster_events)
      : id_(JsonEscape(id)),
        personal_(personal),
        forest_(forest),
        cluster_events_(cluster_events) {}

  void OnMapping(const generate::SchemaMapping& mapping,
                 size_t running_rank) override {
    char nums[224];
    std::snprintf(nums, sizeof(nums),
                  "\",\"rank\":%zu,\"tree\":%d,\"delta\":%.6f,"
                  "\"delta_sim\":%.6f,\"delta_path\":%.6f,\"ms\":%.3f,"
                  "\"map\":\"",
                  running_rank, mapping.tree, mapping.delta,
                  mapping.delta_sim, mapping.delta_path, ElapsedMs());
    std::string line = "{\"type\":\"mapping\",\"id\":\"" + id_ + nums;
    line +=
        JsonEscape(generate::MappingToString(mapping, *personal_, *forest_));
    line += "\"}";
    EmitEventLine(line);
  }

  void OnClusterFinish(size_t sequence, size_t total,
                       const core::ClusterSummary& summary,
                       const core::MatchStats& so_far) override {
    if (!cluster_events_) return;
    char nums[224];
    std::snprintf(nums, sizeof(nums),
                  "\",\"seq\":%zu,\"total\":%zu,\"tree\":%d,"
                  "\"mappings\":%zu,\"partials_generated\":%llu,"
                  "\"ms\":%.3f}",
                  sequence, total, summary.tree, so_far.num_mappings,
                  static_cast<unsigned long long>(
                      so_far.generator.partial_mappings),
                  ElapsedMs());
    EmitEventLine("{\"type\":\"cluster\",\"id\":\"" + id_ + nums);
  }

  void OnFinish(const core::MatchResult& result) override {
    (void)result;
    // Completion time measured on the worker, not when the main thread
    // gets around to printing the done event.
    finished_ms_ = ElapsedMs();
  }

  double ElapsedMs() const { return timer_.ElapsedSeconds() * 1e3; }
  /// Submission-to-completion latency; falls back to the current elapsed
  /// time for runs that failed before finishing.
  double DoneMs() const { return finished_ms_ >= 0 ? finished_ms_ : ElapsedMs(); }

 private:
  std::string id_;  // pre-escaped
  const schema::SchemaTree* personal_;
  const schema::SchemaForest* forest_;
  bool cluster_events_;
  Timer timer_;
  double finished_ms_ = -1;
};

void EmitDoneEvent(const service::MatchQuery& query,
                   const Result<core::MatchResult>& result,
                   double elapsed_ms) {
  if (!result.ok()) {
    EmitEventLine("{\"type\":\"error\",\"id\":\"" + JsonEscape(query.id) +
                  "\",\"message\":\"" +
                  JsonEscape(result.status().ToString()) + "\"}");
    return;
  }
  const core::MatchStats& stats = result->stats;
  char nums[256];
  // "mappings" counts everything with Δ ≥ δ found by the run — it matches
  // the `match` command's count and the number of mapping event lines;
  // "kept" is the returned list after top-N trimming.
  std::snprintf(
      nums, sizeof(nums),
      "\",\"mappings\":%zu,\"kept\":%zu,\"partial_mappings\":%zu,"
      "\"clusters\":%zu,\"useful\":%zu,\"ms\":%.3f}",
      stats.num_mappings, result->mappings.size(),
      result->partial_mappings.size(), stats.num_clusters,
      stats.num_useful_clusters, elapsed_ms);
  EmitEventLine("{\"type\":\"done\",\"id\":\"" + JsonEscape(query.id) +
                "\",\"status\":\"" +
                std::string(core::ExecutionStatusName(result->execution)) +
                nums);
}

/// --first-n as a per-query ExecutionControl (fresh cancel token per call;
/// the deadline comes from the service default, see MakeService).
core::ExecutionControl ControlFromArgs(const Args& args) {
  core::ExecutionControl control;
  long first_n = args.GetInt("first-n", 0);
  if (first_n > 0) {
    control.stop_after_n_mappings = static_cast<uint64_t>(first_n);
  }
  return control;
}

int RunBatch(const Args& args) {
  if (!args.Has("queries")) {
    std::fprintf(stderr, "batch requires --queries FILE\n");
    return 2;
  }
  bool ok = true;
  core::MatchOptions defaults = DefaultServiceOptions(args, &ok);
  if (!ok) return 2;

  std::ifstream file(args.Get("queries"));
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", args.Get("queries").c_str());
    return 1;
  }
  std::vector<service::MatchQuery> queries;
  std::string line;
  size_t lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto query = ParseQueryLine(line, defaults, queries.size());
    if (!query.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", args.Get("queries").c_str(),
                   lineno, query.status().ToString().c_str());
      return 1;
    }
    queries.push_back(std::move(*query));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries in %s\n", args.Get("queries").c_str());
    return 1;
  }

  auto service = MakeService(args);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  // Batch mode never applies deltas, so the snapshot held here is the one
  // every query runs against; holding it also keeps the forest the
  // observers format mappings with alive.
  std::shared_ptr<const service::RepositorySnapshot> snapshot =
      (*service)->CurrentSnapshot();
  const schema::SchemaForest& forest = snapshot->forest();
  std::fprintf(stderr,
               "serving %zu queries over %zu elements / %zu trees on %zu "
               "threads\n",
               queries.size(), forest.total_nodes(), forest.num_trees(),
               (*service)->pool().num_threads());

  // Stream every query: mapping events interleave across pool threads (each
  // carries its query id); done events follow in input order.
  const bool cluster_events = args.Has("cluster-events");
  std::vector<std::unique_ptr<NdjsonObserver>> observers;
  std::vector<service::MatchHandle> handles;
  observers.reserve(queries.size());
  handles.reserve(queries.size());
  Timer timer;
  for (service::MatchQuery& query : queries) {
    observers.push_back(std::make_unique<NdjsonObserver>(
        query.id, &query.personal, &forest, cluster_events));
    handles.push_back((*service)->SubmitMatch(query, ControlFromArgs(args),
                                              observers.back().get()));
  }

  int failed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = handles[i].Get();
    EmitDoneEvent(queries[i], result, observers[i]->DoneMs());
    if (!result.ok()) ++failed;
  }
  double elapsed = timer.ElapsedSeconds();
  service::ServiceStats stats = (*service)->stats();
  std::fprintf(
      stderr,
      "%zu queries in %.3fs (%.1f queries/sec) | cluster cache: "
      "%llu hits, %llu shared, %llu misses, %llu evictions, %zu resident | "
      "cancelled %llu, deadline_exceeded %llu, early_stopped %llu\n",
      queries.size(), elapsed,
      static_cast<double>(queries.size()) / elapsed,
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.shared),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.evictions),
      stats.cache.entries,
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.early_stopped));
  return failed == 0 ? 0 : 1;
}

void EmitGenerationEvent(const live::ApplyReport& report) {
  char nums[320];
  std::snprintf(
      nums, sizeof(nums),
      "{\"type\":\"generation\",\"generation\":%llu,"
      "\"fingerprint\":\"%016llx\",\"trees\":%zu,\"trees_reused\":%zu,"
      "\"trees_rebuilt\":%zu,\"names_copied\":%zu,\"names_computed\":%zu,"
      "\"build_ms\":%.3f}",
      static_cast<unsigned long long>(report.generation),
      static_cast<unsigned long long>(report.fingerprint),
      report.trees_total, report.trees_reused, report.trees_rebuilt,
      report.name_entries_copied, report.name_entries_computed,
      1e3 * report.build_seconds);
  EmitEventLine(nums);
}

/// Handles one serve-mode '!' command line. Grammar:
///   !ingest SPEC [source=NAME]      add one tree
///   !replace ID SPEC [source=NAME]  swap tree ID's payload
///   !remove ID                      retire tree ID
///   !reload (FILE|DIR)              replace the whole repository
///   !generation                     report the current generation
///   !stats                          print service stats to stderr
/// Every successful mutation emits one "generation" NDJSON event.
void RunServeCommand(service::MatchService* service,
                     const std::string& line) {
  std::istringstream stream(line);
  std::string command;
  stream >> command;

  auto apply = [service](live::DeltaBuilder builder) {
    auto delta = builder.Build();
    if (!delta.ok()) {
      std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
      return;
    }
    auto report = service->ApplyDelta(*delta);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return;
    }
    EmitGenerationEvent(*report);
  };

  auto parse_source = [&stream]() {
    std::string token, source;
    while (stream >> token) {
      if (token.rfind("source=", 0) == 0) source = token.substr(7);
    }
    return source;
  };

  // Parses a tree id, rejecting values a TreeId cannot hold — a silently
  // wrapped id would target the wrong tree.
  auto parse_target = [&stream](long* target) {
    return static_cast<bool>(stream >> *target) && *target >= 0 &&
           *target <= std::numeric_limits<schema::TreeId>::max();
  };

  if (command == "!ingest" || command == "!replace") {
    long target = -1;
    if (command == "!replace" && !parse_target(&target)) {
      std::fprintf(stderr, "usage: !replace ID SPEC [source=NAME]\n");
      return;
    }
    std::string spec;
    if (!(stream >> spec)) {
      std::fprintf(stderr, "usage: %s SPEC [source=NAME]\n", command.c_str());
      return;
    }
    auto tree = schema::ParseTreeSpec(spec);
    if (!tree.ok()) {
      std::fprintf(stderr, "bad spec: %s\n",
                   tree.status().ToString().c_str());
      return;
    }
    std::string source = parse_source();
    if (source.empty()) source = "serve:" + command.substr(1);
    live::DeltaBuilder builder;
    if (command == "!ingest") {
      builder.AddTree(std::move(*tree), std::move(source));
    } else {
      builder.ReplaceTree(static_cast<schema::TreeId>(target),
                          std::move(*tree), std::move(source));
    }
    apply(std::move(builder));
  } else if (command == "!remove") {
    long target = -1;
    if (!parse_target(&target)) {
      std::fprintf(stderr, "usage: !remove ID\n");
      return;
    }
    live::DeltaBuilder builder;
    builder.RemoveTree(static_cast<schema::TreeId>(target));
    apply(std::move(builder));
  } else if (command == "!reload") {
    std::string path;
    if (!(stream >> path)) {
      std::fprintf(stderr, "usage: !reload (FILE|DIR)\n");
      return;
    }
    auto loaded = LoadForestFromPath(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return;
    }
    if (loaded->num_trees() == 0) {
      std::fprintf(stderr, "!reload: %s holds no trees\n", path.c_str());
      return;
    }
    // Whole-repository swap as one delta: retire every current tree, add
    // every loaded one (payloads shared from the loaded forest, not
    // copied). Published atomically like any other delta.
    std::shared_ptr<const service::RepositorySnapshot> snapshot =
        service->CurrentSnapshot();
    live::DeltaBuilder builder;
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(snapshot->num_trees()); ++t) {
      builder.RemoveTree(t);
    }
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(loaded->num_trees()); ++t) {
      builder.AddTree(loaded->tree_ptr(t), loaded->source(t));
    }
    apply(std::move(builder));
  } else if (command == "!save") {
    std::string path;
    if (!(stream >> path)) {
      std::fprintf(stderr, "usage: !save PATH\n");
      return;
    }
    auto info = service->SaveSnapshot(path);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return;
    }
    char nums[384];
    std::snprintf(nums, sizeof(nums),
                  "\",\"format\":%u,\"generation\":%llu,"
                  "\"fingerprint\":\"%016llx\",\"trees\":%llu,"
                  "\"elements\":%llu,\"bytes\":%llu}",
                  info->format_version,
                  static_cast<unsigned long long>(info->generation),
                  static_cast<unsigned long long>(info->fingerprint),
                  static_cast<unsigned long long>(info->trees),
                  static_cast<unsigned long long>(info->total_nodes),
                  static_cast<unsigned long long>(info->total_bytes));
    EmitEventLine("{\"type\":\"saved\",\"path\":\"" + JsonEscape(path) +
                  nums);
  } else if (command == "!generation") {
    std::shared_ptr<const service::RepositorySnapshot> snapshot =
        service->CurrentSnapshot();
    char nums[160];
    std::snprintf(nums, sizeof(nums),
                  "{\"type\":\"generation\",\"generation\":%llu,"
                  "\"fingerprint\":\"%016llx\",\"trees\":%zu}",
                  static_cast<unsigned long long>(snapshot->generation()),
                  static_cast<unsigned long long>(snapshot->fingerprint()),
                  snapshot->num_trees());
    EmitEventLine(nums);
  } else if (command == "!stats") {
    service::ServiceStats stats = service->stats();
    std::fprintf(
        stderr,
        "generation %llu (%llu deltas) | %llu queries | cluster cache: "
        "%llu hits, %llu shared, %llu misses, %llu evictions, %zu resident "
        "in %zu namespaces\n",
        static_cast<unsigned long long>(stats.generation),
        static_cast<unsigned long long>(stats.deltas_applied),
        static_cast<unsigned long long>(stats.queries),
        static_cast<unsigned long long>(stats.cache.hits),
        static_cast<unsigned long long>(stats.cache.shared),
        static_cast<unsigned long long>(stats.cache.misses),
        static_cast<unsigned long long>(stats.cache.evictions),
        stats.cache.entries, stats.cache_namespaces);
  } else {
    std::fprintf(stderr,
                 "unknown command %s (try !ingest, !replace, !remove, !save, "
                 "!reload, !generation, !stats)\n",
                 command.c_str());
  }
}

int RunServe(const Args& args) {
  bool ok = true;
  core::MatchOptions defaults = DefaultServiceOptions(args, &ok);
  if (!ok) return 2;

  auto service = MakeService(args);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  const bool cluster_events = args.Has("cluster-events");
  {
    std::shared_ptr<const service::RepositorySnapshot> snapshot =
        (*service)->CurrentSnapshot();
    std::fprintf(stderr,
                 "ready: %zu elements / %zu trees (generation %llu); enter "
                 "queries (SPEC [key=value ...]) or !commands (!ingest, "
                 "!replace, !remove, !reload, !save, !generation, !stats), "
                 "EOF to quit; NDJSON events on stdout\n",
                 snapshot->total_nodes(), snapshot->num_trees(),
                 static_cast<unsigned long long>(snapshot->generation()));
  }

  std::string line;
  size_t index = 0;
  while (std::getline(std::cin, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '!') {
      RunServeCommand(service->get(), line.substr(first));
      continue;
    }
    auto query = ParseQueryLine(line, defaults, index++);
    if (!query.ok()) {
      std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
      continue;
    }
    // Pin the snapshot the observer formats against. Commands and queries
    // are processed by this one thread, so the submit below pins the same
    // snapshot; holding the shared_ptr keeps the forest alive even if a
    // later !command retires the generation while the result prints.
    std::shared_ptr<const service::RepositorySnapshot> snapshot =
        (*service)->CurrentSnapshot();
    // Through the pool (not the calling thread) so --threads is honest.
    // Mapping events stream while the query runs; the done event carries
    // the typed terminal status (completed / deadline_exceeded / ...).
    NdjsonObserver observer(query->id, &query->personal, &snapshot->forest(),
                            cluster_events);
    service::MatchHandle handle =
        (*service)->SubmitMatch(*query, ControlFromArgs(args), &observer);
    auto result = handle.Get();
    EmitDoneEvent(*query, result, observer.DoneMs());
  }

  // Session summary (the serve-mode analogue of the batch footer): cache
  // effectiveness across all generations served.
  service::ServiceStats stats = (*service)->stats();
  std::fprintf(
      stderr,
      "served %llu queries over %llu generations (%llu deltas) | cluster "
      "cache: %llu hits, %llu shared, %llu misses, %llu evictions, %zu "
      "resident in %zu namespaces | cancelled %llu, deadline_exceeded %llu, "
      "early_stopped %llu\n",
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.generation + 1),
      static_cast<unsigned long long>(stats.deltas_applied),
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.shared),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.evictions),
      stats.cache.entries, stats.cache_namespaces,
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.early_stopped));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args(argc, argv);
  if (!args.ok()) return Usage();
  std::string command = argv[1];
  if (command == "gen") return RunGen(args);
  if (command == "save") return RunSave(args);
  if (command == "convert") return RunConvert(args);
  if (command == "stats") return RunStats(args);
  if (command == "match") return RunMatch(args);
  if (command == "batch") return RunBatch(args);
  if (command == "serve") return RunServe(args);
  return Usage();
}
