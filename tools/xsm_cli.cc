// xsm_cli — command-line front end for the Bellflower matcher.
//
// Subcommands:
//   gen      --elements N [--seed S] --out FILE
//            Generate a synthetic repository and save it.
//   convert  --repo-dir DIR --out FILE
//            Import .dtd/.xsd files and save the forest snapshot.
//   save     (--forest FILE | --repo-dir DIR | --synthetic N[:seed])
//            --out FILE.snap
//            Build the full repository snapshot (index, dictionary,
//            fingerprints) and persist it as a versioned, checksummed
//            binary (xsm::store) for --warm-start boots.
//   stats    (--forest FILE | --repo-dir DIR | --synthetic N[:seed]
//            | --warm-start FILE.snap)
//            Print corpus statistics.
//   match    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])
//            --personal SPEC [--delta D] [--alpha A] [--threshold T]
//            [--cluster tree|kmeans] [--join J] [--top N] [--partial]
//            [--structural] [--query XPATH]
//            Run the matcher and print the ranked mappings.
//   batch    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])
//            --queries FILE [--threads N] [--delta D] [--top N]
//            [--cluster tree|kmeans] [--join J] [--threshold T] [--alpha A]
//            [--deadline-ms MS] [--first-n N] [--cluster-events]
//            Run a MatchService batch from a query file: one query per
//            line, `SPEC [key=value ...]` (keys: id, delta, top, cluster,
//            join, threshold, alpha); '#' starts a comment. Per-line keys
//            override the command-line defaults. Results stream to stdout
//            as NDJSON events: one "mapping" line per emitted mapping the
//            moment it is found, then one "done" line per query (input
//            order) with the typed terminal status.
//   integrate (--forest FILE | --repo-dir DIR | --synthetic N[:seed]
//            | --warm-start FILE.snap) [--threshold T] [--min-linkage N]
//            [--severity weak|probable|strong] [--seed S] [--threads N]
//            [--matching-threads N] [--cache-capacity N] [--deadline-ms MS]
//            [--out FILE.intg] [--diff FILE.intg]
//            Holistic N-way integration of the whole repository (see
//            integrate::IntegrationEngine): all-pairs matching,
//            correspondence clustering, ranked mediated schema. Streams
//            the same NDJSON events as serve-mode `!integrate` — one
//            "pair" event per linked schema pair, one "cluster" event per
//            mediated element, a terminal "mediated" summary. --out saves
//            the result (versioned, checksummed; see integrate_io);
//            --diff loads a previously saved integration and appends one
//            "diff" event comparing cluster membership across the two
//            runs (membership is keyed on tree content fingerprints, so
//            the diff survives generation renumbering). SIGINT/SIGTERM
//            cancel cooperatively: the run ends with a typed partial
//            mediated event.
//   serve    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])
//            [--threads N] [--delta D] [--top N] ...
//            [--deadline-ms MS] [--first-n N] [--cluster-events]
//            [--save-on-shutdown FILE.snap]
//            Interactive loop: read one query line (same format as batch)
//            from stdin per request, stream its NDJSON mapping events.
//            Lines starting with '!' evolve the repository while serving
//            (copy-on-write generations; see live::RepositoryManager):
//              !ingest SPEC [source=NAME]      add one tree
//              !replace ID SPEC [source=NAME]  swap tree ID's payload
//              !remove ID                      retire tree ID
//              !reload (FILE|DIR)              replace the whole repository
//              !save PATH                      persist the current snapshot
//              !generation                     report the current generation
//              !stats                          cache/generation counters
//            Each successful mutation emits one "generation" NDJSON event;
//            EOF prints a session summary with the cluster-cache counters.
//            SIGINT/SIGTERM drain gracefully: the in-flight query is
//            cancelled (it resolves with its partial results), the session
//            summary prints, and --save-on-shutdown persists the final
//            snapshot before exit.
//   http     [--forest FILE | --repo-dir DIR | --synthetic N[:seed]
//            | --warm-start FILE.snap] [--port P] [--bind ADDR]
//            [--state-dir DIR] [--no-wal] [--tenant NAME] [--workers N]
//            [--threads N] [--deadline-ms MS] [--first-n N]
//            [--cluster-events] [--max-inflight N] [--soft-inflight N]
//            [--min-deadline-fraction F] [--delta D] [--top N] ...
//            Serve the multi-tenant HTTP/1.1 + NDJSON API (see
//            net::HttpServer). A repository source flag seeds the tenant
//            named by --tenant (default "default"); --state-dir both
//            warm-starts every previously saved tenant at boot and
//            receives every tenant's snapshot on graceful drain
//            (SIGINT/SIGTERM), so kill + restart resumes each tenant's
//            generation chain. With a state dir each tenant also
//            write-ahead journals its deltas (<name>.wal): acknowledged
//            deltas survive even a SIGKILL, replayed onto the last
//            checkpoint at boot. --no-wal turns journaling off.
//
// Warm starts: every command that loads a repository also accepts
//   --warm-start FILE.snap
// instead of --forest/--repo-dir/--synthetic. The snapshot written by
// `save` (or serve-mode `!save`) is loaded whole — no re-parsing, no
// re-indexing — and serve/batch continue delta ingestion from the
// persisted generation.
//
// Streaming flags (match/batch/serve):
//   --deadline-ms MS   per-query wall-clock deadline; an expired query
//                      reports status "deadline_exceeded" with the mappings
//                      found so far.
//   --first-n N        stop each query after its first N mappings
//                      ("early_stopped") — the anytime / time-to-first mode.
//   --cluster-events   also emit one "cluster" NDJSON event per generated
//                      cluster (progress observability; off by default).
//
// Examples:
//   xsm_cli gen --elements 10000 --out corpus.forest
//   xsm_cli match --forest corpus.forest --personal "name(address,email)"
//       --cluster kmeans --join 3 --top 10
//   xsm_cli match --repo-dir examples/data --personal "book(title,author)"
//       --delta 0.55 --query '/book[title="Iliad"]/author'
//   xsm_cli batch --forest corpus.forest --queries queries.txt --threads 8
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <atomic>
#include <csignal>

#include "xsm/xsm.h"
#include "integrate/integration_io.h"
#include "match/structural_matcher.h"
#include "net/http_server.h"
#include "net/tenant_registry.h"
#include "schema/serialization.h"
#include "service/serve_session.h"
#include "shard/sharded_match_service.h"

namespace {

using namespace xsm;

// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";  // boolean flag
        }
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    return Has(key) ? std::atof(Get(key).c_str()) : fallback;
  }
  long GetInt(const std::string& key, long fallback) const {
    return Has(key) ? std::atol(Get(key).c_str()) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: xsm_cli "
      "<gen|convert|save|stats|match|batch|integrate|serve|http> "
      "[options]\n"
      "  gen      --elements N [--seed S] --out FILE\n"
      "  convert  --repo-dir DIR --out FILE\n"
      "  save     (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "           --out FILE.snap\n"
      "  stats    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "  match    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "           --personal SPEC [--delta D] [--alpha A] [--threshold T]\n"
      "           [--cluster tree|kmeans] [--join J] [--top N]\n"
      "           [--partial] [--structural] [--query XPATH]\n"
      "  batch    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "           --queries FILE [--threads N] [--shards K] [--delta D]\n"
      "           [--top N]\n"
      "           [--cluster tree|kmeans] [--join J] [--threshold T]\n"
      "           [--alpha A] [--deadline-ms MS] [--first-n N]\n"
      "           [--cluster-events]\n"
      "  integrate (--forest FILE | --repo-dir DIR | --synthetic N[:seed]\n"
      "           | --warm-start FILE.snap) [--threshold T]\n"
      "           [--min-linkage N] [--severity weak|probable|strong]\n"
      "           [--seed S] [--threads N] [--matching-threads N]\n"
      "           [--cache-capacity N] [--deadline-ms MS]\n"
      "           [--out FILE.intg] [--diff FILE.intg]\n"
      "  serve    (--forest FILE | --repo-dir DIR | --synthetic N[:seed])\n"
      "           [--threads N] [--shards K] [--delta D] [--top N]\n"
      "           [--cluster ...]\n"
      "           [--deadline-ms MS] [--first-n N] [--cluster-events]\n"
      "           [--trace] [--slow-query-ms MS]\n"
      "           [--save-on-shutdown FILE.snap]\n"
      "  http     [--forest FILE | --repo-dir DIR | --synthetic N[:seed]\n"
      "           | --warm-start FILE.snap] [--port P] [--bind ADDR]\n"
      "           [--state-dir DIR] [--no-wal] [--tenant NAME] [--workers N]\n"
      "           [--threads N] [--shards K] [--deadline-ms MS]\n"
      "           [--first-n N] [--max-inflight N] [--soft-inflight N]\n"
      "           [--min-deadline-fraction F] [--cluster-events]\n"
      "           [--trace] [--slow-query-ms MS]\n"
      "batch/serve stream NDJSON events (mapping / cluster / done / error)\n"
      "to stdout; match honors --deadline-ms / --first-n too.\n"
      "serve also accepts repository commands on stdin: !ingest SPEC,\n"
      "!replace ID SPEC, !remove ID, !reload FILE|DIR, !save PATH,\n"
      "!generation, !stats, !metrics (each mutation publishes a new\n"
      "generation and emits a \"generation\" event).\n"
      "--trace adds one \"trace\" event per query/mutation with per-stage\n"
      "spans; --slow-query-ms logs a \"slow_query\" event for queries at or\n"
      "over the threshold. http also serves GET /metrics (Prometheus text).\n"
      "--shards K (batch/serve/http) serves from K node-balanced\n"
      "repository shards with exact scatter-gather matching — results are\n"
      "byte-identical to the unsharded engine.\n"
      "stats/match/batch/serve also accept --warm-start FILE.snap (a file\n"
      "written by `save` or `!save`) as the repository source: the\n"
      "snapshot loads whole, nothing is re-parsed or re-indexed, and the\n"
      "generation chain continues where it was persisted.\n");
  return 2;
}

/// service::LoadForestFromPath with the directory-load counters echoed to
/// stderr (used by --forest/--repo-dir at startup).
Result<schema::SchemaForest> LoadForestFromPath(const std::string& path) {
  repo::LoadReport report;
  XSM_ASSIGN_OR_RETURN(schema::SchemaForest forest,
                       service::LoadForestFromPath(path, &report));
  if (std::filesystem::is_directory(path)) {
    std::fprintf(stderr, "loaded %zu files (%zu failed), %zu trees\n",
                 report.files_loaded, report.files_failed,
                 report.trees_added);
  }
  return forest;
}

// Loads the repository from whichever source flag is present.
Result<schema::SchemaForest> LoadRepository(const Args& args) {
  if (args.Has("forest")) {
    return schema::LoadForestFromFile(args.Get("forest"));
  }
  if (args.Has("repo-dir")) {
    return LoadForestFromPath(args.Get("repo-dir"));
  }
  if (args.Has("synthetic")) {
    std::string spec = args.Get("synthetic");
    repo::SyntheticRepoOptions options;
    size_t colon = spec.find(':');
    options.target_elements =
        static_cast<size_t>(std::atol(spec.substr(0, colon).c_str()));
    if (colon != std::string::npos) {
      options.seed =
          static_cast<uint64_t>(std::atol(spec.substr(colon + 1).c_str()));
    }
    return repo::GenerateSyntheticRepository(options);
  }
  return Status::InvalidArgument(
      "need one of --forest / --repo-dir / --synthetic / --warm-start");
}

/// The snapshot a command should serve: loaded whole from a persisted
/// snapshot file under --warm-start, otherwise built (validate + index +
/// dictionary + fingerprints) from whichever repository source flag is
/// present.
Result<std::shared_ptr<const service::RepositorySnapshot>> LoadSnapshot(
    const Args& args) {
  if (args.Has("warm-start")) {
    XSM_ASSIGN_OR_RETURN(
        std::shared_ptr<const service::RepositorySnapshot> snapshot,
        store::LoadSnapshotFromFile(args.Get("warm-start")));
    std::fprintf(stderr,
                 "warm start: %zu trees / %zu elements at generation %llu "
                 "(fingerprint %016llx)\n",
                 snapshot->num_trees(), snapshot->total_nodes(),
                 static_cast<unsigned long long>(snapshot->generation()),
                 static_cast<unsigned long long>(snapshot->fingerprint()));
    return snapshot;
  }
  XSM_ASSIGN_OR_RETURN(schema::SchemaForest forest, LoadRepository(args));
  return service::RepositorySnapshot::Create(std::move(forest));
}

int RunGen(const Args& args) {
  if (!args.Has("elements") || !args.Has("out")) {
    std::fprintf(stderr, "gen requires --elements and --out\n");
    return 2;
  }
  repo::SyntheticRepoOptions options;
  options.target_elements = static_cast<size_t>(args.GetInt("elements", 0));
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  auto forest = repo::GenerateSyntheticRepository(options);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }
  Status save = schema::SaveForestToFile(*forest, args.Get("out"));
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  repo::RepositoryStats stats = repo::ComputeStats(*forest);
  std::printf("wrote %s: %zu elements over %zu trees\n",
              args.Get("out").c_str(), stats.nodes, stats.trees);
  return 0;
}

int RunConvert(const Args& args) {
  if (!args.Has("repo-dir") || !args.Has("out")) {
    std::fprintf(stderr, "convert requires --repo-dir and --out\n");
    return 2;
  }
  auto forest = LoadRepository(args);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }
  Status save = schema::SaveForestToFile(*forest, args.Get("out"));
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu trees, %zu elements)\n",
              args.Get("out").c_str(), forest->num_trees(),
              forest->total_nodes());
  return 0;
}

int RunSave(const Args& args) {
  if (!args.Has("out")) {
    std::fprintf(stderr, "save requires --out FILE.snap\n");
    return 2;
  }
  auto snapshot = LoadSnapshot(args);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  auto info = store::SaveSnapshotToFile(**snapshot, args.Get("out"));
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: format v%u, generation %llu, %zu trees / %zu "
              "elements, %llu bytes (fingerprint %016llx)\n",
              args.Get("out").c_str(), info->format_version,
              static_cast<unsigned long long>(info->generation),
              (*snapshot)->num_trees(), (*snapshot)->total_nodes(),
              static_cast<unsigned long long>(info->total_bytes),
              static_cast<unsigned long long>(info->fingerprint));
  return 0;
}

int RunStats(const Args& args) {
  // Stats only needs the forest; building the full snapshot (index,
  // dictionary, fingerprints) would be pure waste — except under
  // --warm-start, where the snapshot file is the source and already
  // carries everything.
  std::shared_ptr<const service::RepositorySnapshot> snapshot;
  schema::SchemaForest loaded;
  const schema::SchemaForest* forest = nullptr;
  if (args.Has("warm-start")) {
    auto result = LoadSnapshot(args);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    snapshot = std::move(*result);
    forest = &snapshot->forest();
  } else {
    auto result = LoadRepository(args);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    loaded = std::move(*result);
    forest = &loaded;
  }
  repo::RepositoryStats stats = repo::ComputeStats(*forest);
  std::printf("trees:          %zu\n", stats.trees);
  std::printf("elements:       %zu\n", stats.nodes);
  std::printf("avg tree size:  %.1f\n", stats.avg_tree_size);
  std::printf("max tree size:  %zu\n", stats.max_tree_size);
  std::printf("max depth:      %d\n", stats.max_depth);
  std::printf("distinct names: %zu\n", stats.distinct_names);
  return 0;
}

int RunMatch(const Args& args) {
  auto snapshot = LoadSnapshot(args);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const schema::SchemaForest& forest = (*snapshot)->forest();
  if (!args.Has("personal")) {
    std::fprintf(stderr, "match requires --personal SPEC\n");
    return 2;
  }
  auto personal = schema::ParseTreeSpec(args.Get("personal"));
  if (!personal.ok()) {
    std::fprintf(stderr, "bad --personal: %s\n",
                 personal.status().ToString().c_str());
    return 1;
  }

  core::MatchOptions options;
  options.delta = args.GetDouble("delta", 0.75);
  options.objective.alpha = args.GetDouble("alpha", 0.5);
  options.element.threshold = args.GetDouble("threshold", 0.5);
  options.top_n = static_cast<size_t>(args.GetInt("top", 20));
  std::string mode = args.Get("cluster", "kmeans");
  if (mode == "tree") {
    options.clustering = core::ClusteringMode::kTreeClusters;
  } else if (mode == "kmeans") {
    options.clustering = core::ClusteringMode::kKMeans;
    options.kmeans.join_distance =
        static_cast<int>(args.GetInt("join", 3));
  } else {
    std::fprintf(stderr, "--cluster must be tree or kmeans\n");
    return 2;
  }
  if (args.Has("partial")) {
    options.include_partial_mappings = true;
    options.partial.delta = options.delta * 0.7;
  }
  if (args.Has("structural")) {
    options.structural_matcher =
        &match::CompositeStructuralMatcher::Default();
  }

  core::ExecutionControl control;
  if (args.Has("deadline-ms")) {
    control = core::ExecutionControl::WithDeadline(
        args.GetDouble("deadline-ms", 0) / 1e3);
  }
  long first_n = args.GetInt("first-n", 0);
  if (first_n > 0) {
    control.stop_after_n_mappings = static_cast<uint64_t>(first_n);
  }

  const core::Bellflower& system = (*snapshot)->matcher();
  auto result = system.Match(*personal, options, control);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (result->execution != core::ExecutionStatus::kCompleted) {
    std::fprintf(stderr, "run stopped early: %s (results are partial)\n",
                 std::string(core::ExecutionStatusName(result->execution))
                     .c_str());
  }

  const core::MatchStats& stats = result->stats;
  std::printf("repository: %zu elements / %zu trees | mapping elements: %zu"
              " | clusters: %zu (%zu useful)\n",
              stats.repository_nodes, stats.repository_trees,
              stats.total_mapping_elements, stats.num_clusters,
              stats.num_useful_clusters);
  std::printf("search space: %.0f | partial mappings generated: %llu | "
              "mappings (delta>=%.2f): %zu\n\n",
              stats.search_space,
              static_cast<unsigned long long>(
                  stats.generator.partial_mappings),
              options.delta, stats.num_mappings);

  int rank = 1;
  for (const auto& mapping : result->mappings) {
    std::printf("%3d. %s\n", rank++,
                generate::MappingToString(mapping, *personal, forest)
                    .c_str());
  }
  if (options.include_partial_mappings) {
    std::printf("\npartial mappings (%zu):\n",
                result->partial_mappings.size());
    int prank = 1;
    for (const auto& pm : result->partial_mappings) {
      if (prank > 10) break;
      std::printf("%3d. tree=%d delta=%.3f coverage=%.2f\n", prank++,
                  pm.tree, pm.delta, pm.Coverage());
    }
  }

  if (args.Has("query") && !result->mappings.empty()) {
    auto query = query::ParseXPath(args.Get("query"));
    if (!query.ok()) {
      std::fprintf(stderr, "bad --query: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    std::printf("\nquery rewrites of %s:\n", args.Get("query").c_str());
    int qrank = 1;
    for (const auto& mapping : result->mappings) {
      if (qrank > 5) break;
      auto rewritten =
          query::RewriteQuery(*query, *personal, mapping, forest);
      std::printf("%3d. %s\n", qrank++,
                  rewritten.ok()
                      ? rewritten->ToString().c_str()
                      : rewritten.status().ToString().c_str());
    }
  }
  return 0;
}

// Options shared by batch and serve: command-line defaults that each query
// line may override.
core::MatchOptions DefaultServiceOptions(const Args& args, bool* ok) {
  core::MatchOptions options;
  options.delta = args.GetDouble("delta", 0.75);
  options.objective.alpha = args.GetDouble("alpha", 0.5);
  options.element.threshold = args.GetDouble("threshold", 0.5);
  options.top_n = static_cast<size_t>(args.GetInt("top", 10));
  options.kmeans.join_distance = static_cast<int>(args.GetInt("join", 3));
  std::string mode = args.Get("cluster", "kmeans");
  if (mode == "tree") {
    options.clustering = core::ClusteringMode::kTreeClusters;
  } else if (mode == "kmeans") {
    options.clustering = core::ClusteringMode::kKMeans;
  } else {
    std::fprintf(stderr, "--cluster must be tree or kmeans\n");
    *ok = false;
  }
  return options;
}

// Parses one query line of the batch/serve format:
//   SPEC [id=NAME] [delta=D] [top=N] [cluster=tree|kmeans] [join=J]
//        [threshold=T] [alpha=A]
Result<service::MatchQuery> ParseQueryLine(
    const std::string& line, const core::MatchOptions& defaults,
    size_t index) {
  std::istringstream stream(line);
  std::string spec;
  stream >> spec;
  if (spec.empty()) {
    return Status::InvalidArgument("empty query line");
  }

  service::MatchQuery query;
  query.id = "q" + std::to_string(index);
  query.options = defaults;
  XSM_ASSIGN_OR_RETURN(query.personal, schema::ParseTreeSpec(spec));

  std::string token;
  while (stream >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key=value, got: " + token);
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "id") {
      query.id = value;
    } else if (key == "delta") {
      query.options.delta = std::atof(value.c_str());
    } else if (key == "top") {
      query.options.top_n = static_cast<size_t>(std::atol(value.c_str()));
    } else if (key == "join") {
      query.options.kmeans.join_distance =
          static_cast<int>(std::atol(value.c_str()));
    } else if (key == "threshold") {
      query.options.element.threshold = std::atof(value.c_str());
    } else if (key == "alpha") {
      query.options.objective.alpha = std::atof(value.c_str());
    } else if (key == "cluster") {
      if (value == "tree") {
        query.options.clustering = core::ClusteringMode::kTreeClusters;
      } else if (value == "kmeans") {
        query.options.clustering = core::ClusteringMode::kKMeans;
      } else {
        return Status::InvalidArgument("cluster must be tree or kmeans");
      }
    } else {
      return Status::InvalidArgument("unknown query key: " + key);
    }
  }
  return query;
}

Result<std::unique_ptr<service::Matcher>> MakeService(const Args& args) {
  long threads = args.GetInt("threads", 0);
  if (threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  long shards = args.GetInt("shards", 1);
  if (shards < 1) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  service::MatchServiceOptions options;
  options.num_threads = static_cast<size_t>(threads);
  // --deadline-ms becomes the service's default per-query deadline; the
  // clock starts at Submit, so pool queue wait counts against it.
  options.default_deadline_seconds = args.GetDouble("deadline-ms", 0) / 1e3;
  options.slow_query_ms = args.GetDouble("slow-query-ms", 0);
  // Warm start included: LoadSnapshot dispatches on --warm-start, and the
  // service then continues delta ingestion from the loaded generation.
  XSM_ASSIGN_OR_RETURN(
      std::shared_ptr<const service::RepositorySnapshot> snapshot,
      LoadSnapshot(args));
  if (shards > 1) {
    // Sharded backend: repartition the loaded forest (results stay
    // byte-identical to the unsharded backend — see src/shard).
    shard::ShardedOptions shard_options;
    shard_options.num_shards = static_cast<size_t>(shards);
    XSM_ASSIGN_OR_RETURN(
        std::unique_ptr<shard::ShardedMatchService> sharded,
        shard::ShardedMatchService::Create(snapshot->forest(), options,
                                           shard_options));
    return std::unique_ptr<service::Matcher>(std::move(sharded));
  }
  return std::unique_ptr<service::Matcher>(
      std::make_unique<service::MatchService>(std::move(snapshot), options));
}

// --- NDJSON event streaming (batch / serve / http) -------------------------

std::mutex g_stdout_mu;  // one complete event line at a time

void EmitEventLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_stdout_mu);
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);  // streaming: every event visible immediately
}

/// Session options shared by batch and serve, from the command line.
service::ServeSessionOptions SessionOptionsFromArgs(const Args& args,
                                                    bool* ok) {
  service::ServeSessionOptions options;
  options.defaults = DefaultServiceOptions(args, ok);
  long first_n = args.GetInt("first-n", 0);
  if (first_n > 0) options.first_n = static_cast<uint64_t>(first_n);
  options.cluster_events = args.Has("cluster-events");
  options.trace_events = args.Has("trace");
  return options;
}

int RunBatch(const Args& args) {
  if (!args.Has("queries")) {
    std::fprintf(stderr, "batch requires --queries FILE\n");
    return 2;
  }
  bool ok = true;
  service::ServeSessionOptions session_options =
      SessionOptionsFromArgs(args, &ok);
  if (!ok) return 2;

  auto service = MakeService(args);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  service::ServeSession session(service->get(), session_options);

  std::ifstream file(args.Get("queries"));
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", args.Get("queries").c_str());
    return 1;
  }
  std::vector<service::MatchQuery> queries;
  std::string line;
  size_t lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto query = session.ParseQuery(line, queries.size());
    if (!query.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", args.Get("queries").c_str(),
                   lineno, query.status().ToString().c_str());
      return 1;
    }
    queries.push_back(std::move(*query));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries in %s\n", args.Get("queries").c_str());
    return 1;
  }

  {
    service::RepositoryPinPtr pin = (*service)->Pin();
    std::fprintf(stderr,
                 "serving %zu queries over %zu elements / %zu trees on %zu "
                 "threads (%zu shards)\n",
                 queries.size(), pin->total_nodes(), pin->num_trees(),
                 (*service)->pool().num_threads(),
                 (*service)->Shards().size());
  }

  Timer timer;
  size_t failed = session.RunBatch(queries, EmitEventLine);
  double elapsed = timer.ElapsedSeconds();
  service::ServiceStats stats = (*service)->stats();
  std::fprintf(
      stderr,
      "%zu queries in %.3fs (%.1f queries/sec) | cluster cache: "
      "%llu hits, %llu shared, %llu misses, %llu evictions, %zu resident | "
      "cancelled %llu, deadline_exceeded %llu, early_stopped %llu\n",
      queries.size(), elapsed,
      static_cast<double>(queries.size()) / elapsed,
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.shared),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.evictions),
      stats.cache.entries,
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.early_stopped));
  return failed == 0 ? 0 : 1;
}

// --- serve-mode signal handling --------------------------------------------

std::atomic<bool> g_serve_shutdown{false};
/// Shared by every serve-mode query; the signal handler cancels it once,
/// and stickiness makes any queries after the signal resolve immediately.
core::CancelToken g_serve_cancel;

void OnServeSignal(int) {
  if (g_serve_shutdown.exchange(true)) _exit(130);  // second signal: force
  // Cancel() is one relaxed atomic store — async-signal-safe in effect.
  g_serve_cancel.Cancel();
}

void InstallServeSignalHandlers() {
  struct sigaction sa{};
  sa.sa_handler = OnServeSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: the blocking stdin read returns EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int RunServe(const Args& args) {
  bool ok = true;
  service::ServeSessionOptions session_options =
      SessionOptionsFromArgs(args, &ok);
  if (!ok) return 2;

  auto service = MakeService(args);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  service::ServeSession session(service->get(), session_options);
  InstallServeSignalHandlers();
  {
    service::RepositoryPinPtr snapshot = (*service)->Pin();
    std::fprintf(stderr,
                 "ready: %zu elements / %zu trees (generation %llu); enter "
                 "queries (SPEC [key=value ...]) or !commands (!ingest, "
                 "!replace, !remove, !reload, !save, !generation, !stats, "
                 "!metrics), "
                 "EOF or SIGINT/SIGTERM to quit; NDJSON events on stdout\n",
                 snapshot->total_nodes(), snapshot->num_trees(),
                 static_cast<unsigned long long>(snapshot->generation()));
  }

  std::string line;
  while (!g_serve_shutdown.load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    core::ExecutionControl control;
    control.cancel = g_serve_cancel;
    session.HandleLine(line, EmitEventLine, control);
  }

  // Session summary (the serve-mode analogue of the batch footer): cache
  // effectiveness across all generations served.
  service::ServiceStats stats = (*service)->stats();
  std::fprintf(
      stderr,
      "%sserved %llu queries over %llu generations (%llu deltas) | cluster "
      "cache: %llu hits, %llu shared, %llu misses, %llu evictions, %zu "
      "resident in %zu namespaces | cancelled %llu, deadline_exceeded %llu, "
      "early_stopped %llu\n",
      g_serve_shutdown.load() ? "shutdown signal received; " : "",
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.generation + 1),
      static_cast<unsigned long long>(stats.deltas_applied),
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.shared),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.evictions),
      stats.cache.entries, stats.cache_namespaces,
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.early_stopped));

  if (args.Has("save-on-shutdown")) {
    const std::string path = args.Get("save-on-shutdown");
    auto info = (*service)->SaveSnapshot(path);
    if (!info.ok()) {
      std::fprintf(stderr, "save-on-shutdown failed: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "saved %s: generation %llu, %llu trees, %llu bytes\n",
                 path.c_str(),
                 static_cast<unsigned long long>(info->generation),
                 static_cast<unsigned long long>(info->trees),
                 static_cast<unsigned long long>(info->total_bytes));
  }
  return 0;
}

int RunIntegrate(const Args& args) {
  long threads = args.GetInt("threads", 0);
  long matching_threads = args.GetInt("matching-threads", 0);
  long cache_capacity = args.GetInt("cache-capacity", 4096);
  if (threads < 0 || matching_threads < 0 || cache_capacity < 0) {
    std::fprintf(stderr,
                 "--threads / --matching-threads / --cache-capacity must "
                 "be >= 0\n");
    return 2;
  }
  service::MatchServiceOptions service_options;
  service_options.num_threads = static_cast<size_t>(threads);
  service_options.matching_threads = static_cast<size_t>(matching_threads);
  // One cache entry per ~32-element slice: the default comfortably warms
  // repositories up to ~128k elements (see IntegrationEngine's sizing note).
  service_options.cluster_cache_capacity =
      static_cast<size_t>(cache_capacity);

  auto snapshot = LoadSnapshot(args);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  service::MatchService service(std::move(*snapshot), service_options);

  integrate::IntegrationOptions options;
  options.threshold = args.GetDouble("threshold", options.threshold);
  long min_linkage = args.GetInt("min-linkage", 1);
  if (min_linkage < 0) {
    std::fprintf(stderr, "--min-linkage must be >= 0\n");
    return 2;
  }
  options.min_linkage = static_cast<size_t>(min_linkage);
  if (args.Has("severity")) {
    auto severity = integrate::ParseSeverity(args.Get("severity"));
    if (!severity.ok()) {
      std::fprintf(stderr, "bad --severity: %s\n",
                   severity.status().ToString().c_str());
      return 2;
    }
    options.min_severity = *severity;
  }
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  if (args.Has("deadline-ms")) {
    options.control = core::ExecutionControl::WithDeadline(
        args.GetDouble("deadline-ms", 0) / 1e3);
  }
  // Ctrl-C cancels cooperatively: the run resolves with a typed partial
  // mediated event instead of dying mid-grid.
  InstallServeSignalHandlers();
  options.control.cancel = g_serve_cancel;

  integrate::IntegrationEngine engine(&service);
  // Named sink: the observer keeps a reference, a temporary would dangle.
  service::EventSink sink = EmitEventLine;
  service::NdjsonIntegrationObserver observer(sink);
  auto result = engine.Integrate(options, &observer);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  if (args.Has("out")) {
    auto bytes = integrate::SaveIntegrationToFile(*result, args.Get("out"));
    if (!bytes.ok()) {
      std::fprintf(stderr, "%s\n", bytes.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "saved %s: %zu clusters / %zu mediated elements, %zu "
                 "bytes\n",
                 args.Get("out").c_str(), result->clusters.size(),
                 result->mediated.elements.size(), *bytes);
  }

  if (args.Has("diff")) {
    auto before = integrate::LoadIntegrationFromFile(args.Get("diff"));
    if (!before.ok()) {
      std::fprintf(stderr, "%s\n", before.status().ToString().c_str());
      return 1;
    }
    integrate::IntegrationDiff diff =
        integrate::DiffIntegrations(*before, *result);
    std::string line = "{\"type\":\"diff\"";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"before\":%zu,\"after\":%zu,\"kept\":%zu,"
                  "\"added\":%zu,\"removed\":%zu",
                  diff.before_clusters, diff.after_clusters, diff.kept,
                  diff.added, diff.removed);
    line += buf;
    line += ",\"added_names\":[";
    for (size_t i = 0; i < diff.added_names.size(); ++i) {
      if (i > 0) line += ',';
      line += '"' + service::JsonEscape(diff.added_names[i]) + '"';
    }
    line += "],\"removed_names\":[";
    for (size_t i = 0; i < diff.removed_names.size(); ++i) {
      if (i > 0) line += ',';
      line += '"' + service::JsonEscape(diff.removed_names[i]) + '"';
    }
    line += "]}";
    EmitEventLine(line);
  }

  service::ServiceStats stats = service.stats();
  std::fprintf(
      stderr,
      "integrated %zu trees: %zu clusters, %zu mediated elements "
      "(execution %s) | cluster cache: %llu hits, %llu shared, %llu "
      "misses\n",
      result->stats.trees, result->clusters.size(),
      result->mediated.elements.size(),
      std::string(core::ExecutionStatusName(result->execution)).c_str(),
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.shared),
      static_cast<unsigned long long>(stats.cache.misses));
  return 0;
}

int RunHttp(const Args& args) {
  bool ok = true;
  net::TenantRegistryOptions registry_options;
  registry_options.session = SessionOptionsFromArgs(args, &ok);
  if (!ok) return 2;
  long threads = args.GetInt("threads", 0);
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  registry_options.service.num_threads = static_cast<size_t>(threads);
  registry_options.service.default_deadline_seconds =
      args.GetDouble("deadline-ms", 0) / 1e3;
  registry_options.service.slow_query_ms =
      args.GetDouble("slow-query-ms", 0);
  long shards = args.GetInt("shards", 1);
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  registry_options.shards = static_cast<size_t>(shards);
  registry_options.state_dir = args.Get("state-dir");
  // With a state dir, every tenant write-ahead journals its deltas
  // (checkpoint at creation, fsync'd append per delta, replay on boot) so
  // even a SIGKILL loses no acknowledged delta; --no-wal reverts to
  // save-points-only durability.
  registry_options.enable_wal = !args.Has("no-wal");
  const bool journaling = args.Has("state-dir") && registry_options.enable_wal;
  net::TenantRegistry registry(std::move(registry_options));

  // Warm restart: every tenant saved by a previous drain resumes its
  // generation chain.
  if (args.Has("state-dir")) {
    size_t booted = registry.WarmStartAll();
    if (booted > 0) {
      std::fprintf(stderr, "warm-started %zu tenants from %s\n", booted,
                   args.Get("state-dir").c_str());
    }
  }

  // A repository source flag seeds the named tenant (skipped when a warm
  // start already brought it back).
  const std::string tenant_name = args.Get("tenant", "default");
  if (args.Has("forest") || args.Has("repo-dir") || args.Has("synthetic") ||
      args.Has("warm-start")) {
    if (registry.Find(tenant_name) != nullptr) {
      std::fprintf(stderr,
                   "tenant '%s' already warm-started; ignoring repository "
                   "source flags\n",
                   tenant_name.c_str());
    } else if (args.Has("warm-start")) {
      // Boot from an explicit snapshot file (not the state dir).
      auto service = MakeService(args);
      if (!service.ok()) {
        std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "note: --warm-start FILE seeds tenant '%s' via its "
                   "forest; generation restarts at 0 unless --state-dir "
                   "holds a drain snapshot\n",
                   tenant_name.c_str());
      schema::SchemaForest forest = (*service)->Pin()->forest();
      auto tenant = registry.Create(tenant_name, std::move(forest));
      if (!tenant.ok()) {
        std::fprintf(stderr, "%s\n", tenant.status().ToString().c_str());
        return 1;
      }
    } else {
      auto forest = LoadRepository(args);
      if (!forest.ok()) {
        std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
        return 1;
      }
      auto tenant = registry.Create(tenant_name, std::move(*forest));
      if (!tenant.ok()) {
        std::fprintf(stderr, "%s\n", tenant.status().ToString().c_str());
        return 1;
      }
    }
  }

  net::HttpServerOptions server_options;
  server_options.bind_address = args.Get("bind", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(args.GetInt("port", 8080));
  server_options.num_workers =
      static_cast<size_t>(args.GetInt("workers", 0));
  server_options.admission.max_inflight =
      static_cast<size_t>(args.GetInt("max-inflight", 256));
  server_options.admission.soft_inflight =
      static_cast<size_t>(args.GetInt("soft-inflight", 0));
  server_options.admission.min_deadline_fraction =
      args.GetDouble("min-deadline-fraction", 0.25);
  net::HttpServer server(&registry, server_options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  server.InstallShutdownSignalHandlers();
  std::fprintf(stderr,
               "listening on %s:%u (%zu tenants%s); SIGINT/SIGTERM drains%s\n",
               server_options.bind_address.c_str(), server.port(),
               registry.size(),
               journaling ? ", delta journaling on" : "",
               args.Has("state-dir") ? " and saves every tenant" : "");
  server.Serve();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args(argc, argv);
  if (!args.ok()) return Usage();
  std::string command = argv[1];
  if (command == "gen") return RunGen(args);
  if (command == "save") return RunSave(args);
  if (command == "convert") return RunConvert(args);
  if (command == "stats") return RunStats(args);
  if (command == "match") return RunMatch(args);
  if (command == "batch") return RunBatch(args);
  if (command == "integrate") return RunIntegrate(args);
  if (command == "serve") return RunServe(args);
  if (command == "http") return RunHttp(args);
  return Usage();
}
