// check_bench_regression — CI gate comparing a fresh BENCH_*.json smoke
// datapoint against the committed full-mode baseline.
//
// Smoke runs use smaller corpora and shared CI machines, so absolute
// timings are not comparable across the two files. What is comparable are
// the scale-free headline ratios each harness emits (pruned-vs-seed
// speedup, incremental-vs-scratch publish speedup, warm-vs-cold boot
// speedup) and the boolean correctness verdicts. This tool fails when
//   - the current headline ratio collapses below baseline / tolerance
//     (default tolerance 10 — an order-of-magnitude regression), or
//   - any correctness boolean that is true in the baseline is false now.
// Generous by design: it is a tripwire for catastrophic regressions, not
// a perf tracker (the committed full-mode JSONs are the tracker).
//
// Usage:
//   check_bench_regression --baseline BENCH_x.json --current /tmp/BENCH_x.json
//                          [--tolerance X]
//
// The JSON reader is deliberately minimal: it scans for `"key": value`
// pairs in the flat machine-generated files our harnesses emit (no
// nesting-aware parsing needed, keys are unique or uniformly aggregated).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Extracted {
  bool found = false;
  double max_value = 0;
};

/// Largest numeric value of `key` anywhere in `json` (benches repeat some
/// keys per config row; the best row is the headline).
Extracted MaxOfKey(const std::string& json, const std::string& key) {
  Extracted out;
  const std::string needle = "\"" + key + "\"";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    size_t colon = json.find(':', pos);
    if (colon == std::string::npos) break;
    const double value = std::strtod(json.c_str() + colon + 1, nullptr);
    if (!out.found || value > out.max_value) out.max_value = value;
    out.found = true;
  }
  return out;
}

/// True if every occurrence of boolean `key` is `true`.
bool AllTrue(const std::string& json, const std::string& key,
             bool* present) {
  const std::string needle = "\"" + key + "\"";
  *present = false;
  size_t pos = 0;
  bool all = true;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    size_t colon = json.find(':', pos);
    if (colon == std::string::npos) break;
    size_t value = json.find_first_not_of(" \t\n", colon + 1);
    *present = true;
    // A truncated file can end right after the colon; that's "not true".
    all = all && value != std::string::npos &&
          json.compare(value, 4, "true") == 0;
  }
  return all;
}

std::string FirstString(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return "";
  size_t open = json.find('"', json.find(':', pos + needle.size()) + 1);
  if (open == std::string::npos) return "";
  size_t close = json.find('"', open + 1);
  return json.substr(open + 1, close - open - 1);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return !in.bad();
}

struct BenchProfile {
  const char* bench;          ///< "bench" field value
  const char* headline;       ///< scale-free ratio key to compare
  /// Correctness booleans; each must stay all-true if the baseline has it.
  std::vector<const char*> correctness;
};

const BenchProfile kProfiles[] = {
    {"element_matching",
     "speedup_pruned_vs_seed",
     {"results_identical_to_seed"}},
    {"live_ingestion",
     "speedup_vs_scratch",
     {"cow_verified", "fingerprints_verified"}},
    {"store",
     "speedup_warm_vs_cold_xsd",
     {"fingerprint_roundtrip", "probe_consistent", "queries_identical"}},
    {"service_load",
     "sustained_qps",
     {"zero_failed", "shed_all_typed"}},
    {"integration",
     "speedup_warm_vs_cold",
     {"determinism_verified", "planted_recall_ok"}},
    {"recovery",
     "speedup_recover_vs_cold_rebuild",
     {"zero_loss", "fingerprints_identical", "queries_identical"}},
    {"observability",
     "instrumented_qps_ratio",
     {"overhead_ok", "exposition_valid", "counters_consistent",
      "results_identical"}},
    {"sharding", "query_scaling_ratio", {"sharded_identical"}},
};

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  double tolerance = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--current") == 0 && i + 1 < argc) {
      current_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: check_bench_regression --baseline FILE "
                   "--current FILE [--tolerance X]\n");
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty() || tolerance <= 0) {
    std::fprintf(stderr,
                 "usage: check_bench_regression --baseline FILE "
                 "--current FILE [--tolerance X]\n");
    return 2;
  }

  std::string baseline, current;
  if (!ReadFile(baseline_path, &baseline)) {
    std::fprintf(stderr, "cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  if (!ReadFile(current_path, &current)) {
    std::fprintf(stderr, "cannot read %s\n", current_path.c_str());
    return 2;
  }

  const std::string bench = FirstString(baseline, "bench");
  if (bench.empty() || bench != FirstString(current, "bench")) {
    std::fprintf(stderr,
                 "baseline and current disagree about which bench this is "
                 "('%s' vs '%s')\n",
                 bench.c_str(), FirstString(current, "bench").c_str());
    return 2;
  }
  const BenchProfile* profile = nullptr;
  for (const BenchProfile& p : kProfiles) {
    if (bench == p.bench) profile = &p;
  }
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown bench '%s'\n", bench.c_str());
    return 2;
  }

  int failures = 0;

  // Correctness booleans regress only downward.
  for (const char* key : profile->correctness) {
    bool base_present = false, cur_present = false;
    const bool base_ok = AllTrue(baseline, key, &base_present);
    const bool cur_ok = AllTrue(current, key, &cur_present);
    if (!base_present || !base_ok) continue;  // never enforced in baseline
    if (!cur_present || !cur_ok) {
      std::printf("FAIL %s: correctness flag \"%s\" is no longer true\n",
                  bench.c_str(), key);
      ++failures;
    }
  }

  // Headline ratio: current must stay within tolerance of the baseline.
  Extracted base = MaxOfKey(baseline, profile->headline);
  Extracted cur = MaxOfKey(current, profile->headline);
  if (!base.found) {
    std::fprintf(stderr, "baseline %s lacks \"%s\"\n", baseline_path.c_str(),
                 profile->headline);
    return 2;
  }
  if (!cur.found) {
    std::printf("FAIL %s: current output lacks \"%s\"\n", bench.c_str(),
                profile->headline);
    ++failures;
  } else {
    const double floor = base.max_value / tolerance;
    std::printf("%s: %s = %.3f (baseline %.3f, floor %.3f at tolerance "
                "%.1fx)\n",
                bench.c_str(), profile->headline, cur.max_value,
                base.max_value, floor, tolerance);
    if (cur.max_value < floor) {
      std::printf("FAIL %s: \"%s\" collapsed by more than %.1fx\n",
                  bench.c_str(), profile->headline, tolerance);
      ++failures;
    }
  }

  if (failures > 0) return 1;
  std::printf("%s: no order-of-magnitude regression\n", bench.c_str());
  return 0;
}
