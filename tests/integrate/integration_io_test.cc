#include "integrate/integration_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "integrate/integration_engine.h"
#include "live/repository_delta.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "util/random.h"

namespace xsm::integrate {
namespace {

// A compact planted corpus (see integration_engine_test.cc for the alphabet
// construction): group tokens are exact repeats, noise can never cross the
// threshold, so the integration output is small and fully predictable.
std::string NoiseName(size_t* counter) {
  size_t k = (*counter)++;
  std::string name;
  for (int block = 0; block < 3; ++block) {
    name.append(4, static_cast<char>('m' + k % 14));
    k /= 14;
  }
  return name;
}

/// `num_groups` <= 12; planted members never land in tree 0, so removing
/// tree 0 renumbers every TreeId without touching any cluster's content.
schema::SchemaForest BuildForest(uint64_t seed, size_t num_trees,
                                 size_t num_groups) {
  Rng rng(seed);
  size_t noise_counter = 0;
  schema::SchemaForest forest;
  for (size_t t = 0; t < num_trees; ++t) {
    schema::SchemaTree tree;
    schema::NodeProperties root;
    root.name = NoiseName(&noise_counter);
    tree.AddNode(schema::kInvalidNode, std::move(root));
    std::vector<std::string> names;
    if (t > 0) {
      for (size_t g = 0; g < num_groups; ++g) {
        names.push_back(std::string(8, static_cast<char>('a' + g)));
      }
    }
    const size_t noise = 20 + rng.Uniform(16);
    for (size_t j = 0; j < noise; ++j) {
      names.push_back(NoiseName(&noise_counter));
    }
    rng.Shuffle(&names);
    for (std::string& name : names) {
      schema::NodeProperties props;
      props.name = std::move(name);
      tree.AddNode(static_cast<schema::NodeId>(rng.Uniform(tree.size())),
                   std::move(props));
    }
    forest.AddTree(std::move(tree));
  }
  return forest;
}

std::unique_ptr<service::MatchService> ServiceOver(
    schema::SchemaForest forest) {
  service::MatchServiceOptions options;
  options.cluster_cache_capacity = 4096;
  auto snapshot = service::RepositorySnapshot::Create(std::move(forest));
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return std::make_unique<service::MatchService>(std::move(*snapshot),
                                                 options);
}

IntegrationResult IntegrateForest(schema::SchemaForest forest) {
  auto service = ServiceOver(std::move(forest));
  IntegrationEngine engine(service.get());
  auto result = engine.Integrate(IntegrationOptions());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

class IntegrationIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new IntegrationResult(
        IntegrateForest(BuildForest(3, /*num_trees=*/5, /*num_groups=*/4)));
    ASSERT_FALSE(result_->clusters.empty());
    bytes_ = new std::string(SerializeIntegration(*result_));
  }

  static void TearDownTestSuite() {
    delete bytes_;
    bytes_ = nullptr;
    delete result_;
    result_ = nullptr;
  }

  static IntegrationResult* result_;
  static std::string* bytes_;
};

IntegrationResult* IntegrationIoTest::result_ = nullptr;
std::string* IntegrationIoTest::bytes_ = nullptr;

TEST_F(IntegrationIoTest, RoundTripIsDeepEqual) {
  auto decoded = DeserializeIntegration(*bytes_);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  EXPECT_EQ(decoded->generation, result_->generation);
  EXPECT_EQ(decoded->fingerprint, result_->fingerprint);
  EXPECT_EQ(decoded->seed, result_->seed);
  EXPECT_EQ(decoded->execution, result_->execution);
  EXPECT_EQ(decoded->tree_fingerprints, result_->tree_fingerprints);
  EXPECT_EQ(decoded->stats.trees, result_->stats.trees);
  EXPECT_EQ(decoded->stats.slices, result_->stats.slices);
  EXPECT_EQ(decoded->stats.pairs_total, result_->stats.pairs_total);
  EXPECT_EQ(decoded->stats.pairs_linked, result_->stats.pairs_linked);
  EXPECT_EQ(decoded->stats.correspondences,
            result_->stats.correspondences);
  EXPECT_EQ(decoded->stats.nodes_linked, result_->stats.nodes_linked);
  // Timings are deliberately NOT serialized.
  EXPECT_EQ(decoded->stats.time_matching_seconds, 0.0);
  EXPECT_EQ(decoded->stats.time_fold_seconds, 0.0);

  ASSERT_EQ(decoded->clusters.size(), result_->clusters.size());
  for (size_t i = 0; i < decoded->clusters.size(); ++i) {
    const CorrespondenceCluster& got = decoded->clusters[i];
    const CorrespondenceCluster& want = result_->clusters[i];
    EXPECT_EQ(got.name, want.name) << i;
    EXPECT_EQ(got.representative, want.representative) << i;
    EXPECT_EQ(got.members, want.members) << i;
    EXPECT_EQ(got.links, want.links) << i;
    EXPECT_EQ(got.schemas, want.schemas) << i;
    EXPECT_EQ(got.confidence, want.confidence) << i;
    EXPECT_EQ(got.severity, want.severity) << i;
  }
  ASSERT_EQ(decoded->mediated.elements.size(),
            result_->mediated.elements.size());
  for (size_t i = 0; i < decoded->mediated.elements.size(); ++i) {
    EXPECT_EQ(decoded->mediated.elements[i].name,
              result_->mediated.elements[i].name);
    EXPECT_EQ(decoded->mediated.elements[i].representative,
              result_->mediated.elements[i].representative);
    EXPECT_EQ(decoded->mediated.elements[i].cluster,
              result_->mediated.elements[i].cluster);
  }

  // Idempotence closes the loop: re-serializing reproduces the bytes.
  EXPECT_EQ(SerializeIntegration(*decoded), *bytes_);
}

TEST_F(IntegrationIoTest, EveryTruncationFailsTyped) {
  for (size_t len = 0; len < bytes_->size(); ++len) {
    auto decoded = DeserializeIntegration(
        std::string_view(bytes_->data(), len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    const StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == StatusCode::kParseError ||
                code == StatusCode::kCorruption)
        << "prefix " << len << ": " << decoded.status().ToString();
  }
}

TEST_F(IntegrationIoTest, EveryFlippedByteFailsTyped) {
  for (size_t pos = 0; pos < bytes_->size(); ++pos) {
    std::string mutated = *bytes_;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xFF);
    auto decoded = DeserializeIntegration(mutated);
    ASSERT_FALSE(decoded.ok()) << "flip at " << pos << " decoded";
    const StatusCode code = decoded.status().code();
    // Magic damage parses as "not this format"; header version damage is a
    // future format; anything else trips the CRC.
    EXPECT_TRUE(code == StatusCode::kParseError ||
                code == StatusCode::kUnimplemented ||
                code == StatusCode::kCorruption)
        << "flip " << pos << ": " << decoded.status().ToString();
  }
}

TEST_F(IntegrationIoTest, NewerFormatVersionFailsUnimplemented) {
  // Layout: magic[8], u32 version, u32 crc, payload. The version is outside
  // the CRC, so bumping it alone crafts a well-formed future file.
  std::string future = *bytes_;
  future[8] = static_cast<char>(kIntegrationFormatVersion + 1);
  auto decoded = DeserializeIntegration(future);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented);
}

TEST_F(IntegrationIoTest, WrongMagicFailsParseError) {
  std::string wrong = *bytes_;
  wrong[0] = 'Y';
  EXPECT_EQ(DeserializeIntegration(wrong).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(DeserializeIntegration("").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(DeserializeIntegration("XSM").status().code(),
            StatusCode::kParseError);
}

TEST_F(IntegrationIoTest, TrailingBytesFailCorruption) {
  std::string padded = *bytes_ + std::string(4, '\0');
  auto decoded = DeserializeIntegration(padded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST_F(IntegrationIoTest, SaveThenLoadRoundTripsThroughAFile) {
  const std::string path =
      ::testing::TempDir() + "/integration_io_test.intg";
  auto saved = SaveIntegrationToFile(*result_, path);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(*saved, bytes_->size());
  auto loaded = LoadIntegrationFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializeIntegration(*loaded), *bytes_);
  std::remove(path.c_str());

  EXPECT_EQ(LoadIntegrationFromFile(path + ".missing").status().code(),
            StatusCode::kIOError);
}

TEST_F(IntegrationIoTest, SelfDiffKeepsEverything) {
  IntegrationDiff diff = DiffIntegrations(*result_, *result_);
  EXPECT_EQ(diff.before_clusters, result_->clusters.size());
  EXPECT_EQ(diff.after_clusters, result_->clusters.size());
  EXPECT_EQ(diff.kept, result_->clusters.size());
  EXPECT_EQ(diff.added, 0u);
  EXPECT_EQ(diff.removed, 0u);
  EXPECT_TRUE(diff.added_names.empty());
  EXPECT_TRUE(diff.removed_names.empty());
}

// The cross-generation contract: cluster identity is keyed on tree content
// fingerprints, so removing the (planted-free) tree 0 — which renumbers
// every TreeId — leaves every planted cluster "kept", while ingesting a
// tree pair carrying a fresh token shows up as exactly one added cluster.
TEST_F(IntegrationIoTest, DiffSurvivesTreeIdRenumberingAcrossGenerations) {
  auto service = ServiceOver(BuildForest(11, /*num_trees=*/5,
                                         /*num_groups=*/4));
  IntegrationEngine engine(service.get());
  auto before = engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->clusters.size(), 4u);

  // Generation 1: drop the noise-only tree 0 (TreeIds compact) and add two
  // trees sharing one new token (a fifth cluster appears).
  live::DeltaBuilder builder;
  builder.RemoveTree(0);
  const std::string fresh_token(8, 'e' + 4);  // 'i': unused by groups 0..3
  for (int i = 0; i < 2; ++i) {
    schema::SchemaTree tree;
    schema::NodeProperties root;
    root.name = std::string(12, static_cast<char>('y' - i));
    schema::NodeId root_id =
        tree.AddNode(schema::kInvalidNode, std::move(root));
    schema::NodeProperties child;
    child.name = fresh_token;
    tree.AddNode(root_id, std::move(child));
    builder.AddTree(std::move(tree), "feed:diff");
  }
  ASSERT_TRUE(service->ApplyDelta(*builder.Build()).ok());

  auto after = engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, 1u);

  IntegrationDiff diff = DiffIntegrations(*before, *after);
  EXPECT_EQ(diff.before_clusters, 4u);
  EXPECT_EQ(diff.after_clusters, 5u);
  EXPECT_EQ(diff.kept, 4u);
  EXPECT_EQ(diff.added, 1u);
  EXPECT_EQ(diff.removed, 0u);
  ASSERT_EQ(diff.added_names.size(), 1u);
  EXPECT_EQ(diff.added_names[0], fresh_token);
}

}  // namespace
}  // namespace xsm::integrate
