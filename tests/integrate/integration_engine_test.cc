#include "integrate/integration_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "integrate/integration_io.h"
#include "live/repository_delta.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "util/random.h"

namespace xsm::integrate {
namespace {

// --- Planted-synonym corpus ------------------------------------------------
//
// The ground-truth generator both the recall tests and bench_integration
// rely on. Group tokens are eight copies of one letter from 'a'..'l':
// distinct tokens share no character, so cross-group similarity is 0 under
// the default Damerau-Levenshtein matcher. Noise names are three 4-char
// blocks over the disjoint alphabet 'm'..'z' taken from base-14 digits of a
// global counter: any two distinct noise names differ in at least 4 of 12
// characters (similarity <= 2/3 < 0.75), and noise-vs-token similarity is 0.
// The only correspondences at the default threshold are therefore the exact
// planted token repeats — the expected clustering is known exactly.

std::string NoiseName(size_t* counter) {
  size_t k = (*counter)++;
  std::string name;
  for (int block = 0; block < 3; ++block) {
    name.append(4, static_cast<char>('m' + k % 14));
    k /= 14;
  }
  return name;
}

struct PlantedGroup {
  std::string token;
  std::vector<schema::NodeRef> members;  // build order = sorted NodeRef order
};

struct PlantedCorpus {
  schema::SchemaForest forest;
  std::vector<PlantedGroup> groups;
};

/// `num_groups` <= 12. When `first_tree_noise_only`, tree 0 carries no
/// planted member (so removing it must not disturb any planted cluster).
PlantedCorpus BuildPlantedCorpus(uint64_t seed, size_t num_trees,
                                 size_t num_groups,
                                 bool first_tree_noise_only = false) {
  PlantedCorpus corpus;
  Rng rng(seed);
  size_t noise_counter = 0;
  const size_t lo = first_tree_noise_only ? 1 : 0;

  corpus.groups.resize(num_groups);
  std::vector<std::vector<size_t>> groups_in_tree(num_trees);
  for (size_t g = 0; g < num_groups; ++g) {
    corpus.groups[g].token = std::string(8, static_cast<char>('a' + g));
    std::vector<size_t> candidates;
    for (size_t t = lo; t < num_trees; ++t) candidates.push_back(t);
    rng.Shuffle(&candidates);
    const size_t occurrences = 2 + rng.Uniform(candidates.size() - 1);
    for (size_t i = 0; i < occurrences; ++i) {
      groups_in_tree[candidates[i]].push_back(g);
    }
  }

  for (size_t t = 0; t < num_trees; ++t) {
    schema::SchemaTree tree;
    schema::NodeProperties root;
    root.name = NoiseName(&noise_counter);
    tree.AddNode(schema::kInvalidNode, std::move(root));

    constexpr size_t kNoGroup = static_cast<size_t>(-1);
    std::vector<std::pair<std::string, size_t>> names;
    for (size_t g : groups_in_tree[t]) {
      names.emplace_back(corpus.groups[g].token, g);
    }
    // Big enough that every tree spans several 32-node personal slices.
    const size_t noise = 36 + rng.Uniform(30);
    for (size_t j = 0; j < noise; ++j) {
      names.emplace_back(NoiseName(&noise_counter), kNoGroup);
    }
    rng.Shuffle(&names);

    for (auto& [name, group] : names) {
      schema::NodeProperties props;
      props.name = name;
      // Random parent: structural variety the name-only matcher ignores.
      const schema::NodeId parent =
          static_cast<schema::NodeId>(rng.Uniform(tree.size()));
      const schema::NodeId id = tree.AddNode(parent, std::move(props));
      if (group != kNoGroup) {
        corpus.groups[group].members.push_back(
            {static_cast<schema::TreeId>(t), id});
      }
    }
    corpus.forest.AddTree(std::move(tree));
  }
  return corpus;
}

std::unique_ptr<service::MatchService> ServiceOver(
    schema::SchemaForest forest, size_t num_threads = 0,
    size_t cache_capacity = 4096) {
  service::MatchServiceOptions options;
  options.num_threads = num_threads;
  options.cluster_cache_capacity = cache_capacity;
  auto snapshot = service::RepositorySnapshot::Create(std::move(forest));
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return std::make_unique<service::MatchService>(std::move(*snapshot),
                                                 options);
}

const CorrespondenceCluster* FindClusterByName(const IntegrationResult& result,
                                               const std::string& name) {
  for (const CorrespondenceCluster& cluster : result.clusters) {
    if (cluster.name == name) return &cluster;
  }
  return nullptr;
}

TEST(SeverityNamesTest, RoundTrip) {
  for (Severity s :
       {Severity::kWeak, Severity::kProbable, Severity::kStrong}) {
    auto parsed = ParseSeverity(SeverityName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_EQ(ParseSeverity("medium").status().code(),
            StatusCode::kInvalidArgument);
}

// Every planted synonym group must land in exactly one correspondence
// cluster holding exactly its members — and nothing else clusters, because
// the noise vocabulary is constructed below the threshold.
TEST(IntegrationEngineTest, PlantedGroupsLandInOneClusterEach) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    PlantedCorpus corpus = BuildPlantedCorpus(seed, /*num_trees=*/7,
                                              /*num_groups=*/6);
    auto service = ServiceOver(std::move(corpus.forest), /*num_threads=*/4);
    IntegrationEngine engine(service.get());
    auto result = engine.Integrate(IntegrationOptions());
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    EXPECT_EQ(result->execution, core::ExecutionStatus::kCompleted);
    EXPECT_EQ(result->clusters.size(), corpus.groups.size())
        << "seed " << seed;
    for (const PlantedGroup& group : corpus.groups) {
      const CorrespondenceCluster* cluster =
          FindClusterByName(*result, group.token);
      ASSERT_NE(cluster, nullptr) << "seed " << seed << " lost group "
                                  << group.token;
      EXPECT_EQ(cluster->members, group.members) << "seed " << seed;
      // Exact repeats: every edge scores 1.0, so the grade is strong and
      // the group spans as many schemas as it has members (one per tree).
      EXPECT_EQ(cluster->confidence, 1.0);
      EXPECT_EQ(cluster->severity, Severity::kStrong);
      EXPECT_EQ(cluster->schemas, group.members.size());
      EXPECT_GE(cluster->links, group.members.size() - 1);
    }
    // The mediated schema carries each cluster once, in rank order.
    EXPECT_EQ(result->mediated.elements.size(), result->clusters.size());
    for (size_t i = 0; i < result->mediated.elements.size(); ++i) {
      const MediatedElement& element = result->mediated.elements[i];
      EXPECT_EQ(element.cluster, i);
      EXPECT_EQ(element.name, result->clusters[i].name);
    }
  }
}

// The determinism contract: for a fixed snapshot fingerprint + seed the
// serialized result is byte-identical across thread counts, and a warm
// second run (cluster cache populated) reproduces it exactly.
TEST(IntegrationEngineTest, ByteIdenticalAcrossThreadCountsAndWarmRuns) {
  repo::SyntheticRepoOptions synth;
  synth.target_elements = 1200;
  synth.seed = 5;
  auto forest = repo::GenerateSyntheticRepository(synth);
  ASSERT_TRUE(forest.ok());

  std::string reference;
  for (size_t threads : {1u, 2u, 8u}) {
    auto service = ServiceOver(*forest, threads);
    IntegrationEngine engine(service.get());
    auto result = engine.Integrate(IntegrationOptions());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::string bytes = SerializeIntegration(*result);
    if (reference.empty()) {
      reference = bytes;
      EXPECT_FALSE(result->clusters.empty());
    } else {
      EXPECT_EQ(bytes, reference) << "thread count " << threads;
    }

    // Warm rerun on the same service: identical bytes, served from cache.
    const uint64_t misses_after_cold = service->stats().cache.misses;
    auto warm = engine.Integrate(IntegrationOptions());
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(SerializeIntegration(*warm), reference);
    EXPECT_EQ(service->stats().cache.misses, misses_after_cold)
        << "warm run should not rebuild any slice state";
    EXPECT_GT(service->stats().cache.hits, 0u);
  }
}

TEST(IntegrationEngineTest, MinLinkageAndSeverityFilterMediatedSchema) {
  PlantedCorpus corpus = BuildPlantedCorpus(7, /*num_trees=*/6,
                                            /*num_groups=*/5);
  auto service = ServiceOver(std::move(corpus.forest));
  IntegrationEngine engine(service.get());

  IntegrationOptions all;
  auto baseline = engine.Integrate(all);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->clusters.empty());

  // A linkage floor above the largest group's edge count empties the
  // mediated schema without touching the clusters themselves.
  size_t max_links = 0;
  for (const CorrespondenceCluster& cluster : baseline->clusters) {
    max_links = std::max(max_links, cluster.links);
  }
  IntegrationOptions strict;
  strict.min_linkage = max_links + 1;
  auto filtered = engine.Integrate(strict);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->clusters.size(), baseline->clusters.size());
  EXPECT_TRUE(filtered->mediated.elements.empty());

  // Severity follows the confidence thresholds: planted clusters sit at
  // confidence 1.0, so raising strong_confidence past it demotes every
  // grade to probable — and a strong-only floor then empties the schema.
  IntegrationOptions demoted;
  demoted.strong_confidence = 1.2;
  demoted.probable_confidence = 0.9;
  auto graded = engine.Integrate(demoted);
  ASSERT_TRUE(graded.ok());
  for (const CorrespondenceCluster& cluster : graded->clusters) {
    EXPECT_EQ(cluster.severity, Severity::kProbable);
  }
  EXPECT_EQ(graded->mediated.elements.size(), graded->clusters.size());

  demoted.min_severity = Severity::kStrong;
  auto strong_only = engine.Integrate(demoted);
  ASSERT_TRUE(strong_only.ok());
  EXPECT_EQ(strong_only->clusters.size(), graded->clusters.size());
  EXPECT_TRUE(strong_only->mediated.elements.empty());

  demoted.min_severity = Severity::kProbable;
  auto probable_up = engine.Integrate(demoted);
  ASSERT_TRUE(probable_up.ok());
  EXPECT_EQ(probable_up->mediated.elements.size(),
            probable_up->clusters.size());
}

// A stop signal yields a typed partial result (never an error) and must not
// poison the cluster cache: the rerun on the same service matches a fresh
// service's run byte for byte.
TEST(IntegrationEngineTest, CancellationLeavesTypedPartialAndCleanCache) {
  PlantedCorpus corpus = BuildPlantedCorpus(4, /*num_trees=*/6,
                                            /*num_groups=*/5);
  auto service = ServiceOver(corpus.forest, /*num_threads=*/2);
  IntegrationEngine engine(service.get());

  IntegrationOptions cancelled;
  cancelled.control.cancel.Cancel();
  auto partial = engine.Integrate(cancelled);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->execution, core::ExecutionStatus::kCancelled);
  EXPECT_TRUE(partial->clusters.empty());
  EXPECT_TRUE(partial->mediated.elements.empty());
  // Provenance still names the snapshot the partial run was pinned to.
  EXPECT_EQ(partial->fingerprint,
            service->CurrentSnapshot()->fingerprint());

  auto rerun = engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->execution, core::ExecutionStatus::kCompleted);

  auto fresh_service = ServiceOver(std::move(corpus.forest));
  IntegrationEngine fresh_engine(fresh_service.get());
  auto fresh = fresh_engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(SerializeIntegration(*rerun), SerializeIntegration(*fresh));
}

TEST(IntegrationEngineTest, ExpiredDeadlineYieldsTypedPartialAndCleanCache) {
  PlantedCorpus corpus = BuildPlantedCorpus(5, /*num_trees=*/6,
                                            /*num_groups=*/5);
  auto service = ServiceOver(corpus.forest, /*num_threads=*/2);
  IntegrationEngine engine(service.get());

  IntegrationOptions expired;
  expired.control = core::ExecutionControl::WithDeadline(1e-9);
  auto partial = engine.Integrate(expired);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->execution, core::ExecutionStatus::kDeadlineExceeded);

  auto rerun = engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->execution, core::ExecutionStatus::kCompleted);
  auto fresh_service = ServiceOver(std::move(corpus.forest));
  IntegrationEngine fresh_engine(fresh_service.get());
  auto fresh = fresh_engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(SerializeIntegration(*rerun), SerializeIntegration(*fresh));
}

TEST(IntegrationEngineTest, SingleTreeRepositoryCompletesEmpty) {
  schema::SchemaForest forest;
  auto tree = schema::ParseTreeSpec("person(name,address(city,zip))");
  ASSERT_TRUE(tree.ok());
  forest.AddTree(std::move(*tree));
  auto service = ServiceOver(std::move(forest));
  IntegrationEngine engine(service.get());
  auto result = engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, core::ExecutionStatus::kCompleted);
  EXPECT_EQ(result->stats.trees, 1u);
  EXPECT_EQ(result->stats.pairs_total, 0u);
  EXPECT_TRUE(result->clusters.empty());
  EXPECT_TRUE(result->mediated.elements.empty());
}

TEST(IntegrationEngineTest, ProvenanceTracksTheServedSnapshot) {
  PlantedCorpus corpus = BuildPlantedCorpus(6, /*num_trees=*/5,
                                            /*num_groups=*/4);
  auto service = ServiceOver(std::move(corpus.forest));
  IntegrationEngine engine(service.get());

  auto gen0 = engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(gen0.ok());
  auto snapshot = service->CurrentSnapshot();
  EXPECT_EQ(gen0->generation, 0u);
  EXPECT_EQ(gen0->fingerprint, snapshot->fingerprint());
  ASSERT_EQ(gen0->tree_fingerprints.size(), snapshot->num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(snapshot->num_trees()); ++t) {
    EXPECT_EQ(gen0->tree_fingerprints[static_cast<size_t>(t)],
              snapshot->tree_fingerprint(t));
  }

  live::DeltaBuilder builder;
  auto extra = schema::ParseTreeSpec("invoice(total,customer)");
  ASSERT_TRUE(extra.ok());
  builder.AddTree(std::move(*extra), "feed:prov");
  ASSERT_TRUE(service->ApplyDelta(*builder.Build()).ok());

  auto gen1 = engine.Integrate(IntegrationOptions());
  ASSERT_TRUE(gen1.ok());
  EXPECT_EQ(gen1->generation, 1u);
  EXPECT_NE(gen1->fingerprint, gen0->fingerprint);
  EXPECT_EQ(gen1->tree_fingerprints.size(),
            gen0->tree_fingerprints.size() + 1);
}

TEST(IntegrationEngineTest, RejectsInvalidOptions) {
  PlantedCorpus corpus = BuildPlantedCorpus(8, /*num_trees=*/4,
                                            /*num_groups=*/3);
  auto service = ServiceOver(std::move(corpus.forest));
  IntegrationEngine engine(service.get());

  IntegrationOptions bad_threshold;
  bad_threshold.threshold = 1.5;
  EXPECT_EQ(engine.Integrate(bad_threshold).status().code(),
            StatusCode::kInvalidArgument);

  IntegrationOptions inverted;
  inverted.probable_confidence = 0.95;
  inverted.strong_confidence = 0.9;
  EXPECT_EQ(engine.Integrate(inverted).status().code(),
            StatusCode::kInvalidArgument);
}

// Observer contract: pair events come in (source, target) order with
// a < b, mediated elements stream in rank order, and OnFinish sees the
// final result once.
TEST(IntegrationEngineTest, ObserverStreamsDeterministicEventOrder) {
  struct Recorder : IntegrationObserver {
    std::vector<PairProgress> pairs;
    std::vector<std::pair<size_t, std::string>> elements;
    size_t finishes = 0;
    size_t finish_clusters = 0;
    void OnPair(const PairProgress& progress) override {
      pairs.push_back(progress);
    }
    void OnMediatedElement(size_t rank, const MediatedElement& element,
                           const CorrespondenceCluster& cluster) override {
      EXPECT_EQ(element.name, cluster.name);
      elements.emplace_back(rank, element.name);
    }
    void OnFinish(const IntegrationResult& result) override {
      ++finishes;
      finish_clusters = result.clusters.size();
    }
  };

  PlantedCorpus corpus = BuildPlantedCorpus(9, /*num_trees=*/6,
                                            /*num_groups=*/5);
  auto service = ServiceOver(std::move(corpus.forest), /*num_threads=*/4);
  IntegrationEngine engine(service.get());
  Recorder recorder;
  auto result = engine.Integrate(IntegrationOptions(), &recorder);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->stats.pairs_linked, recorder.pairs.size());
  for (size_t i = 0; i < recorder.pairs.size(); ++i) {
    const PairProgress& p = recorder.pairs[i];
    EXPECT_LT(p.a, p.b);
    EXPECT_GT(p.links, 0u);
    EXPECT_GE(p.best_score, 0.75);
    if (i > 0) {
      const PairProgress& prev = recorder.pairs[i - 1];
      // Sources ascending; targets ascending within one source.
      EXPECT_TRUE(prev.a < p.a || (prev.a == p.a && prev.b < p.b));
    }
  }
  ASSERT_EQ(recorder.elements.size(), result->mediated.elements.size());
  for (size_t i = 0; i < recorder.elements.size(); ++i) {
    EXPECT_EQ(recorder.elements[i].first, i + 1);  // 1-based ranks
    EXPECT_EQ(recorder.elements[i].second,
              result->mediated.elements[i].name);
  }
  EXPECT_EQ(recorder.finishes, 1u);
  EXPECT_EQ(recorder.finish_clusters, result->clusters.size());
}

}  // namespace
}  // namespace xsm::integrate
