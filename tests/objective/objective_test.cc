#include "objective/objective.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/random.h"

namespace xsm::objective {
namespace {

TEST(ObjectiveParamsTest, Validation) {
  EXPECT_TRUE(ObjectiveParams{.alpha = 0.0}.Validate().ok());
  EXPECT_TRUE(ObjectiveParams{.alpha = 1.0}.Validate().ok());
  EXPECT_FALSE(ObjectiveParams{.alpha = -0.1}.Validate().ok());
  EXPECT_FALSE(ObjectiveParams{.alpha = 1.1}.Validate().ok());
}

TEST(BellflowerObjectiveTest, DeltaSimAveragesPerNode) {
  // |Ns|=3, |Es|=2 — the experiment's personal schema shape.
  BellflowerObjective obj(/*alpha=*/0.5, /*k=*/4, /*nodes=*/3, /*edges=*/2);
  EXPECT_DOUBLE_EQ(obj.DeltaSim(3.0), 1.0);
  EXPECT_DOUBLE_EQ(obj.DeltaSim(1.5), 0.5);
  EXPECT_DOUBLE_EQ(obj.DeltaSim(0.0), 0.0);
}

TEST(BellflowerObjectiveTest, DeltaPathPerfectWhenEdgesMapToSingleEdges) {
  BellflowerObjective obj(0.5, 4, 3, 2);
  // |Et| == |Es| == 2 → no excess → 1.0.
  EXPECT_DOUBLE_EQ(obj.DeltaPath(2), 1.0);
  // One edge stretched to a 3-path: excess 2, K·|Es| = 8 → 0.75.
  EXPECT_DOUBLE_EQ(obj.DeltaPath(4), 0.75);
  // Max stretch under K: excess 8 → 0.
  EXPECT_DOUBLE_EQ(obj.DeltaPath(10), 0.0);
  // Beyond K the value clamps rather than going negative.
  EXPECT_DOUBLE_EQ(obj.DeltaPath(100), 0.0);
}

TEST(BellflowerObjectiveTest, DeltaCombinesWithAlpha) {
  BellflowerObjective half(0.5, 4, 3, 2);
  EXPECT_DOUBLE_EQ(half.Delta(3.0, 2), 1.0);
  EXPECT_DOUBLE_EQ(half.Delta(0.0, 2), 0.5);   // only path hint perfect
  EXPECT_DOUBLE_EQ(half.Delta(3.0, 10), 0.5);  // only name hint perfect

  BellflowerObjective name_heavy(0.75, 4, 3, 2);
  EXPECT_DOUBLE_EQ(name_heavy.Delta(3.0, 10), 0.75);
  BellflowerObjective path_heavy(0.25, 4, 3, 2);
  EXPECT_DOUBLE_EQ(path_heavy.Delta(3.0, 10), 0.25);
}

TEST(BellflowerObjectiveTest, SingleNodeSchemaHasPerfectPath) {
  BellflowerObjective obj(0.5, 4, 1, 0);
  EXPECT_DOUBLE_EQ(obj.DeltaPath(0), 1.0);
  EXPECT_DOUBLE_EQ(obj.Delta(1.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(obj.Delta(0.5, 0), 0.75);
}

TEST(BellflowerObjectiveTest, Accessors) {
  BellflowerObjective obj(0.3, 5, 4, 3);
  EXPECT_DOUBLE_EQ(obj.alpha(), 0.3);
  EXPECT_DOUBLE_EQ(obj.k(), 5);
  EXPECT_EQ(obj.num_nodes(), 4);
  EXPECT_EQ(obj.num_edges(), 3);
}

TEST(BellflowerObjectiveTest, UpperBoundComplete) {
  BellflowerObjective obj(0.5, 4, 3, 2);
  // With nothing remaining, the bound equals the actual Δ.
  EXPECT_DOUBLE_EQ(obj.UpperBound(2.4, 0.0, 5, 2), obj.Delta(2.4, 5));
}

// Property: the bound is admissible — for any split of a complete
// assignment into (assigned prefix, remaining), the bound computed from the
// prefix with optimistic remaining sims ≥ the final Δ.
class UpperBoundAdmissibleTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(UpperBoundAdmissibleTest, BoundDominatesCompletion) {
  auto [alpha, seed] = GetParam();
  xsm::Rng rng(seed);
  const int nodes = 5;
  const int edges = 4;
  const double k = 6;
  BellflowerObjective obj(alpha, k, nodes, edges);

  for (int trial = 0; trial < 300; ++trial) {
    // Random "true" assignment: per-node sims + per-edge path lengths.
    double sims[5];
    int64_t lens[4];
    for (double& s : sims) s = rng.NextDouble();
    for (int64_t& l : lens) l = 1 + static_cast<int64_t>(rng.Uniform(5));
    double total_sim = 0;
    for (double s : sims) total_sim += s;
    int64_t total_len = 0;
    for (int64_t l : lens) total_len += l;
    double final_delta = obj.Delta(total_sim, total_len);

    // Any prefix: first p nodes assigned (p-1 edges closed, root closes 0).
    for (int p = 1; p <= nodes; ++p) {
      double sim_sum = 0;
      for (int i = 0; i < p; ++i) sim_sum += sims[i];
      int64_t path = 0;
      for (int i = 0; i < p - 1; ++i) path += lens[i];
      // Optimistic remaining: each unassigned node at its max possible
      // similarity. Use 1.0 (≥ the true sim).
      double optimistic = static_cast<double>(nodes - p);
      double bound = obj.UpperBound(sim_sum, optimistic, path, p - 1);
      EXPECT_GE(bound + 1e-12, final_delta)
          << "alpha=" << alpha << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, UpperBoundAdmissibleTest,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(3u, 17u)));

TEST(BellflowerObjectiveTest, DeltaMonotoneInSimAndAntitoneInPath) {
  BellflowerObjective obj(0.5, 4, 3, 2);
  EXPECT_GT(obj.Delta(2.5, 4), obj.Delta(2.0, 4));
  EXPECT_GT(obj.Delta(2.0, 3), obj.Delta(2.0, 6));
}

}  // namespace
}  // namespace xsm::objective
