#include "service/cluster_index_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace xsm::service {
namespace {

// A distinguishable empty state: tag it through the matching-time field.
Result<core::ClusterState> MakeState(double tag) {
  core::ClusterState state;
  state.time_matching_seconds = tag;
  return state;
}

TEST(ClusterIndexCacheTest, MissComputesThenHitReturnsSameObject) {
  ClusterIndexCache cache(4);
  int calls = 0;
  auto factory = [&calls]() {
    ++calls;
    return MakeState(1.0);
  };

  auto first = cache.GetOrCompute("k", factory);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrCompute("k", factory);
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first->get(), second->get());  // literally the same state
  ClusterIndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ClusterIndexCacheTest, ConcurrentSameKeyRunsFactoryOnce) {
  ClusterIndexCache cache(4);
  std::atomic<int> calls{0};
  auto factory = [&calls]() {
    calls.fetch_add(1);
    // Give waiters time to pile onto the in-flight slot.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return MakeState(2.0);
  };

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&]() {
      auto result = cache.GetOrCompute("shared-key", factory);
      if (!result.ok() || (*result)->time_matching_seconds != 2.0) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(failures.load(), 0);
  ClusterIndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.shared, static_cast<uint64_t>(kThreads - 1));
}

TEST(ClusterIndexCacheTest, FailedFactoryIsNotCachedAndRetries) {
  ClusterIndexCache cache(4);
  int calls = 0;
  auto failing = [&calls]() -> Result<core::ClusterState> {
    ++calls;
    return Status::Internal("boom");
  };

  auto first = cache.GetOrCompute("k", failing);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kInternal);

  // The failure left no entry: the next call runs the factory again.
  auto second = cache.GetOrCompute("k", [&calls]() {
    ++calls;
    return MakeState(3.0);
  });
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ClusterIndexCacheTest, LruEvictsLeastRecentlyUsed) {
  ClusterIndexCache cache(2);
  int calls = 0;
  auto factory = [&calls]() {
    ++calls;
    return MakeState(4.0);
  };

  ASSERT_TRUE(cache.GetOrCompute("a", factory).ok());  // miss: {a}
  ASSERT_TRUE(cache.GetOrCompute("b", factory).ok());  // miss: {b, a}
  ASSERT_TRUE(cache.GetOrCompute("a", factory).ok());  // hit:  {a, b}
  ASSERT_TRUE(cache.GetOrCompute("c", factory).ok());  // miss: {c, a}, b out
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(cache.stats().evictions, 1u);

  ASSERT_TRUE(cache.GetOrCompute("a", factory).ok());  // still resident
  EXPECT_EQ(calls, 3);
  ASSERT_TRUE(cache.GetOrCompute("b", factory).ok());  // evicted: recompute
  EXPECT_EQ(calls, 4);
}

TEST(ClusterIndexCacheTest, ZeroCapacityDisablesCaching) {
  ClusterIndexCache cache(0);
  int calls = 0;
  auto factory = [&calls]() {
    ++calls;
    return MakeState(5.0);
  };
  ASSERT_TRUE(cache.GetOrCompute("k", factory).ok());
  ASSERT_TRUE(cache.GetOrCompute("k", factory).ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ClusterIndexCacheTest, ClearDropsEntriesButKeepsHandedOutStates) {
  ClusterIndexCache cache(4);
  auto result = cache.GetOrCompute("k", []() { return MakeState(6.0); });
  ASSERT_TRUE(result.ok());
  ClusterStatePtr held = *result;

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(held->time_matching_seconds, 6.0);  // still alive

  int calls = 0;
  ASSERT_TRUE(cache.GetOrCompute("k", [&calls]() {
                     ++calls;
                     return MakeState(7.0);
                   }).ok());
  EXPECT_EQ(calls, 1);  // rebuilt after Clear
}

}  // namespace
}  // namespace xsm::service
