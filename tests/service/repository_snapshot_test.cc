// Pins RepositorySnapshot::fingerprint as a trustworthy cache-namespace
// key: identical forest content must always fingerprint identically
// (whatever objects carry it, however the snapshot was built), and any
// single node/property/structure change must move the fingerprint.
#include "service/repository_snapshot.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::service {
namespace {

schema::SchemaTree Tree(const char* spec) {
  auto tree = schema::ParseTreeSpec(spec);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

schema::SchemaForest BaseForest() {
  schema::SchemaForest forest;
  forest.AddTree(Tree("book(title,author(first,last))"), "book.xsd");
  forest.AddTree(Tree("person(name,phone,@id)"), "person.xsd");
  return forest;
}

uint64_t FingerprintOf(schema::SchemaForest forest) {
  auto snapshot = RepositorySnapshot::Create(std::move(forest));
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return (*snapshot)->fingerprint();
}

TEST(RepositorySnapshotFingerprintTest, IdenticalForestsFingerprintEqually) {
  // Two forests built independently (distinct payload objects) from the
  // same specs: equal content must be all that matters.
  EXPECT_EQ(FingerprintOf(BaseForest()), FingerprintOf(BaseForest()));

  // Also across the synthetic generator, which exercises datatypes, kinds
  // and the optional/repeatable bits.
  repo::SyntheticRepoOptions options;
  options.target_elements = 500;
  options.seed = 5;
  auto a = repo::GenerateSyntheticRepository(options);
  auto b = repo::GenerateSyntheticRepository(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(FingerprintOf(std::move(*a)), FingerprintOf(std::move(*b)));
}

TEST(RepositorySnapshotFingerprintTest, SourceNamesDoNotAffectFingerprint) {
  schema::SchemaForest renamed;
  renamed.AddTree(Tree("book(title,author(first,last))"), "elsewhere.xsd");
  renamed.AddTree(Tree("person(name,phone,@id)"), "other.xsd");
  // Provenance strings are metadata, not content.
  EXPECT_EQ(FingerprintOf(BaseForest()), FingerprintOf(std::move(renamed)));
}

TEST(RepositorySnapshotFingerprintTest, AnySingleChangeMovesTheFingerprint) {
  const uint64_t base = FingerprintOf(BaseForest());

  // One mutation per case, each targeting a different property dimension.
  // Mutations are applied by rebuilding the forest from mutated trees —
  // SchemaForest shares frozen payloads, so we mutate before adding.
  struct Case {
    const char* label;
    std::function<void(schema::SchemaTree*)> mutate;  // applied to tree 0
  };
  const Case cases[] = {
      {"name", [](schema::SchemaTree* t) {
         t->mutable_props(1)->name = "titleX";
       }},
      {"datatype", [](schema::SchemaTree* t) {
         t->mutable_props(1)->datatype = "xs:token";
       }},
      {"kind", [](schema::SchemaTree* t) {
         t->mutable_props(1)->kind = schema::NodeKind::kAttribute;
       }},
      {"optional", [](schema::SchemaTree* t) {
         t->mutable_props(1)->optional = true;
       }},
      {"repeatable", [](schema::SchemaTree* t) {
         t->mutable_props(1)->repeatable = true;
       }},
  };
  for (const Case& c : cases) {
    schema::SchemaTree tree0 = Tree("book(title,author(first,last))");
    c.mutate(&tree0);
    schema::SchemaForest forest;
    forest.AddTree(std::move(tree0), "book.xsd");
    forest.AddTree(Tree("person(name,phone,@id)"), "person.xsd");
    EXPECT_NE(FingerprintOf(std::move(forest)), base) << c.label;
  }

  // Structure: same names, different parent links.
  {
    schema::SchemaForest forest;
    forest.AddTree(Tree("book(title(author(first,last)))"), "book.xsd");
    forest.AddTree(Tree("person(name,phone,@id)"), "person.xsd");
    EXPECT_NE(FingerprintOf(std::move(forest)), base) << "structure";
  }
  // Tree set: adding, dropping, and reordering trees all move it.
  {
    schema::SchemaForest forest = BaseForest();
    forest.AddTree(Tree("extra(leaf)"), "extra.xsd");
    EXPECT_NE(FingerprintOf(std::move(forest)), base) << "added tree";
  }
  {
    schema::SchemaForest forest;
    forest.AddTree(Tree("book(title,author(first,last))"), "book.xsd");
    EXPECT_NE(FingerprintOf(std::move(forest)), base) << "dropped tree";
  }
  {
    schema::SchemaForest forest;
    forest.AddTree(Tree("person(name,phone,@id)"), "person.xsd");
    forest.AddTree(Tree("book(title,author(first,last))"), "book.xsd");
    EXPECT_NE(FingerprintOf(std::move(forest)), base) << "reordered trees";
  }
}

TEST(RepositorySnapshotFingerprintTest,
     SuccessorFingerprintEqualsScratchFingerprint) {
  auto base = RepositorySnapshot::Create(BaseForest());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ((*base)->generation(), 0u);

  // Successor replacing tree 1, sharing tree 0.
  schema::SchemaForest next;
  next.AddTree((*base)->forest().tree_ptr(0), (*base)->forest().source(0));
  next.AddTree(Tree("person(name,phone,email,@id)"), "person2.xsd");
  auto successor = RepositorySnapshot::CreateSuccessor(
      *base, std::move(next), {0, -1});
  ASSERT_TRUE(successor.ok()) << successor.status().ToString();
  EXPECT_EQ((*successor)->generation(), 1u);
  EXPECT_EQ((*successor)->build_stats().trees_reused, 1u);
  EXPECT_EQ((*successor)->build_stats().trees_rebuilt, 1u);

  schema::SchemaForest scratch;
  scratch.AddTree(Tree("book(title,author(first,last))"));
  scratch.AddTree(Tree("person(name,phone,email,@id)"));
  EXPECT_EQ((*successor)->fingerprint(), FingerprintOf(std::move(scratch)));
  // Per-tree fingerprints carry over for shared trees.
  EXPECT_EQ((*successor)->tree_fingerprint(0), (*base)->tree_fingerprint(0));
  EXPECT_NE((*successor)->tree_fingerprint(1), (*base)->tree_fingerprint(1));
}

}  // namespace
}  // namespace xsm::service
