// Streaming / anytime MatchService execution: MatchStreaming, cancellable
// SubmitMatch handles, the default per-query deadline, and the acceptance
// stress test that cancellation can never poison the ClusterIndexCache.
#include "service/match_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/bellflower.h"
#include "core/execution_control.h"
#include "core/match_observer.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"

namespace xsm::service {
namespace {

class CollectingObserver : public core::MatchObserver {
 public:
  void OnMapping(const generate::SchemaMapping& mapping,
                 size_t running_rank) override {
    (void)running_rank;
    mappings.push_back(mapping);
    if (cancel_after_first_mapping) cancel_after_first_mapping->Cancel();
  }

  std::vector<generate::SchemaMapping> mappings;
  const core::CancelToken* cancel_after_first_mapping = nullptr;
};

class MatchStreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo::SyntheticRepoOptions options;
    options.target_elements = 2000;
    options.seed = 7;
    auto forest = repo::GenerateSyntheticRepository(options);
    ASSERT_TRUE(forest.ok()) << forest.status().ToString();
    forest_ = new schema::SchemaForest(std::move(*forest));
  }

  static void TearDownTestSuite() {
    delete forest_;
    forest_ = nullptr;
  }

  static MatchQuery MakeQuery(const std::string& id,
                              const char* spec = "name(address,email)") {
    MatchQuery query;
    query.id = id;
    auto personal = schema::ParseTreeSpec(spec);
    EXPECT_TRUE(personal.ok()) << personal.status().ToString();
    query.personal = std::move(*personal);
    query.options.delta = 0.6;
    return query;
  }

  static std::unique_ptr<MatchService> MakeService(
      MatchServiceOptions options = MatchServiceOptions()) {
    auto snapshot = RepositorySnapshot::Create(*forest_);
    EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    return std::make_unique<MatchService>(std::move(*snapshot), options);
  }

  static void ExpectSameResults(const core::MatchResult& got,
                                const core::MatchResult& want) {
    ASSERT_EQ(got.mappings.size(), want.mappings.size());
    for (size_t i = 0; i < got.mappings.size(); ++i) {
      EXPECT_EQ(got.mappings[i].tree, want.mappings[i].tree) << i;
      EXPECT_EQ(got.mappings[i].images, want.mappings[i].images) << i;
      EXPECT_EQ(got.mappings[i].delta, want.mappings[i].delta) << i;
      EXPECT_EQ(got.mappings[i].delta_sim, want.mappings[i].delta_sim) << i;
      EXPECT_EQ(got.mappings[i].delta_path, want.mappings[i].delta_path)
          << i;
    }
  }

  static schema::SchemaForest* forest_;
};

schema::SchemaForest* MatchStreamingTest::forest_ = nullptr;

TEST_F(MatchStreamingTest, StreamingEqualsBlockingMatch) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("stream");

  auto blocking = service->Match(query);
  ASSERT_TRUE(blocking.ok()) << blocking.status().ToString();
  ASSERT_FALSE(blocking->mappings.empty());

  CollectingObserver observer;
  auto streaming = service->MatchStreaming(query, &observer);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  EXPECT_EQ(streaming->execution, core::ExecutionStatus::kCompleted);
  ExpectSameResults(*streaming, *blocking);
  EXPECT_EQ(observer.mappings.size(), blocking->mappings.size());
}

TEST_F(MatchStreamingTest, HandleCancelBeforeExecutionSkipsAllWork) {
  MatchServiceOptions options;
  options.num_threads = 1;
  auto service = MakeService(options);

  // Hold the single worker hostage so the submitted query stays queued.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool blocker_running = false;
  service->pool().Schedule([&]() {
    std::unique_lock<std::mutex> lock(mu);
    blocker_running = true;
    cv.notify_all();
    cv.wait(lock, [&]() { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return blocker_running; });
  }

  MatchHandle handle = service->SubmitMatch(MakeQuery("queued"));
  handle.Cancel();  // lands while the query is still in the queue
  {
    std::unique_lock<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  auto result = handle.Get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, core::ExecutionStatus::kCancelled);
  EXPECT_TRUE(result->mappings.empty());
  // The pre-execution check fired: no cluster-state build, nothing cached.
  EXPECT_EQ(service->stats().cache.misses, 0u);
  EXPECT_EQ(service->stats().cache.entries, 0u);
  EXPECT_EQ(service->stats().cancelled, 1u);
}

TEST_F(MatchStreamingTest, CancelMidGenerationReturnsPartialResults) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("midrun");

  auto blocking = service->Match(query);
  ASSERT_TRUE(blocking.ok());
  ASSERT_GT(blocking->mappings.size(), 1u);

  core::ExecutionControl control;
  CollectingObserver observer;
  observer.cancel_after_first_mapping = &control.cancel;
  auto result = service->MatchStreaming(query, &observer, control);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, core::ExecutionStatus::kCancelled);
  EXPECT_GE(result->mappings.size(), 1u);
  EXPECT_LT(result->mappings.size(), blocking->mappings.size());

  // The cancelled query's cluster state was cached fully built: the next
  // (uncancelled) identical query hits the cache and reproduces the
  // blocking result byte-for-byte.
  uint64_t hits_before = service->stats().cache.hits;
  auto again = service->Match(query);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->execution, core::ExecutionStatus::kCompleted);
  ExpectSameResults(*again, *blocking);
  EXPECT_GT(service->stats().cache.hits, hits_before);
}

TEST_F(MatchStreamingTest, DefaultDeadlineExpiresQueries) {
  MatchServiceOptions options;
  options.default_deadline_seconds = 1e-9;  // expires immediately
  auto service = MakeService(options);

  auto result = service->Match(MakeQuery("expired"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, core::ExecutionStatus::kDeadlineExceeded);
  EXPECT_TRUE(result->mappings.empty());
  EXPECT_EQ(service->stats().deadline_exceeded, 1u);

  // A caller-supplied deadline wins over the service default.
  auto generous = service->Match(MakeQuery("generous"),
                                 core::ExecutionControl::WithDeadline(3600));
  ASSERT_TRUE(generous.ok());
  EXPECT_EQ(generous->execution, core::ExecutionStatus::kCompleted);
  EXPECT_FALSE(generous->mappings.empty());
}

TEST_F(MatchStreamingTest, EarlyStopCountsInServiceStats) {
  auto service = MakeService();
  core::ExecutionControl control;
  control.stop_after_n_mappings = 1;
  auto result = service->Match(MakeQuery("first1"), control);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->execution, core::ExecutionStatus::kEarlyStopped);
  EXPECT_EQ(result->mappings.size(), 1u);
  EXPECT_EQ(service->stats().early_stopped, 1u);
}

// Acceptance criterion: a concurrent cancellation stress run leaves no
// half-built ClusterIndexCache entries — every subsequent hit reproduces
// the uncancelled result.
TEST_F(MatchStreamingTest, CancellationStressNeverPoisonsCache) {
  MatchServiceOptions options;
  options.num_threads = 4;
  auto service = MakeService(options);
  MatchQuery query = MakeQuery("stress");

  auto reference = service->Match(query);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->mappings.empty());

  constexpr int kRounds = 8;
  constexpr int kConcurrent = 8;
  for (int round = 0; round < kRounds; ++round) {
    service->ClearCache();  // force a fresh build raced by cancellations
    std::vector<MatchHandle> handles;
    handles.reserve(kConcurrent);
    for (int i = 0; i < kConcurrent; ++i) {
      handles.push_back(service->SubmitMatch(query));
    }
    // Cancel every other query while the shared build / generation runs.
    for (int i = 0; i < kConcurrent; i += 2) {
      handles[static_cast<size_t>(i)].Cancel();
    }
    for (int i = 0; i < kConcurrent; ++i) {
      auto result = handles[static_cast<size_t>(i)].Get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (i % 2 == 1) {
        // Never cancelled: must be the full, exact result.
        ASSERT_EQ(result->execution, core::ExecutionStatus::kCompleted);
        ExpectSameResults(*result, *reference);
      } else {
        // Cancelled: completed (cancel lost the race) with the full result,
        // or cut short with a subset — never an error, never garbage.
        if (result->execution == core::ExecutionStatus::kCompleted) {
          ExpectSameResults(*result, *reference);
        } else {
          EXPECT_EQ(result->execution, core::ExecutionStatus::kCancelled);
          EXPECT_LE(result->mappings.size(), reference->mappings.size());
        }
      }
    }
    // Whatever the interleaving, the cache entry (if present) is fully
    // built: a fresh query must hit or rebuild to the exact result.
    auto after = service->Match(query);
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after->execution, core::ExecutionStatus::kCompleted);
    ExpectSameResults(*after, *reference);
  }
}

}  // namespace
}  // namespace xsm::service
