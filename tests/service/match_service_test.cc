#include "service/match_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/bellflower.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"

namespace xsm::service {
namespace {

// Personal schemas for the batch tests: distinct shapes and vocabularies so
// each query produces its own cluster state and result set.
const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "order(item(price),customer)",
    "customer(name,address(city,zip))",
    "article(title,publisher)",
    "employee(name,department,email)",
    "product(name,price,@id)",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

class MatchServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo::SyntheticRepoOptions options;
    options.target_elements = 2000;
    options.seed = 7;
    auto forest = repo::GenerateSyntheticRepository(options);
    ASSERT_TRUE(forest.ok()) << forest.status().ToString();
    forest_ = new schema::SchemaForest(std::move(*forest));
    direct_ = new core::Bellflower(forest_);
  }

  static void TearDownTestSuite() {
    delete direct_;
    direct_ = nullptr;
    delete forest_;
    forest_ = nullptr;
  }

  static MatchQuery MakeQuery(const std::string& id, const char* spec) {
    MatchQuery query;
    query.id = id;
    auto personal = schema::ParseTreeSpec(spec);
    EXPECT_TRUE(personal.ok()) << personal.status().ToString();
    query.personal = std::move(*personal);
    query.options.delta = 0.6;
    query.options.top_n = 10;
    return query;
  }

  static std::unique_ptr<MatchService> MakeService(
      MatchServiceOptions options = MatchServiceOptions()) {
    auto snapshot = RepositorySnapshot::Create(*forest_);
    EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    return std::make_unique<MatchService>(std::move(*snapshot), options);
  }

  // Byte-identical comparison: same assignments AND the exact same doubles.
  static void ExpectSameResults(const core::MatchResult& got,
                                const core::MatchResult& want) {
    ASSERT_EQ(got.mappings.size(), want.mappings.size());
    for (size_t i = 0; i < got.mappings.size(); ++i) {
      const generate::SchemaMapping& a = got.mappings[i];
      const generate::SchemaMapping& b = want.mappings[i];
      EXPECT_EQ(a.tree, b.tree) << "mapping " << i;
      EXPECT_EQ(a.images, b.images) << "mapping " << i;
      EXPECT_EQ(a.delta, b.delta) << "mapping " << i;
      EXPECT_EQ(a.delta_sim, b.delta_sim) << "mapping " << i;
      EXPECT_EQ(a.delta_path, b.delta_path) << "mapping " << i;
      EXPECT_EQ(a.total_path_length, b.total_path_length) << "mapping " << i;
    }
    EXPECT_EQ(got.stats.num_mappings, want.stats.num_mappings);
    EXPECT_EQ(got.stats.num_clusters, want.stats.num_clusters);
    EXPECT_EQ(got.stats.num_useful_clusters, want.stats.num_useful_clusters);
  }

  static schema::SchemaForest* forest_;
  static core::Bellflower* direct_;
};

schema::SchemaForest* MatchServiceTest::forest_ = nullptr;
core::Bellflower* MatchServiceTest::direct_ = nullptr;

TEST_F(MatchServiceTest, MatchEqualsDirectBellflower) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("q0", kSpecs[0]);

  auto via_service = service->Match(query);
  ASSERT_TRUE(via_service.ok()) << via_service.status().ToString();
  auto via_direct = direct_->Match(query.personal, query.options);
  ASSERT_TRUE(via_direct.ok()) << via_direct.status().ToString();

  EXPECT_FALSE(via_service->mappings.empty());
  ExpectSameResults(*via_service, *via_direct);
}

// The PR's acceptance criterion: a batch of >= 8 queries on >= 4 threads
// produces byte-identical mappings, in input order, to sequential direct
// Bellflower::Match calls.
TEST_F(MatchServiceTest, BatchOnFourThreadsIsByteIdenticalAndInOrder) {
  MatchServiceOptions options;
  options.num_threads = 4;
  auto service = MakeService(options);

  std::vector<MatchQuery> queries;
  for (size_t i = 0; i < kNumSpecs; ++i) {
    queries.push_back(MakeQuery("batch-" + std::to_string(i), kSpecs[i]));
  }
  ASSERT_GE(queries.size(), 8u);

  std::vector<Result<core::MatchResult>> batch =
      service->MatchBatch(queries).results;
  ASSERT_EQ(batch.size(), queries.size());

  size_t nonempty = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
    auto direct = direct_->Match(queries[i].personal, queries[i].options);
    ASSERT_TRUE(direct.ok());
    ExpectSameResults(*batch[i], *direct);  // order: result i is query i
    if (!batch[i]->mappings.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 0u);
  EXPECT_EQ(service->stats().queries, queries.size());
  EXPECT_EQ(service->stats().batches, 1u);
}

TEST_F(MatchServiceTest, RepeatedQueryHitsClusterCache) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("repeat", kSpecs[1]);

  auto first = service->Match(query);
  ASSERT_TRUE(first.ok());
  auto second = service->Match(query);
  ASSERT_TRUE(second.ok());
  ExpectSameResults(*second, *first);

  ClusterIndexCache::Stats cache = service->stats().cache;
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(cache.entries, 1u);
}

TEST_F(MatchServiceTest, GenerationOnlyOptionsShareClusterState) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("gen-a", kSpecs[2]);
  ASSERT_TRUE(service->Match(query).ok());

  // δ and top-N only affect the generation phase: same cache entry.
  MatchQuery variant = query;
  variant.id = "gen-b";
  variant.options.delta = 0.8;
  variant.options.top_n = 3;
  EXPECT_EQ(service->ClusterStateKey(variant),
            service->ClusterStateKey(query));
  ASSERT_TRUE(service->Match(variant).ok());
  EXPECT_EQ(service->stats().cache.misses, 1u);
  EXPECT_EQ(service->stats().cache.hits, 1u);

  // A clustering knob (join distance) changes the key: new entry.
  MatchQuery reclustered = query;
  reclustered.id = "gen-c";
  reclustered.options.kmeans.join_distance = 4;
  EXPECT_NE(service->ClusterStateKey(reclustered),
            service->ClusterStateKey(query));
  ASSERT_TRUE(service->Match(reclustered).ok());
  EXPECT_EQ(service->stats().cache.misses, 2u);
}

TEST_F(MatchServiceTest, TreeClusterBaselineIgnoresKMeansKnobs) {
  auto service = MakeService();
  MatchQuery a = MakeQuery("tree-a", kSpecs[3]);
  a.options.clustering = core::ClusteringMode::kTreeClusters;
  MatchQuery b = a;
  b.id = "tree-b";
  b.options.kmeans.join_distance = 2;
  b.options.kmeans.seed = 999;
  EXPECT_EQ(service->ClusterStateKey(a), service->ClusterStateKey(b));
}

TEST_F(MatchServiceTest, SubmitMatchResolvesToSameResult) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("async", kSpecs[4]);

  MatchHandle handle = service->SubmitMatch(query);
  auto async_result = handle.Get();
  ASSERT_TRUE(async_result.ok()) << async_result.status().ToString();
  EXPECT_EQ(async_result->execution, core::ExecutionStatus::kCompleted);
  auto direct = direct_->Match(query.personal, query.options);
  ASSERT_TRUE(direct.ok());
  ExpectSameResults(*async_result, *direct);
}

TEST_F(MatchServiceTest, IdenticalQueriesInBatchComputeStateOnce) {
  MatchServiceOptions options;
  options.num_threads = 8;
  auto service = MakeService(options);

  std::vector<MatchQuery> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(MakeQuery("same-" + std::to_string(i), kSpecs[5]));
  }
  auto results = service->MatchBatch(std::move(queries)).results;

  ASSERT_TRUE(results[0].ok());
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    ExpectSameResults(*results[i], *results[0]);
  }
  ClusterIndexCache::Stats cache = service->stats().cache;
  EXPECT_EQ(cache.misses, 1u);  // one build; everyone else hit or shared it
  EXPECT_EQ(cache.hits + cache.shared, 15u);
}

TEST_F(MatchServiceTest, DerivedSeedsAreDeterministicPerQueryId) {
  MatchServiceOptions options;
  options.num_threads = 4;
  auto service = MakeService(options);

  MatchQuery query = MakeQuery("rand-1", kSpecs[6]);
  query.options.kmeans.init = cluster::CentroidInit::kRandom;
  query.options.kmeans.num_centroids = 40;

  // Re-running the same id reproduces the result exactly (cache cleared in
  // between, so clustering really reruns with the derived seed).
  auto first = service->Match(query);
  ASSERT_TRUE(first.ok());
  service->ClearCache();
  auto again = service->Match(query);
  ASSERT_TRUE(again.ok());
  ExpectSameResults(*again, *first);

  // A different query id derives a different seed.
  MatchQuery other = query;
  other.id = "rand-2";
  EXPECT_NE(service->EffectiveOptions(other).kmeans.seed,
            service->EffectiveOptions(query).kmeans.seed);
  EXPECT_NE(service->ClusterStateKey(other), service->ClusterStateKey(query));

  // With derivation off, the caller's seed is used untouched.
  MatchServiceOptions raw;
  raw.derive_seeds = false;
  auto raw_service = MakeService(raw);
  EXPECT_EQ(raw_service->EffectiveOptions(query).kmeans.seed,
            query.options.kmeans.seed);
}

TEST_F(MatchServiceTest, DisabledCacheStillCorrect) {
  MatchServiceOptions options;
  options.cluster_cache_capacity = 0;
  auto service = MakeService(options);
  MatchQuery query = MakeQuery("nocache", kSpecs[7]);

  auto first = service->Match(query);
  auto second = service->Match(query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameResults(*second, *first);
  EXPECT_EQ(service->stats().cache.misses, 2u);
  EXPECT_EQ(service->stats().cache.entries, 0u);
}

TEST_F(MatchServiceTest, InvalidQueryPropagatesStatus) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("bad", kSpecs[0]);
  query.options.delta = 1.5;
  auto result = service->Match(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Rejected before the expensive build: nothing computed, nothing cached.
  EXPECT_EQ(service->stats().cache.misses, 0u);
  EXPECT_EQ(service->stats().cache.entries, 0u);
}

TEST_F(MatchServiceTest, DelimiterNamesDoNotCollideInCacheKey) {
  auto service = MakeService();
  // ':' is legal in XML names (namespaces). Unprefixed concatenation would
  // serialize both of these children as "...a:0:b:0::00;" — one cache key
  // for two different schemas; length-prefixing keeps them distinct.
  MatchQuery a = MakeQuery("colon-a", "root(child)");
  a.personal.mutable_props(1)->name = "a:0:b";
  MatchQuery b = MakeQuery("colon-b", "root(child)");
  b.personal.mutable_props(1)->name = "a";
  b.personal.mutable_props(1)->datatype = "b:0:";
  EXPECT_NE(service->ClusterStateKey(a), service->ClusterStateKey(b));
}

TEST_F(MatchServiceTest, InjectsSnapshotDictionaryAndMatchingPool) {
  MatchServiceOptions options;
  options.matching_threads = 2;
  auto service = MakeService(options);

  // EffectiveOptions wires the snapshot's name dictionary and the dedicated
  // matching pool into every query that didn't bring its own.
  MatchQuery query = MakeQuery("plumbed", kSpecs[0]);
  core::MatchOptions effective = service->EffectiveOptions(query);
  EXPECT_EQ(effective.element.dictionary,
            &service->CurrentSnapshot()->name_dictionary());
  ASSERT_NE(effective.element.pool, nullptr);
  EXPECT_EQ(effective.element.pool->num_threads(), 2u);

  // The plumbing is result-neutral: byte-identical to the direct pipeline
  // and to a serial-matching service, including through MatchBatch.
  auto serial_service = MakeService();
  std::vector<MatchQuery> queries;
  for (size_t s = 0; s < kNumSpecs; ++s) {
    queries.push_back(MakeQuery("plumb-" + std::to_string(s), kSpecs[s]));
  }
  auto parallel_results = service->MatchBatch(queries).results;
  auto serial_results = serial_service->MatchBatch(queries).results;
  ASSERT_EQ(parallel_results.size(), serial_results.size());
  for (size_t i = 0; i < parallel_results.size(); ++i) {
    ASSERT_TRUE(parallel_results[i].ok());
    ASSERT_TRUE(serial_results[i].ok());
    ExpectSameResults(*parallel_results[i], *serial_results[i]);
    // Strip the injected plumbing for the direct run: the snapshot's
    // dictionary indexes the snapshot's forest copy, not `forest_`, and a
    // transient dictionary must give the same answer anyway.
    core::MatchOptions direct_options = service->EffectiveOptions(queries[i]);
    direct_options.element.dictionary = nullptr;
    direct_options.element.pool = nullptr;
    auto direct = direct_->Match(queries[i].personal, direct_options);
    ASSERT_TRUE(direct.ok());
    ExpectSameResults(*parallel_results[i], *direct);
  }
}

TEST_F(MatchServiceTest, QuerySuppliedElementControlCannotPoisonCache) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("ctl", kSpecs[0]);
  core::ExecutionControl cancelled;
  cancelled.cancel.Cancel();
  query.options.element.control = &cancelled;
  // The service strips the element-stage control: the cached build always
  // completes, the query succeeds, and the cancelled control never reaches
  // a build that other queries could share.
  EXPECT_EQ(service->EffectiveOptions(query).element.control, nullptr);
  auto result = service->Match(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, core::ExecutionStatus::kCompleted);
  EXPECT_FALSE(result->mappings.empty());
}

TEST_F(MatchServiceTest, SnapshotDictionaryMatchesForest) {
  auto service = MakeService();
  std::shared_ptr<const RepositorySnapshot> snapshot =
      service->CurrentSnapshot();
  const match::NameDictionary& dict = snapshot->name_dictionary();
  EXPECT_EQ(dict.forest(), &snapshot->forest());
  EXPECT_EQ(dict.total_nodes(), snapshot->total_nodes());
  EXPECT_GT(dict.size(), 0u);
  EXPECT_LE(dict.size(), dict.total_nodes());
}

TEST_F(MatchServiceTest, CreateValidatesForest) {
  schema::SchemaForest empty;
  auto service = MatchService::Create(std::move(empty));
  ASSERT_TRUE(service.ok());  // empty repository is valid, just matchless
  MatchQuery query = MakeQuery("empty", kSpecs[0]);
  auto result = (*service)->Match(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->mappings.empty());
}

// --- Evolving repositories (live::ApplyDelta through the service). --------

TEST_F(MatchServiceTest, ApplyDeltaPublishesNewGeneration) {
  auto service = MakeService();
  EXPECT_EQ(service->CurrentGeneration(), 0u);
  const uint64_t fp0 = service->CurrentSnapshot()->fingerprint();

  // A tree hand-tailored to dominate one query's result.
  live::DeltaBuilder builder;
  builder.AddTree(*schema::ParseTreeSpec("name(address,email)"),
                  "feed:exact");
  auto report = service->ApplyDelta(*builder.Build());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 1u);
  EXPECT_EQ(service->CurrentGeneration(), 1u);
  EXPECT_NE(service->CurrentSnapshot()->fingerprint(), fp0);

  // New queries see the ingested tree: an exact-match mapping at Δ = 1.
  // Baseline clustering, so the tiny 3-node tree cannot be dropped by
  // k-means cluster-size heuristics — this asserts visibility, not
  // clustering behaviour.
  MatchQuery query = MakeQuery("after-delta", kSpecs[0]);
  query.options.clustering = core::ClusteringMode::kTreeClusters;
  auto result = service->Match(query);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->mappings.empty());
  EXPECT_EQ(result->mappings[0].delta, 1.0);
  EXPECT_EQ(result->mappings[0].tree,
            static_cast<schema::TreeId>(
                service->CurrentSnapshot()->num_trees() - 1));

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.deltas_applied, 1u);
}

// A batch records which snapshot served it: generation + fingerprint of the
// one pin all members ran against (integration provenance reads these
// instead of racing CurrentGeneration() against concurrent deltas).
TEST_F(MatchServiceTest, MatchBatchSurfacesPinnedGeneration) {
  auto service = MakeService();

  std::vector<MatchQuery> queries;
  queries.push_back(MakeQuery("pin-0", kSpecs[0]));
  queries.push_back(MakeQuery("pin-1", kSpecs[1]));
  BatchMatchResult before = service->MatchBatch(queries);
  EXPECT_EQ(before.generation, 0u);
  EXPECT_EQ(before.fingerprint, service->CurrentSnapshot()->fingerprint());
  ASSERT_EQ(before.results.size(), queries.size());

  live::DeltaBuilder builder;
  builder.AddTree(*schema::ParseTreeSpec("invoice(total,customer)"),
                  "feed:pin");
  ASSERT_TRUE(service->ApplyDelta(*builder.Build()).ok());

  BatchMatchResult after = service->MatchBatch(queries);
  EXPECT_EQ(after.generation, 1u);
  EXPECT_EQ(after.fingerprint, service->CurrentSnapshot()->fingerprint());
  EXPECT_NE(after.fingerprint, before.fingerprint);
}

TEST_F(MatchServiceTest, DeltaInvalidatesCacheByNamespaceNotByKey) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("ns", kSpecs[1]);
  ASSERT_TRUE(service->Match(query).ok());
  ASSERT_TRUE(service->Match(query).ok());
  EXPECT_EQ(service->stats().cache.misses, 1u);
  EXPECT_EQ(service->stats().cache.hits, 1u);
  const std::string key_before = service->ClusterStateKey(query);

  live::DeltaBuilder builder;
  builder.AddTree(*schema::ParseTreeSpec("personnel(member)"), "feed");
  ASSERT_TRUE(service->ApplyDelta(*builder.Build()).ok());

  // Same cluster-state key — isolation comes from the fingerprint
  // namespace, so the changed repository recomputes instead of serving the
  // stale state.
  EXPECT_EQ(service->ClusterStateKey(query), key_before);
  ASSERT_TRUE(service->Match(query).ok());
  ASSERT_TRUE(service->Match(query).ok());
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.hits, 2u);
  EXPECT_EQ(stats.cache_namespaces, 2u);
}

TEST_F(MatchServiceTest, RevertedDeltaRevivesWarmCache) {
  auto service = MakeService();
  MatchQuery query = MakeQuery("revert", kSpecs[2]);
  ASSERT_TRUE(service->Match(query).ok());  // miss, warms gen-0 namespace

  // Add a tree, then remove it again: the final content equals gen 0, so
  // its fingerprint — and its warm cache — come back.
  live::DeltaBuilder add;
  add.AddTree(*schema::ParseTreeSpec("transient(leaf)"), "feed");
  auto r1 = service->ApplyDelta(*add.Build());
  ASSERT_TRUE(r1.ok());
  live::DeltaBuilder remove;
  remove.RemoveTree(
      static_cast<schema::TreeId>(r1->snapshot->num_trees() - 1));
  auto r2 = service->ApplyDelta(*remove.Build());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->generation, 2u);
  EXPECT_EQ(r2->fingerprint, service->CurrentSnapshot()->fingerprint());

  ASSERT_TRUE(service->Match(query).ok());
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.cache.misses, 1u);  // no recompute: namespace revived
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST_F(MatchServiceTest, CacheNamespaceRetentionIsBounded) {
  MatchServiceOptions options;
  options.cache_retained_generations = 1;
  auto service = MakeService(options);
  for (int i = 0; i < 4; ++i) {
    live::DeltaBuilder builder;
    builder.AddTree(*schema::ParseTreeSpec(
                        "gen" + std::to_string(i) + "(leaf)"),
                    "feed");
    ASSERT_TRUE(service->ApplyDelta(*builder.Build()).ok());
  }
  // Current + one retained, however many generations went by.
  EXPECT_EQ(service->stats().cache_namespaces, 2u);
  EXPECT_EQ(service->CurrentGeneration(), 4u);
}

// Satellite acceptance: queries running while deltas publish finish
// against their pinned generation, with results identical to a quiesced
// run on that generation's content. Each generation here changes the
// repository node count, so a result's stats identify which snapshot it
// ran against; any torn or retargeted query would mismatch its quiesced
// twin.
TEST_F(MatchServiceTest, ConcurrentApplyDeltaAndBatchesStayConsistent) {
  MatchServiceOptions options;
  options.num_threads = 4;
  auto service = MakeService(options);

  constexpr int kGenerations = 4;  // gen 0 .. 3
  // Quiesced ground truth per generation, keyed by total node count:
  // independent services over deep-equal content.
  std::vector<std::unique_ptr<MatchService>> quiesced;
  std::vector<size_t> gen_nodes;
  std::vector<live::RepositoryDelta> deltas;
  {
    auto snapshot = RepositorySnapshot::Create(*forest_);
    ASSERT_TRUE(snapshot.ok());
    quiesced.push_back(
        std::make_unique<MatchService>(std::move(*snapshot)));
    gen_nodes.push_back(forest_->total_nodes());
  }
  for (int g = 1; g < kGenerations; ++g) {
    // Distinct vocabulary per generation so results genuinely differ.
    live::DeltaBuilder builder;
    builder.AddTree(*schema::ParseTreeSpec(
                        "name" + std::to_string(g) +
                        "(address" + std::to_string(g) + ",email" +
                        std::to_string(g) + ",name(address,email))"),
                    "gen" + std::to_string(g));
    auto delta = builder.Build();
    ASSERT_TRUE(delta.ok());
    deltas.push_back(*delta);
  }

  // Build the quiesced twins by applying the same deltas to fresh
  // services, one generation at a time.
  for (int g = 1; g < kGenerations; ++g) {
    auto twin_snapshot = RepositorySnapshot::Create(*forest_);
    ASSERT_TRUE(twin_snapshot.ok());
    auto twin = std::make_unique<MatchService>(std::move(*twin_snapshot));
    for (int d = 0; d < g; ++d) {
      ASSERT_TRUE(twin->ApplyDelta(deltas[static_cast<size_t>(d)]).ok());
    }
    gen_nodes.push_back(twin->CurrentSnapshot()->total_nodes());
    quiesced.push_back(std::move(twin));
  }
  // The node-count → generation mapping must be unambiguous for the check.
  for (int a = 0; a < kGenerations; ++a) {
    for (int b = a + 1; b < kGenerations; ++b) {
      ASSERT_NE(gen_nodes[static_cast<size_t>(a)],
                gen_nodes[static_cast<size_t>(b)]);
    }
  }

  // Fire a stream of async queries while deltas land between waves; the
  // submissions interleave with publications across the pool.
  std::vector<MatchHandle> handles;
  std::vector<MatchQuery> submitted;
  for (int g = 1; g < kGenerations; ++g) {
    for (int burst = 0; burst < 6; ++burst) {
      MatchQuery query = MakeQuery(
          "live-" + std::to_string(g) + "-" + std::to_string(burst),
          kSpecs[burst % kNumSpecs]);
      submitted.push_back(query);
      handles.push_back(service->SubmitMatch(query));
    }
    ASSERT_TRUE(service->ApplyDelta(deltas[static_cast<size_t>(g - 1)]).ok());
  }

  for (size_t i = 0; i < handles.size(); ++i) {
    auto result = handles[i].Get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Identify the pinned generation by the repository size the run saw...
    size_t gen = gen_nodes.size();
    for (size_t g = 0; g < gen_nodes.size(); ++g) {
      if (result->stats.repository_nodes == gen_nodes[g]) {
        gen = g;
        break;
      }
    }
    ASSERT_LT(gen, gen_nodes.size()) << "result saw an unknown repository";
    // ...and demand equality with that generation's quiesced run.
    auto expected = quiesced[gen]->Match(submitted[i]);
    ASSERT_TRUE(expected.ok());
    ExpectSameResults(*result, *expected);
  }
}

}  // namespace
}  // namespace xsm::service
