// ServeSession is the transport-shared serving core; these tests pin down
// its query grammar, event stream shapes, command surface, and the
// filesystem gate the HTTP front end depends on.
#include "service/serve_session.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/execution_control.h"
#include "repo/synthetic.h"
#include "service/match_service.h"
#include "schema/schema_tree.h"

namespace xsm::service {
namespace {

class ServeSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo::SyntheticRepoOptions options;
    options.target_elements = 800;
    options.seed = 7;
    auto forest = repo::GenerateSyntheticRepository(options);
    ASSERT_TRUE(forest.ok()) << forest.status().ToString();
    forest_ = new schema::SchemaForest(std::move(*forest));
  }

  static void TearDownTestSuite() {
    delete forest_;
    forest_ = nullptr;
  }

  void SetUp() override {
    MatchServiceOptions options;
    options.num_threads = 2;
    auto service = MatchService::Create(*forest_, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(*service);
  }

  std::unique_ptr<ServeSession> MakeSession(
      ServeSessionOptions options = ServeSessionOptions()) {
    return std::make_unique<ServeSession>(service_.get(), options);
  }

  static EventSink Collect(std::vector<std::string>* events) {
    return [events](const std::string& line) { events->push_back(line); };
  }

  std::unique_ptr<MatchService> service_;
  static schema::SchemaForest* forest_;
};

schema::SchemaForest* ServeSessionTest::forest_ = nullptr;

// --- ParseQuery ------------------------------------------------------------

TEST_F(ServeSessionTest, ParseQueryDefaultsAndOverrides) {
  ServeSessionOptions options;
  options.defaults.delta = 0.5;
  options.defaults.top_n = 7;
  auto session = MakeSession(options);

  auto plain = session->ParseQuery("person(name,phone)", 3);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->id, "q3");  // fallback id numbers from the index
  EXPECT_EQ(plain->options.delta, 0.5);
  EXPECT_EQ(plain->options.top_n, 7u);

  auto tuned = session->ParseQuery(
      "book(title,author) id=mine delta=0.9 top=2 cluster=kmeans join=3 "
      "threshold=0.4 alpha=0.7",
      0);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_EQ(tuned->id, "mine");
  EXPECT_EQ(tuned->options.delta, 0.9);
  EXPECT_EQ(tuned->options.top_n, 2u);
  EXPECT_EQ(tuned->options.clustering, core::ClusteringMode::kKMeans);
  EXPECT_EQ(tuned->options.kmeans.join_distance, 3);
  EXPECT_EQ(tuned->options.element.threshold, 0.4);
  EXPECT_EQ(tuned->options.objective.alpha, 0.7);
}

TEST_F(ServeSessionTest, ParseQueryRejectsBadInput) {
  auto session = MakeSession();
  for (const char* bad :
       {"", "   ", "person( id=x", "person(name) top",
        "person(name) nonsense=1", "person(name) cluster=blob"}) {
    auto query = session->ParseQuery(bad, 0);
    EXPECT_FALSE(query.ok()) << "'" << bad << "'";
  }
}

// --- RunQuery / RunBatch ---------------------------------------------------

TEST_F(ServeSessionTest, RunQueryStreamsMappingsThenDone) {
  auto session = MakeSession();
  auto query = session->ParseQuery("person(name,phone) id=s1 delta=0.8 top=4",
                                   0);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  std::vector<std::string> events;
  auto result = session->RunQuery(*query, Collect(&events));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_FALSE(events.empty());
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_NE(events[i].find("\"type\":\"mapping\""), std::string::npos)
        << events[i];
    EXPECT_NE(events[i].find("\"id\":\"s1\""), std::string::npos);
  }
  EXPECT_NE(events.back().find("\"type\":\"done\""), std::string::npos);
  EXPECT_NE(events.back().find("\"status\":\"completed\""),
            std::string::npos);
  // Streaming reports every mapping found; top=4 trims the final result.
  EXPECT_EQ(result->mappings.size(), 4u);
  EXPECT_GE(events.size() - 1, result->mappings.size());
}

TEST_F(ServeSessionTest, FirstNStopsEarlyWithTypedStatus) {
  // The streaming test above observes >10 mappings for this query shape,
  // so a budget of one must stop the run early.
  const char* line = "person(name,phone) id=s2 delta=0.8 top=50";

  ServeSessionOptions options;
  options.first_n = 1;
  auto session = MakeSession(options);
  auto query = session->ParseQuery(line, 0);
  ASSERT_TRUE(query.ok());

  std::vector<std::string> events;
  auto result = session->RunQuery(*query, Collect(&events));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, core::ExecutionStatus::kEarlyStopped);
  EXPECT_NE(events.back().find("\"status\":\"early_stopped\""),
            std::string::npos);
}

TEST_F(ServeSessionTest, CancelledQueryEmitsCancelledDone) {
  auto session = MakeSession();
  auto query = session->ParseQuery("person(name,phone) id=c1 delta=0.0",
                                   0);
  ASSERT_TRUE(query.ok());

  core::ExecutionControl control;
  control.cancel = core::CancelToken();
  control.cancel.Cancel();  // already cancelled at submission
  std::vector<std::string> events;
  auto result = session->RunQuery(*query, Collect(&events), control);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, core::ExecutionStatus::kCancelled);
  EXPECT_NE(events.back().find("\"status\":\"cancelled\""),
            std::string::npos);
}

TEST_F(ServeSessionTest, RunBatchEmitsDoneEventsInInputOrder) {
  auto session = MakeSession();
  std::vector<MatchQuery> queries;
  const char* lines[] = {
      "person(name,phone) id=b1 delta=0.6 top=3",
      "book(title,author) id=b2 delta=0.6 top=3",
      "customer(name) id=b3 delta=0.6 top=3",
  };
  for (size_t i = 0; i < 3; ++i) {
    auto query = session->ParseQuery(lines[i], i);
    ASSERT_TRUE(query.ok());
    queries.push_back(std::move(*query));
  }

  std::vector<std::string> events;
  size_t failed = session->RunBatch(queries, Collect(&events));
  EXPECT_EQ(failed, 0u);

  std::vector<std::string> done_ids;
  for (const std::string& line : events) {
    if (line.find("\"type\":\"done\"") == std::string::npos) continue;
    size_t at = line.find("\"id\":\"");
    ASSERT_NE(at, std::string::npos);
    at += 6;
    done_ids.push_back(line.substr(at, line.find('"', at) - at));
  }
  EXPECT_EQ(done_ids, (std::vector<std::string>{"b1", "b2", "b3"}));
}

// --- RunCommand ------------------------------------------------------------

TEST_F(ServeSessionTest, IngestReplaceRemoveAdvanceGenerations) {
  auto session = MakeSession();
  std::vector<std::string> events;

  EXPECT_TRUE(session
                  ->RunCommand("!ingest invoice(number,total) source=erp",
                               Collect(&events))
                  .ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"type\":\"generation\""), std::string::npos);
  EXPECT_NE(events[0].find("\"generation\":1"), std::string::npos);

  events.clear();
  EXPECT_TRUE(
      session->RunCommand("!replace 0 person(name,email)", Collect(&events))
          .ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"generation\":2"), std::string::npos);

  events.clear();
  EXPECT_TRUE(session->RunCommand("!remove 1", Collect(&events)).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"generation\":3"), std::string::npos);

  events.clear();
  EXPECT_TRUE(session->RunCommand("!generation", Collect(&events)).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"generation\":3"), std::string::npos);
  EXPECT_NE(events[0].find("\"fingerprint\":\""), std::string::npos);

  events.clear();
  EXPECT_TRUE(session->RunCommand("!stats", Collect(&events)).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"type\":\"stats\""), std::string::npos);
  EXPECT_NE(events[0].find("\"deltas_applied\":3"), std::string::npos);
}

TEST_F(ServeSessionTest, CommandErrorsAreTypedEvents) {
  auto session = MakeSession();
  struct Case {
    const char* line;
    StatusCode code;
  };
  const Case cases[] = {
      {"!remove", StatusCode::kInvalidArgument},
      {"!remove notanumber", StatusCode::kInvalidArgument},
      {"!remove 1000000", StatusCode::kInvalidArgument},  // no such tree
      {"!replace xyz person(name)", StatusCode::kInvalidArgument},
      {"!ingest", StatusCode::kInvalidArgument},
      {"!ingest bad((spec", StatusCode::kParseError},
      {"!frobnicate", StatusCode::kInvalidArgument},
  };
  for (const Case& c : cases) {
    std::vector<std::string> events;
    Status status = session->RunCommand(c.line, Collect(&events));
    EXPECT_EQ(status.code(), c.code) << c.line << ": " << status.ToString();
    ASSERT_EQ(events.size(), 1u) << c.line;
    EXPECT_NE(events[0].find("\"type\":\"error\""), std::string::npos)
        << events[0];
  }
}

TEST_F(ServeSessionTest, FilesystemCommandsGatedByOption) {
  ServeSessionOptions options;
  options.allow_filesystem = false;  // the HTTP front end's configuration
  auto session = MakeSession(options);
  for (const char* line : {"!save /tmp/x.snap", "!reload /tmp/nowhere"}) {
    std::vector<std::string> events;
    Status status = session->RunCommand(line, Collect(&events));
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << line;
    ASSERT_EQ(events.size(), 1u);
    EXPECT_NE(events[0].find("\"code\":\"failed_precondition\""),
              std::string::npos)
        << events[0];
  }
}

// --- HandleLine ------------------------------------------------------------

TEST_F(ServeSessionTest, HandleLineSkipsCommentsAndNumbersQueries) {
  auto session = MakeSession();
  std::vector<std::string> events;

  session->HandleLine("# a comment", Collect(&events));
  session->HandleLine("   ", Collect(&events));
  session->HandleLine("", Collect(&events));
  EXPECT_TRUE(events.empty());

  session->HandleLine("person(name,phone) delta=0.8 top=1  # inline",
                      Collect(&events));
  ASSERT_FALSE(events.empty());
  EXPECT_NE(events.back().find("\"id\":\"q0\""), std::string::npos);

  events.clear();
  session->HandleLine("does not parse", Collect(&events));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(events[0].find("\"id\":\"q1\""), std::string::npos);

  events.clear();
  session->HandleLine("  !generation  ", Collect(&events));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"type\":\"generation\""), std::string::npos);
}

// --- !integrate ------------------------------------------------------------

TEST_F(ServeSessionTest, IntegrateStreamsPairsThenClustersThenMediated) {
  auto session = MakeSession();
  std::vector<std::string> events;
  Status status = session->RunCommand("!integrate", Collect(&events));
  EXPECT_TRUE(status.ok()) << status.ToString();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().rfind(
                "{\"type\":\"mediated\",\"status\":\"completed\"", 0),
            0u)
      << events.back();
  size_t pairs = 0;
  size_t clusters = 0;
  bool seen_cluster = false;
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    if (events[i].rfind("{\"type\":\"pair\"", 0) == 0) {
      EXPECT_FALSE(seen_cluster) << "pair event after cluster events";
      ++pairs;
    } else if (events[i].rfind("{\"type\":\"cluster\"", 0) == 0) {
      seen_cluster = true;
      ++clusters;
    } else {
      ADD_FAILURE() << "unexpected event: " << events[i];
    }
  }
  EXPECT_GT(pairs, 0u);
  EXPECT_GT(clusters, 0u);
}

TEST_F(ServeSessionTest, IntegrateArgsReachTheEngine) {
  auto session = MakeSession();
  std::vector<std::string> events;
  // A linkage floor no cluster passes: pair events still stream, no
  // cluster events, and the terminal summary records the seed and the
  // empty mediated schema.
  Status status = session->RunCommand("!integrate min_linkage=999999 seed=5",
                                      Collect(&events));
  EXPECT_TRUE(status.ok()) << status.ToString();
  ASSERT_FALSE(events.empty());
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_EQ(events[i].rfind("{\"type\":\"pair\"", 0), 0u) << events[i];
  }
  EXPECT_NE(events.back().find("\"seed\":5"), std::string::npos);
  EXPECT_NE(events.back().find("\"elements\":0"), std::string::npos);
}

TEST_F(ServeSessionTest, IntegrateBadArgsEmitTypedErrors) {
  auto session = MakeSession();
  for (const char* bad :
       {"!integrate bogus=1", "!integrate threshold",
        "!integrate severity=medium", "!integrate threshold=2"}) {
    std::vector<std::string> events;
    Status status = session->RunCommand(bad, Collect(&events));
    EXPECT_FALSE(status.ok()) << bad;
    ASSERT_EQ(events.size(), 1u) << bad;
    EXPECT_NE(events[0].find("\"type\":\"error\""), std::string::npos)
        << bad;
    EXPECT_NE(events[0].find("\"id\":\"integrate\""), std::string::npos)
        << bad;
  }
}

// An interrupted integration is not a transport error: the command returns
// OK and the terminal mediated event carries the typed partial status.
TEST_F(ServeSessionTest, IntegrateHonorsControlWithTypedPartial) {
  auto session = MakeSession();
  core::ExecutionControl control;
  control.cancel.Cancel();
  std::vector<std::string> events;
  Status status =
      session->RunCommand("!integrate", Collect(&events), control);
  EXPECT_TRUE(status.ok()) << status.ToString();
  ASSERT_FALSE(events.empty());
  EXPECT_NE(events.back().find("\"type\":\"mediated\""), std::string::npos);
  EXPECT_NE(events.back().find("\"status\":\"cancelled\""),
            std::string::npos);
}

TEST_F(ServeSessionTest, UnknownCommandUsageMentionsIntegrate) {
  auto session = MakeSession();
  std::vector<std::string> events;
  Status status = session->RunCommand("!nope", Collect(&events));
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("!integrate"), std::string::npos);
}

// --- static emitters -------------------------------------------------------

TEST_F(ServeSessionTest, EmitErrorEventShape) {
  std::vector<std::string> events;
  ServeSession::EmitErrorEvent("qx", Status::NotFound("no \"such\" tree"),
                               Collect(&events));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0],
            "{\"type\":\"error\",\"id\":\"qx\",\"code\":\"not_found\","
            "\"message\":\"NotFound: no \\\"such\\\" tree\"}");
}

TEST_F(ServeSessionTest, JsonEscapeControlsAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace xsm::service
