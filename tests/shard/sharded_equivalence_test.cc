// The exactness contract of xsm::shard: for every shard count K and thread
// count, the sharded backend returns byte-identical results to the
// unsharded MatchService — same mappings, same ranks, same Δ doubles, same
// deterministic stats — because element matching scatters per shard (each
// shard's dictionary over its own forest concatenates into the global one)
// and clustering + generation run against the merged global state. The one
// exception is stats.num_mappings under adaptive top-N pruning, which
// counts materialized work (see MaterializedCountIsDeterministic below).
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "repo/synthetic.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "shard/sharded_match_service.h"

namespace xsm::shard {
namespace {

using service::MatchQuery;
using service::MatchService;
using service::MatchServiceOptions;

const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "order(item(price),customer)",
    "customer(name,address(city,zip))",
    "article(title,publisher)",
    "employee(name,department,email)",
    "product(name,price,@id)",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

class ShardedEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo::SyntheticRepoOptions options;
    options.target_elements = 1800;
    options.seed = 11;
    auto forest = repo::GenerateSyntheticRepository(options);
    ASSERT_TRUE(forest.ok()) << forest.status().ToString();
    forest_ = new schema::SchemaForest(std::move(*forest));
  }

  static void TearDownTestSuite() {
    delete forest_;
    forest_ = nullptr;
  }

  static MatchQuery MakeQuery(const std::string& id, const char* spec) {
    MatchQuery query;
    query.id = id;
    auto personal = schema::ParseTreeSpec(spec);
    EXPECT_TRUE(personal.ok()) << personal.status().ToString();
    query.personal = std::move(*personal);
    query.options.delta = 0.6;
    query.options.top_n = 10;
    return query;
  }

  static std::unique_ptr<MatchService> MakeReference(
      MatchServiceOptions options = MatchServiceOptions()) {
    auto snapshot = service::RepositorySnapshot::Create(*forest_);
    EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    return std::make_unique<MatchService>(std::move(*snapshot), options);
  }

  static std::unique_ptr<ShardedMatchService> MakeSharded(
      size_t k, MatchServiceOptions options = MatchServiceOptions()) {
    ShardedOptions shard_options;
    shard_options.num_shards = k;
    auto sharded = ShardedMatchService::Create(*forest_, options,
                                               shard_options);
    EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
    return std::move(*sharded);
  }

  /// Whether `options` makes stats.num_mappings comparable across
  /// execution strategies. With adaptive top-N pruning active the δ
  /// ratchet's reach depends on how clusters are grouped into runs, so the
  /// materialized-mapping count is work accounting, not a semantic
  /// quantity — the final top N is still byte-identical.
  static bool MaterializedCountIsDeterministic(
      const core::MatchOptions& options) {
    return !options.adaptive_top_n || options.top_n == 0;
  }

  /// Byte-identical: assignments, ranks AND the exact doubles.
  static void ExpectSameResults(const core::MatchResult& got,
                                const core::MatchResult& want,
                                const std::string& context,
                                bool compare_materialized_count = true) {
    EXPECT_EQ(got.execution, want.execution) << context;
    ASSERT_EQ(got.mappings.size(), want.mappings.size()) << context;
    for (size_t i = 0; i < got.mappings.size(); ++i) {
      const generate::SchemaMapping& a = got.mappings[i];
      const generate::SchemaMapping& b = want.mappings[i];
      EXPECT_EQ(a.tree, b.tree) << context << " mapping " << i;
      EXPECT_EQ(a.images, b.images) << context << " mapping " << i;
      EXPECT_EQ(a.delta, b.delta) << context << " mapping " << i;
      EXPECT_EQ(a.delta_sim, b.delta_sim) << context << " mapping " << i;
      EXPECT_EQ(a.delta_path, b.delta_path) << context << " mapping " << i;
      EXPECT_EQ(a.total_path_length, b.total_path_length)
          << context << " mapping " << i;
    }
    ASSERT_EQ(got.partial_mappings.size(), want.partial_mappings.size())
        << context;
    for (size_t i = 0; i < got.partial_mappings.size(); ++i) {
      const generate::PartialMapping& a = got.partial_mappings[i];
      const generate::PartialMapping& b = want.partial_mappings[i];
      EXPECT_EQ(a.tree, b.tree) << context << " partial " << i;
      EXPECT_EQ(a.images, b.images) << context << " partial " << i;
      EXPECT_EQ(a.delta, b.delta) << context << " partial " << i;
      EXPECT_EQ(a.assigned_count, b.assigned_count)
          << context << " partial " << i;
    }
    // Deterministic stats (everything but wall-clock timings).
    EXPECT_EQ(got.stats.repository_nodes, want.stats.repository_nodes)
        << context;
    EXPECT_EQ(got.stats.repository_trees, want.stats.repository_trees)
        << context;
    EXPECT_EQ(got.stats.total_mapping_elements,
              want.stats.total_mapping_elements)
        << context;
    EXPECT_EQ(got.stats.distinct_mapping_nodes,
              want.stats.distinct_mapping_nodes)
        << context;
    EXPECT_EQ(got.stats.num_clusters, want.stats.num_clusters) << context;
    EXPECT_EQ(got.stats.num_useful_clusters, want.stats.num_useful_clusters)
        << context;
    EXPECT_EQ(got.stats.search_space, want.stats.search_space) << context;
    if (compare_materialized_count) {
      EXPECT_EQ(got.stats.num_mappings, want.stats.num_mappings) << context;
    }
  }

  static schema::SchemaForest* forest_;
};

schema::SchemaForest* ShardedEquivalenceTest::forest_ = nullptr;

TEST_F(ShardedEquivalenceTest, PinIdentityMatchesUnsharded) {
  auto reference = MakeReference();
  service::RepositoryPinPtr want = reference->Pin();
  for (size_t k : {1u, 2u, 4u, 8u}) {
    auto sharded = MakeSharded(k);
    service::RepositoryPinPtr got = sharded->Pin();
    EXPECT_EQ(got->fingerprint(), want->fingerprint()) << "K=" << k;
    EXPECT_EQ(got->num_trees(), want->num_trees()) << "K=" << k;
    EXPECT_EQ(got->total_nodes(), want->total_nodes()) << "K=" << k;
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(want->num_trees()); ++t) {
      ASSERT_EQ(got->tree_fingerprint(t), want->tree_fingerprint(t))
          << "K=" << k << " tree " << t;
    }
  }
}

TEST_F(ShardedEquivalenceTest, TreeClusteringIdenticalAcrossShardCounts) {
  MatchServiceOptions options;
  options.num_threads = 2;
  auto reference = MakeReference(options);
  for (size_t k : {1u, 2u, 4u, 8u}) {
    auto sharded = MakeSharded(k, options);
    for (size_t q = 0; q < kNumSpecs; ++q) {
      MatchQuery query = MakeQuery("q" + std::to_string(q), kSpecs[q]);
      query.options.clustering = core::ClusteringMode::kTreeClusters;
      auto want = reference->Run(query);
      auto got = sharded->Run(query);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameResults(got->result, want->result,
                        "K=" + std::to_string(k) + " q=" + query.id,
                        MaterializedCountIsDeterministic(query.options));
    }
  }
}

TEST_F(ShardedEquivalenceTest, KMeansClusteringIdenticalAcrossShardCounts) {
  MatchServiceOptions options;
  options.num_threads = 2;
  auto reference = MakeReference(options);
  for (size_t k : {1u, 3u, 8u}) {
    auto sharded = MakeSharded(k, options);
    for (size_t q = 0; q < kNumSpecs; q += 2) {
      MatchQuery query = MakeQuery("km" + std::to_string(q), kSpecs[q]);
      query.options.clustering = core::ClusteringMode::kKMeans;
      query.options.kmeans.join_distance = 2;
      auto want = reference->Run(query);
      auto got = sharded->Run(query);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameResults(got->result, want->result,
                        "K=" + std::to_string(k) + " q=" + query.id,
                        MaterializedCountIsDeterministic(query.options));
    }
  }
}

TEST_F(ShardedEquivalenceTest, IdenticalAcrossThreadCounts) {
  // The scatter fan-out must not leak scheduling nondeterminism into the
  // merged result: every (K, threads) cell agrees with the single-threaded
  // unsharded run.
  MatchServiceOptions single;
  single.num_threads = 1;
  auto reference = MakeReference(single);
  std::vector<Result<service::MatchOutcome>> want;
  for (size_t q = 0; q < kNumSpecs; ++q) {
    want.push_back(
        reference->Run(MakeQuery("t" + std::to_string(q), kSpecs[q])));
    ASSERT_TRUE(want.back().ok()) << want.back().status().ToString();
  }
  for (size_t threads : {1u, 4u}) {
    for (size_t k : {2u, 4u}) {
      MatchServiceOptions options;
      options.num_threads = threads;
      auto sharded = MakeSharded(k, options);
      for (size_t q = 0; q < kNumSpecs; ++q) {
        MatchQuery query = MakeQuery("t" + std::to_string(q), kSpecs[q]);
        const bool count_comparable =
            MaterializedCountIsDeterministic(query.options);
        auto got = sharded->Run(std::move(query));
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectSameResults(got->result, want[q]->result,
                          "K=" + std::to_string(k) + " threads=" +
                              std::to_string(threads) + " q=" +
                              std::to_string(q),
                          count_comparable);
      }
    }
  }
}

TEST_F(ShardedEquivalenceTest, RandomizedOptionSweepStaysIdentical) {
  // Randomized but reproducible: random personal schemas and option
  // combinations (δ, top-N, clustering mode, partial mappings, adaptive
  // top-N) across shard counts. Covers both the scatter path and the
  // coupled-config fallback path (partials + adaptive δ), which must agree
  // with the unsharded engine either way.
  MatchServiceOptions options;
  options.num_threads = 2;
  auto reference = MakeReference(options);
  std::vector<std::unique_ptr<ShardedMatchService>> backends;
  const size_t shard_counts[] = {1, 2, 4, 8};
  for (size_t k : shard_counts) backends.push_back(MakeSharded(k, options));

  std::mt19937 rng(271828);
  for (int round = 0; round < 12; ++round) {
    MatchQuery query =
        MakeQuery("r" + std::to_string(round), kSpecs[rng() % kNumSpecs]);
    query.options.delta = 0.45 + 0.05 * static_cast<double>(rng() % 8);
    query.options.top_n = rng() % 3 == 0 ? 0 : 1 + rng() % 12;
    query.options.adaptive_top_n = rng() % 2 == 0;
    query.options.include_partial_mappings = rng() % 3 == 0;
    query.options.clustering = rng() % 2 == 0
                                   ? core::ClusteringMode::kTreeClusters
                                   : core::ClusteringMode::kKMeans;
    if (query.options.clustering == core::ClusteringMode::kKMeans) {
      query.options.kmeans.join_distance = static_cast<int>(rng() % 3);
    }
    auto want = reference->Run(query);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    for (size_t i = 0; i < backends.size(); ++i) {
      auto got = backends[i]->Run(query);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameResults(got->result, want->result,
                        "round " + std::to_string(round) + " K=" +
                            std::to_string(shard_counts[i]),
                        MaterializedCountIsDeterministic(query.options));
    }
  }
}

}  // namespace
}  // namespace xsm::shard
