// ShardedMatchService behaviour beyond raw result equivalence: shard-count
// edge cases (K=1, K > trees), delta routing + rebalancing, persistence
// (manifest + per-shard snapshots), crash recovery over per-shard WALs,
// the batch metrics contract, and serving through ServeSession.
#include "shard/sharded_match_service.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "live/repository_delta.h"
#include "obs/metrics.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "service/serve_session.h"
#include "util/io.h"

namespace xsm::shard {
namespace {

namespace fs = std::filesystem;
using service::MatchQuery;
using service::MatchService;
using service::MatchServiceOptions;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("xsm_shard_" + tag + "_" +
              std::to_string(static_cast<unsigned>(getpid()))))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

schema::SchemaForest MakeCorpus(size_t elements, uint64_t seed) {
  repo::SyntheticRepoOptions options;
  options.target_elements = elements;
  options.seed = seed;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok()) << forest.status().ToString();
  return std::move(*forest);
}

schema::SchemaTree MakeTree(const char* spec) {
  auto tree = schema::ParseTreeSpec(spec);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

MatchQuery MakeQuery(const std::string& id, const char* spec) {
  MatchQuery query;
  query.id = id;
  query.personal = MakeTree(spec);
  query.options.delta = 0.55;
  query.options.top_n = 8;
  return query;
}

std::unique_ptr<ShardedMatchService> MakeSharded(
    const schema::SchemaForest& forest, size_t k,
    MatchServiceOptions options = MatchServiceOptions()) {
  ShardedOptions shard_options;
  shard_options.num_shards = k;
  auto sharded = ShardedMatchService::Create(forest, options, shard_options);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  return std::move(*sharded);
}

void ExpectSameMappings(const core::MatchResult& got,
                        const core::MatchResult& want) {
  ASSERT_EQ(got.mappings.size(), want.mappings.size());
  for (size_t i = 0; i < got.mappings.size(); ++i) {
    EXPECT_EQ(got.mappings[i].tree, want.mappings[i].tree) << i;
    EXPECT_EQ(got.mappings[i].images, want.mappings[i].images) << i;
    EXPECT_EQ(got.mappings[i].delta, want.mappings[i].delta) << i;
  }
}

// --- K = 1 -----------------------------------------------------------------

TEST(ShardedServiceTest, SingleShardIsByteIdenticalToMatchService) {
  schema::SchemaForest forest = MakeCorpus(800, 3);
  auto snapshot = service::RepositorySnapshot::Create(forest);
  ASSERT_TRUE(snapshot.ok());
  MatchService reference(std::move(*snapshot));
  auto sharded = MakeSharded(forest, 1);

  // Same content fingerprint means the same cluster cache namespace: a
  // state computed by either backend would be keyed identically.
  EXPECT_EQ(sharded->Pin()->fingerprint(), reference.Pin()->fingerprint());
  ASSERT_EQ(sharded->Shards().size(), 1u);
  EXPECT_EQ(sharded->Shards()[0].trees, reference.Pin()->num_trees());

  MatchQuery query = MakeQuery("q0", "person(name,email,phone)");
  // Same cluster-state key: the caches are interchangeable namespaces.
  EXPECT_EQ(sharded->ClusterStateKey(query), reference.ClusterStateKey(query));

  auto want = reference.Run(query);
  auto got = sharded->Run(query);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->generation, want->generation);
  EXPECT_EQ(got->fingerprint, want->fingerprint);
  ExpectSameMappings(got->result, want->result);

  // Effective options agree on everything that shapes the run.
  core::MatchOptions a = sharded->EffectiveOptions(query);
  core::MatchOptions b = reference.EffectiveOptions(query);
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_EQ(a.top_n, b.top_n);
  EXPECT_EQ(a.kmeans.seed, b.kmeans.seed);
  EXPECT_EQ(a.element.threshold, b.element.threshold);
}

// --- K > tree count --------------------------------------------------------

TEST(ShardedServiceTest, MoreShardsThanTreesMergesCleanly) {
  schema::SchemaForest forest;
  forest.AddTree(MakeTree("person(name,phone)"), "s1");
  forest.AddTree(MakeTree("book(title,author)"), "s2");
  forest.AddTree(MakeTree("order(item,customer)"), "s3");

  auto snapshot = service::RepositorySnapshot::Create(forest);
  ASSERT_TRUE(snapshot.ok());
  MatchService reference(std::move(*snapshot));
  auto sharded = MakeSharded(forest, 6);  // 3 empty tail shards

  ASSERT_EQ(sharded->Shards().size(), 6u);
  size_t trees = 0;
  for (const service::ShardDescriptor& d : sharded->Shards()) {
    trees += d.trees;
  }
  EXPECT_EQ(trees, 3u);
  EXPECT_EQ(sharded->Pin()->fingerprint(), reference.Pin()->fingerprint());

  MatchQuery query = MakeQuery("q0", "person(name,phone)");
  query.options.delta = 0.4;
  // Baseline clustering: the tiny trees must not be droppable by k-means
  // cluster-size heuristics — this asserts the merge, not clustering.
  query.options.clustering = core::ClusteringMode::kTreeClusters;
  auto want = reference.Run(query);
  auto got = sharded->Run(query);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->result.mappings.empty());
  ExpectSameMappings(got->result, want->result);
}

// --- deltas + rebalance ----------------------------------------------------

TEST(ShardedServiceTest, DeltasTrackUnshardedChainAndRebalance) {
  schema::SchemaForest forest = MakeCorpus(600, 5);
  auto snapshot = service::RepositorySnapshot::Create(forest);
  ASSERT_TRUE(snapshot.ok());
  MatchService reference(std::move(*snapshot));
  auto sharded = MakeSharded(forest, 3);

  // A mixed workload: adds (routed to the last shard), a replace and a
  // remove (routed to the owning shard), then a pile of adds that skews
  // node mass onto the tail shard hard enough to trip the rebalancer.
  std::vector<live::RepositoryDelta> deltas;
  {
    live::DeltaBuilder b;
    b.AddTree(MakeTree("invoice(number,amount,customer)"), "d1");
    b.ReplaceTree(0, MakeTree("swapped(alpha,beta)"), "d1");
    auto delta = b.Build();
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    deltas.push_back(std::move(*delta));
  }
  {
    live::DeltaBuilder b;
    b.RemoveTree(2);
    auto delta = b.Build();
    ASSERT_TRUE(delta.ok());
    deltas.push_back(std::move(*delta));
  }
  for (int i = 0; i < 6; ++i) {
    live::DeltaBuilder b;
    b.AddTree(MakeTree("bulk(a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p)"),
              "bulk" + std::to_string(i));
    auto delta = b.Build();
    ASSERT_TRUE(delta.ok());
    deltas.push_back(std::move(*delta));
  }

  for (const live::RepositoryDelta& delta : deltas) {
    auto want = reference.ApplyDelta(delta);
    auto got = sharded->ApplyDelta(delta);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->generation, want->generation);
    EXPECT_EQ(got->fingerprint, want->fingerprint)
        << "generation " << want->generation;
    EXPECT_EQ(got->trees_total, want->trees_total);
  }

  EXPECT_EQ(sharded->CurrentGeneration(), reference.CurrentGeneration());
  EXPECT_EQ(sharded->Pin()->fingerprint(), reference.Pin()->fingerprint());

  // Queries stay exact after routing + any rebalances.
  MatchQuery query = MakeQuery("after", "bulk(a,b,c)");
  query.options.delta = 0.4;
  auto want = reference.Run(query);
  auto got = sharded->Run(query);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ExpectSameMappings(got->result, want->result);

  // Out-of-range targets are refused before anything applies.
  live::DeltaBuilder bad;
  bad.ReplaceTree(10000, MakeTree("x(y)"));
  auto bad_delta = bad.Build();
  ASSERT_TRUE(bad_delta.ok());
  uint64_t generation_before = sharded->CurrentGeneration();
  EXPECT_FALSE(sharded->ApplyDelta(*bad_delta).ok());
  EXPECT_EQ(sharded->CurrentGeneration(), generation_before);
}

// --- persistence -----------------------------------------------------------

TEST(ShardedServiceTest, SaveAndWarmStartRoundTripsManifestAndShards) {
  TempDir dir("warmstart");
  schema::SchemaForest forest = MakeCorpus(700, 9);
  auto sharded = MakeSharded(forest, 4);

  MatchQuery query = MakeQuery("q", "person(name,email)");
  auto before = sharded->Run(query);
  ASSERT_TRUE(before.ok());

  std::string path = dir.File("repo.snap");
  auto info = sharded->SaveSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // Manifest + one file per shard.
  EXPECT_TRUE(fs::exists(path));
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(fs::exists(ShardedMatchService::ShardFilePath(path, s)))
        << "shard " << s;
  }

  auto warm = ShardedMatchService::WarmStart(path);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ((*warm)->Shards().size(), 4u);
  EXPECT_EQ((*warm)->Pin()->fingerprint(), sharded->Pin()->fingerprint());
  auto after = (*warm)->Run(query);
  ASSERT_TRUE(after.ok());
  ExpectSameMappings(after->result, before->result);

  // A manifest whose shards do not match it is refused typed.
  std::string tampered = dir.File("tampered.snap");
  ASSERT_TRUE(sharded->SaveSnapshot(tampered).ok());
  fs::copy_file(ShardedMatchService::ShardFilePath(tampered, 0),
                ShardedMatchService::ShardFilePath(tampered, 1),
                fs::copy_options::overwrite_existing);
  auto refused = ShardedMatchService::WarmStart(tampered);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCorruption)
      << refused.status().ToString();
}

TEST(ShardedServiceTest, RecoverReplaysPerShardWals) {
  TempDir dir("recover");
  util::io::Env* env = util::io::Env::Default();
  schema::SchemaForest forest = MakeCorpus(500, 13);
  std::string snap = dir.File("repo.snap");
  std::string wal = dir.File("repo.wal");

  uint64_t acked_generation = 0;
  uint64_t acked_fingerprint = 0;
  {
    auto sharded = MakeSharded(forest, 3);
    ASSERT_TRUE(sharded->SaveSnapshot(snap).ok());
    ASSERT_TRUE(sharded->AttachWal(env, wal).ok());
    ASSERT_TRUE(sharded->wal_attached());
    for (int i = 0; i < 3; ++i) {
      live::DeltaBuilder b;
      b.AddTree(MakeTree("crash(a,b,c)"), "c" + std::to_string(i));
      auto delta = b.Build();
      ASSERT_TRUE(delta.ok());
      auto report = sharded->ApplyDelta(*delta);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      acked_generation = report->generation;
      acked_fingerprint = report->fingerprint;
    }
    // No save after the deltas: dropping the service here is the crash.
  }

  live::RecoveryReport report;
  auto recovered = ShardedMatchService::Recover(
      env, snap, wal, MatchServiceOptions(), ShardedOptions(), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->CurrentGeneration(), acked_generation);
  EXPECT_EQ((*recovered)->Pin()->fingerprint(), acked_fingerprint);
  EXPECT_GT(report.records_replayed, 0u);
  EXPECT_TRUE((*recovered)->wal_attached())
      << "recovered service must keep journaling";

  // The recovered chain matches an unsharded reference fed the same tale.
  auto snapshot = service::RepositorySnapshot::Create(forest);
  ASSERT_TRUE(snapshot.ok());
  MatchService reference(std::move(*snapshot));
  for (int i = 0; i < 3; ++i) {
    live::DeltaBuilder b;
    b.AddTree(MakeTree("crash(a,b,c)"), "c" + std::to_string(i));
    auto delta = b.Build();
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(reference.ApplyDelta(*delta).ok());
  }
  EXPECT_EQ((*recovered)->Pin()->fingerprint(),
            reference.Pin()->fingerprint());
}

// --- batch metrics contract (no double counting) ---------------------------

TEST(ShardedServiceTest, BatchMembersCountOnceInQueriesFamily) {
  schema::SchemaForest forest = MakeCorpus(600, 17);
  const char* specs[] = {"person(name,phone)", "book(title,author)",
                         "order(item,customer)"};
  // Both backends must agree on the contract: xsm_queries_total counts
  // each batch member exactly once (not per member AND per batch call);
  // xsm_batches_total counts RunBatch calls. ServiceStats reads the same
  // registry handles, so the two surfaces must agree exactly.
  for (int backend = 0; backend < 2; ++backend) {
    obs::MetricsRegistry registry;
    MatchServiceOptions options;
    options.num_threads = 2;
    options.metrics = &registry;
    options.metrics_tenant = "t";
    std::unique_ptr<service::Matcher> matcher;
    if (backend == 0) {
      auto snapshot = service::RepositorySnapshot::Create(forest);
      ASSERT_TRUE(snapshot.ok());
      matcher = std::make_unique<MatchService>(std::move(*snapshot), options);
    } else {
      matcher = MakeSharded(forest, 3, options);
    }

    std::vector<MatchQuery> queries;
    for (size_t q = 0; q < 3; ++q) {
      queries.push_back(MakeQuery("b" + std::to_string(q), specs[q]));
    }
    service::BatchMatchResult batch = matcher->RunBatch(std::move(queries));
    ASSERT_EQ(batch.results.size(), 3u);

    obs::LabelSet labels = {{"tenant", "t"}};
    EXPECT_EQ(registry.CounterValue("xsm_queries_total", labels), 3u)
        << "backend " << backend
        << ": batch members must count once, not per member and per call";
    EXPECT_EQ(registry.CounterValue("xsm_batches_total", labels), 1u)
        << "backend " << backend;
    service::ServiceStats stats = matcher->stats();
    EXPECT_EQ(stats.queries,
              registry.CounterValue("xsm_queries_total", labels))
        << "backend " << backend;
    EXPECT_EQ(stats.batches,
              registry.CounterValue("xsm_batches_total", labels))
        << "backend " << backend;

    // A single non-batch run adds exactly one more query and no batch.
    ASSERT_TRUE(matcher->Run(MakeQuery("solo", specs[0])).ok());
    EXPECT_EQ(registry.CounterValue("xsm_queries_total", labels), 4u)
        << "backend " << backend;
    EXPECT_EQ(registry.CounterValue("xsm_batches_total", labels), 1u)
        << "backend " << backend;
  }
}

// --- serving through ServeSession ------------------------------------------

TEST(ShardedServiceTest, ServeSessionStreamsIdenticalMappingEvents) {
  schema::SchemaForest forest = MakeCorpus(700, 21);
  auto snapshot = service::RepositorySnapshot::Create(forest);
  ASSERT_TRUE(snapshot.ok());
  MatchService reference(std::move(*snapshot));
  auto sharded = MakeSharded(forest, 4);

  service::ServeSessionOptions session_options;
  service::ServeSession unsharded_session(&reference, session_options);
  service::ServeSession sharded_session(sharded.get(), session_options);

  const std::string line = "person(name,email) id=q1 delta=0.5 top=5";
  auto query_a = unsharded_session.ParseQuery(line, 0);
  auto query_b = sharded_session.ParseQuery(line, 0);
  ASSERT_TRUE(query_a.ok()) << query_a.status().ToString();
  ASSERT_TRUE(query_b.ok());

  std::vector<std::string> events_a;
  std::vector<std::string> events_b;
  auto run_a = unsharded_session.RunQuery(
      *query_a, [&](const std::string& e) { events_a.push_back(e); });
  auto run_b = sharded_session.RunQuery(
      *query_b, [&](const std::string& e) { events_b.push_back(e); });
  ASSERT_TRUE(run_a.ok());
  ASSERT_TRUE(run_b.ok());

  // Mapping events — content, Δ scores and running ranks — must agree
  // byte for byte once the wall-clock "ms" field is stripped.
  auto strip_ms = [](std::string e) {
    size_t begin = e.find(",\"ms\":");
    if (begin == std::string::npos) return e;
    size_t end = e.find_first_of(",}", begin + 6);
    e.erase(begin, end - begin);
    return e;
  };
  std::vector<std::string> mappings_a;
  std::vector<std::string> mappings_b;
  for (const std::string& e : events_a) {
    if (e.find("\"type\":\"mapping\"") != std::string::npos) {
      mappings_a.push_back(strip_ms(e));
    }
  }
  for (const std::string& e : events_b) {
    if (e.find("\"type\":\"mapping\"") != std::string::npos) {
      mappings_b.push_back(strip_ms(e));
    }
  }
  ASSERT_FALSE(mappings_a.empty());
  EXPECT_EQ(mappings_a, mappings_b);
}

// --- construction errors ---------------------------------------------------

TEST(ShardedServiceTest, ZeroShardsIsRefused) {
  schema::SchemaForest forest = MakeCorpus(120, 1);
  ShardedOptions shard_options;
  shard_options.num_shards = 0;
  auto sharded = ShardedMatchService::Create(forest, MatchServiceOptions(),
                                             shard_options);
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedServiceTest, ForeignPinIsRefused) {
  schema::SchemaForest forest = MakeCorpus(200, 2);
  auto snapshot = service::RepositorySnapshot::Create(forest);
  ASSERT_TRUE(snapshot.ok());
  MatchService reference(std::move(*snapshot));
  auto sharded = MakeSharded(forest, 2);

  // An unsharded pin cannot run on the sharded backend (and the failure is
  // typed, not a crash).
  auto result = sharded->RunOn(reference.Pin(),
                               MakeQuery("x", "person(name)"),
                               core::ExecutionControl());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xsm::shard
