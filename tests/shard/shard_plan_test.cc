#include "shard/shard_plan.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace xsm::shard {
namespace {

TEST(ShardPlanTest, BalancedCoversEveryTreeContiguously) {
  std::vector<size_t> nodes = {40, 10, 25, 5, 60, 30, 15, 20};
  for (size_t k = 1; k <= nodes.size(); ++k) {
    ShardPlan plan = ShardPlan::Balanced(nodes, k);
    ASSERT_EQ(plan.num_shards(), k) << "k=" << k;
    ASSERT_EQ(plan.num_trees(), nodes.size()) << "k=" << k;
    // Shard ranges are contiguous, in order, and cover [0, trees).
    size_t covered = 0;
    for (size_t s = 0; s < k; ++s) {
      EXPECT_EQ(static_cast<size_t>(plan.first_tree(s)), covered)
          << "k=" << k << " shard " << s;
      covered += plan.shard_trees(s);
    }
    EXPECT_EQ(covered, nodes.size()) << "k=" << k;
    // Every shard owns at least one tree while trees remain.
    for (size_t s = 0; s < k; ++s) {
      EXPECT_GE(plan.shard_trees(s), 1u) << "k=" << k << " shard " << s;
    }
  }
}

TEST(ShardPlanTest, BalancedIsDeterministic) {
  std::vector<size_t> nodes(100);
  for (size_t i = 0; i < nodes.size(); ++i) nodes[i] = (i * 37) % 90 + 1;
  EXPECT_EQ(ShardPlan::Balanced(nodes, 7), ShardPlan::Balanced(nodes, 7));
  EXPECT_NE(ShardPlan::Balanced(nodes, 7), ShardPlan::Balanced(nodes, 6));
}

TEST(ShardPlanTest, MoreShardsThanTreesLeavesEmptyTailShards) {
  std::vector<size_t> nodes = {10, 20};
  ShardPlan plan = ShardPlan::Balanced(nodes, 5);
  ASSERT_EQ(plan.num_shards(), 5u);
  EXPECT_EQ(plan.num_trees(), 2u);
  EXPECT_GE(plan.shard_trees(0), 1u);
  size_t total = 0, empty = 0;
  for (size_t s = 0; s < 5; ++s) {
    total += plan.shard_trees(s);
    if (plan.shard_trees(s) == 0) ++empty;
  }
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(empty, 3u);
  // Empty shards sit at the tail.
  EXPECT_EQ(plan.shard_trees(3), 0u);
  EXPECT_EQ(plan.shard_trees(4), 0u);
}

TEST(ShardPlanTest, ShardOfAndLocalGlobalRoundTrip) {
  std::vector<size_t> nodes = {5, 5, 5, 5, 5, 5, 5, 5, 5};
  ShardPlan plan = ShardPlan::Balanced(nodes, 3);
  for (schema::TreeId t = 0; t < static_cast<schema::TreeId>(nodes.size());
       ++t) {
    size_t s = plan.shard_of(t);
    ASSERT_LT(s, plan.num_shards());
    EXPECT_GE(t, plan.first_tree(s));
    EXPECT_LT(static_cast<size_t>(t),
              static_cast<size_t>(plan.first_tree(s)) + plan.shard_trees(s));
    EXPECT_EQ(plan.to_global(s, plan.to_local(t)), t);
  }
}

TEST(ShardPlanTest, FromShardTreeCountsRoundTrips) {
  std::vector<size_t> nodes = {8, 3, 9, 1, 7, 2, 6};
  ShardPlan plan = ShardPlan::Balanced(nodes, 4);
  std::vector<size_t> counts;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    counts.push_back(plan.shard_trees(s));
  }
  EXPECT_EQ(ShardPlan::FromShardTreeCounts(counts), plan);
}

TEST(ShardPlanTest, ImbalanceMeasuresNodeSkew) {
  // Perfect balance: every shard the same node total.
  std::vector<size_t> even = {10, 10, 10, 10};
  ShardPlan balanced = ShardPlan::Balanced(even, 2);
  EXPECT_DOUBLE_EQ(balanced.Imbalance(even), 1.0);

  // Skewed ownership: one shard holds nearly everything.
  std::vector<size_t> skewed = {100, 1, 1, 1};
  ShardPlan lopsided = ShardPlan::FromShardTreeCounts({1, 3});
  EXPECT_GT(lopsided.Imbalance(skewed), 1.5);

  // Empty plan / empty input.
  EXPECT_DOUBLE_EQ(ShardPlan().Imbalance({}), 1.0);
}

TEST(ShardPlanTest, BalancedBeatsNaiveSplitOnSkewedInput) {
  // A heavy head: a naive equal-tree-count split would put ~half the
  // nodes in shard 0; the node-balanced plan cuts earlier.
  std::vector<size_t> nodes = {90, 80, 10, 10, 10, 10, 10, 10};
  ShardPlan plan = ShardPlan::Balanced(nodes, 2);
  ShardPlan naive = ShardPlan::FromShardTreeCounts({4, 4});
  EXPECT_LE(plan.Imbalance(nodes), naive.Imbalance(nodes));
}

}  // namespace
}  // namespace xsm::shard
