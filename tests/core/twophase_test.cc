// Tests for the §2.3 non-generic ("two-phase") clustered matching: a
// structural matcher group applied after clustering, within clusters only.
#include <gtest/gtest.h>

#include "core/bellflower.h"
#include "match/structural_matcher.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::core {
namespace {

using schema::SchemaForest;
using schema::SchemaTree;

struct Fixture {
  SchemaForest repo;
  SchemaTree personal = *schema::ParseTreeSpec("name(address,email)");

  Fixture() {
    repo.AddTree(*schema::ParseTreeSpec(
        "person(name,contact(address,email),phone)"));
    repo.AddTree(*schema::ParseTreeSpec(
        "customer(fullName,addr,mail,account(email))"));
    repo.AddTree(*schema::ParseTreeSpec("engine(piston,valve)"));
  }
};

MatchOptions Base() {
  MatchOptions o;
  o.element.threshold = 0.55;
  // Personal roots carry no ancestor context, so structural rescoring can
  // halve their scores; keep δ low enough that rescored mappings survive.
  o.delta = 0.25;
  o.clustering = ClusteringMode::kTreeClusters;
  return o;
}

TEST(TwoPhaseTest, DisabledByDefault) {
  Fixture f;
  Bellflower system(&f.repo);
  auto r = system.Match(f.personal, Base());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.structural_evaluations, 0u);
}

TEST(TwoPhaseTest, WithinClustersEvaluatesFewerPairs) {
  Fixture f;
  Bellflower system(&f.repo);

  MatchOptions within = Base();
  within.structural_matcher = &match::CompositeStructuralMatcher::Default();
  within.structural_within_clusters_only = true;
  auto rw = system.Match(f.personal, within);
  ASSERT_TRUE(rw.ok()) << rw.status().ToString();

  MatchOptions global = within;
  global.structural_within_clusters_only = false;
  auto rg = system.Match(f.personal, global);
  ASSERT_TRUE(rg.ok());

  // The §2.3 efficiency claim: the second matcher group sees only the
  // elements inside useful clusters — never more than the global count.
  EXPECT_GT(rw->stats.structural_evaluations, 0u);
  EXPECT_GT(rg->stats.structural_evaluations, 0u);
  EXPECT_LE(rw->stats.structural_evaluations,
            rg->stats.structural_evaluations);
  EXPECT_EQ(rg->stats.structural_evaluations,
            rg->stats.total_mapping_elements);
}

TEST(TwoPhaseTest, StructuralScoresChangeRanking) {
  Fixture f;
  Bellflower system(&f.repo);
  auto plain = system.Match(f.personal, Base());
  ASSERT_TRUE(plain.ok());

  MatchOptions two_phase = Base();
  two_phase.structural_matcher =
      &match::CompositeStructuralMatcher::Default();
  two_phase.structural_weight = 0.5;
  auto structured = system.Match(f.personal, two_phase);
  ASSERT_TRUE(structured.ok());

  // Deltas differ for at least one shared assignment (context evidence
  // moved the scores).
  bool any_change = false;
  for (const auto& a : plain->mappings) {
    for (const auto& b : structured->mappings) {
      if (a.SameAssignment(b) && std::abs(a.delta - b.delta) > 1e-9) {
        any_change = true;
      }
    }
  }
  EXPECT_TRUE(any_change);
}

TEST(TwoPhaseTest, WeightZeroIsNoOpOnScores) {
  Fixture f;
  Bellflower system(&f.repo);
  auto plain = system.Match(f.personal, Base());
  ASSERT_TRUE(plain.ok());

  MatchOptions zero = Base();
  zero.structural_matcher = &match::CompositeStructuralMatcher::Default();
  zero.structural_weight = 0.0;
  auto r = system.Match(f.personal, zero);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->mappings.size(), plain->mappings.size());
  for (size_t i = 0; i < r->mappings.size(); ++i) {
    EXPECT_TRUE(r->mappings[i].SameAssignment(plain->mappings[i]));
    EXPECT_DOUBLE_EQ(r->mappings[i].delta, plain->mappings[i].delta);
  }
  // Evaluations still counted (the matcher ran, its weight was zero).
  EXPECT_GT(r->stats.structural_evaluations, 0u);
}

TEST(TwoPhaseTest, ContextBoostsStructurallyConsistentMapping) {
  // Two repository trees with identical local names; only structure
  // disambiguates: in tree 0 the email sits with name/address under one
  // record, in tree 1 it dangles elsewhere.
  SchemaForest repo;
  repo.AddTree(*schema::ParseTreeSpec(
      "contacts(entry(name,address,email))"));
  repo.AddTree(*schema::ParseTreeSpec(
      "mixed(entry(name,address),junk(stuff(email)))"));
  Bellflower system(&repo);
  SchemaTree personal = *schema::ParseTreeSpec("name(address,email)");

  MatchOptions o;
  o.element.threshold = 0.55;
  o.delta = 0.3;
  o.clustering = ClusteringMode::kTreeClusters;
  o.structural_matcher = &match::CompositeStructuralMatcher::Default();
  o.structural_weight = 0.6;
  auto r = system.Match(personal, o);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->mappings.size(), 2u);
  // The coherent record (tree 0) must outrank the scattered one.
  EXPECT_EQ(r->mappings.front().tree, 0);
}

TEST(TwoPhaseTest, WorksWithKMeansClustering) {
  repo::SyntheticRepoOptions ro;
  ro.target_elements = 2500;
  ro.seed = 31;
  auto repo = repo::GenerateSyntheticRepository(ro);
  ASSERT_TRUE(repo.ok());
  Bellflower system(&*repo);
  MatchOptions o;
  o.element.threshold = 0.5;
  o.delta = 0.75;
  o.clustering = ClusteringMode::kKMeans;
  o.kmeans.join_distance = 3;
  o.structural_matcher = &match::CompositeStructuralMatcher::Default();
  auto r = system.Match(*schema::ParseTreeSpec("name(address,email)"), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->stats.structural_evaluations, 0u);
  EXPECT_GT(r->stats.time_structural_seconds, 0.0);
  // Work bounded by the number of mapping elements.
  EXPECT_LE(r->stats.structural_evaluations,
            r->stats.total_mapping_elements);
}

}  // namespace
}  // namespace xsm::core
