#include "core/bellflower.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/preservation.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::core {
namespace {

using generate::SchemaMapping;
using schema::SchemaForest;
using schema::SchemaTree;

// Repository with several trees holding name/address/email-like regions.
SchemaForest MakeRepo() {
  SchemaForest f;
  f.AddTree(*schema::ParseTreeSpec(
      "person(name,contact(address,email),phone)"));
  f.AddTree(*schema::ParseTreeSpec(
      "customer(fullName(name),addr,mail,account(email))"));
  f.AddTree(*schema::ParseTreeSpec(
      "lib(book(title,authorName),address(city,zip))"));
  f.AddTree(*schema::ParseTreeSpec("engine(piston,valve(lift))"));
  f.AddTree(*schema::ParseTreeSpec(
      "contacts(entry(name,address,email),entry2(name,address,email))"));
  return f;
}

SchemaTree Personal() { return *schema::ParseTreeSpec("name(address,email)"); }

MatchOptions BaselineOptions() {
  MatchOptions o;
  o.element.threshold = 0.55;
  o.delta = 0.5;
  o.clustering = ClusteringMode::kTreeClusters;
  return o;
}

MatchOptions ClusteredOptions(int join_distance = 3) {
  MatchOptions o = BaselineOptions();
  o.clustering = ClusteringMode::kKMeans;
  o.kmeans.join_distance = join_distance;
  o.kmeans.min_cluster_size = 2;
  return o;
}

TEST(BellflowerTest, BaselineFindsRankedMappings) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  auto r = system.Match(Personal(), BaselineOptions());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->mappings.size(), 0u);

  // Ranked list: non-increasing Δ.
  for (size_t i = 1; i < r->mappings.size(); ++i) {
    EXPECT_GE(r->mappings[i - 1].delta, r->mappings[i].delta);
  }
  // Every mapping obeys the threshold and injectivity.
  for (const auto& m : r->mappings) {
    EXPECT_GE(m.delta, 0.5);
    std::set<schema::NodeId> uniq(m.images.begin(), m.images.end());
    EXPECT_EQ(uniq.size(), m.images.size());
  }
  // The perfect region (tree 0: name + address/email under contact) ranks
  // first with Δsim = 1.
  EXPECT_EQ(r->mappings[0].delta_sim, 1.0);
}

TEST(BellflowerTest, StatsAreConsistent) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  auto r = system.Match(Personal(), BaselineOptions());
  ASSERT_TRUE(r.ok());
  const MatchStats& s = r->stats;
  EXPECT_EQ(s.repository_trees, repo.num_trees());
  EXPECT_EQ(s.repository_nodes, repo.total_nodes());
  EXPECT_GT(s.total_mapping_elements, 0u);
  EXPECT_GE(s.total_mapping_elements, s.distinct_mapping_nodes);
  EXPECT_EQ(s.num_mappings, r->mappings.size());
  EXPECT_EQ(s.generator.emitted, r->mappings.size());
  EXPECT_GE(s.generator.partial_mappings, s.generator.complete_mappings);
  // Search space bounds the number of complete mappings tested.
  EXPECT_LE(static_cast<double>(s.generator.complete_mappings),
            s.search_space + 1e-9);
  // Cluster summaries add up.
  size_t useful = 0;
  double space = 0;
  for (const auto& c : s.cluster_summaries) {
    if (c.useful) {
      ++useful;
      space += c.search_space;
    }
  }
  EXPECT_EQ(useful, s.num_useful_clusters);
  EXPECT_DOUBLE_EQ(space, s.search_space);
  EXPECT_EQ(s.cluster_summaries.size(), s.num_clusters);
}

TEST(BellflowerTest, ClusteredIsSubsetOfBaseline) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  auto baseline = system.Match(Personal(), BaselineOptions());
  ASSERT_TRUE(baseline.ok());
  for (int join = 2; join <= 4; ++join) {
    auto clustered = system.Match(Personal(), ClusteredOptions(join));
    ASSERT_TRUE(clustered.ok());
    EXPECT_TRUE(IsSubsetOf(clustered->mappings, baseline->mappings))
        << "join=" << join;
    EXPECT_LE(clustered->stats.search_space, baseline->stats.search_space);
    EXPECT_LE(clustered->stats.generator.partial_mappings,
              baseline->stats.generator.partial_mappings);
  }
}

TEST(BellflowerTest, TreeClustersMatchTreeCount) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  auto r = system.Match(Personal(), BaselineOptions());
  ASSERT_TRUE(r.ok());
  // Every cluster is a tree with ≥1 mapping element; useful clusters carry
  // all three personal nodes.
  EXPECT_LE(r->stats.num_clusters, repo.num_trees());
  EXPECT_GT(r->stats.num_useful_clusters, 0u);
  EXPECT_LE(r->stats.num_useful_clusters, r->stats.num_clusters);
}

TEST(BellflowerTest, SearchSpaceMatchesManualComputation) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  MatchOptions o = BaselineOptions();
  auto r = system.Match(Personal(), o);
  ASSERT_TRUE(r.ok());

  // Manually recompute: per useful tree, Π_n |ME_n ∩ tree|.
  auto matching = match::MatchElements(Personal(), repo, o.element);
  ASSERT_TRUE(matching.ok());
  double expected = 0;
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(repo.num_trees()); ++t) {
    double prod = 1;
    bool useful = true;
    for (const auto& set : matching->sets) {
      size_t count = 0;
      for (const auto& e : set.elements) {
        if (e.node.tree == t) ++count;
      }
      if (count == 0) useful = false;
      prod *= static_cast<double>(count);
    }
    if (useful) expected += prod;
  }
  EXPECT_DOUBLE_EQ(r->stats.search_space, expected);
}

TEST(BellflowerTest, TopNTruncatesButKeepsStats) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  MatchOptions o = BaselineOptions();
  o.top_n = 2;
  auto r = system.Match(Personal(), o);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->mappings.size(), 2u);
  EXPECT_GE(r->stats.num_mappings, r->mappings.size());
}

TEST(BellflowerTest, HigherDeltaFindsFewerMappings) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  MatchOptions lo = BaselineOptions();
  lo.delta = 0.4;
  MatchOptions hi = BaselineOptions();
  hi.delta = 0.8;
  auto rl = system.Match(Personal(), lo);
  auto rh = system.Match(Personal(), hi);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rh.ok());
  EXPECT_GE(rl->mappings.size(), rh->mappings.size());
  // High-threshold solutions are exactly the low-threshold ones above 0.8.
  size_t expected = 0;
  for (const auto& m : rl->mappings) {
    if (m.delta >= 0.8) ++expected;
  }
  EXPECT_EQ(rh->mappings.size(), expected);
}

TEST(BellflowerTest, AlphaChangesRanking) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  MatchOptions path_heavy = BaselineOptions();
  path_heavy.objective.alpha = 0.25;
  MatchOptions name_heavy = BaselineOptions();
  name_heavy.objective.alpha = 0.75;
  auto rp = system.Match(Personal(), path_heavy);
  auto rn = system.Match(Personal(), name_heavy);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rn.ok());
  // Same assignments exist (threshold pushed low enough by construction)…
  // but Δ values differ between objectives.
  ASSERT_FALSE(rp->mappings.empty());
  ASSERT_FALSE(rn->mappings.empty());
  bool any_difference = false;
  for (const auto& mp : rp->mappings) {
    for (const auto& mn : rn->mappings) {
      if (mp.SameAssignment(mn) && std::abs(mp.delta - mn.delta) > 1e-9) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(BellflowerTest, ResolveK) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  objective::ObjectiveParams params;
  params.k_norm = 7.5;
  EXPECT_DOUBLE_EQ(system.ResolveK(params), 7.5);
  params.k_norm = 0.0;
  EXPECT_DOUBLE_EQ(system.ResolveK(params),
                   std::max(1, system.index().max_diameter() - 1));
}

TEST(BellflowerTest, RejectsInvalidOptions) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  MatchOptions o = BaselineOptions();
  o.delta = 1.5;
  EXPECT_FALSE(system.Match(Personal(), o).ok());
  o = BaselineOptions();
  o.objective.alpha = -1;
  EXPECT_FALSE(system.Match(Personal(), o).ok());
  SchemaTree empty;
  EXPECT_FALSE(system.Match(empty, BaselineOptions()).ok());
}

TEST(BellflowerTest, NoMatchesProducesEmptyResult) {
  SchemaForest repo;
  repo.AddTree(*schema::ParseTreeSpec("engine(piston,valve)"));
  Bellflower system(&repo);
  auto r = system.Match(*schema::ParseTreeSpec("zebra(quokka)"),
                        BaselineOptions());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->mappings.empty());
  EXPECT_EQ(r->stats.total_mapping_elements, 0u);
}

TEST(BellflowerTest, SingleNodePersonalSchema) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  auto r = system.Match(*schema::ParseTreeSpec("email"), BaselineOptions());
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->mappings.size(), 0u);
  for (const auto& m : r->mappings) {
    EXPECT_EQ(m.images.size(), 1u);
    EXPECT_DOUBLE_EQ(m.delta_path, 1.0);
    EXPECT_EQ(m.total_path_length, 0);
  }
}

TEST(BellflowerTest, DeterministicResults) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  auto a = system.Match(Personal(), ClusteredOptions());
  auto b = system.Match(Personal(), ClusteredOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->mappings.size(), b->mappings.size());
  for (size_t i = 0; i < a->mappings.size(); ++i) {
    EXPECT_TRUE(a->mappings[i].SameAssignment(b->mappings[i]));
    EXPECT_DOUBLE_EQ(a->mappings[i].delta, b->mappings[i].delta);
  }
}

}  // namespace
}  // namespace xsm::core
