// Tests for the future-work extensions wired into the core pipeline:
// partial mappings (§2.3), cluster-quality ordering (§7), huge-cluster
// splitting (§4) and the lexical cluster distance (§7).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/bellflower.h"
#include "core/preservation.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::core {
namespace {

using schema::SchemaForest;
using schema::SchemaTree;

SchemaForest MakeRepo() {
  SchemaForest f;
  // Tree 0: complete region (useful).
  f.AddTree(*schema::ParseTreeSpec(
      "person(name,contact(address,email),phone)"));
  // Tree 1: partial region (no email anywhere -> never useful).
  f.AddTree(*schema::ParseTreeSpec("card(name,address(city,zip))"));
  // Tree 2: noise.
  f.AddTree(*schema::ParseTreeSpec("engine(piston,valve)"));
  return f;
}

SchemaTree Personal() { return *schema::ParseTreeSpec("name(address,email)"); }

MatchOptions BaseOptions() {
  MatchOptions o;
  o.element.threshold = 0.55;
  o.delta = 0.5;
  o.clustering = ClusteringMode::kTreeClusters;
  return o;
}

TEST(PartialMappingsTest, DisabledByDefault) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  auto r = system.Match(Personal(), BaseOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->partial_mappings.empty());
  EXPECT_EQ(r->stats.num_partial_mappings, 0u);
}

TEST(PartialMappingsTest, RecoveredFromNonUsefulClusters) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  MatchOptions o = BaseOptions();
  o.include_partial_mappings = true;
  o.partial.delta = 0.3;
  o.partial.min_assigned = 2;
  auto r = system.Match(Personal(), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->partial_mappings.size(), 0u);
  EXPECT_EQ(r->stats.num_partial_mappings, r->partial_mappings.size());
  for (const auto& pm : r->partial_mappings) {
    EXPECT_EQ(pm.tree, 1);  // only the card tree is partial-capable
    EXPECT_GE(pm.assigned_count, 2);
    EXPECT_LT(pm.Coverage(), 1.0);
    EXPECT_GE(pm.delta, 0.3);
    // Ranked descending.
  }
  for (size_t i = 1; i < r->partial_mappings.size(); ++i) {
    EXPECT_GE(r->partial_mappings[i - 1].delta,
              r->partial_mappings[i].delta);
  }
  // Complete mappings are unaffected by the extension.
  auto base = system.Match(Personal(), BaseOptions());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->mappings.size(), r->mappings.size());
}

TEST(ClusterOrderTest, SameResultsFasterFirstMapping) {
  // A larger synthetic corpus so ordering has something to reorder.
  repo::SyntheticRepoOptions ro;
  ro.target_elements = 3000;
  ro.seed = 17;
  auto repo = repo::GenerateSyntheticRepository(ro);
  ASSERT_TRUE(repo.ok());
  Bellflower system(&*repo);

  MatchOptions natural;
  natural.element.threshold = 0.5;
  natural.delta = 0.75;
  natural.clustering = ClusteringMode::kKMeans;
  natural.kmeans.join_distance = 3;
  MatchOptions ranked = natural;
  ranked.cluster_order = ClusterOrder::kQualityDescending;

  auto rn = system.Match(*schema::ParseTreeSpec("name(address,email)"),
                         natural);
  auto rq = system.Match(*schema::ParseTreeSpec("name(address,email)"),
                         ranked);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(rq.ok());

  // Identical result sets (ordering only changes the traversal).
  ASSERT_EQ(rn->mappings.size(), rq->mappings.size());
  std::set<std::pair<schema::TreeId, std::vector<schema::NodeId>>> a;
  std::set<std::pair<schema::TreeId, std::vector<schema::NodeId>>> b;
  for (const auto& m : rn->mappings) a.insert({m.tree, m.images});
  for (const auto& m : rq->mappings) b.insert({m.tree, m.images});
  EXPECT_EQ(a, b);

  // Quality ordering should find its first mapping with no more clusters
  // than natural order (usually strictly fewer).
  if (!rq->mappings.empty()) {
    EXPECT_LE(rq->stats.clusters_until_first_mapping,
              rn->stats.clusters_until_first_mapping);
    EXPECT_GE(rq->stats.clusters_until_first_mapping, 1u);
  }
}

TEST(SplitReclusteringTest, EnforcesMaxClusterSize) {
  repo::SyntheticRepoOptions ro;
  ro.target_elements = 3000;
  ro.seed = 23;
  auto repo = repo::GenerateSyntheticRepository(ro);
  ASSERT_TRUE(repo.ok());
  Bellflower system(&*repo);
  MatchOptions o;
  o.element.threshold = 0.5;
  o.delta = 0.75;
  o.clustering = ClusteringMode::kKMeans;
  o.kmeans.join_distance = 4;  // large clusters
  o.kmeans.max_cluster_size = 10;
  auto r = system.Match(*schema::ParseTreeSpec("name(address,email)"), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const auto& summary : r->stats.cluster_summaries) {
    EXPECT_LE(summary.num_points, 10u);
  }
  EXPECT_GT(r->stats.kmeans.clusters_split, 0u);
}

TEST(LexicalDistanceTest, RunsAndStaysSubsetOfBaseline) {
  repo::SyntheticRepoOptions ro;
  ro.target_elements = 3000;
  ro.seed = 29;
  auto repo = repo::GenerateSyntheticRepository(ro);
  ASSERT_TRUE(repo.ok());
  Bellflower system(&*repo);
  SchemaTree personal = *schema::ParseTreeSpec("name(address,email)");

  MatchOptions baseline;
  baseline.element.threshold = 0.5;
  baseline.delta = 0.75;
  baseline.clustering = ClusteringMode::kTreeClusters;
  auto rb = system.Match(personal, baseline);
  ASSERT_TRUE(rb.ok());

  MatchOptions lexical = baseline;
  lexical.clustering = ClusteringMode::kKMeans;
  lexical.kmeans.distance = cluster::ClusterDistance::kPathAndName;
  lexical.kmeans.name_weight = 2.0;
  auto rl = system.Match(personal, lexical);
  ASSERT_TRUE(rl.ok()) << rl.status().ToString();
  EXPECT_TRUE(IsSubsetOf(rl->mappings, rb->mappings));
  EXPECT_GT(rl->stats.num_clusters, 0u);
}

TEST(TimeToFirstTest, CountersPopulated) {
  SchemaForest repo = MakeRepo();
  Bellflower system(&repo);
  auto r = system.Match(Personal(), BaseOptions());
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->mappings.empty());
  EXPECT_GE(r->stats.clusters_until_first_mapping, 1u);
  EXPECT_GT(r->stats.partials_until_first_mapping, 0u);
  EXPECT_LE(r->stats.partials_until_first_mapping,
            r->stats.generator.partial_mappings);
}

TEST(AdaptiveTopNTest, SameTopNWithLessWork) {
  repo::SyntheticRepoOptions ro;
  ro.target_elements = 4000;
  ro.seed = 41;
  auto repo = repo::GenerateSyntheticRepository(ro);
  ASSERT_TRUE(repo.ok());
  Bellflower system(&*repo);
  SchemaTree personal = *schema::ParseTreeSpec("name(address,email)");

  MatchOptions full;
  full.element.threshold = 0.5;
  full.delta = 0.75;
  full.clustering = ClusteringMode::kTreeClusters;

  MatchOptions adaptive = full;
  adaptive.top_n = 10;
  adaptive.adaptive_top_n = true;

  MatchOptions truncate_only = full;
  truncate_only.top_n = 10;
  truncate_only.adaptive_top_n = false;

  auto rf = system.Match(personal, full);
  auto ra = system.Match(personal, adaptive);
  auto rt = system.Match(personal, truncate_only);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rt.ok());
  ASSERT_GE(rf->mappings.size(), 10u);

  // The adaptive run returns exactly the same top N as plain truncation.
  ASSERT_EQ(ra->mappings.size(), 10u);
  ASSERT_EQ(rt->mappings.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(ra->mappings[i].SameAssignment(rt->mappings[i])) << i;
    EXPECT_DOUBLE_EQ(ra->mappings[i].delta, rt->mappings[i].delta);
  }
  // And it does no more work (strictly less on multi-cluster corpora).
  EXPECT_LE(ra->stats.generator.partial_mappings,
            rt->stats.generator.partial_mappings);
}

}  // namespace
}  // namespace xsm::core
