// ClusterOrder::kQualityDescending coverage (paper §7 future work (2)):
// quality ordering must not change the result set, only reach the first
// mapping with no more work than the natural repository order.
#include <gtest/gtest.h>

#include "core/bellflower.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"

namespace xsm::core {
namespace {

class ClusterOrderQualityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The §5 experiment shape at reduced scale: seeded, deterministic.
    repo::SyntheticRepoOptions options;
    options.target_elements = 4000;
    options.seed = 2006;
    auto forest = repo::GenerateSyntheticRepository(options);
    ASSERT_TRUE(forest.ok()) << forest.status().ToString();
    forest_ = new schema::SchemaForest(std::move(*forest));
    system_ = new Bellflower(forest_);
    auto personal = schema::ParseTreeSpec("name(address,email)");
    ASSERT_TRUE(personal.ok());
    personal_ = new schema::SchemaTree(std::move(*personal));
  }

  static void TearDownTestSuite() {
    delete personal_;
    personal_ = nullptr;
    delete system_;
    system_ = nullptr;
    delete forest_;
    forest_ = nullptr;
  }

  static MatchOptions Options(ClusterOrder order) {
    MatchOptions options;
    // Selective δ: only a few clusters can produce mappings at all — the
    // regime where ordering matters (bench_ablation_cluster_order shape).
    options.delta = 0.95;
    options.kmeans.join_distance = 3;
    options.cluster_order = order;
    return options;
  }

  static schema::SchemaForest* forest_;
  static Bellflower* system_;
  static schema::SchemaTree* personal_;
};

schema::SchemaForest* ClusterOrderQualityTest::forest_ = nullptr;
Bellflower* ClusterOrderQualityTest::system_ = nullptr;
schema::SchemaTree* ClusterOrderQualityTest::personal_ = nullptr;

TEST_F(ClusterOrderQualityTest, QualityOrderReachesFirstMappingNoLater) {
  auto natural = system_->Match(*personal_, Options(ClusterOrder::kNatural));
  ASSERT_TRUE(natural.ok()) << natural.status().ToString();
  auto quality =
      system_->Match(*personal_, Options(ClusterOrder::kQualityDescending));
  ASSERT_TRUE(quality.ok()) << quality.status().ToString();

  // The ordering must matter in this configuration at all.
  ASSERT_FALSE(natural->mappings.empty());
  ASSERT_GT(natural->stats.num_useful_clusters, 1u);

  // Identical ranked result sets: ordering affects when mappings are
  // found, never which.
  ASSERT_EQ(quality->mappings.size(), natural->mappings.size());
  for (size_t i = 0; i < natural->mappings.size(); ++i) {
    EXPECT_EQ(quality->mappings[i].tree, natural->mappings[i].tree) << i;
    EXPECT_EQ(quality->mappings[i].images, natural->mappings[i].images) << i;
    EXPECT_EQ(quality->mappings[i].delta, natural->mappings[i].delta) << i;
  }

  // §7 claim: the quality order does no more work before its first mapping.
  EXPECT_LE(quality->stats.clusters_until_first_mapping,
            natural->stats.clusters_until_first_mapping);
  EXPECT_LE(quality->stats.partials_until_first_mapping,
            natural->stats.partials_until_first_mapping);
}

}  // namespace
}  // namespace xsm::core
