#include "core/execution_control.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/bellflower.h"
#include "core/match_observer.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"

namespace xsm::core {
namespace {

// --- ExecutionControl / ExecutionMonitor unit tests ------------------------

TEST(CancelTokenTest, CopiesShareOneFlag) {
  CancelToken token;
  CancelToken copy = token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(copy.cancelled());
  copy.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
  copy.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(ExecutionMonitorTest, NullAndUnlimitedControlNeverStop) {
  ExecutionMonitor null_monitor;
  EXPECT_FALSE(null_monitor.ShouldStop());

  ExecutionControl control;
  EXPECT_FALSE(control.limited());
  ExecutionMonitor monitor(control);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(monitor.ShouldStop());
  }
  EXPECT_EQ(monitor.status(), ExecutionStatus::kCompleted);
}

TEST(ExecutionMonitorTest, CancellationIsDetectedAndSticky) {
  ExecutionControl control;
  ExecutionMonitor monitor(control);
  EXPECT_FALSE(monitor.ShouldStop());
  control.cancel.Cancel();
  EXPECT_TRUE(monitor.ShouldStop());
  EXPECT_EQ(monitor.status(), ExecutionStatus::kCancelled);
  EXPECT_TRUE(monitor.stopped());
  EXPECT_TRUE(monitor.ShouldStop());  // sticky
}

TEST(ExecutionMonitorTest, EarlyStopBudgetCountsEmittedMappings) {
  ExecutionControl control;
  control.stop_after_n_mappings = 2;
  EXPECT_TRUE(control.limited());
  ExecutionMonitor monitor(control);
  EXPECT_FALSE(monitor.ShouldStop());
  monitor.RecordEmitted();
  EXPECT_FALSE(monitor.ShouldStop());  // budget not yet consumed
  monitor.RecordEmitted();
  EXPECT_TRUE(monitor.ShouldStop());  // the 2nd mapping is kept, then stop
  EXPECT_EQ(monitor.status(), ExecutionStatus::kEarlyStopped);
  EXPECT_EQ(monitor.emitted(), 2u);
}

TEST(ExecutionMonitorTest, ExpiredDeadlineStopsOnFirstCheck) {
  ExecutionControl control = ExecutionControl::WithDeadline(-1.0);
  ExecutionMonitor monitor(control);
  EXPECT_TRUE(monitor.ShouldStop());
  EXPECT_EQ(monitor.status(), ExecutionStatus::kDeadlineExceeded);
}

TEST(ExecutionMonitorTest, FarDeadlineDoesNotStop) {
  ExecutionControl control = ExecutionControl::WithDeadline(3600.0);
  ExecutionMonitor monitor(control);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(monitor.ShouldStop());
  }
}

TEST(ExecutionStatusTest, NamesAreStable) {
  EXPECT_EQ(ExecutionStatusName(ExecutionStatus::kCompleted), "completed");
  EXPECT_EQ(ExecutionStatusName(ExecutionStatus::kCancelled), "cancelled");
  EXPECT_EQ(ExecutionStatusName(ExecutionStatus::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(ExecutionStatusName(ExecutionStatus::kEarlyStopped),
            "early_stopped");
}

// --- Streaming Bellflower runs ---------------------------------------------

/// Records every callback for assertions; optionally cancels after the
/// first mapping.
class RecordingObserver : public MatchObserver {
 public:
  void OnClusterStart(size_t sequence, size_t total,
                      const ClusterSummary& summary) override {
    (void)summary;
    starts.push_back(sequence);
    totals.push_back(total);
  }
  void OnClusterFinish(size_t sequence, size_t total,
                       const ClusterSummary& summary,
                       const MatchStats& stats_so_far) override {
    (void)total;
    (void)summary;
    finishes.push_back(sequence);
    mappings_so_far.push_back(stats_so_far.num_mappings);
  }
  void OnMapping(const generate::SchemaMapping& mapping,
                 size_t running_rank) override {
    mappings.push_back(mapping);
    ranks.push_back(running_rank);
    if (cancel_after_first_mapping) cancel_after_first_mapping->Cancel();
  }
  void OnPartialMapping(const generate::PartialMapping& partial) override {
    (void)partial;
    ++partials;
  }
  void OnFinish(const MatchResult& result) override {
    ++finish_calls;
    final_execution = result.execution;
  }

  std::vector<size_t> starts;
  std::vector<size_t> totals;
  std::vector<size_t> finishes;
  std::vector<size_t> mappings_so_far;
  std::vector<generate::SchemaMapping> mappings;
  std::vector<size_t> ranks;
  size_t partials = 0;
  size_t finish_calls = 0;
  ExecutionStatus final_execution = ExecutionStatus::kCompleted;
  const CancelToken* cancel_after_first_mapping = nullptr;
};

class StreamingMatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo::SyntheticRepoOptions options;
    options.target_elements = 2000;
    options.seed = 7;
    auto forest = repo::GenerateSyntheticRepository(options);
    ASSERT_TRUE(forest.ok()) << forest.status().ToString();
    forest_ = new schema::SchemaForest(std::move(*forest));
    system_ = new Bellflower(forest_);
    auto personal = schema::ParseTreeSpec("name(address,email)");
    ASSERT_TRUE(personal.ok());
    personal_ = new schema::SchemaTree(std::move(*personal));
  }

  static void TearDownTestSuite() {
    delete personal_;
    personal_ = nullptr;
    delete system_;
    system_ = nullptr;
    delete forest_;
    forest_ = nullptr;
  }

  static MatchOptions Options() {
    MatchOptions options;
    options.delta = 0.6;
    return options;  // top_n = 0: keep everything, no trimming
  }

  static void ExpectSameMappings(
      const std::vector<generate::SchemaMapping>& got,
      const std::vector<generate::SchemaMapping>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].tree, want[i].tree) << i;
      EXPECT_EQ(got[i].images, want[i].images) << i;
      EXPECT_EQ(got[i].delta, want[i].delta) << i;
      EXPECT_EQ(got[i].delta_sim, want[i].delta_sim) << i;
      EXPECT_EQ(got[i].delta_path, want[i].delta_path) << i;
      EXPECT_EQ(got[i].total_path_length, want[i].total_path_length) << i;
    }
  }

  static schema::SchemaForest* forest_;
  static Bellflower* system_;
  static schema::SchemaTree* personal_;
};

schema::SchemaForest* StreamingMatchTest::forest_ = nullptr;
Bellflower* StreamingMatchTest::system_ = nullptr;
schema::SchemaTree* StreamingMatchTest::personal_ = nullptr;

// Acceptance criterion: an uninterrupted streaming run is byte-identical to
// the blocking API, and the observer saw every mapping and every useful
// cluster exactly once.
TEST_F(StreamingMatchTest, UninterruptedStreamingIsByteIdenticalToBlocking) {
  auto blocking = system_->Match(*personal_, Options());
  ASSERT_TRUE(blocking.ok()) << blocking.status().ToString();
  ASSERT_FALSE(blocking->mappings.empty());
  EXPECT_EQ(blocking->execution, ExecutionStatus::kCompleted);

  RecordingObserver observer;
  auto streaming =
      system_->Match(*personal_, Options(), ExecutionControl(), &observer);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  EXPECT_EQ(streaming->execution, ExecutionStatus::kCompleted);
  ExpectSameMappings(streaming->mappings, blocking->mappings);

  // Every emitted mapping was observed (unsorted emission order), and the
  // cluster callbacks pair up over all useful clusters.
  EXPECT_EQ(observer.mappings.size(), blocking->mappings.size());
  EXPECT_EQ(observer.starts.size(),
            blocking->stats.num_useful_clusters);
  EXPECT_EQ(observer.finishes, observer.starts);
  for (size_t total : observer.totals) {
    EXPECT_EQ(total, blocking->stats.num_useful_clusters);
  }
  // Running ranks are 1-based and bounded by the count found so far, and
  // the incremental num_mappings snapshots are non-decreasing.
  for (size_t i = 0; i < observer.ranks.size(); ++i) {
    EXPECT_GE(observer.ranks[i], 1u);
    EXPECT_LE(observer.ranks[i], i + 1);
  }
  for (size_t i = 1; i < observer.mappings_so_far.size(); ++i) {
    EXPECT_GE(observer.mappings_so_far[i], observer.mappings_so_far[i - 1]);
  }
  EXPECT_EQ(observer.mappings_so_far.empty()
                ? 0
                : observer.mappings_so_far.back(),
            blocking->mappings.size());
  EXPECT_EQ(observer.finish_calls, 1u);
  EXPECT_EQ(observer.final_execution, ExecutionStatus::kCompleted);
}

TEST_F(StreamingMatchTest, PreCancelledRunDoesNoWork) {
  ExecutionControl control;
  control.cancel.Cancel();
  auto result = system_->Match(*personal_, Options(), control);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, ExecutionStatus::kCancelled);
  EXPECT_TRUE(result->mappings.empty());
  EXPECT_EQ(result->stats.generator.partial_mappings, 0u);
}

TEST_F(StreamingMatchTest, CancelFromObserverReturnsPartialResults) {
  auto blocking = system_->Match(*personal_, Options());
  ASSERT_TRUE(blocking.ok());
  ASSERT_GT(blocking->mappings.size(), 1u);

  ExecutionControl control;
  RecordingObserver observer;
  observer.cancel_after_first_mapping = &control.cancel;
  auto result = system_->Match(*personal_, Options(), control, &observer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, ExecutionStatus::kCancelled);
  // The cancel landed after the first mapping, at most one expansion later:
  // something was found, but less than the full run.
  EXPECT_GE(result->mappings.size(), 1u);
  EXPECT_LT(result->mappings.size(), blocking->mappings.size());
  EXPECT_EQ(observer.finish_calls, 1u);
  EXPECT_EQ(observer.final_execution, ExecutionStatus::kCancelled);
  // Partial results are genuine mappings of the full run.
  for (const auto& mapping : result->mappings) {
    bool found = false;
    for (const auto& reference : blocking->mappings) {
      if (mapping.SameAssignment(reference)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(StreamingMatchTest, ExpiredDeadlineInGenerationPhase) {
  ClusterStateOptions state_options = ClusterStateOptions::From(Options());
  auto state = system_->BuildClusterState(*personal_, state_options);
  ASSERT_TRUE(state.ok());

  auto result = system_->MatchWithState(*personal_, *state, Options(),
                                        ExecutionControl::WithDeadline(-1.0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, ExecutionStatus::kDeadlineExceeded);
  EXPECT_TRUE(result->mappings.empty());
  // The deadline fired before any generator ran.
  EXPECT_EQ(result->stats.generator.partial_mappings, 0u);
}

TEST_F(StreamingMatchTest, StopAfterOneMappingEarlyStops) {
  auto blocking = system_->Match(*personal_, Options());
  ASSERT_TRUE(blocking.ok());
  ASSERT_GT(blocking->mappings.size(), 1u);

  ExecutionControl control;
  control.stop_after_n_mappings = 1;
  auto result = system_->Match(*personal_, Options(), control);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, ExecutionStatus::kEarlyStopped);
  ASSERT_EQ(result->mappings.size(), 1u);
  // Strictly less search work than the full run.
  EXPECT_LT(result->stats.generator.partial_mappings,
            blocking->stats.generator.partial_mappings);
  bool found = false;
  for (const auto& reference : blocking->mappings) {
    if (result->mappings[0].SameAssignment(reference)) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(StreamingMatchTest, BudgetLargerThanResultSetCompletes) {
  auto blocking = system_->Match(*personal_, Options());
  ASSERT_TRUE(blocking.ok());

  ExecutionControl control;
  control.stop_after_n_mappings = blocking->mappings.size() + 100;
  auto result = system_->Match(*personal_, Options(), control);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->execution, ExecutionStatus::kCompleted);
  ExpectSameMappings(result->mappings, blocking->mappings);
}

TEST_F(StreamingMatchTest, PartialMappingsStreamToObserver) {
  MatchOptions options = Options();
  options.include_partial_mappings = true;
  options.partial.delta = 0.45;

  RecordingObserver observer;
  auto result =
      system_->Match(*personal_, options, ExecutionControl(), &observer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->execution, ExecutionStatus::kCompleted);
  EXPECT_EQ(observer.partials, result->partial_mappings.size());
}

}  // namespace
}  // namespace xsm::core
