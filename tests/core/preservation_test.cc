#include "core/preservation.h"

#include <gtest/gtest.h>

namespace xsm::core {
namespace {

using generate::SchemaMapping;

SchemaMapping M(schema::TreeId tree, std::vector<schema::NodeId> images,
                double delta) {
  SchemaMapping m;
  m.tree = tree;
  m.images = std::move(images);
  m.delta = delta;
  return m;
}

TEST(PreservationCurveTest, FullPreservation) {
  std::vector<SchemaMapping> base{M(0, {1}, 0.8), M(0, {2}, 0.9)};
  auto curve = PreservationCurve(base, base, 0.75, 1.0, 6);
  ASSERT_EQ(curve.size(), 6u);
  EXPECT_DOUBLE_EQ(curve.front().delta, 0.75);
  EXPECT_DOUBLE_EQ(curve.back().delta, 1.0);
  for (const auto& p : curve) {
    EXPECT_DOUBLE_EQ(p.preserved, 1.0);
    EXPECT_EQ(p.baseline_count, p.clustered_count);
  }
}

TEST(PreservationCurveTest, PartialPreservationCounts) {
  // Baseline: deltas {0.76, 0.8, 0.9, 0.95}; clustered keeps top two.
  std::vector<SchemaMapping> base{M(0, {1}, 0.76), M(0, {2}, 0.8),
                                  M(0, {3}, 0.9), M(0, {4}, 0.95)};
  std::vector<SchemaMapping> clus{M(0, {3}, 0.9), M(0, {4}, 0.95)};
  auto curve = PreservationCurve(base, clus, 0.75, 1.0, 6);
  // δ=0.75: 2/4. δ=0.85: 2/2. δ=1.0: 0/0 → defined as 1.
  EXPECT_DOUBLE_EQ(curve[0].preserved, 0.5);
  EXPECT_EQ(curve[0].baseline_count, 4u);
  EXPECT_EQ(curve[0].clustered_count, 2u);
  EXPECT_DOUBLE_EQ(curve[2].preserved, 1.0);  // δ=0.85
  EXPECT_DOUBLE_EQ(curve[5].preserved, 1.0);  // empty baseline
  EXPECT_EQ(curve[5].baseline_count, 0u);
}

TEST(PreservationCurveTest, ThresholdBoundaryIsInclusive) {
  std::vector<SchemaMapping> base{M(0, {1}, 0.8)};
  auto curve = PreservationCurve(base, {}, 0.8, 0.8001, 2);
  EXPECT_EQ(curve[0].baseline_count, 1u);  // Δ ≥ 0.8 includes 0.8
  EXPECT_DOUBLE_EQ(curve[0].preserved, 0.0);
}

TEST(IsSubsetOfTest, Basics) {
  std::vector<SchemaMapping> base{M(0, {1, 2}, 0.8), M(1, {3, 4}, 0.9)};
  std::vector<SchemaMapping> sub{M(1, {3, 4}, 0.9)};
  std::vector<SchemaMapping> other{M(2, {1, 2}, 0.8)};
  EXPECT_TRUE(IsSubsetOf(sub, base));
  EXPECT_TRUE(IsSubsetOf({}, base));
  EXPECT_TRUE(IsSubsetOf(base, base));
  EXPECT_FALSE(IsSubsetOf(other, base));
  EXPECT_FALSE(IsSubsetOf(base, sub));
}

TEST(IsSubsetOfTest, ComparesAssignmentNotScore) {
  std::vector<SchemaMapping> base{M(0, {1, 2}, 0.8)};
  std::vector<SchemaMapping> rescored{M(0, {1, 2}, 0.5)};
  EXPECT_TRUE(IsSubsetOf(rescored, base));
}

}  // namespace
}  // namespace xsm::core
