// End-to-end integration tests: schema text → parsed forest → (serialized
// round trip) → clustered matching → query rewriting, plus cross-stage
// consistency checks the unit suites cannot see.
#include <gtest/gtest.h>

#include <string>

#include "core/bellflower.h"
#include "core/preservation.h"
#include "query/xpath.h"
#include "repo/loader.h"
#include "schema/serialization.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"
#include "xml/xsd_parser.h"

namespace xsm {
namespace {

constexpr char kLibraryDtd[] = R"(
<!ELEMENT lib (book*, address)>
<!ELEMENT book (data, shelf?)>
<!ELEMENT data (title, authorName)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authorName (#PCDATA)>
<!ELEMENT shelf (#PCDATA)>
<!ELEMENT address (#PCDATA)>
)";

constexpr char kBookstoreXsd[] = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="bookstore">
    <xs:complexType><xs:sequence>
      <xs:element name="book" maxOccurs="unbounded">
        <xs:complexType><xs:sequence>
          <xs:element name="title" type="xs:string"/>
          <xs:element name="author" type="xs:string"/>
          <xs:element name="price" type="xs:decimal"/>
        </xs:sequence></xs:complexType>
      </xs:element>
      <xs:element name="location" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>)";

constexpr char kGarageXsd[] = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="garage">
    <xs:complexType><xs:sequence>
      <xs:element name="car" maxOccurs="unbounded">
        <xs:complexType><xs:sequence>
          <xs:element name="plate" type="xs:string"/>
          <xs:element name="owner" type="xs:string"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>)";

schema::SchemaForest BuildRepository() {
  schema::SchemaForest forest;
  auto loaded =
      repo::LoadSchemaText(kLibraryDtd, "dtd", "library.dtd", &forest);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  loaded = repo::LoadSchemaText(kBookstoreXsd, "xsd", "bookstore.xsd",
                                &forest);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  loaded = repo::LoadSchemaText(kGarageXsd, "xsd", "garage.xsd", &forest);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return forest;
}

TEST(PipelineIntegrationTest, ParseMatchRewrite) {
  schema::SchemaForest repo = BuildRepository();
  ASSERT_EQ(repo.num_trees(), 3u);
  ASSERT_TRUE(repo.Validate().ok());

  schema::SchemaTree personal =
      *schema::ParseTreeSpec("book(title,author)");
  core::Bellflower system(&repo);
  core::MatchOptions options;
  options.element.threshold = 0.5;
  options.delta = 0.55;
  options.clustering = core::ClusteringMode::kTreeClusters;
  auto result = system.Match(personal, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->mappings.size(), 2u);

  // The bookstore (exact names, tight structure) must beat the library
  // (authorName under an extra 'data' hop); the garage must not appear.
  EXPECT_EQ(repo.source(result->mappings[0].tree), "bookstore.xsd");
  for (const auto& m : result->mappings) {
    EXPECT_NE(repo.source(m.tree), "garage.xsd");
  }

  // Rewrite the paper's query over the best and second-best mapping.
  auto query = query::ParseXPath("/book[title=\"Iliad\"]/author");
  ASSERT_TRUE(query.ok());
  auto best = query::RewriteQuery(*query, personal, result->mappings[0],
                                  repo);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best->ToString(),
            "/bookstore/book[title=\"Iliad\"]/author");
  // Find the library mapping with title+authorName images.
  bool found_library_rewrite = false;
  for (const auto& m : result->mappings) {
    if (repo.source(m.tree) != "library.dtd") continue;
    auto rewritten = query::RewriteQuery(*query, personal, m, repo);
    ASSERT_TRUE(rewritten.ok());
    if (rewritten->ToString() ==
        "/lib/book[data/title=\"Iliad\"]/data/authorName") {
      found_library_rewrite = true;
    }
  }
  EXPECT_TRUE(found_library_rewrite);
}

TEST(PipelineIntegrationTest, SerializationPreservesMatchResults) {
  schema::SchemaForest repo = BuildRepository();
  auto round_tripped =
      schema::DeserializeForest(schema::SerializeForest(repo));
  ASSERT_TRUE(round_tripped.ok());

  schema::SchemaTree personal =
      *schema::ParseTreeSpec("book(title,author)");
  core::MatchOptions options;
  options.element.threshold = 0.5;
  options.delta = 0.5;
  options.clustering = core::ClusteringMode::kTreeClusters;

  core::Bellflower original(&repo);
  core::Bellflower restored(&*round_tripped);
  auto a = original.Match(personal, options);
  auto b = restored.Match(personal, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->mappings.size(), b->mappings.size());
  for (size_t i = 0; i < a->mappings.size(); ++i) {
    EXPECT_TRUE(a->mappings[i].SameAssignment(b->mappings[i]));
    EXPECT_DOUBLE_EQ(a->mappings[i].delta, b->mappings[i].delta);
  }
}

TEST(PipelineIntegrationTest, ClusteredSubsetHoldsOnParsedCorpus) {
  schema::SchemaForest repo = BuildRepository();
  schema::SchemaTree personal =
      *schema::ParseTreeSpec("book(title,author)");
  core::Bellflower system(&repo);

  core::MatchOptions baseline;
  baseline.element.threshold = 0.5;
  baseline.delta = 0.5;
  baseline.clustering = core::ClusteringMode::kTreeClusters;
  auto rb = system.Match(personal, baseline);
  ASSERT_TRUE(rb.ok());

  core::MatchOptions clustered = baseline;
  clustered.clustering = core::ClusteringMode::kKMeans;
  clustered.kmeans.join_distance = 2;
  clustered.kmeans.min_cluster_size = 2;
  auto rc = system.Match(personal, clustered);
  ASSERT_TRUE(rc.ok());
  EXPECT_TRUE(core::IsSubsetOf(rc->mappings, rb->mappings));
}

TEST(PipelineIntegrationTest, InternalDtdSubsetFlowsThrough) {
  // A full XML document whose DOCTYPE carries the schema declarations.
  constexpr char kDoc[] =
      "<!DOCTYPE note [\n"
      "<!ELEMENT note (to, from, body)>\n"
      "<!ELEMENT to (#PCDATA)>\n"
      "<!ELEMENT from (#PCDATA)>\n"
      "<!ELEMENT body (#PCDATA)>\n"
      "]>\n"
      "<note><to>a</to><from>b</from><body>c</body></note>";
  auto doc = xml::ParseXml(kDoc);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_FALSE(doc->internal_dtd.empty());
  auto dtd = xml::ParseDtd(doc->internal_dtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto trees = xml::DtdToSchemaTrees(*dtd);
  ASSERT_TRUE(trees.ok());
  ASSERT_EQ(trees->size(), 1u);
  EXPECT_EQ((*trees)[0].name(0), "note");
  EXPECT_EQ((*trees)[0].size(), 4u);
}

TEST(PipelineIntegrationTest, ErrorsPropagateNotCrash) {
  schema::SchemaForest forest;
  // Broken inputs at every stage return Status errors.
  EXPECT_FALSE(repo::LoadSchemaText("<!ELEMENT", "dtd", "x", &forest,
                                    {.lenient = false})
                   .ok());
  EXPECT_FALSE(repo::LoadSchemaText("<broken", "xsd", "x", &forest).ok());
  EXPECT_FALSE(schema::DeserializeForest("garbage").ok());
  EXPECT_FALSE(query::ParseXPath("not-an-xpath").ok());

  schema::SchemaForest repo = BuildRepository();
  core::Bellflower system(&repo);
  core::MatchOptions bad;
  bad.delta = 2.0;
  EXPECT_FALSE(
      system.Match(*schema::ParseTreeSpec("book"), bad).ok());
}

}  // namespace
}  // namespace xsm
