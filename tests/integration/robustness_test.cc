// Robustness / failure-injection property tests: the parsers must return a
// Status (ok or error) on arbitrarily mutated input — never crash, hang,
// or trip sanitizers.
#include <gtest/gtest.h>

#include <string>

#include "schema/serialization.h"
#include "util/random.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"
#include "xml/xsd_parser.h"

namespace xsm {
namespace {

constexpr char kXmlSeed[] = R"(<?xml version="1.0"?>
<!DOCTYPE lib [<!ELEMENT lib (book*)>]>
<lib a="1" b='2'>
  <!-- comment --> text &amp; entities &#65;
  <book isbn="x"><title>T</title><![CDATA[raw <>]]></book>
</lib>)";

constexpr char kDtdSeed[] = R"dtd(
<!ELEMENT lib (book*, address?)>
<!ATTLIST book isbn CDATA #REQUIRED kind (a|b) "a">
<!ELEMENT book (#PCDATA | title)*>
<!ENTITY copy "(c)">
)dtd";

constexpr char kXsdSeed[] = R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T"><xs:sequence>
    <xs:element name="b" type="xs:string" minOccurs="0"/>
  </xs:sequence></xs:complexType>
</xs:schema>)";

constexpr char kForestSeed[] =
    "#xsm-forest v1\ntree src\nnode 0 -1 E - root\nnode 1 0 A ro x "
    "CDATA\nend\n";

// Applies `count` random byte mutations (overwrite / insert / delete).
std::string Mutate(std::string input, int count, Rng* rng) {
  const std::string charset = "<>!&;\"'()[]#%| abcdeXYZ0129\n\t";
  for (int i = 0; i < count && !input.empty(); ++i) {
    size_t pos = rng->Uniform(input.size());
    switch (rng->Uniform(3)) {
      case 0:
        input[pos] = charset[rng->Uniform(charset.size())];
        break;
      case 1:
        input.insert(pos, 1, charset[rng->Uniform(charset.size())]);
        break;
      case 2:
        input.erase(pos, 1);
        break;
    }
  }
  return input;
}

class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, XmlParserNeverCrashes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(kXmlSeed, 1 + trial % 12, &rng);
    auto result = xml::ParseXml(mutated);
    if (result.ok()) {
      EXPECT_NE(result->root, nullptr);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(ParserRobustnessTest, DtdParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x1111);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(kDtdSeed, 1 + trial % 12, &rng);
    // Lenient mode must always succeed (skipping bad declarations).
    auto lenient = xml::ParseDtd(mutated);
    EXPECT_TRUE(lenient.ok());
    if (lenient.ok()) {
      auto trees = xml::DtdToSchemaTrees(*lenient);
      if (trees.ok()) {
        for (const auto& t : *trees) EXPECT_TRUE(t.Validate().ok());
      }
    }
    // Strict mode may fail, but must not crash.
    (void)xml::ParseDtd(mutated, {.lenient = false});
  }
}

TEST_P(ParserRobustnessTest, XsdParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x2222);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(kXsdSeed, 1 + trial % 12, &rng);
    auto result = xml::ParseXsd(mutated);
    if (result.ok()) {
      for (const auto& t : result->trees) EXPECT_TRUE(t.Validate().ok());
    }
  }
}

TEST_P(ParserRobustnessTest, ForestDeserializerNeverCrashes) {
  Rng rng(GetParam() ^ 0x3333);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(kForestSeed, 1 + trial % 8, &rng);
    auto result = schema::DeserializeForest(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

TEST_P(ParserRobustnessTest, TreeSpecParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x4444);
  const std::string seed = "lib(book(@isbn,title,data(shelf)),address)";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seed, 1 + trial % 6, &rng);
    auto result = schema::ParseTreeSpec(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(RobustnessTest, DeepNestingIsBounded) {
  // Deeply nested XML: the parser is recursive over elements; make sure a
  // pathological but realistic depth works.
  std::string open;
  std::string close;
  for (int i = 0; i < 2000; ++i) {
    open += "<a>";
    close += "</a>";
  }
  auto result = xml::ParseXml(open + close);
  EXPECT_TRUE(result.ok());

  // DTD expansion depth is capped by max_depth.
  std::string dtd;
  for (int i = 0; i < 200; ++i) {
    dtd += "<!ELEMENT e" + std::to_string(i) + " (e" +
           std::to_string(i + 1) + ")>\n";
  }
  dtd += "<!ELEMENT e200 (#PCDATA)>\n";
  auto parsed = xml::ParseDtd(dtd);
  ASSERT_TRUE(parsed.ok());
  xml::DtdToSchemaOptions options;
  options.max_depth = 64;
  EXPECT_FALSE(xml::DtdToSchemaTrees(*parsed, options).ok());
  options.max_depth = 1024;
  EXPECT_TRUE(xml::DtdToSchemaTrees(*parsed, options).ok());
}

TEST(RobustnessTest, HugeAttributeAndNameLengths) {
  std::string long_name(5000, 'x');
  auto doc = xml::ParseXml("<" + long_name + " attr=\"" +
                           std::string(10000, 'y') + "\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name.size(), 5000u);
}

}  // namespace
}  // namespace xsm
