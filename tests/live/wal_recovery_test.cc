// The crash-point sweep — the acceptance test of the WAL subsystem. A
// scripted workload (boot → checkpoint → journal deltas → mid-script
// checkpoint+compaction → more deltas) runs under a FaultInjectionEnv
// killed at EVERY operation boundary and at sampled byte offsets; after
// each simulated kill, recovery from whatever the "disk" holds must yield
// a repository fingerprint-identical to the uninterrupted chain at some
// generation >= the last acknowledged one (no acknowledged delta lost),
// and finishing the remaining deltas must converge to the exact reference
// end state. Damaged artifacts (as opposed to crash-torn ones) are
// refused typed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "live/delta_codec.h"
#include "live/repository_delta.h"
#include "live/repository_manager.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "store/snapshot_store.h"
#include "util/io.h"
#include "wal/wal.h"

namespace xsm::live {
namespace {

namespace fs = std::filesystem;
using util::io::Env;
using util::io::FaultInjectionEnv;
using util::io::FaultPlan;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("xsm_wal_recovery_" + tag + "_" +
              std::to_string(static_cast<unsigned>(getpid()))))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string File(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

schema::SchemaForest MakeCorpus(size_t elements, uint64_t seed) {
  repo::SyntheticRepoOptions options;
  options.target_elements = elements;
  options.seed = seed;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok()) << forest.status().ToString();
  return std::move(*forest);
}

schema::SchemaForest DeepCopy(const schema::SchemaForest& forest) {
  schema::SchemaForest copy;
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    copy.AddTree(schema::SchemaTree(forest.tree(t)), forest.source(t));
  }
  return copy;
}

schema::SchemaTree Spec(const std::string& spec) {
  auto tree = schema::ParseTreeSpec(spec);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

/// The six-delta workload every test in this file replays. Targets are
/// chosen to stay in range along the whole chain.
std::vector<RepositoryDelta> MakeDeltas() {
  std::vector<RepositoryDelta> deltas;
  auto build = [&deltas](DeltaBuilder&& builder) {
    auto delta = builder.Build();
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    deltas.push_back(std::move(*delta));
  };
  DeltaBuilder d0;
  d0.AddTree(Spec("invoice(total,customer(name,address))"), "feed://d0");
  build(std::move(d0));
  DeltaBuilder d1;
  d1.ReplaceTree(0, Spec("vendor(id,name,address(street,city))"),
                 "feed://d1");
  build(std::move(d1));
  DeltaBuilder d2;
  d2.RemoveTree(1);
  build(std::move(d2));
  DeltaBuilder d3;
  d3.AddTree(Spec("order(id,lines(line(sku,qty)))"), "feed://d3a");
  d3.AddTree(Spec("shipment(id,carrier,@tracking)"), "feed://d3b");
  build(std::move(d3));
  DeltaBuilder d4;
  d4.ReplaceTree(2, Spec("payment(amount,method,@currency)"), "feed://d4");
  build(std::move(d4));
  DeltaBuilder d5;
  d5.RemoveTree(0);
  build(std::move(d5));
  return deltas;
}

std::string ForestSpec(const schema::SchemaForest& forest) {
  std::string out;
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    out += schema::ToTreeSpec(forest.tree(t));
    out += " <- ";
    out += forest.source(t);
    out += "\n";
  }
  return out;
}

/// The uninterrupted chain: fingerprint per generation plus the final
/// forest, computed once per suite.
struct Reference {
  std::vector<uint64_t> fingerprint;  ///< indexed by generation, 0..N
  std::string final_spec;
};

Reference BuildReference(const schema::SchemaForest& base,
                         const std::vector<RepositoryDelta>& deltas) {
  Reference ref;
  auto manager = RepositoryManager::Create(DeepCopy(base));
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  ref.fingerprint.push_back((*manager)->Current()->fingerprint());
  for (const auto& delta : deltas) {
    auto report = (*manager)->Apply(delta);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    ref.fingerprint.push_back(report->fingerprint);
  }
  ref.final_spec = ForestSpec((*manager)->Current()->forest());
  return ref;
}

/// What one faulted run of the workload acknowledged before it "died".
struct ScriptOutcome {
  uint64_t acked_generation = 0;  ///< highest generation Apply returned OK
  bool initial_save_ok = false;   ///< the gen-0 checkpoint became durable
};

/// Runs the workload under `env` until an operation fails (the simulated
/// kill) or the script ends. Checkpoint at generation 0, deltas 0-2,
/// checkpoint + compaction, deltas 3-5.
ScriptOutcome RunScript(Env* env, const schema::SchemaForest& base,
                        const std::vector<RepositoryDelta>& deltas,
                        const std::string& snap_path,
                        const std::string& wal_path) {
  ScriptOutcome outcome;
  auto manager = RepositoryManager::Create(DeepCopy(base));
  EXPECT_TRUE(manager.ok());
  if (!store::SaveSnapshotToFile(*(*manager)->Current(), snap_path, env)
           .ok()) {
    return outcome;
  }
  outcome.initial_save_ok = true;
  if (!(*manager)->AttachWal(env, wal_path).ok()) return outcome;
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (i == 3 && !(*manager)->SaveSnapshot(snap_path).ok()) return outcome;
    auto report = (*manager)->Apply(deltas[i]);
    if (!report.ok()) return outcome;
    outcome.acked_generation = report->generation;
  }
  return outcome;
}

/// Recovery + convergence assertions for one crash point. Returns the
/// recovery report's replay count for callers that assert on it.
void ExpectRecoverable(const ScriptOutcome& outcome,
                       const std::vector<RepositoryDelta>& deltas,
                       const Reference& ref, const std::string& snap_path,
                       const std::string& wal_path,
                       const std::string& label) {
  RecoveryReport report;
  auto recovered = RepositoryManager::Recover(Env::Default(), snap_path,
                                              wal_path, &report);
  if (!outcome.initial_save_ok) {
    // Nothing was ever acknowledged; an unbootable state dir is fine.
    ASSERT_EQ(outcome.acked_generation, 0u) << label;
    if (!recovered.ok()) return;
  }
  ASSERT_TRUE(recovered.ok()) << label << ": " << recovered.status().ToString();
  const uint64_t gen = (*recovered)->CurrentGeneration();

  // No acknowledged delta lost; anything extra was durable-but-unacked.
  EXPECT_GE(gen, outcome.acked_generation) << label;
  ASSERT_LT(gen, ref.fingerprint.size()) << label;
  EXPECT_EQ((*recovered)->Current()->fingerprint(), ref.fingerprint[gen])
      << label << ": recovered generation " << gen
      << " diverges from the uninterrupted chain";
  EXPECT_EQ(report.recovered_generation, gen) << label;

  // Finishing the workload converges to the exact reference end state.
  for (size_t i = gen; i < deltas.size(); ++i) {
    auto applied = (*recovered)->Apply(deltas[i]);
    ASSERT_TRUE(applied.ok())
        << label << ": resuming delta " << i << ": "
        << applied.status().ToString();
    EXPECT_EQ(applied->fingerprint, ref.fingerprint[i + 1]) << label;
  }
  EXPECT_EQ(ForestSpec((*recovered)->Current()->forest()), ref.final_spec)
      << label;
}

class WalRecoveryTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new schema::SchemaForest(MakeCorpus(300, 11));
    ASSERT_GE(base_->num_trees(), 4u)
        << "workload targets need at least 4 base trees";
    deltas_ = new std::vector<RepositoryDelta>(MakeDeltas());
    ref_ = new Reference(BuildReference(*base_, *deltas_));
    ASSERT_EQ(ref_->fingerprint.size(), deltas_->size() + 1);
  }
  static void TearDownTestSuite() {
    delete ref_;
    delete deltas_;
    delete base_;
    ref_ = nullptr;
    deltas_ = nullptr;
    base_ = nullptr;
  }

  static schema::SchemaForest* base_;
  static std::vector<RepositoryDelta>* deltas_;
  static Reference* ref_;
};

schema::SchemaForest* WalRecoveryTest::base_ = nullptr;
std::vector<RepositoryDelta>* WalRecoveryTest::deltas_ = nullptr;
Reference* WalRecoveryTest::ref_ = nullptr;

TEST_F(WalRecoveryTest, UninterruptedChainRecoversExactly) {
  TempDir dir("clean");
  const std::string snap = dir.File("t.snap");
  const std::string wal = dir.File("t.wal");
  ScriptOutcome outcome =
      RunScript(Env::Default(), *base_, *deltas_, snap, wal);
  EXPECT_EQ(outcome.acked_generation, deltas_->size());

  RecoveryReport report;
  auto recovered =
      RepositoryManager::Recover(Env::Default(), snap, wal, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->CurrentGeneration(), deltas_->size());
  EXPECT_EQ((*recovered)->Current()->fingerprint(),
            ref_->fingerprint.back());
  EXPECT_EQ(ForestSpec((*recovered)->Current()->forest()), ref_->final_spec);
  // The mid-script checkpoint landed at generation 3; only 4-6 replay.
  EXPECT_EQ(report.snapshot_generation, 3u);
  EXPECT_EQ(report.records_replayed, 3u);
  EXPECT_EQ(report.records_skipped, 0u);
  EXPECT_FALSE(report.torn_tail);
}

// The sweep: kill the workload after every single filesystem operation.
TEST_F(WalRecoveryTest, CrashSweepEveryOperationBoundary) {
  // Probe run discovers the op universe.
  TempDir probe_dir("probe_ops");
  FaultInjectionEnv probe{FaultPlan{}};
  ScriptOutcome full = RunScript(&probe, *base_, *deltas_,
                                 probe_dir.File("t.snap"),
                                 probe_dir.File("t.wal"));
  ASSERT_EQ(full.acked_generation, deltas_->size());
  const int64_t total_ops = probe.stats().ops;
  ASSERT_GT(total_ops, 20) << "suspiciously few ops for six journaled "
                              "deltas and two checkpoints";

  for (int64_t k = 0; k < total_ops; ++k) {
    TempDir dir("ops_" + std::to_string(k));
    const std::string snap = dir.File("t.snap");
    const std::string wal = dir.File("t.wal");
    FaultPlan plan;
    plan.crash_after_ops = k;
    FaultInjectionEnv env(plan);
    ScriptOutcome outcome = RunScript(&env, *base_, *deltas_, snap, wal);
    ASSERT_TRUE(env.crashed()) << "op budget " << k << " never exhausted";
    ExpectRecoverable(outcome, *deltas_, *ref_, snap, wal,
                      "crash_after_ops=" + std::to_string(k));
  }
}

// The same sweep at sampled byte offsets: kills land mid-write, tearing
// whatever the current append was.
TEST_F(WalRecoveryTest, CrashSweepSampledByteOffsets) {
  TempDir probe_dir("probe_bytes");
  FaultInjectionEnv probe{FaultPlan{}};
  (void)RunScript(&probe, *base_, *deltas_, probe_dir.File("t.snap"),
                  probe_dir.File("t.wal"));
  const int64_t total_bytes = probe.stats().bytes_appended;
  ASSERT_GT(total_bytes, 0);

  // A prime stride keeps the sample points from snapping to structure.
  const int64_t stride = std::max<int64_t>(1, total_bytes / 41) | 1;
  for (int64_t at = 0; at < total_bytes; at += stride) {
    TempDir dir("byte_" + std::to_string(at));
    const std::string snap = dir.File("t.snap");
    const std::string wal = dir.File("t.wal");
    FaultPlan plan;
    plan.crash_at_byte = at;
    FaultInjectionEnv env(plan);
    ScriptOutcome outcome = RunScript(&env, *base_, *deltas_, snap, wal);
    ASSERT_TRUE(env.crashed()) << "byte budget " << at << " never reached";
    ExpectRecoverable(outcome, *deltas_, *ref_, snap, wal,
                      "crash_at_byte=" + std::to_string(at));
  }
}

// A compaction that fails (rename refused, not a crash) must keep
// journaling into the old file; recovery then skips the pre-checkpoint
// records — the records_skipped path, exercised end to end.
TEST_F(WalRecoveryTest, FailedCompactionKeepsJournalingRecoverySkips) {
  TempDir dir("compaction");
  const std::string snap = dir.File("t.snap");
  const std::string wal = dir.File("t.wal");
  // Rename ordinals: #0 initial snapshot save, #1 AttachWal Create,
  // #2 mid-script snapshot save, #3 the compaction Create.
  FaultPlan plan;
  plan.fail_rename_at = 3;
  FaultInjectionEnv env(plan);

  auto manager = RepositoryManager::Create(DeepCopy(*base_));
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(
      store::SaveSnapshotToFile(*(*manager)->Current(), snap, &env).ok());
  ASSERT_TRUE((*manager)->AttachWal(&env, wal).ok());
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE((*manager)->Apply((*deltas_)[i]).ok());
  }
  auto saved = (*manager)->SaveSnapshot(snap);
  ASSERT_FALSE(saved.ok()) << "compaction rename was supposed to fail";
  EXPECT_NE(saved.status().message().find("injected rename failure"),
            std::string::npos)
      << saved.status().ToString();
  // The snapshot itself IS durable (its rename preceded the failure) and
  // the old journal keeps accepting acknowledged deltas.
  for (size_t i = 3; i < deltas_->size(); ++i) {
    ASSERT_TRUE((*manager)->Apply((*deltas_)[i]).ok());
  }
  manager->reset();  // SIGKILL: no final save

  RecoveryReport report;
  auto recovered =
      RepositoryManager::Recover(Env::Default(), snap, wal, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.snapshot_generation, 3u);
  EXPECT_EQ(report.records_skipped, 3u) << "pre-checkpoint records";
  EXPECT_EQ(report.records_replayed, 3u);
  EXPECT_EQ((*recovered)->CurrentGeneration(), deltas_->size());
  EXPECT_EQ((*recovered)->Current()->fingerprint(),
            ref_->fingerprint.back());
}

// Damage (as opposed to crash artifacts) is refused typed, never served.
TEST_F(WalRecoveryTest, DamagedJournalsAreRefusedTyped) {
  TempDir dir("damage");
  const std::string snap = dir.File("t.snap");
  const std::string wal = dir.File("t.wal");
  ScriptOutcome outcome =
      RunScript(Env::Default(), *base_, *deltas_, snap, wal);
  ASSERT_EQ(outcome.acked_generation, deltas_->size());
  auto pristine = Env::Default()->ReadFileToString(wal);
  ASSERT_TRUE(pristine.ok());

  auto expect_corruption = [&](const std::string& bytes,
                               const std::string& what) {
    ASSERT_TRUE(util::io::AtomicFileWriter::WriteFileAtomic(
                    Env::Default(), wal, bytes)
                    .ok());
    auto recovered = RepositoryManager::Recover(Env::Default(), snap, wal);
    ASSERT_FALSE(recovered.ok()) << what;
    EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption)
        << what << ": " << recovered.status().ToString();
  };

  // Bit flip inside the first complete record's payload.
  {
    std::string damaged = *pristine;
    damaged[wal::kWalHeaderSize + wal::kWalRecordFrameSize + 4] ^= 0x20;
    expect_corruption(damaged, "payload bit flip");
  }

  // A dropped record leaves a generation gap the replay must refuse.
  {
    auto read = wal::ParseWal(*pristine);
    ASSERT_TRUE(read.ok());
    ASSERT_GE(read->records.size(), 2u);
    const size_t first_len =
        wal::kWalRecordFrameSize + read->records[0].payload.size();
    std::string gapped =
        pristine->substr(0, wal::kWalHeaderSize) +
        pristine->substr(wal::kWalHeaderSize + first_len);
    ASSERT_TRUE(util::io::AtomicFileWriter::WriteFileAtomic(
                    Env::Default(), wal, gapped)
                    .ok());
    auto recovered = RepositoryManager::Recover(Env::Default(), snap, wal);
    ASSERT_FALSE(recovered.ok());
    EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
    EXPECT_NE(recovered.status().message().find("journal gap"),
              std::string::npos)
        << recovered.status().ToString();
  }

  // A journal based past the snapshot's generation: unrecoverable window.
  {
    auto writer = wal::WalWriter::Create(
        Env::Default(), wal, /*base_generation=*/99, /*fingerprint=*/1);
    ASSERT_TRUE(writer.ok());
    auto recovered = RepositoryManager::Recover(Env::Default(), snap, wal);
    ASSERT_FALSE(recovered.ok());
    EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
    EXPECT_NE(recovered.status().message().find("begins at generation"),
              std::string::npos);
  }
}

// Service-level recovery: MatchService::Recover returns a chain that
// answers queries identically to the uninterrupted service.
TEST_F(WalRecoveryTest, RecoveredServiceAnswersQueriesIdentically) {
  TempDir dir("queries");
  const std::string snap = dir.File("t.snap");
  const std::string wal = dir.File("t.wal");

  service::MatchServiceOptions options;
  options.num_threads = 2;

  // Interrupted run: kill after a mid-chain op boundary (discovered so the
  // kill lands between the checkpoint and the last delta).
  TempDir probe_dir("queries_probe");
  FaultInjectionEnv probe{FaultPlan{}};
  (void)RunScript(&probe, *base_, *deltas_, probe_dir.File("t.snap"),
                  probe_dir.File("t.wal"));
  FaultPlan plan;
  plan.crash_after_ops = probe.stats().ops - 2;
  FaultInjectionEnv env(plan);
  ScriptOutcome outcome = RunScript(&env, *base_, *deltas_, snap, wal);
  ASSERT_TRUE(env.crashed());

  RecoveryReport report;
  auto recovered_service =
      service::MatchService::Recover(Env::Default(), snap, wal, options,
                                     &report);
  ASSERT_TRUE(recovered_service.ok())
      << recovered_service.status().ToString();
  ASSERT_GE((*recovered_service)->CurrentGeneration(),
            outcome.acked_generation);
  ASSERT_TRUE((*recovered_service)->wal_attached());
  const uint64_t gen = (*recovered_service)->CurrentGeneration();
  EXPECT_EQ((*recovered_service)->CurrentSnapshot()->fingerprint(),
            ref_->fingerprint[gen]);

  // Reference service at the same generation, built uninterrupted.
  auto reference_manager = RepositoryManager::Create(DeepCopy(*base_));
  ASSERT_TRUE(reference_manager.ok());
  for (size_t i = 0; i < gen; ++i) {
    ASSERT_TRUE((*reference_manager)->Apply((*deltas_)[i]).ok());
  }
  service::MatchService reference(std::move(*reference_manager), options);

  const char* kQuerySpecs[] = {
      "name(address,email)",
      "customer(name,address(city,zip))",
      "order(id,lines)",
  };
  for (const char* spec : kQuerySpecs) {
    service::MatchQuery query;
    query.id = std::string("recovery:") + spec;
    query.personal = Spec(spec);
    query.options.delta = 0.6;
    auto got = (*recovered_service)->Match(query);
    auto want = reference.Match(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(got->mappings.size(), want->mappings.size()) << spec;
    for (size_t i = 0; i < got->mappings.size(); ++i) {
      EXPECT_EQ(got->mappings[i].tree, want->mappings[i].tree)
          << spec << " rank " << i;
      EXPECT_EQ(got->mappings[i].images, want->mappings[i].images)
          << spec << " rank " << i;
    }
  }

  // The recovered service keeps journaling: one more delta, one more kill,
  // one more recovery — still zero acknowledged loss.
  auto applied = (*recovered_service)->ApplyDelta((*deltas_)[gen]);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  recovered_service->reset();  // SIGKILL again
  auto again = service::MatchService::Recover(Env::Default(), snap, wal,
                                              options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->CurrentGeneration(), gen + 1);
  EXPECT_EQ((*again)->CurrentSnapshot()->fingerprint(),
            ref_->fingerprint[gen + 1]);
}

}  // namespace
}  // namespace xsm::live
