// RepositoryManager: generation semantics, copy-on-write reuse, and the
// incremental-equivalence suite — an incrementally maintained snapshot must
// be indistinguishable (fingerprint, name dictionary, structural index,
// and query-for-query match results) from a snapshot built from scratch on
// the post-delta forest, across add/replace/remove deltas and randomized
// forests.
#include "live/repository_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "live/repository_delta.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "service/repository_snapshot.h"
#include "util/random.h"

namespace xsm::live {
namespace {

using service::MatchQuery;
using service::MatchService;
using service::RepositorySnapshot;

const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "customer(name,address(city,zip))",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

schema::SchemaForest MakeCorpus(size_t elements, uint64_t seed) {
  repo::SyntheticRepoOptions options;
  options.target_elements = elements;
  options.seed = seed;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok()) << forest.status().ToString();
  return std::move(*forest);
}

/// Deep copy: fresh payload objects with equal content, so comparisons can
/// never pass by pointer identity alone.
schema::SchemaForest DeepCopy(const schema::SchemaForest& forest) {
  schema::SchemaForest copy;
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    copy.AddTree(schema::SchemaTree(forest.tree(t)), forest.source(t));
  }
  return copy;
}

/// A content-visible mutation of one tree: rename one node and flip one
/// optionality bit.
schema::SchemaTree MutateTree(const schema::SchemaTree& tree, Rng* rng) {
  schema::SchemaTree mutated = tree;
  schema::NodeId victim = static_cast<schema::NodeId>(
      rng->Uniform(static_cast<uint64_t>(tree.size())));
  schema::NodeProperties* props = mutated.mutable_props(victim);
  props->name += "V2";
  props->optional = !props->optional;
  return mutated;
}

void ExpectDictionariesEqual(const match::NameDictionary& got,
                             const match::NameDictionary& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.total_nodes(), want.total_nodes());
  for (size_t i = 0; i < got.size(); ++i) {
    const match::NameDictionary::Entry& a = got.entry(i);
    const match::NameDictionary::Entry& b = want.entry(i);
    EXPECT_EQ(a.name, b.name) << "entry " << i;
    EXPECT_EQ(a.lower, b.lower) << "entry " << i;
    EXPECT_EQ(a.element_nodes, b.element_nodes) << "entry " << i;
    EXPECT_EQ(a.attribute_nodes, b.attribute_nodes) << "entry " << i;
    EXPECT_EQ(a.representative, b.representative) << "entry " << i;
    EXPECT_EQ(got.Find(a.name), i);
  }
}

void ExpectIndexesEqual(const label::ForestIndex& got,
                        const label::ForestIndex& want,
                        const schema::SchemaForest& forest) {
  ASSERT_EQ(got.num_trees(), want.num_trees());
  EXPECT_EQ(got.max_diameter(), want.max_diameter());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    const label::TreeIndex& a = got.tree(t);
    const label::TreeIndex& b = want.tree(t);
    ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "tree " << t;
    EXPECT_EQ(a.diameter(), b.diameter()) << "tree " << t;
    EXPECT_EQ(a.height(), b.height()) << "tree " << t;
    const schema::NodeId n =
        static_cast<schema::NodeId>(forest.tree(t).size());
    for (schema::NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(a.depth(u), b.depth(u)) << "tree " << t << " node " << u;
      for (schema::NodeId v = u; v < n; ++v) {
        ASSERT_EQ(a.Distance(u, v), b.Distance(u, v))
            << "tree " << t << " pair (" << u << "," << v << ")";
        ASSERT_EQ(a.Lca(u, v), b.Lca(u, v))
            << "tree " << t << " pair (" << u << "," << v << ")";
      }
    }
  }
}

void ExpectSameMatchResults(const core::MatchResult& got,
                            const core::MatchResult& want) {
  ASSERT_EQ(got.mappings.size(), want.mappings.size());
  for (size_t i = 0; i < got.mappings.size(); ++i) {
    const generate::SchemaMapping& a = got.mappings[i];
    const generate::SchemaMapping& b = want.mappings[i];
    ASSERT_EQ(a.tree, b.tree) << "rank " << i;
    ASSERT_EQ(a.images, b.images) << "rank " << i;
    ASSERT_EQ(a.delta, b.delta) << "rank " << i;
    ASSERT_EQ(a.delta_sim, b.delta_sim) << "rank " << i;
    ASSERT_EQ(a.delta_path, b.delta_path) << "rank " << i;
  }
  EXPECT_EQ(got.stats.num_mappings, want.stats.num_mappings);
  EXPECT_EQ(got.stats.num_clusters, want.stats.num_clusters);
}

/// The full equivalence check: `snapshot` (incrementally maintained) versus
/// a from-scratch snapshot over a deep copy of the same forest.
void ExpectEquivalentToScratch(
    const std::shared_ptr<const RepositorySnapshot>& snapshot) {
  auto scratch = RepositorySnapshot::Create(DeepCopy(snapshot->forest()));
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();

  // Content fingerprint: equal despite entirely different payload objects.
  EXPECT_EQ(snapshot->fingerprint(), (*scratch)->fingerprint());

  ExpectDictionariesEqual(snapshot->name_dictionary(),
                          (*scratch)->name_dictionary());
  ExpectIndexesEqual(snapshot->index(), (*scratch)->index(),
                     snapshot->forest());

  // Query-for-query: identical mappings, ranks, and scores.
  MatchService incremental(snapshot);
  MatchService fresh(*scratch);
  for (size_t s = 0; s < kNumSpecs; ++s) {
    MatchQuery query;
    query.id = "eq-" + std::to_string(s);
    query.personal = *schema::ParseTreeSpec(kSpecs[s]);
    query.options.delta = 0.6;
    query.options.top_n = 10;
    auto got = incremental.Match(query);
    auto want = fresh.Match(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ExpectSameMatchResults(*got, *want);
  }
}

TEST(RepositoryManagerTest, GenerationChainAndAtomicSwap) {
  auto manager = RepositoryManager::Create(MakeCorpus(400, 11));
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  std::shared_ptr<const RepositorySnapshot> gen0 = (*manager)->Current();
  EXPECT_EQ(gen0->generation(), 0u);
  EXPECT_EQ((*manager)->CurrentGeneration(), 0u);

  DeltaBuilder builder;
  builder.AddTree(*schema::ParseTreeSpec("invoice(total,customer)"),
                  "feed:invoice");
  auto report = (*manager)->Apply(*builder.Build());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 1u);
  EXPECT_EQ((*manager)->CurrentGeneration(), 1u);

  // The old snapshot is untouched and still fully usable; the new one is a
  // different object with the old trees shared.
  std::shared_ptr<const RepositorySnapshot> gen1 = (*manager)->Current();
  ASSERT_NE(gen0, gen1);
  EXPECT_EQ(gen0->generation(), 0u);
  EXPECT_EQ(gen0->num_trees() + 1, gen1->num_trees());
  EXPECT_NE(gen0->fingerprint(), gen1->fingerprint());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(gen0->num_trees()); ++t) {
    EXPECT_EQ(gen0->forest().tree_ptr(t), gen1->forest().tree_ptr(t));
    EXPECT_EQ(gen0->tree_fingerprint(t), gen1->tree_fingerprint(t));
  }
  EXPECT_EQ(report->trees_reused, gen0->num_trees());
  EXPECT_EQ(report->trees_rebuilt, 1u);
}

TEST(RepositoryManagerTest, UntouchedTreesShareIndexState) {
  auto manager = RepositoryManager::Create(MakeCorpus(600, 12));
  ASSERT_TRUE(manager.ok());
  std::shared_ptr<const RepositorySnapshot> gen0 = (*manager)->Current();
  const size_t trees = gen0->num_trees();
  ASSERT_GE(trees, 3u);

  Rng rng(1);
  DeltaBuilder builder;
  builder.ReplaceTree(0, MutateTree(gen0->forest().tree(0), &rng));
  auto report = (*manager)->Apply(*builder.Build());
  ASSERT_TRUE(report.ok());
  std::shared_ptr<const RepositorySnapshot> gen1 = (*manager)->Current();

  // Exactly one tree was rebuilt; every other tree's labeling structure is
  // the same shared object, not a recomputed copy.
  EXPECT_EQ(report->trees_rebuilt, 1u);
  EXPECT_EQ(report->trees_reused, trees - 1);
  EXPECT_NE(gen1->index().tree_ptr(0), gen0->index().tree_ptr(0));
  for (schema::TreeId t = 1; t < static_cast<schema::TreeId>(trees); ++t) {
    EXPECT_EQ(gen1->index().tree_ptr(t), gen0->index().tree_ptr(t)) << t;
  }
  // The dictionary recomputed folds only for vocabulary the mutation
  // introduced (the "V2" rename), never for carried-over names.
  EXPECT_LE(report->name_entries_computed, 1u);
  EXPECT_GT(report->name_entries_copied, 0u);
}

TEST(RepositoryManagerTest, ApplyErrorLeavesCurrentUnchanged) {
  auto manager = RepositoryManager::Create(MakeCorpus(300, 13));
  ASSERT_TRUE(manager.ok());
  std::shared_ptr<const RepositorySnapshot> before = (*manager)->Current();

  DeltaBuilder builder;
  builder.RemoveTree(static_cast<schema::TreeId>(before->num_trees()));
  auto report = (*manager)->Apply(*builder.Build());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ((*manager)->Current(), before);
  EXPECT_EQ((*manager)->CurrentGeneration(), 0u);
}

TEST(RepositoryManagerTest, SuccessorRejectsForgedReuseMap) {
  auto snapshot = RepositorySnapshot::Create(MakeCorpus(300, 14));
  ASSERT_TRUE(snapshot.ok());
  // A forest whose tree 0 merely *equals* the base tree 0 (deep copy, no
  // sharing) must not pass as "reused": the certificate is payload
  // identity.
  schema::SchemaForest forged = DeepCopy((*snapshot)->forest());
  std::vector<schema::TreeId> reuse_map(forged.num_trees());
  for (size_t t = 0; t < reuse_map.size(); ++t) {
    reuse_map[t] = static_cast<schema::TreeId>(t);
  }
  auto successor =
      RepositorySnapshot::CreateSuccessor(*snapshot, std::move(forged),
                                          reuse_map);
  ASSERT_FALSE(successor.ok());
  EXPECT_EQ(successor.status().code(), StatusCode::kInvalidArgument);
}

// The acceptance-criterion suite: randomized forests, randomized
// add/replace/remove deltas, every generation checked equivalent to a
// from-scratch build.
TEST(RepositoryManagerTest, RandomizedDeltasStayEquivalentToScratch) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto manager = RepositoryManager::Create(MakeCorpus(350, seed));
    ASSERT_TRUE(manager.ok());
    // Donor corpus supplying genuinely new trees for adds.
    schema::SchemaForest donors = MakeCorpus(200, seed + 100);
    Rng rng(seed * 977);

    size_t next_donor = 0;
    for (int round = 0; round < 4; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      std::shared_ptr<const RepositorySnapshot> current =
          (*manager)->Current();
      const size_t trees = current->num_trees();
      ASSERT_GT(trees, 0u);

      DeltaBuilder builder;
      // One of each kind per round, targets drawn at random (distinct by
      // construction: replace draws from the front half, remove from the
      // back half).
      if (next_donor < donors.num_trees()) {
        builder.AddTree(
            donors.tree_ptr(static_cast<schema::TreeId>(next_donor)),
            "donor:" + std::to_string(next_donor));
        ++next_donor;
      }
      schema::TreeId replace_target =
          static_cast<schema::TreeId>(rng.Uniform(trees / 2 + 1));
      builder.ReplaceTree(replace_target,
                          MutateTree(current->forest().tree(replace_target),
                                     &rng));
      // The back-half window [trees/2 + 1, trees - 1) is empty below five
      // trees (Uniform would get a zero bound); skip the removal then.
      if (trees >= 5) {
        schema::TreeId remove_target = static_cast<schema::TreeId>(
            trees / 2 + 1 + rng.Uniform(trees - trees / 2 - 2));
        builder.RemoveTree(remove_target);
      }
      auto delta = builder.Build();
      ASSERT_TRUE(delta.ok()) << delta.status().ToString();

      auto report = (*manager)->Apply(*delta);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->generation, static_cast<uint64_t>(round + 1));
      // Copy-on-write really happened: untouched trees were not rebuilt.
      EXPECT_EQ(report->trees_rebuilt,
                delta->num_adds() + delta->num_replaces());
      EXPECT_EQ(report->trees_reused,
                trees - delta->num_replaces() - delta->num_removes());

      ExpectEquivalentToScratch((*manager)->Current());
    }
  }
}

}  // namespace
}  // namespace xsm::live
