#include "live/repository_delta.h"

#include <gtest/gtest.h>

#include <utility>

#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::live {
namespace {

schema::SchemaTree Tree(const char* spec) {
  auto tree = schema::ParseTreeSpec(spec);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

schema::SchemaForest BaseForest() {
  schema::SchemaForest forest;
  forest.AddTree(Tree("book(title,author)"), "book.xsd");
  forest.AddTree(Tree("person(name,phone)"), "person.xsd");
  forest.AddTree(Tree("order(item(price),customer)"), "order.xsd");
  return forest;
}

TEST(DeltaBuilderTest, BuildsValidatedBatch) {
  DeltaBuilder builder;
  builder.AddTree(Tree("invoice(total)"), "feed")
      .ReplaceTree(1, Tree("person(name,email)"))
      .RemoveTree(2);
  ASSERT_TRUE(builder.status().ok());
  auto delta = builder.Build();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->size(), 3u);
  EXPECT_EQ(delta->num_adds(), 1u);
  EXPECT_EQ(delta->num_replaces(), 1u);
  EXPECT_EQ(delta->num_removes(), 1u);
}

TEST(DeltaBuilderTest, RejectsEmptyDelta) {
  DeltaBuilder builder;
  auto delta = builder.Build();
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaBuilderTest, RejectsEmptyTree) {
  DeltaBuilder builder;
  builder.AddTree(schema::SchemaTree());
  auto delta = builder.Build();
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaBuilderTest, RejectsNullSharedTree) {
  DeltaBuilder builder;
  builder.AddTree(std::shared_ptr<const schema::SchemaTree>());
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DeltaBuilderTest, RejectsDuplicateTargets) {
  {
    DeltaBuilder builder;
    builder.ReplaceTree(1, Tree("a(b)")).RemoveTree(1);
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    DeltaBuilder builder;
    builder.RemoveTree(0).RemoveTree(0);
    EXPECT_FALSE(builder.Build().ok());
  }
  // Distinct targets are fine.
  {
    DeltaBuilder builder;
    builder.RemoveTree(0).RemoveTree(1);
    EXPECT_TRUE(builder.Build().ok());
  }
}

TEST(DeltaBuilderTest, RejectsNegativeTargets) {
  DeltaBuilder builder;
  builder.RemoveTree(-1);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DeltaBuilderTest, BuildConsumesBuilder) {
  DeltaBuilder builder;
  builder.RemoveTree(0);
  ASSERT_TRUE(builder.Build().ok());
  auto second = builder.Build();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ApplyDeltaTest, AddAppendsAndSharesExistingTrees) {
  schema::SchemaForest base = BaseForest();
  DeltaBuilder builder;
  builder.AddTree(Tree("invoice(total,customer)"), "invoice.xsd");
  auto delta = builder.Build();
  ASSERT_TRUE(delta.ok());

  auto applied = ApplyDeltaToForest(base, *delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->forest.num_trees(), 4u);
  EXPECT_EQ(applied->trees_reused, 3u);
  ASSERT_EQ(applied->reuse_map.size(), 4u);
  EXPECT_EQ(applied->reuse_map[0], 0);
  EXPECT_EQ(applied->reuse_map[1], 1);
  EXPECT_EQ(applied->reuse_map[2], 2);
  EXPECT_EQ(applied->reuse_map[3], -1);
  // Copy-on-write: untouched payloads are the very same objects.
  for (schema::TreeId t = 0; t < 3; ++t) {
    EXPECT_EQ(applied->forest.tree_ptr(t), base.tree_ptr(t)) << t;
  }
  EXPECT_EQ(applied->forest.source(3), "invoice.xsd");
  EXPECT_EQ(applied->forest.tree(3).name(0), "invoice");
  // The base forest is untouched.
  EXPECT_EQ(base.num_trees(), 3u);
}

TEST(ApplyDeltaTest, ReplaceKeepsSlotRemoveCompacts) {
  schema::SchemaForest base = BaseForest();
  DeltaBuilder builder;
  builder.ReplaceTree(0, Tree("book(title,author,@isbn)"), "book2.xsd")
      .RemoveTree(1);
  auto delta = builder.Build();
  ASSERT_TRUE(delta.ok());

  auto applied = ApplyDeltaToForest(base, *delta);
  ASSERT_TRUE(applied.ok());
  ASSERT_EQ(applied->forest.num_trees(), 2u);
  EXPECT_EQ(applied->forest.tree(0).size(), 4u);  // the replacement
  EXPECT_EQ(applied->forest.source(0), "book2.xsd");
  EXPECT_EQ(applied->forest.tree(1).name(0), "order");  // shifted down
  EXPECT_EQ(applied->forest.tree_ptr(1), base.tree_ptr(2));
  ASSERT_EQ(applied->reuse_map.size(), 2u);
  EXPECT_EQ(applied->reuse_map[0], -1);
  EXPECT_EQ(applied->reuse_map[1], 2);
  EXPECT_EQ(applied->trees_reused, 1u);
  EXPECT_EQ(applied->forest.total_nodes(),
            base.total_nodes() + 1 /*@isbn*/ - 3 /*person tree*/);
}

TEST(ApplyDeltaTest, RejectsOutOfRangeTarget) {
  schema::SchemaForest base = BaseForest();
  DeltaBuilder builder;
  builder.RemoveTree(3);
  auto delta = builder.Build();
  ASSERT_TRUE(delta.ok());  // range is checked at apply time, per ISSUE
  auto applied = ApplyDeltaToForest(base, *delta);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApplyDeltaTest, RemoveEveryTreeThenAddYieldsFreshRepository) {
  schema::SchemaForest base = BaseForest();
  DeltaBuilder builder;
  builder.RemoveTree(0).RemoveTree(1).RemoveTree(2);
  builder.AddTree(Tree("catalog(entry)"));
  auto delta = builder.Build();
  ASSERT_TRUE(delta.ok());
  auto applied = ApplyDeltaToForest(base, *delta);
  ASSERT_TRUE(applied.ok());
  ASSERT_EQ(applied->forest.num_trees(), 1u);
  EXPECT_EQ(applied->forest.tree(0).name(0), "catalog");
  EXPECT_EQ(applied->trees_reused, 0u);
  EXPECT_EQ(applied->reuse_map[0], -1);
}

}  // namespace
}  // namespace xsm::live
