// Wire primitives: round trips, bounds-checked reads that latch sticky
// Corruption instead of overrunning, and CRC-32 reference vectors.
#include "util/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xsm::wire {
namespace {

TEST(WireTest, ScalarAndStringRoundTrip) {
  std::string bytes;
  Writer writer(&bytes);
  writer.U8(0xAB);
  writer.U32(0xDEADBEEFu);
  writer.U64(0x0123456789ABCDEFull);
  writer.I32(-42);
  writer.Str("hello");
  writer.Str("");

  Reader reader(bytes);
  EXPECT_EQ(reader.U8(), 0xAB);
  EXPECT_EQ(reader.U32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.I32(), -42);
  EXPECT_EQ(reader.Str(), "hello");
  EXPECT_EQ(reader.Str(), "");
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(WireTest, VectorRoundTrip) {
  std::string bytes;
  Writer writer(&bytes);
  std::vector<int32_t> ints = {0, -1, 1, INT32_MIN, INT32_MAX};
  std::vector<uint64_t> longs = {0, 1, UINT64_MAX};
  writer.I32Vec(ints);
  writer.U64Vec(longs);

  Reader reader(bytes);
  std::vector<int32_t> ints_out;
  std::vector<uint64_t> longs_out;
  EXPECT_TRUE(reader.I32Vec(&ints_out));
  EXPECT_TRUE(reader.U64Vec(&longs_out));
  EXPECT_EQ(ints_out, ints);
  EXPECT_EQ(longs_out, longs);
  EXPECT_TRUE(reader.ok());
}

TEST(WireTest, LittleEndianLayoutIsStable) {
  // The on-disk format is little-endian by definition; pin it so a file
  // written on one machine reads on any other.
  std::string bytes;
  Writer writer(&bytes);
  writer.U32(0x04030201u);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x04);
}

TEST(WireTest, UnderflowLatchesStickyCorruption) {
  std::string bytes;
  Writer writer(&bytes);
  writer.U32(7);

  Reader reader(bytes);
  EXPECT_EQ(reader.U32(), 7u);
  EXPECT_EQ(reader.U64(), 0u);  // past the end
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  // Every later read keeps failing quietly.
  EXPECT_EQ(reader.U8(), 0u);
  EXPECT_EQ(reader.Str(), "");
  std::vector<int32_t> v;
  EXPECT_FALSE(reader.I32Vec(&v));
  EXPECT_FALSE(reader.ok());
}

TEST(WireTest, HostileLengthPrefixCannotBalloon) {
  // A string/vector length far beyond the remaining bytes must fail
  // before allocating, not attempt a giant reserve.
  std::string bytes;
  Writer writer(&bytes);
  writer.U64(UINT64_MAX);  // claimed length
  writer.U32(0);           // a few real bytes

  Reader str_reader(bytes);
  EXPECT_EQ(str_reader.Str(), "");
  EXPECT_EQ(str_reader.status().code(), StatusCode::kCorruption);

  Reader vec_reader(bytes);
  std::vector<int32_t> v;
  EXPECT_FALSE(vec_reader.I32Vec(&v));
  EXPECT_EQ(vec_reader.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(v.empty());
}

TEST(WireTest, FailLatchesExternalError) {
  Reader reader("abc");
  reader.Fail("decoder saw an impossible value");
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(reader.U8(), 0u);
}

TEST(WireTest, Crc32cMatchesReferenceVectors) {
  // Standard CRC-32C (Castagnoli / iSCSI) test vectors.
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  // 32 zero bytes, RFC 3720 B.4.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(WireTest, Crc32cAgreesWithBitwiseReference) {
  // Long input exercising the hardware/slicing path against a bit-at-a-time
  // reference on every prefix class (short tails take the scalar path).
  std::string data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(static_cast<char>((i * 131 + 7) & 0xFF));
  }
  auto reference = [](std::string_view bytes) {
    uint32_t crc = 0xFFFFFFFFu;
    for (unsigned char c : bytes) {
      crc ^= c;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
    }
    return crc ^ 0xFFFFFFFFu;
  };
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 300u}) {
    EXPECT_EQ(Crc32c(std::string_view(data).substr(0, len)),
              reference(std::string_view(data).substr(0, len)))
        << "length " << len;
  }
}

TEST(WireTest, SingleByteFlipAlwaysChangesCrc) {
  std::string data = "snapshot section payload bytes";
  const uint32_t pristine = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = data;
      damaged[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(damaged), pristine)
          << "byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace xsm::wire
