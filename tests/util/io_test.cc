// util::io — the filesystem seam: RealEnv round trips with strerror
// detail in every error, AtomicFileWriter's all-or-nothing publication,
// and the FaultInjectionEnv schedules (short writes, ENOSPC, EINTR
// splits, fsync/rename failures, crash-at-byte, crash-after-ops) the
// crash-point sweep suites are built on.
#include "util/io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

namespace xsm::util::io {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("xsm_io_test_" + tag + "_" +
              std::to_string(static_cast<unsigned>(getpid()))))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string File(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string MustRead(Env* env, const std::string& path) {
  auto bytes = env->ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? *bytes : std::string();
}

// --- RealEnv ---------------------------------------------------------------

TEST(RealEnvTest, WriteReadRenameRemoveRoundTrip) {
  TempDir dir("real");
  Env* env = Env::Default();
  const std::string path = dir.File("a.txt");

  auto file = env->NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  EXPECT_TRUE(env->FileExists(path));
  EXPECT_EQ(MustRead(env, path), "hello world");
  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);

  // Append mode extends; truncate mode restarts.
  auto again = env->NewWritableFile(path, /*truncate=*/false);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE((*again)->Append("!").ok());
  ASSERT_TRUE((*again)->Close().ok());
  EXPECT_EQ(MustRead(env, path), "hello world!");

  ASSERT_TRUE(env->TruncateFile(path, 5).ok());
  EXPECT_EQ(MustRead(env, path), "hello");

  const std::string moved = dir.File("b.txt");
  ASSERT_TRUE(env->RenameFile(path, moved).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_EQ(MustRead(env, moved), "hello");

  ASSERT_TRUE(env->RemoveFile(moved).ok());
  EXPECT_FALSE(env->FileExists(moved));
}

TEST(RealEnvTest, ErrorsCarryStrerrorDetail) {
  TempDir dir("errors");
  Env* env = Env::Default();
  const std::string missing = dir.File("no/such/dir/file");

  auto bytes = env->ReadFileToString(missing);
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kIOError);
  EXPECT_NE(bytes.status().message().find("No such file"), std::string::npos)
      << bytes.status().ToString();

  Status rename = env->RenameFile(missing, dir.File("elsewhere"));
  ASSERT_FALSE(rename.ok());
  EXPECT_NE(rename.message().find("No such file"), std::string::npos)
      << rename.ToString();

  auto open = env->NewWritableFile(missing, /*truncate=*/true);
  ASSERT_FALSE(open.ok());
  EXPECT_NE(open.status().message().find("No such file"), std::string::npos)
      << open.status().ToString();
}

TEST(RealEnvTest, DirnameOf) {
  EXPECT_EQ(DirnameOf("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(DirnameOf("c.txt"), ".");
  EXPECT_EQ(DirnameOf("a/b"), "a");
}

// --- AtomicFileWriter ------------------------------------------------------

TEST(AtomicFileWriterTest, CommitPublishesExactBytes) {
  TempDir dir("atomic");
  Env* env = Env::Default();
  const std::string path = dir.File("out.bin");

  AtomicFileWriter writer(env, path);
  ASSERT_TRUE(writer.Append("part one ").ok());
  ASSERT_TRUE(writer.Append("part two").ok());
  EXPECT_FALSE(env->FileExists(path)) << "visible before Commit";
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(MustRead(env, path), "part one part two");
  EXPECT_FALSE(env->FileExists(writer.tmp_path())) << "tmp left behind";
}

TEST(AtomicFileWriterTest, AbortLeavesFinalNameUntouched) {
  TempDir dir("abort");
  Env* env = Env::Default();
  const std::string path = dir.File("out.bin");
  ASSERT_TRUE(AtomicFileWriter::WriteFileAtomic(env, path, "old").ok());

  {
    AtomicFileWriter writer(env, path);
    ASSERT_TRUE(writer.Append("new content, never committed").ok());
    // Destructor aborts.
  }
  EXPECT_EQ(MustRead(env, path), "old");
  // No stray tmp files either.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicFileWriterTest, FailedRenameKeepsOldFileAndCleansTmp) {
  TempDir dir("failrename");
  const std::string path = dir.File("out.bin");
  ASSERT_TRUE(
      AtomicFileWriter::WriteFileAtomic(Env::Default(), path, "old").ok());

  FaultPlan plan;
  plan.fail_rename_at = 0;
  FaultInjectionEnv env(plan);
  Status status = AtomicFileWriter::WriteFileAtomic(&env, path, "new");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("injected rename failure"),
            std::string::npos);
  EXPECT_EQ(MustRead(Env::Default(), path), "old");
}

TEST(AtomicFileWriterTest, FailedSyncKeepsOldFile) {
  TempDir dir("failsync");
  const std::string path = dir.File("out.bin");
  ASSERT_TRUE(
      AtomicFileWriter::WriteFileAtomic(Env::Default(), path, "old").ok());

  FaultPlan plan;
  plan.fail_sync_at = 0;
  FaultInjectionEnv env(plan);
  Status status = AtomicFileWriter::WriteFileAtomic(&env, path, "new");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("injected fsync failure"),
            std::string::npos);
  EXPECT_EQ(MustRead(Env::Default(), path), "old");
}

// --- FaultInjectionEnv -----------------------------------------------------

TEST(FaultInjectionTest, NthAppendFailsWithTornPrefix) {
  TempDir dir("shortwrite");
  const std::string path = dir.File("torn.bin");

  FaultPlan plan;
  plan.fail_append_at = 1;        // second append
  plan.append_persist_bytes = 3;  // leaves a 3-byte torn prefix of it
  FaultInjectionEnv env(plan);

  auto file = env.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("AAAA").ok());
  Status second = (*file)->Append("BBBB");
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.message().find("injected write failure"),
            std::string::npos);
  ASSERT_TRUE((*file)->Close().ok());

  EXPECT_EQ(MustRead(Env::Default(), path), "AAAABBB");
  EXPECT_EQ(env.stats().appends, 2);
  EXPECT_EQ(env.stats().bytes_appended, 7);
}

TEST(FaultInjectionTest, EnospcDetailPropagates) {
  TempDir dir("enospc");
  FaultPlan plan;
  plan.fail_append_at = 0;
  plan.append_detail = "No space left on device";
  FaultInjectionEnv env(plan);

  Status status = AtomicFileWriter::WriteFileAtomic(
      &env, dir.File("full.bin"), "does not fit");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("No space left on device"),
            std::string::npos)
      << status.ToString();
}

TEST(FaultInjectionTest, EintrSplitsPreserveBytes) {
  TempDir dir("eintr");
  const std::string path = dir.File("split.bin");
  FaultPlan plan;
  plan.eintr_splits = true;
  FaultInjectionEnv env(plan);

  auto file = env.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Append("abcdef").ok());
  ASSERT_TRUE((*file)->Close().ok());

  EXPECT_EQ(MustRead(Env::Default(), path), "0123456789abcdef");
  EXPECT_EQ(env.stats().eintr_injected, 2);
}

TEST(FaultInjectionTest, CrashAtByteLeavesExactPrefixAndKillsEverything) {
  TempDir dir("crashbyte");
  const std::string path = dir.File("crash.bin");
  FaultPlan plan;
  plan.crash_at_byte = 6;  // dies 2 bytes into the second append
  FaultInjectionEnv env(plan);

  auto file = env.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("AAAA").ok());
  Status crash = (*file)->Append("BBBB");
  ASSERT_FALSE(crash.ok());
  EXPECT_NE(crash.message().find("simulated crash"), std::string::npos);
  EXPECT_TRUE(env.crashed());

  // The process is "dead": every further mutation fails...
  EXPECT_FALSE((*file)->Append("CCCC").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(env.RenameFile(path, dir.File("x")).ok());
  EXPECT_FALSE(env.NewWritableFile(dir.File("y"), true).ok());
  // ...but what's on disk is exactly the pre-crash prefix.
  EXPECT_EQ(MustRead(Env::Default(), path), "AAAABB");
}

TEST(FaultInjectionTest, CrashAfterOpsCatchesBetweenOperationBoundaries) {
  TempDir dir("crashops");
  const std::string path = dir.File("ops.bin");

  // Discover the op universe of one atomic write with a counting env.
  FaultInjectionEnv counter(FaultPlan{});
  ASSERT_TRUE(
      AtomicFileWriter::WriteFileAtomic(&counter, dir.File("probe"), "x")
          .ok());
  const int64_t total_ops = counter.stats().ops;
  ASSERT_GE(total_ops, 4);  // open, append, sync, rename, dir-sync

  // Crashing at every boundary leaves either no file or the whole file —
  // never a torn published one.
  for (int64_t k = 0; k < total_ops; ++k) {
    FaultPlan plan;
    plan.crash_after_ops = k;
    FaultInjectionEnv env(plan);
    const std::string out = dir.File("out_" + std::to_string(k));
    Status status = AtomicFileWriter::WriteFileAtomic(&env, out, "payload");
    if (status.ok()) {
      // Crash hit only the best-effort directory sync after publication.
      EXPECT_EQ(MustRead(Env::Default(), out), "payload");
      continue;
    }
    EXPECT_TRUE(env.crashed());
    if (Env::Default()->FileExists(out)) {
      EXPECT_EQ(MustRead(Env::Default(), out), "payload") << "k=" << k;
    }
  }
}

TEST(FaultInjectionTest, ReadsPassThroughUnscathed) {
  TempDir dir("reads");
  const std::string path = dir.File("data.bin");
  ASSERT_TRUE(
      AtomicFileWriter::WriteFileAtomic(Env::Default(), path, "bytes").ok());

  FaultPlan plan;
  plan.crash_after_ops = 0;  // every mutation dead on arrival
  FaultInjectionEnv env(plan);
  EXPECT_FALSE(env.NewWritableFile(dir.File("w"), true).ok());
  // Reads still see the real filesystem: recovery code under test must
  // read actual bytes even after the simulated kill.
  EXPECT_EQ(MustRead(&env, path), "bytes");
  EXPECT_TRUE(env.FileExists(path));
  auto size = env.FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
}

}  // namespace
}  // namespace xsm::util::io
