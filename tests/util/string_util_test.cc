#include "util/string_util.h"

#include <gtest/gtest.h>

namespace xsm {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AuthorName"), "authorname");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("a-B_c9"), "a-b_c9");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("schema.xsd", "schema"));
  EXPECT_FALSE(StartsWith("s", "schema"));
  EXPECT_TRUE(EndsWith("schema.xsd", ".xsd"));
  EXPECT_FALSE(EndsWith("schema.dtd", ".xsd"));
}

TEST(StringUtilTest, TokenizeCamelCase) {
  EXPECT_EQ(TokenizeIdentifier("authorName"),
            (std::vector<std::string>{"author", "name"}));
  EXPECT_EQ(TokenizeIdentifier("AuthorName"),
            (std::vector<std::string>{"author", "name"}));
}

TEST(StringUtilTest, TokenizeSnakeAndKebab) {
  EXPECT_EQ(TokenizeIdentifier("author_name"),
            (std::vector<std::string>{"author", "name"}));
  EXPECT_EQ(TokenizeIdentifier("author-name"),
            (std::vector<std::string>{"author", "name"}));
  EXPECT_EQ(TokenizeIdentifier("xs:element"),
            (std::vector<std::string>{"xs", "element"}));
}

TEST(StringUtilTest, TokenizeAcronymRun) {
  EXPECT_EQ(TokenizeIdentifier("XMLSchema"),
            (std::vector<std::string>{"xml", "schema"}));
  EXPECT_EQ(TokenizeIdentifier("parseXML"),
            (std::vector<std::string>{"parse", "xml"}));
}

TEST(StringUtilTest, TokenizeDigits) {
  EXPECT_EQ(TokenizeIdentifier("address2"),
            (std::vector<std::string>{"address", "2"}));
  EXPECT_EQ(TokenizeIdentifier("ipv4Address"),
            (std::vector<std::string>{"ipv", "4", "address"}));
}

TEST(StringUtilTest, TokenizeEmptyAndSeparatorsOnly) {
  EXPECT_TRUE(TokenizeIdentifier("").empty());
  EXPECT_TRUE(TokenizeIdentifier("_-_").empty());
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 0.5), "0.50");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

}  // namespace
}  // namespace xsm
