#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace xsm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(42), 42);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  XSM_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Status UseAssign(int x, int* out) {
  XSM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssign(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UseAssign(0, &out).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace xsm
