#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace xsm {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, WeightedIndexFavorsHeavyWeight) {
  Rng rng(3);
  std::vector<double> w{0.05, 0.9, 0.05};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_GT(counts[1], counts[0] * 4);
  EXPECT_GT(counts[1], counts[2] * 4);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(SeedForQueryTest, DeterministicForSameInputs) {
  EXPECT_EQ(SeedForQuery(42, "query-1"), SeedForQuery(42, "query-1"));
  EXPECT_EQ(SeedForQuery(0, ""), SeedForQuery(0, ""));
}

TEST(SeedForQueryTest, DistinctIdsProduceDistinctSeeds) {
  std::set<uint64_t> seeds;
  for (int i = 0; i < 1000; ++i) {
    seeds.insert(SeedForQuery(42, "query-" + std::to_string(i)));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SeedForQueryTest, BaseSeedChangesSeed) {
  EXPECT_NE(SeedForQuery(1, "q"), SeedForQuery(2, "q"));
}

TEST(SeedForQueryTest, NearbyIdsGiveUnrelatedStreams) {
  Rng a(SeedForQuery(42, "q1"));
  Rng b(SeedForQuery(42, "q2"));
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// Regression test for the service-concurrency audit: per-query Rng streams
// are a pure function of (base_seed, query_id), so N queries drawing random
// numbers concurrently see exactly the sequences a sequential run produces.
// A shared mutable RNG would interleave draws nondeterministically.
TEST(SeedForQueryTest, ConcurrentQueriesMatchSequentialReference) {
  constexpr int kQueries = 16;
  constexpr int kDraws = 256;
  const uint64_t base = 2006;

  std::vector<std::vector<uint64_t>> reference(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    Rng rng(SeedForQuery(base, "query-" + std::to_string(q)));
    for (int i = 0; i < kDraws; ++i) reference[q].push_back(rng.Next());
  }

  std::vector<std::vector<uint64_t>> concurrent(kQueries);
  std::vector<std::thread> threads;
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&concurrent, base, q]() {
      Rng rng(SeedForQuery(base, "query-" + std::to_string(q)));
      for (int i = 0; i < kDraws; ++i) concurrent[q].push_back(rng.Next());
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(concurrent, reference);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(21);
  std::vector<int> v{4, 8, 15};
  for (int i = 0; i < 50; ++i) {
    int p = rng.Pick(v);
    EXPECT_TRUE(p == 4 || p == 8 || p == 15);
  }
}

}  // namespace
}  // namespace xsm
