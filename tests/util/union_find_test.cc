#include "util/union_find.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/random.h"

namespace xsm {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.num_components(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.Canonical(i), i);
    EXPECT_EQ(uf.ComponentSize(i), 1u);
  }
  EXPECT_FALSE(uf.Connected(0, 4));
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));  // already joined
  EXPECT_EQ(uf.num_components(), 4u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(1, 2));
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.ComponentSize(3), 4u);
  EXPECT_EQ(uf.num_components(), 3u);
}

TEST(UnionFindTest, SelfUnionIsNoOp) {
  UnionFind uf(3);
  EXPECT_FALSE(uf.Union(1, 1));
  EXPECT_EQ(uf.num_components(), 3u);
}

TEST(UnionFindTest, AddGrowsWithSingletons) {
  UnionFind uf;
  EXPECT_EQ(uf.size(), 0u);
  EXPECT_EQ(uf.Add(), 0u);
  EXPECT_EQ(uf.Add(), 1u);
  EXPECT_EQ(uf.Add(), 2u);
  EXPECT_EQ(uf.num_components(), 3u);
  uf.Union(0, 2);
  EXPECT_EQ(uf.Add(), 3u);
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_EQ(uf.Canonical(3), 3u);
}

TEST(UnionFindTest, CanonicalIsSmallestMember) {
  UnionFind uf(10);
  // Attach in an order engineered so the internal root is NOT the minimum:
  // union by size makes {8,9,7}'s root one of the higher indices first.
  uf.Union(8, 9);
  uf.Union(8, 7);
  uf.Union(7, 2);
  for (size_t x : {2u, 7u, 8u, 9u}) {
    EXPECT_EQ(uf.Canonical(x), 2u) << x;
  }
  EXPECT_EQ(uf.Canonical(5), 5u);
}

/// Canonical partitions must be identical across any permutation of the same
/// edge set — the property the integration fold's determinism rests on.
TEST(UnionFindTest, CanonicalIsUnionOrderIndependent) {
  Rng rng(20260808);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 5 + rng.Uniform(60);
    std::vector<std::pair<size_t, size_t>> edges;
    size_t num_edges = rng.Uniform(2 * n + 1);
    for (size_t e = 0; e < num_edges; ++e) {
      edges.emplace_back(rng.Uniform(n), rng.Uniform(n));
    }

    auto partition = [&](const std::vector<std::pair<size_t, size_t>>& order) {
      UnionFind uf(n);
      for (const auto& [a, b] : order) uf.Union(a, b);
      std::vector<size_t> canon(n);
      for (size_t i = 0; i < n; ++i) canon[i] = uf.Canonical(i);
      return canon;
    };

    std::vector<size_t> reference = partition(edges);
    // Every canonical value is the smallest index mapping to it.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_LE(reference[i], i);
      EXPECT_EQ(reference[reference[i]], reference[i]);
    }
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      std::vector<std::pair<size_t, size_t>> reordered = edges;
      rng.Shuffle(&reordered);
      EXPECT_EQ(partition(reordered), reference);
    }
  }
}

TEST(UnionFindTest, ComponentCountMatchesDistinctCanonicals) {
  Rng rng(7);
  UnionFind uf(50);
  for (int e = 0; e < 40; ++e) {
    uf.Union(rng.Uniform(50), rng.Uniform(50));
  }
  std::set<size_t> canonicals;
  std::map<size_t, size_t> sizes;
  for (size_t i = 0; i < 50; ++i) {
    canonicals.insert(uf.Canonical(i));
    ++sizes[uf.Canonical(i)];
  }
  EXPECT_EQ(canonicals.size(), uf.num_components());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(uf.ComponentSize(i), sizes[uf.Canonical(i)]);
  }
}

}  // namespace
}  // namespace xsm
