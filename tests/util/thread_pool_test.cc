#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace xsm {
namespace {

TEST(ThreadPoolTest, ExecutesAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Schedule([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, SubmitReturnsFutureWithValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitManyPreservesPerTaskResults) {
  ThreadPool pool(8);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, RunsTasksConcurrently) {
  // Two tasks that each wait for the other to start can only finish if the
  // pool runs them on distinct threads.
  ThreadPool pool(2);
  std::atomic<int> started{0};
  auto rendezvous = [&started]() {
    started.fetch_add(1);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  std::future<bool> a = pool.Submit(rendezvous);
  std::future<bool> b = pool.Submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Schedule([&counter]() { counter.fetch_add(1); });
    }
  }  // ~ThreadPool must run every scheduled task before joining.
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitAllowsReuse) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThreadEvenForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace xsm
