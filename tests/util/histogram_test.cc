#include "util/histogram.h"

#include <gtest/gtest.h>

namespace xsm {
namespace {

TEST(PowerHistogramTest, BucketBoundaries) {
  PowerHistogram h(8);
  h.Add(1);                      // [1,1] -> bucket 0
  h.Add(2);                      // [2,3] -> bucket 1
  h.Add(3);
  h.Add(4);                      // [4,7] -> bucket 2
  h.Add(7);
  h.Add(8);                      // [8,15] -> bucket 3
  h.Add(15);
  h.Add(128);                    // [128,255] -> bucket 7
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(3), 2u);
  EXPECT_EQ(h.BucketCount(7), 1u);
  EXPECT_EQ(h.total_count(), 8u);
}

TEST(PowerHistogramTest, OverflowClampsToLastBucket) {
  PowerHistogram h(4);  // last bucket is [8,15]
  h.Add(1000);
  EXPECT_EQ(h.BucketCount(3), 1u);
}

TEST(PowerHistogramTest, ZeroTreatedAsOne) {
  PowerHistogram h(4);
  h.Add(0);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.min(), 1u);
}

TEST(PowerHistogramTest, SummaryStats) {
  PowerHistogram h;
  h.Add(2);
  h.Add(4);
  h.Add(6);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.min(), 2u);
  EXPECT_EQ(h.max(), 6u);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
}

TEST(PowerHistogramTest, BucketLabels) {
  EXPECT_EQ(PowerHistogram::BucketLabel(0), "[1,1]");
  EXPECT_EQ(PowerHistogram::BucketLabel(1), "[2,3]");
  EXPECT_EQ(PowerHistogram::BucketLabel(7), "[128,255]");
}

TEST(PowerHistogramTest, ToStringSkipsEmptyBuckets) {
  PowerHistogram h(8);
  h.Add(5);
  std::string s = h.ToString();
  EXPECT_NE(s.find("[4,7]"), std::string::npos);
  EXPECT_EQ(s.find("[1,1]"), std::string::npos);
}

TEST(StatsAccumulatorTest, Empty) {
  StatsAccumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.StdDev(), 0.0);
}

TEST(StatsAccumulatorTest, MeanMinMaxStd) {
  StatsAccumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.Add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.StdDev(), 2.0);  // classic example dataset
}

TEST(QuantileAccumulatorTest, Empty) {
  QuantileAccumulator q;
  EXPECT_EQ(q.count(), 0u);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(q.min(), 0.0);
  EXPECT_DOUBLE_EQ(q.max(), 0.0);
  EXPECT_DOUBLE_EQ(q.mean(), 0.0);
}

TEST(QuantileAccumulatorTest, SingleSampleIsEveryQuantile) {
  QuantileAccumulator q;
  q.Add(7.5);
  for (double p : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(q.Quantile(p), 7.5) << "p=" << p;
  }
}

TEST(QuantileAccumulatorTest, NearestRankExactOnKnownData) {
  // 1..100 inserted shuffled: nearest-rank pK is exactly the sample K.
  QuantileAccumulator q;
  for (int i = 0; i < 100; ++i) q.Add(static_cast<double>((i * 37) % 100 + 1));
  EXPECT_EQ(q.count(), 100u);
  EXPECT_DOUBLE_EQ(q.Quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(q.P50(), 50.0);
  EXPECT_DOUBLE_EQ(q.P95(), 95.0);
  EXPECT_DOUBLE_EQ(q.P99(), 99.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(q.min(), 1.0);
  EXPECT_DOUBLE_EQ(q.max(), 100.0);
  EXPECT_DOUBLE_EQ(q.mean(), 50.5);
}

TEST(QuantileAccumulatorTest, NearestRankRoundsUpBetweenSamples) {
  QuantileAccumulator q;
  for (double v : {10.0, 20.0, 30.0, 40.0}) q.Add(v);
  // ceil(0.5 * 4) = rank 2 -> 20; ceil(0.51 * 4) = rank 3 -> 30.
  EXPECT_DOUBLE_EQ(q.Quantile(0.50), 20.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.51), 30.0);
  // ceil(0.25 * 4) = rank 1 -> 10; anything above goes to rank 2.
  EXPECT_DOUBLE_EQ(q.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.26), 20.0);
}

TEST(QuantileAccumulatorTest, InterleavedAddAndQuery) {
  // Queries between Adds must see the samples recorded so far.
  QuantileAccumulator q;
  q.Add(5.0);
  q.Add(1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 5.0);
  q.Add(9.0);  // arrives after a query already sorted the buffer
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 5.0);
  q.Add(0.5);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 0.5);
  EXPECT_EQ(q.count(), 4u);
}

TEST(QuantileAccumulatorTest, MergeFoldsSamples) {
  QuantileAccumulator a, b;
  for (double v : {1.0, 3.0, 5.0}) a.Add(v);
  for (double v : {2.0, 4.0, 6.0}) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 6u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);

  QuantileAccumulator empty;
  empty.Merge(a);  // merge into empty adopts
  EXPECT_EQ(empty.count(), 6u);
  EXPECT_DOUBLE_EQ(empty.P50(), 3.0);
  a.Merge(QuantileAccumulator());  // merging empty is a no-op
  EXPECT_EQ(a.count(), 6u);
}

}  // namespace
}  // namespace xsm
