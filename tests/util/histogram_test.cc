#include "util/histogram.h"

#include <gtest/gtest.h>

namespace xsm {
namespace {

TEST(PowerHistogramTest, BucketBoundaries) {
  PowerHistogram h(8);
  h.Add(1);                      // [1,1] -> bucket 0
  h.Add(2);                      // [2,3] -> bucket 1
  h.Add(3);
  h.Add(4);                      // [4,7] -> bucket 2
  h.Add(7);
  h.Add(8);                      // [8,15] -> bucket 3
  h.Add(15);
  h.Add(128);                    // [128,255] -> bucket 7
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(3), 2u);
  EXPECT_EQ(h.BucketCount(7), 1u);
  EXPECT_EQ(h.total_count(), 8u);
}

TEST(PowerHistogramTest, OverflowClampsToLastBucket) {
  PowerHistogram h(4);  // last bucket is [8,15]
  h.Add(1000);
  EXPECT_EQ(h.BucketCount(3), 1u);
}

TEST(PowerHistogramTest, ZeroTreatedAsOne) {
  PowerHistogram h(4);
  h.Add(0);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.min(), 1u);
}

TEST(PowerHistogramTest, SummaryStats) {
  PowerHistogram h;
  h.Add(2);
  h.Add(4);
  h.Add(6);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.min(), 2u);
  EXPECT_EQ(h.max(), 6u);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
}

TEST(PowerHistogramTest, BucketLabels) {
  EXPECT_EQ(PowerHistogram::BucketLabel(0), "[1,1]");
  EXPECT_EQ(PowerHistogram::BucketLabel(1), "[2,3]");
  EXPECT_EQ(PowerHistogram::BucketLabel(7), "[128,255]");
}

TEST(PowerHistogramTest, ToStringSkipsEmptyBuckets) {
  PowerHistogram h(8);
  h.Add(5);
  std::string s = h.ToString();
  EXPECT_NE(s.find("[4,7]"), std::string::npos);
  EXPECT_EQ(s.find("[1,1]"), std::string::npos);
}

TEST(StatsAccumulatorTest, Empty) {
  StatsAccumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.StdDev(), 0.0);
}

TEST(StatsAccumulatorTest, MeanMinMaxStd) {
  StatsAccumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.Add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.StdDev(), 2.0);  // classic example dataset
}

}  // namespace
}  // namespace xsm
