// MetricsRegistry contract tests: idempotent registration, lock-free
// counters under concurrent increment + scrape, parseable Prometheus
// exposition, and histogram bucket/count/sum invariants.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace xsm::obs {
namespace {

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("xsm_things_total", "Things");
  Counter* b = registry.RegisterCounter("xsm_things_total", "Things");
  EXPECT_EQ(a, b);

  // Label order must not matter: the registry canonicalizes by key.
  Counter* l1 = registry.RegisterCounter(
      "xsm_labeled_total", "Labeled",
      {{"tenant", "t1"}, {"reason", "capacity"}});
  Counter* l2 = registry.RegisterCounter(
      "xsm_labeled_total", "Labeled",
      {{"reason", "capacity"}, {"tenant", "t1"}});
  EXPECT_EQ(l1, l2);

  // Distinct label values are distinct series of the same family.
  Counter* other = registry.RegisterCounter(
      "xsm_labeled_total", "Labeled",
      {{"tenant", "t2"}, {"reason", "capacity"}});
  EXPECT_NE(l1, other);

  Gauge* g1 = registry.RegisterGauge("xsm_level", "Level");
  Gauge* g2 = registry.RegisterGauge("xsm_level", "Level");
  EXPECT_EQ(g1, g2);

  Histogram* h1 = registry.RegisterHistogram("xsm_lat_ms", "Latency",
                                             {1.0, 10.0, 100.0});
  Histogram* h2 = registry.RegisterHistogram("xsm_lat_ms", "Latency",
                                             {1.0, 10.0, 100.0});
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, CounterValueLookup) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("xsm_hits_total", "Hits",
                                        {{"tenant", "a"}});
  c->Increment(7);
  EXPECT_EQ(registry.CounterValue("xsm_hits_total", {{"tenant", "a"}}), 7u);
  // Unknown series and unknown families read as zero, never crash.
  EXPECT_EQ(registry.CounterValue("xsm_hits_total", {{"tenant", "b"}}), 0u);
  EXPECT_EQ(registry.CounterValue("xsm_nope_total"), 0u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementAndScrapeIsExact) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("xsm_ops_total", "Ops");
  Histogram* histogram = registry.RegisterHistogram(
      "xsm_op_ms", "Op latency", DefaultLatencyBoundsMs());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<double>((t * kPerThread + i) % 997));
      }
    });
  }
  // A scraper racing the writers: every render must be well-formed (the
  // values it reads are torn-free snapshots of the atomics).
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      std::string text = registry.RenderPrometheusText();
      EXPECT_NE(text.find("xsm_ops_total"), std::string::npos);
    }
  });
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, HistogramBucketInvariants) {
  Histogram histogram({1.0, 5.0, 25.0});
  histogram.Observe(0.5);   // le=1
  histogram.Observe(1.0);   // le=1 (bound is inclusive)
  histogram.Observe(3.0);   // le=5
  histogram.Observe(25.0);  // le=25
  histogram.Observe(400.0);  // +Inf overflow slot

  ASSERT_EQ(histogram.bounds().size(), 3u);
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // overflow

  // Slot counts total the observation count, and the sum is exact.
  uint64_t total = 0;
  for (size_t i = 0; i <= histogram.bounds().size(); ++i) {
    total += histogram.bucket_count(i);
  }
  EXPECT_EQ(total, histogram.count());
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 3.0 + 25.0 + 400.0);

  // Exact nearest-rank quantiles from the backing accumulator.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 400.0);
}

// Minimal exposition parser: every non-comment line must be
// `name{labels} value` or `name value`, every # line a HELP/TYPE for a
// family that then appears, histogram buckets cumulative and capped by
// the +Inf bucket == _count.
TEST(MetricsRegistryTest, ExpositionIsParseable) {
  MetricsRegistry registry;
  registry.RegisterCounter("xsm_queries_total", "Queries",
                           {{"tenant", "a"}})->Increment(3);
  registry.RegisterCounter("xsm_queries_total", "Queries",
                           {{"tenant", "b"}})->Increment(5);
  registry.RegisterGauge("xsm_inflight", "Inflight")->Set(2);
  Histogram* histogram = registry.RegisterHistogram(
      "xsm_latency_ms", "Latency", {1.0, 10.0});
  histogram->Observe(0.3);
  histogram->Observe(4.0);
  histogram->Observe(40.0);
  // Label values with every escape-worthy character.
  registry.RegisterCounter("xsm_escaped_total", "Escaped",
                           {{"v", "a\"b\\c\nd"}})->Increment();

  std::string text = registry.RenderPrometheusText();
  std::istringstream in(text);
  std::string line;
  size_t samples = 0;
  uint64_t last_bucket = 0;
  uint64_t inf_bucket = 0;
  uint64_t histogram_count = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // Sample line: metric name, optional {labels}, space, numeric value.
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string value_text = line.substr(space + 1);
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(value_text.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    EXPECT_TRUE(std::isfinite(value) || value_text == "+Inf") << line;
    ++samples;

    if (line.rfind("xsm_latency_ms_bucket", 0) == 0) {
      uint64_t cumulative = static_cast<uint64_t>(value);
      EXPECT_GE(cumulative, last_bucket) << "non-cumulative: " << line;
      last_bucket = cumulative;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket = cumulative;
      }
    }
    if (line.rfind("xsm_latency_ms_count", 0) == 0) {
      histogram_count = static_cast<uint64_t>(value);
    }
  }
  EXPECT_GE(samples, 9u);  // 2 counters + gauge + escaped + 3 buckets
                           // + Inf + sum + count
  EXPECT_EQ(inf_bucket, 3u);
  EXPECT_EQ(histogram_count, 3u);

  // The escaped label survives round-trip-ably.
  EXPECT_NE(text.find("v=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  // Series of one family are rendered under one HELP/TYPE header pair.
  EXPECT_EQ(text.find("# TYPE xsm_queries_total counter"),
            text.rfind("# TYPE xsm_queries_total counter"));
  EXPECT_NE(text.find("xsm_queries_total{tenant=\"a\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("xsm_queries_total{tenant=\"b\"} 5"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ScrapeHooksMirrorExternalTallies) {
  MetricsRegistry registry;
  Gauge* gauge = registry.RegisterGauge("xsm_mirrored", "Mirrored");
  uint64_t source = 0;
  uint64_t id = registry.AddScrapeHook(
      [&] { gauge->Set(static_cast<double>(source)); });

  source = 41;
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("xsm_mirrored 41"), std::string::npos);

  registry.RemoveScrapeHook(id);
  source = 99;
  text = registry.RenderPrometheusText();
  // Hook removed: the gauge keeps its last mirrored value.
  EXPECT_NE(text.find("xsm_mirrored 41"), std::string::npos);
}

TEST(MetricsRegistryTest, RenderIsDeterministic) {
  MetricsRegistry registry;
  // Registered out of order; rendered sorted by family then signature.
  registry.RegisterCounter("xsm_z_total", "Z")->Increment(1);
  registry.RegisterCounter("xsm_a_total", "A", {{"k", "2"}})->Increment(2);
  registry.RegisterCounter("xsm_a_total", "A", {{"k", "1"}})->Increment(3);
  std::string first = registry.RenderPrometheusText();
  std::string second = registry.RenderPrometheusText();
  EXPECT_EQ(first, second);
  EXPECT_LT(first.find("xsm_a_total{k=\"1\"}"),
            first.find("xsm_a_total{k=\"2\"}"));
  EXPECT_LT(first.find("xsm_a_total"), first.find("xsm_z_total"));
}

}  // namespace
}  // namespace xsm::obs
