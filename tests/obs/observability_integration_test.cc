// End-to-end observability: traced queries carry the per-stage span
// vocabulary, trace events are structurally deterministic with a fixed
// seed, the registry agrees with the service's stats struct, and the
// serve surface exposes !metrics / slow-query events.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "repo/synthetic.h"
#include "service/match_service.h"
#include "service/serve_session.h"

namespace xsm::service {
namespace {

constexpr const char* kQueryLine =
    "person(name,phone) id=q1 delta=0.6 top=5";

schema::SchemaForest MakeForest() {
  repo::SyntheticRepoOptions options;
  options.target_elements = 1500;
  options.seed = 11;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok()) << forest.status().ToString();
  return std::move(*forest);
}

std::vector<std::string> SpanNames(const obs::TraceContext& trace) {
  std::vector<std::string> names;
  for (const obs::TraceSpan& span : trace.spans()) {
    names.push_back(span.name);
  }
  return names;
}

bool Contains(const std::vector<std::string>& names,
              const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

// Strip the two timing fields so traced runs can be byte-compared.
std::string NormalizeTimings(const std::string& line) {
  static const std::regex kStart("\"start_ms\":[0-9.eE+-]+");
  static const std::regex kMs("\"ms\":[0-9.eE+-]+");
  return std::regex_replace(
      std::regex_replace(line, kStart, "\"start_ms\":0"), kMs, "\"ms\":0");
}

TEST(ObservabilityIntegrationTest, TracedQueryCarriesStageSpans) {
  MatchServiceOptions options;
  options.num_threads = 2;
  auto service = MatchService::Create(MakeForest(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  ServeSessionOptions session_options;
  ServeSession session(service->get(), session_options);
  auto query = session.ParseQuery(kQueryLine, 0);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  obs::TraceContext trace;
  core::ExecutionControl control;
  control.trace = &trace;
  auto result = session.RunQuery(*query, [](const std::string&) {}, control);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<std::string> names = SpanNames(trace);
  // The query rode the pool (queue_wait), consulted the cluster cache,
  // and — this being a cold cache — built its state: element matching
  // (dictionary scoring + broadcast), clustering, generation, and the
  // final top-k merge.
  EXPECT_TRUE(Contains(names, "queue_wait")) << ::testing::PrintToString(names);
  EXPECT_TRUE(Contains(names, "cluster_cache"));
  EXPECT_TRUE(Contains(names, "dict_score"));
  EXPECT_TRUE(Contains(names, "dict_broadcast"));
  EXPECT_TRUE(Contains(names, "element_match"));
  EXPECT_TRUE(Contains(names, "clustering"));
  EXPECT_TRUE(Contains(names, "generate"));
  EXPECT_TRUE(Contains(names, "topk_merge"));

  // The cache span carries the miss/hit note.
  for (const obs::TraceSpan& span : trace.spans()) {
    if (span.name == "cluster_cache") {
      EXPECT_EQ(span.note, "miss");
    }
  }

  // Second identical query: warm cache, no rebuild spans.
  obs::TraceContext warm;
  control.trace = &warm;
  result = session.RunQuery(*query, [](const std::string&) {}, control);
  ASSERT_TRUE(result.ok());
  std::vector<std::string> warm_names = SpanNames(warm);
  EXPECT_TRUE(Contains(warm_names, "cluster_cache"));
  EXPECT_FALSE(Contains(warm_names, "element_match"));
  for (const obs::TraceSpan& span : warm.spans()) {
    if (span.name == "cluster_cache") {
      EXPECT_EQ(span.note, "hit");
    }
  }
}

TEST(ObservabilityIntegrationTest, TraceEventsAreDeterministicModuloTiming) {
  // Two fresh services, identical forest/seed/options: the trace events
  // must be byte-identical once the two timing fields are masked.
  std::vector<std::string> runs;
  for (int run = 0; run < 2; ++run) {
    MatchServiceOptions options;
    options.num_threads = 2;
    auto service = MatchService::Create(MakeForest(), options);
    ASSERT_TRUE(service.ok());
    ServeSessionOptions session_options;
    session_options.trace_events = true;
    ServeSession session(service->get(), session_options);
    auto query = session.ParseQuery(kQueryLine, 0);
    ASSERT_TRUE(query.ok());
    std::string trace_line;
    auto result = session.RunQuery(*query, [&](const std::string& line) {
      if (line.find("\"type\":\"trace\"") != std::string::npos) {
        trace_line = line;
      }
    });
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(trace_line.empty());
    runs.push_back(NormalizeTimings(trace_line));
  }
  EXPECT_EQ(runs[0], runs[1]);
  // Field order is fixed: type, id, then the span list.
  EXPECT_EQ(runs[0].rfind("{\"type\":\"trace\",\"id\":\"q1\",\"spans\":[", 0),
            0u)
      << runs[0];
}

TEST(ObservabilityIntegrationTest, RegistryAgreesWithServiceStats) {
  obs::MetricsRegistry registry;
  MatchServiceOptions options;
  options.num_threads = 2;
  options.metrics = &registry;
  options.metrics_tenant = "t1";
  auto service = MatchService::Create(MakeForest(), options);
  ASSERT_TRUE(service.ok());

  ServeSessionOptions session_options;
  ServeSession session(service->get(), session_options);
  auto query = session.ParseQuery(kQueryLine, 0);
  ASSERT_TRUE(query.ok());
  for (int i = 0; i < 3; ++i) {
    auto result = session.RunQuery(*query, [](const std::string&) {});
    ASSERT_TRUE(result.ok());
  }

  ServiceStats stats = (*service)->stats();
  obs::LabelSet labels = {{"tenant", "t1"}};
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(registry.CounterValue("xsm_queries_total", labels), 3u);
  // The scrape surface mirrors the cache tallies through the hook.
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("xsm_queries_total{tenant=\"t1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("xsm_cluster_cache_hits_total{tenant=\"t1\"} " +
                      std::to_string(stats.cache.hits)),
            std::string::npos);
  EXPECT_NE(text.find("xsm_query_duration_ms_count{tenant=\"t1\"} 3"),
            std::string::npos);
}

TEST(ObservabilityIntegrationTest, MetricsCommandAndSlowQueryLog) {
  MatchServiceOptions options;
  options.num_threads = 2;
  // Every query is "slow" at a zero-adjacent threshold.
  options.slow_query_ms = 0.0001;
  auto service = MatchService::Create(MakeForest(), options);
  ASSERT_TRUE(service.ok());

  ServeSessionOptions session_options;
  ServeSession session(service->get(), session_options);
  auto query = session.ParseQuery(kQueryLine, 0);
  ASSERT_TRUE(query.ok());
  std::vector<std::string> events;
  auto result = session.RunQuery(
      *query, [&](const std::string& line) { events.push_back(line); });
  ASSERT_TRUE(result.ok());

  bool saw_slow = false;
  for (const std::string& line : events) {
    if (line.find("\"type\":\"slow_query\"") != std::string::npos) {
      saw_slow = true;
      EXPECT_NE(line.find("\"id\":\"q1\""), std::string::npos);
      EXPECT_NE(line.find("\"threshold_ms\":"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_EQ((*service)->stats().slow_queries, 1u);

  // !metrics wraps the Prometheus exposition as one NDJSON event.
  std::string metrics_line;
  Status status = session.RunCommand(
      "!metrics", [&](const std::string& line) { metrics_line = line; });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(metrics_line.find("\"type\":\"metrics\""), std::string::npos);
  EXPECT_NE(metrics_line.find("xsm_queries_total"), std::string::npos);
  EXPECT_NE(metrics_line.find("xsm_slow_queries_total"), std::string::npos);

  // !stats reports the new counters read back from the registry.
  std::string stats_line;
  status = session.RunCommand(
      "!stats", [&](const std::string& line) { stats_line = line; });
  EXPECT_TRUE(status.ok());
  EXPECT_NE(stats_line.find("\"slow_queries\":1"), std::string::npos);
  EXPECT_NE(stats_line.find("\"wal_appends\":"), std::string::npos);
}

TEST(ObservabilityIntegrationTest, DisabledMetricsStillCounts) {
  // enable_metrics=false is the bench baseline: latency histogram and
  // slow-query checks are skipped, but plain counters (equal cost to the
  // atomics they replaced) keep working.
  MatchServiceOptions options;
  options.num_threads = 2;
  options.enable_metrics = false;
  options.slow_query_ms = 0.0001;
  auto service = MatchService::Create(MakeForest(), options);
  ASSERT_TRUE(service.ok());

  ServeSessionOptions session_options;
  ServeSession session(service->get(), session_options);
  auto query = session.ParseQuery(kQueryLine, 0);
  ASSERT_TRUE(query.ok());
  auto result = session.RunQuery(*query, [](const std::string&) {});
  ASSERT_TRUE(result.ok());

  ServiceStats stats = (*service)->stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.slow_queries, 0u);  // slow-query check is off
  EXPECT_EQ((*service)->metrics().CounterValue("xsm_queries_total"), 1u);
}

}  // namespace
}  // namespace xsm::service
