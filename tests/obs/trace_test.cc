// TraceContext / ScopedSpan contract tests: span ordering, null-safety,
// and notes.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace xsm::obs {
namespace {

TEST(TraceContextTest, RecordsSpansInCompletionOrder) {
  TraceContext trace;
  {
    ScopedSpan outer(&trace, "outer");
    {
      ScopedSpan inner(&trace, "inner");
      inner.set_note("hit");
    }
  }
  std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first, so it lands first; both offsets are from the
  // context epoch and durations are non-negative.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].note, "hit");
  EXPECT_EQ(spans[1].name, "outer");
  for (const TraceSpan& span : spans) {
    EXPECT_GE(span.start_ms, 0.0);
    EXPECT_GE(span.duration_ms, 0.0);
  }
  // The outer span encloses the inner one.
  EXPECT_LE(spans[1].start_ms, spans[0].start_ms);
  EXPECT_GE(spans[1].start_ms + spans[1].duration_ms,
            spans[0].start_ms + spans[0].duration_ms);
}

TEST(TraceContextTest, NullContextIsANoOp) {
  // The hot path passes nullptr when tracing is off; spans must cost
  // nothing and never crash.
  ScopedSpan span(nullptr, "ignored");
  span.set_note("also ignored");
}

TEST(TraceContextTest, AddSpanDirectly) {
  TraceContext trace;
  trace.AddSpan("queue_wait", "", 1.0, 2.5);
  ASSERT_EQ(trace.span_count(), 1u);
  std::vector<TraceSpan> spans = trace.spans();
  EXPECT_EQ(spans[0].name, "queue_wait");
  EXPECT_DOUBLE_EQ(spans[0].start_ms, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].duration_ms, 2.5);
}

TEST(TraceContextTest, ConcurrentSpansAreAllRecorded) {
  TraceContext trace;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(&trace, "work");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(trace.span_count(),
            static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace xsm::obs
