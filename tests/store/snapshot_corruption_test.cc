// Store corruption handling: damaged snapshot files must fail with typed
// errors — kParseError for non-snapshot bytes, kUnimplemented for future
// format versions, kCorruption for truncation / CRC mismatches / internal
// inconsistencies — and must never crash (this suite is what the CI
// sanitizer job runs under ASan/UBSan). Exhaustive flavors: truncation at
// swept lengths, a flipped byte inside every section (the CRC catch), a
// flipped byte swept across the whole file, wrong magic, future version.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "service/repository_snapshot.h"
#include "store/snapshot_store.h"
#include "util/wire.h"

namespace xsm::store {
namespace {

using service::RepositorySnapshot;

std::string MakeSnapshotBytes(size_t elements, uint64_t seed) {
  repo::SyntheticRepoOptions options;
  options.target_elements = elements;
  options.seed = seed;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok()) << forest.status().ToString();
  auto snapshot = RepositorySnapshot::Create(std::move(*forest));
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return SerializeSnapshot(**snapshot);
}

/// Byte ranges of the four section payloads, recovered from the framing.
struct SectionSpan {
  Section id;
  size_t payload_begin;
  size_t payload_size;
};

// Mirrors the layout constants in snapshot_store.cc (magic 8, header
// fields 40, header crc 4; section frame = id 4 + crc 4 + size 8).
constexpr size_t kHeaderBytes = 8 + 40 + 4;
constexpr size_t kFrameBytes = 16;

std::vector<SectionSpan> FindSections(const std::string& bytes) {
  std::vector<SectionSpan> spans;
  size_t cursor = kHeaderBytes;
  while (cursor + kFrameBytes <= bytes.size()) {
    uint32_t id;
    uint64_t size;
    std::memcpy(&id, bytes.data() + cursor, sizeof(id));
    std::memcpy(&size, bytes.data() + cursor + 8, sizeof(size));
    spans.push_back(SectionSpan{static_cast<Section>(id),
                                cursor + kFrameBytes,
                                static_cast<size_t>(size)});
    cursor += kFrameBytes + static_cast<size_t>(size);
  }
  EXPECT_EQ(cursor, bytes.size());
  return spans;
}

TEST(SnapshotCorruptionTest, EmptyAndNonSnapshotInputIsParseError) {
  for (const char* input : {"", "x", "not a snapshot at all",
                            "#xsm-forest v1\ntree\nend\n"}) {
    auto loaded = DeserializeSnapshot(input);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError) << input;
  }
}

TEST(SnapshotCorruptionTest, WrongMagicIsParseError) {
  std::string bytes = MakeSnapshotBytes(200, 1);
  bytes[3] ^= 0x20;  // damage inside the magic
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(SnapshotCorruptionTest, FutureFormatVersionIsUnimplemented) {
  std::string bytes = MakeSnapshotBytes(200, 2);
  const uint32_t future = kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnimplemented);
  // The probe refuses identically — tools peeking at headers get the same
  // contract.
  auto probed = ProbeSnapshot(bytes);
  ASSERT_FALSE(probed.ok());
  EXPECT_EQ(probed.status().code(), StatusCode::kUnimplemented);
}

TEST(SnapshotCorruptionTest, HeaderFieldDamageIsCorruption) {
  // Every header field byte after the version is CRC-protected; the
  // version itself degrades into Unimplemented or the CRC catch.
  std::string pristine = MakeSnapshotBytes(200, 3);
  for (size_t pos = 12; pos < kHeaderBytes; ++pos) {
    std::string bytes = pristine;
    bytes[pos] ^= 0x01;
    auto loaded = DeserializeSnapshot(bytes);
    ASSERT_FALSE(loaded.ok()) << "header byte " << pos;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "header byte " << pos;
  }
}

// The satellite requirement, literally: one flipped byte inside each
// section's payload must be caught by that section's CRC.
TEST(SnapshotCorruptionTest, FlippedByteInEachSectionIsCaughtByCrc) {
  std::string pristine = MakeSnapshotBytes(300, 4);
  std::vector<SectionSpan> sections = FindSections(pristine);
  ASSERT_EQ(sections.size(), 4u);
  for (const SectionSpan& section : sections) {
    ASSERT_GT(section.payload_size, 0u);
    // Flip the first, a middle, and the last payload byte.
    for (size_t offset : {size_t{0}, section.payload_size / 2,
                          section.payload_size - 1}) {
      std::string bytes = pristine;
      bytes[section.payload_begin + offset] ^= 0x40;
      auto loaded = DeserializeSnapshot(bytes);
      ASSERT_FALSE(loaded.ok())
          << "section " << static_cast<uint32_t>(section.id) << " offset "
          << offset;
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
          << "section " << static_cast<uint32_t>(section.id) << " offset "
          << offset;
      EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
          << loaded.status().ToString();
    }
  }
}

// Any single flipped byte anywhere in the file must fail typed — swept at
// a stride so the suite stays fast but hits header, framing, and every
// section body. Never a crash, never a silent success.
TEST(SnapshotCorruptionTest, FlippedByteSweepNeverLoadsAndNeverCrashes) {
  std::string pristine = MakeSnapshotBytes(250, 5);
  for (size_t pos = 0; pos < pristine.size(); pos += 97) {
    std::string bytes = pristine;
    bytes[pos] ^= 0x10;
    auto loaded = DeserializeSnapshot(bytes);
    ASSERT_FALSE(loaded.ok()) << "byte " << pos;
    const StatusCode code = loaded.status().code();
    EXPECT_TRUE(code == StatusCode::kCorruption ||
                code == StatusCode::kParseError ||
                code == StatusCode::kUnimplemented)
        << "byte " << pos << ": " << loaded.status().ToString();
  }
}

TEST(SnapshotCorruptionTest, TruncationSweepIsTyped) {
  std::string pristine = MakeSnapshotBytes(250, 6);
  // Every truncation length: magic-short prefixes are "not a snapshot"
  // (ParseError), anything longer is Corruption. Sweep densely through the
  // header and framing, then stride through the bulk.
  for (size_t len = 0; len < pristine.size();
       len += (len < kHeaderBytes + 2 * kFrameBytes ? 1 : 211)) {
    std::string bytes = pristine.substr(0, len);
    auto loaded = DeserializeSnapshot(bytes);
    ASSERT_FALSE(loaded.ok()) << "length " << len;
    const StatusCode expected =
        len < 8 ? StatusCode::kParseError : StatusCode::kCorruption;
    EXPECT_EQ(loaded.status().code(), expected)
        << "length " << len << ": " << loaded.status().ToString();
  }
}

TEST(SnapshotCorruptionTest, TrailingGarbageIsCorruption) {
  std::string bytes = MakeSnapshotBytes(200, 7);
  bytes += "extra";
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

// A CRC-clean file whose fingerprint section disagrees with its forest:
// rewritten wholesale (valid framing, valid CRC), so only the end-to-end
// re-fingerprint check can notice.
TEST(SnapshotCorruptionTest, ConsistentlyRewrittenFingerprintsStillFail) {
  std::string pristine = MakeSnapshotBytes(200, 8);
  std::vector<SectionSpan> sections = FindSections(pristine);
  ASSERT_EQ(sections.size(), 4u);
  const SectionSpan& fp = sections[3];
  ASSERT_EQ(static_cast<uint32_t>(fp.id),
            static_cast<uint32_t>(Section::kFingerprints));
  std::string bytes = pristine;
  // Flip one stored per-tree fingerprint (past the u64 count prefix)...
  bytes[fp.payload_begin + 8] ^= 0x01;
  // ...and recompute the section CRC so the framing stays clean.
  uint32_t crc = wire::Crc32c(
      std::string_view(bytes).substr(fp.payload_begin, fp.payload_size));
  std::memcpy(bytes.data() + fp.payload_begin - kFrameBytes + 4, &crc,
              sizeof(crc));
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("fingerprint"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(SnapshotCorruptionTest, CorruptFileOnDiskIsTypedToo) {
  std::string bytes = MakeSnapshotBytes(200, 9);
  bytes[bytes.size() / 2] ^= 0x08;
  const std::string path = testing::TempDir() + "/xsm_store_corrupt.snap";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = LoadSnapshotFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xsm::store
