// Snapshot store round-trip equivalence: a loaded snapshot must be
// indistinguishable from the one that was saved — fingerprint-identical,
// dictionary-deep-equal, index-equal on every intra-tree node pair, and
// query-for-query identical in mappings, ranks, and scores — across
// randomized forests, and across a save → load → ApplyDelta sequence
// (the warm-started generation chain keeps evolving correctly).
#include "store/snapshot_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "live/repository_delta.h"
#include "live/repository_manager.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "service/repository_snapshot.h"
#include "util/random.h"

namespace xsm::store {
namespace {

using service::MatchQuery;
using service::MatchService;
using service::RepositorySnapshot;

const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "customer(name,address(city,zip))",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

schema::SchemaForest MakeCorpus(size_t elements, uint64_t seed) {
  repo::SyntheticRepoOptions options;
  options.target_elements = elements;
  options.seed = seed;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok()) << forest.status().ToString();
  return std::move(*forest);
}

std::shared_ptr<const RepositorySnapshot> MakeSnapshot(size_t elements,
                                                       uint64_t seed) {
  auto snapshot = RepositorySnapshot::Create(MakeCorpus(elements, seed));
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return *snapshot;
}

void ExpectForestsEqual(const schema::SchemaForest& got,
                        const schema::SchemaForest& want) {
  ASSERT_EQ(got.num_trees(), want.num_trees());
  ASSERT_EQ(got.total_nodes(), want.total_nodes());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(want.num_trees()); ++t) {
    EXPECT_EQ(got.source(t), want.source(t)) << "tree " << t;
    const schema::SchemaTree& a = got.tree(t);
    const schema::SchemaTree& b = want.tree(t);
    ASSERT_EQ(a.size(), b.size()) << "tree " << t;
    for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(b.size());
         ++n) {
      ASSERT_EQ(a.parent(n), b.parent(n)) << "tree " << t << " node " << n;
      ASSERT_EQ(a.children(n), b.children(n))
          << "tree " << t << " node " << n;
      const schema::NodeProperties& pa = a.props(n);
      const schema::NodeProperties& pb = b.props(n);
      ASSERT_EQ(pa.name, pb.name) << "tree " << t << " node " << n;
      ASSERT_EQ(pa.kind, pb.kind) << "tree " << t << " node " << n;
      ASSERT_EQ(pa.datatype, pb.datatype) << "tree " << t << " node " << n;
      ASSERT_EQ(pa.repeatable, pb.repeatable)
          << "tree " << t << " node " << n;
      ASSERT_EQ(pa.optional, pb.optional) << "tree " << t << " node " << n;
    }
  }
}

void ExpectDictionariesEqual(const match::NameDictionary& got,
                             const match::NameDictionary& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.total_nodes(), want.total_nodes());
  for (size_t i = 0; i < got.size(); ++i) {
    const match::NameDictionary::Entry& a = got.entry(i);
    const match::NameDictionary::Entry& b = want.entry(i);
    EXPECT_EQ(a.name, b.name) << "entry " << i;
    EXPECT_EQ(a.lower, b.lower) << "entry " << i;
    for (size_t bucket = 0; bucket < sim::NameSignature::kBuckets;
         ++bucket) {
      ASSERT_EQ(a.signature.counts[bucket], b.signature.counts[bucket])
          << "entry " << i << " bucket " << bucket;
    }
    EXPECT_EQ(a.element_nodes, b.element_nodes) << "entry " << i;
    EXPECT_EQ(a.attribute_nodes, b.attribute_nodes) << "entry " << i;
    EXPECT_EQ(a.representative, b.representative) << "entry " << i;
    EXPECT_EQ(got.Find(a.name), i);
  }
  // The derived per-node table resolves identically too.
  const schema::SchemaForest& forest = *want.forest();
  forest.ForEachNode([&](schema::NodeRef ref) {
    ASSERT_EQ(got.EntryOf(ref), want.EntryOf(ref))
        << "tree " << ref.tree << " node " << ref.node;
  });
}

void ExpectIndexesEqual(const label::ForestIndex& got,
                        const label::ForestIndex& want,
                        const schema::SchemaForest& forest) {
  ASSERT_EQ(got.num_trees(), want.num_trees());
  EXPECT_EQ(got.max_diameter(), want.max_diameter());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    const label::TreeIndex& a = got.tree(t);
    const label::TreeIndex& b = want.tree(t);
    ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "tree " << t;
    EXPECT_EQ(a.diameter(), b.diameter()) << "tree " << t;
    EXPECT_EQ(a.height(), b.height()) << "tree " << t;
    const schema::NodeId n =
        static_cast<schema::NodeId>(forest.tree(t).size());
    for (schema::NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(a.depth(u), b.depth(u)) << "tree " << t << " node " << u;
      for (schema::NodeId v = u; v < n; ++v) {
        ASSERT_EQ(a.Distance(u, v), b.Distance(u, v))
            << "tree " << t << " pair (" << u << "," << v << ")";
        ASSERT_EQ(a.Lca(u, v), b.Lca(u, v))
            << "tree " << t << " pair (" << u << "," << v << ")";
        ASSERT_EQ(a.IsAncestorOrSelf(u, v), b.IsAncestorOrSelf(u, v))
            << "tree " << t << " pair (" << u << "," << v << ")";
      }
    }
  }
}

void ExpectSameMatchResults(const core::MatchResult& got,
                            const core::MatchResult& want) {
  ASSERT_EQ(got.mappings.size(), want.mappings.size());
  for (size_t i = 0; i < got.mappings.size(); ++i) {
    const generate::SchemaMapping& a = got.mappings[i];
    const generate::SchemaMapping& b = want.mappings[i];
    ASSERT_EQ(a.tree, b.tree) << "rank " << i;
    ASSERT_EQ(a.images, b.images) << "rank " << i;
    ASSERT_EQ(a.delta, b.delta) << "rank " << i;
    ASSERT_EQ(a.delta_sim, b.delta_sim) << "rank " << i;
    ASSERT_EQ(a.delta_path, b.delta_path) << "rank " << i;
  }
  EXPECT_EQ(got.stats.num_mappings, want.stats.num_mappings);
  EXPECT_EQ(got.stats.num_clusters, want.stats.num_clusters);
}

/// The full round-trip check: `loaded` must be indistinguishable from
/// `original` to every consumer.
void ExpectRoundTripEquivalent(
    const std::shared_ptr<const RepositorySnapshot>& loaded,
    const std::shared_ptr<const RepositorySnapshot>& original) {
  EXPECT_EQ(loaded->generation(), original->generation());
  EXPECT_EQ(loaded->fingerprint(), original->fingerprint());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(original->num_trees()); ++t) {
    EXPECT_EQ(loaded->tree_fingerprint(t), original->tree_fingerprint(t))
        << "tree " << t;
  }
  ExpectForestsEqual(loaded->forest(), original->forest());
  ExpectDictionariesEqual(loaded->name_dictionary(),
                          original->name_dictionary());
  ExpectIndexesEqual(loaded->index(), original->index(), original->forest());

  // Query-for-query: identical mappings, ranks, and scores.
  MatchService warm(loaded);
  MatchService cold(original);
  for (size_t s = 0; s < kNumSpecs; ++s) {
    MatchQuery query;
    query.id = "rt-" + std::to_string(s);
    query.personal = *schema::ParseTreeSpec(kSpecs[s]);
    query.options.delta = 0.6;
    query.options.top_n = 10;
    auto got = warm.Match(query);
    auto want = cold.Match(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ExpectSameMatchResults(*got, *want);
  }
}

TEST(SnapshotStoreTest, ProbeReportsHeaderFacts) {
  std::shared_ptr<const RepositorySnapshot> snapshot = MakeSnapshot(300, 7);
  std::string bytes = SerializeSnapshot(*snapshot);
  auto info = ProbeSnapshot(bytes);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format_version, kFormatVersion);
  EXPECT_EQ(info->generation, 0u);
  EXPECT_EQ(info->fingerprint, snapshot->fingerprint());
  EXPECT_EQ(info->trees, snapshot->num_trees());
  EXPECT_EQ(info->total_nodes, snapshot->total_nodes());
  EXPECT_EQ(info->total_bytes, bytes.size());
}

// The acceptance-criterion suite: randomized forests, in-memory round
// trip, every derived structure and every query identical.
TEST(SnapshotStoreTest, RandomizedRoundTripIsEquivalent) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::shared_ptr<const RepositorySnapshot> original =
        MakeSnapshot(350, seed);
    std::string bytes = SerializeSnapshot(*original);
    auto loaded = DeserializeSnapshot(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectRoundTripEquivalent(*loaded, original);
    // Nothing was rebuilt on load.
    EXPECT_EQ((*loaded)->build_stats().trees_rebuilt, 0u);
    EXPECT_EQ((*loaded)->build_stats().name_entries_computed, 0u);
  }
}

TEST(SnapshotStoreTest, FileRoundTripSurvivesSaveAndLoad) {
  std::shared_ptr<const RepositorySnapshot> original = MakeSnapshot(400, 41);
  const std::string path =
      testing::TempDir() + "/xsm_store_roundtrip.snap";
  auto saved = SaveSnapshotToFile(*original, path);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(saved->fingerprint, original->fingerprint());
  EXPECT_GT(saved->total_bytes, 0u);

  auto probed = ProbeSnapshotFile(path);
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  EXPECT_EQ(probed->total_bytes, saved->total_bytes);

  auto loaded = LoadSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRoundTripEquivalent(*loaded, original);
  std::remove(path.c_str());
}

TEST(SnapshotStoreTest, MissingFileIsIOError) {
  auto loaded = LoadSnapshotFromFile(testing::TempDir() +
                                     "/definitely_not_there.snap");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// Warm start continues the generation chain: save generation g, load it,
// apply deltas — the warm-started manager's generations g+1, g+2, ... are
// equivalent to the same deltas applied to the never-persisted original.
TEST(SnapshotStoreTest, SaveLoadApplyDeltaMatchesUninterruptedChain) {
  for (uint64_t seed : {51u, 52u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto cold_manager = live::RepositoryManager::Create(
        MakeCorpus(350, seed));
    ASSERT_TRUE(cold_manager.ok()) << cold_manager.status().ToString();
    schema::SchemaForest donors = MakeCorpus(120, seed + 100);
    Rng rng(seed * 7919);

    // Advance the original chain a couple of generations before saving, so
    // the persisted generation is not 0.
    auto advance = [&](live::RepositoryManager* manager) {
      std::shared_ptr<const RepositorySnapshot> current = manager->Current();
      live::DeltaBuilder builder;
      schema::TreeId victim = static_cast<schema::TreeId>(
          rng.Uniform(current->num_trees()));
      schema::SchemaTree mutated(current->forest().tree(victim));
      schema::NodeProperties* props = mutated.mutable_props(
          static_cast<schema::NodeId>(rng.Uniform(mutated.size())));
      props->name += "W";
      builder.ReplaceTree(victim, std::move(mutated));
      auto report = manager->Apply(*builder.Build());
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    };
    advance(cold_manager->get());
    advance(cold_manager->get());
    const uint64_t saved_generation =
        (*cold_manager)->CurrentGeneration();
    ASSERT_EQ(saved_generation, 2u);

    const std::string path = testing::TempDir() + "/xsm_store_chain_" +
                             std::to_string(seed) + ".snap";
    auto saved = (*cold_manager)->SaveSnapshot(path);
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
    EXPECT_EQ(saved->generation, saved_generation);

    auto warm_manager = live::RepositoryManager::WarmStart(path);
    ASSERT_TRUE(warm_manager.ok()) << warm_manager.status().ToString();
    EXPECT_EQ((*warm_manager)->CurrentGeneration(), saved_generation);
    ExpectRoundTripEquivalent((*warm_manager)->Current(),
                              (*cold_manager)->Current());

    // Same deltas on both chains, two more rounds: one add + one replace.
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      std::shared_ptr<const RepositorySnapshot> current =
          (*cold_manager)->Current();
      live::DeltaBuilder cold_builder;
      live::DeltaBuilder warm_builder;
      schema::TreeId donor = static_cast<schema::TreeId>(round);
      cold_builder.AddTree(donors.tree_ptr(donor), "donor");
      warm_builder.AddTree(donors.tree_ptr(donor), "donor");
      schema::TreeId victim = static_cast<schema::TreeId>(
          rng.Uniform(current->num_trees()));
      schema::SchemaTree mutated(current->forest().tree(victim));
      schema::NodeProperties* props = mutated.mutable_props(
          static_cast<schema::NodeId>(rng.Uniform(mutated.size())));
      props->name += "X" + std::to_string(round);
      cold_builder.ReplaceTree(victim, schema::SchemaTree(mutated));
      warm_builder.ReplaceTree(victim, std::move(mutated));

      auto cold_report = (*cold_manager)->Apply(*cold_builder.Build());
      auto warm_report = (*warm_manager)->Apply(*warm_builder.Build());
      ASSERT_TRUE(cold_report.ok()) << cold_report.status().ToString();
      ASSERT_TRUE(warm_report.ok()) << warm_report.status().ToString();
      // The chain really continued from the persisted generation, and the
      // loaded snapshot's shared state supported copy-on-write reuse just
      // like an in-memory one.
      EXPECT_EQ(warm_report->generation,
                saved_generation + static_cast<uint64_t>(round) + 1);
      EXPECT_EQ(warm_report->generation, cold_report->generation);
      EXPECT_EQ(warm_report->trees_reused, cold_report->trees_reused);
      EXPECT_GT(warm_report->trees_reused, 0u);
      EXPECT_EQ(warm_report->fingerprint, cold_report->fingerprint);
      ExpectRoundTripEquivalent((*warm_manager)->Current(),
                                (*cold_manager)->Current());
    }
    std::remove(path.c_str());
  }
}

// MatchService-level warm boot: SaveSnapshot on one service, WarmStart a
// second one from the file, and both serve identical results; the warm
// service keeps ingesting deltas from the persisted generation.
TEST(SnapshotStoreTest, MatchServiceWarmStartServesIdenticalResults) {
  auto cold = MatchService::Create(MakeCorpus(400, 61));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  const std::string path = testing::TempDir() + "/xsm_store_service.snap";
  auto saved = (*cold)->SaveSnapshot(path);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();

  auto warm = MatchService::WarmStart(path);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ((*warm)->CurrentGeneration(), 0u);
  EXPECT_EQ((*warm)->CurrentSnapshot()->fingerprint(),
            (*cold)->CurrentSnapshot()->fingerprint());

  for (size_t s = 0; s < kNumSpecs; ++s) {
    MatchQuery query;
    query.id = "svc-" + std::to_string(s);
    query.personal = *schema::ParseTreeSpec(kSpecs[s]);
    query.options.delta = 0.6;
    auto got = (*warm)->Match(query);
    auto want = (*cold)->Match(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ExpectSameMatchResults(*got, *want);
  }

  live::DeltaBuilder builder;
  builder.AddTree(*schema::ParseTreeSpec("invoice(total,customer)"),
                  "feed:invoice");
  auto report = (*warm)->ApplyDelta(*builder.Build());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 1u);
  EXPECT_GT(report->trees_reused, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xsm::store
