#include "sim/string_similarity.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>

#include "util/random.h"
#include "util/string_util.h"

namespace xsm::sim {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
}

TEST(EditDistanceTest, TranspositionCostsOneInDamerau) {
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2);
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1);
  EXPECT_EQ(DamerauLevenshteinDistance("author", "auhtor"), 1);
  EXPECT_EQ(DamerauLevenshteinDistance("ca", "abc"), 3);  // OSA variant
}

TEST(EditDistanceTest, DamerauNeverExceedsLevenshtein) {
  Rng rng(99);
  const std::string alphabet = "abcde";
  for (int trial = 0; trial < 500; ++trial) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(10);
    size_t lb = rng.Uniform(10);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(5)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(5)];
    EXPECT_LE(DamerauLevenshteinDistance(a, b), LevenshteinDistance(a, b))
        << a << " vs " << b;
  }
}

TEST(FuzzySimilarityTest, IdentityAndEmpty) {
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("address", "address"), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("abc", ""), 0.0);
}

TEST(FuzzySimilarityTest, KnownValues) {
  // dist("name","nam") = 1, max len 4 -> 0.75.
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("name", "nam"), 0.75);
  // transposition: dist 1, len 4 -> 0.75.
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("name", "nmae"), 0.75);
  // dist("email","mail") = 1 deletion, max len 5 -> 0.8.
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("email", "mail"), 0.8);
}

TEST(FuzzySimilarityTest, CaseSensitivityVariants) {
  EXPECT_LT(FuzzyStringSimilarity("NAME", "name"), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarityIgnoreCase("NAME", "name"), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarityIgnoreCase("AuthorName", "authorname"),
                   1.0);
}

class SimilarityRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityRangeTest, AllKernelsInUnitRangeAndSymmetric) {
  Rng rng(GetParam());
  const std::string alphabet = "abcdefgh_-";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(14);
    size_t lb = rng.Uniform(14);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(10)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(10)];

    for (auto fn : {FuzzyStringSimilarity, JaroSimilarity,
                    JaroWinklerSimilarity}) {
      double ab = fn(a, b);
      double ba = fn(b, a);
      EXPECT_GE(ab, 0.0) << a << "|" << b;
      EXPECT_LE(ab, 1.0) << a << "|" << b;
      EXPECT_DOUBLE_EQ(ab, ba) << a << "|" << b;
    }
    double ng = NgramDiceSimilarity(a, b);
    EXPECT_GE(ng, 0.0);
    EXPECT_LE(ng, 1.0);
    EXPECT_DOUBLE_EQ(ng, NgramDiceSimilarity(b, a));
    // Identity always scores 1.
    EXPECT_DOUBLE_EQ(FuzzyStringSimilarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, a), a.empty() ? 1.0 : 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityRangeTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_NEAR(jw, 0.961111, 1e-5);
  // Winkler never decreases Jaro.
  EXPECT_GE(jw, JaroSimilarity("martha", "marhta"));
}

TEST(NgramTest, Basics) {
  EXPECT_DOUBLE_EQ(NgramDiceSimilarity("night", "night"), 1.0);
  EXPECT_GT(NgramDiceSimilarity("night", "nacht"), 0.0);
  EXPECT_LT(NgramDiceSimilarity("night", "nacht"), 0.5);
  EXPECT_DOUBLE_EQ(NgramDiceSimilarity("abc", "xyz"), 0.0);
  // Case-insensitive by construction.
  EXPECT_DOUBLE_EQ(NgramDiceSimilarity("Email", "email"), 1.0);
}

TEST(NgramTest, ShortStringsWithPadding) {
  // One-char strings still produce bigrams thanks to padding.
  EXPECT_GT(NgramDiceSimilarity("a", "a", 2), 0.0);
  EXPECT_DOUBLE_EQ(NgramDiceSimilarity("a", "b", 3), 0.0);
}

TEST(FuzzySimilarityTest, SchemaNamePairs) {
  // The kinds of pairs the experiment relies on: close variants score above
  // a 0.5 matcher threshold, unrelated names below it.
  EXPECT_GT(FuzzyStringSimilarityIgnoreCase("authorName", "author_name"),
            0.5);
  EXPECT_GT(FuzzyStringSimilarityIgnoreCase("email", "e-mail"), 0.5);
  EXPECT_GT(FuzzyStringSimilarityIgnoreCase("address", "addr"), 0.5);
  EXPECT_LT(FuzzyStringSimilarityIgnoreCase("email", "shelf"), 0.5);
  EXPECT_LT(FuzzyStringSimilarityIgnoreCase("address", "book"), 0.5);
}

TEST(BoundedEditDistanceTest, KnownValues) {
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("kitten", "sitting", 3), 3);
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("kitten", "sitting", 2), 3);
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("ab", "ba", 1), 1);
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("ab", "ba", 0), 1);
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("same", "same", 0), 0);
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("", "abc", 3), 3);
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("", "abc", 2), 3);
  // Length difference alone exceeds the bound: pruned before any DP.
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("a", "abcdefgh", 3), 4);
}

// The property the engine's bit-identity rests on: whenever the bound
// admits the true distance the banded DP returns it exactly, and whenever
// it does not the result is pinned to max_dist + 1.
TEST(BoundedEditDistanceTest, MatchesFullDPForEveryBound) {
  Rng rng(271828);
  const std::string alphabet = "abc";  // small alphabet: many near-misses
  EditDistanceScratch scratch;
  for (int trial = 0; trial < 400; ++trial) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(13);
    size_t lb = rng.Uniform(13);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(3)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(3)];
    const int full = DamerauLevenshteinDistance(a, b);
    for (int bound = 0; bound <= 14; ++bound) {
      const int expected = full <= bound ? full : bound + 1;
      EXPECT_EQ(BoundedDamerauLevenshteinDistance(a, b, bound, &scratch),
                expected)
          << a << " vs " << b << " bound " << bound;
      // Null-scratch path agrees with the reused-scratch path.
      EXPECT_EQ(BoundedDamerauLevenshteinDistance(a, b, bound), expected);
    }
  }
}

TEST(BoundedEditDistanceTest, TranspositionHeavyStrings) {
  // Adjacent swaps are where OSA differs from plain Levenshtein; make sure
  // the band keeps the i-2 row reachable.
  EditDistanceScratch scratch;
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("abcdef", "badcfe", 3, &scratch),
            3);
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("abcdef", "badcfe", 2, &scratch),
            3);
  EXPECT_EQ(
      BoundedDamerauLevenshteinDistance("authorname", "auhtormane", 4,
                                        &scratch),
      DamerauLevenshteinDistance("authorname", "auhtormane"));
}

TEST(FuzzySimilarityTest, ThresholdVariantQualifiesIdenticalPairs) {
  Rng rng(31415);
  const std::string alphabet = "abcdefg_";
  EditDistanceScratch scratch;
  const double thresholds[] = {0.0, 0.25, 0.5, 2.0 / 3.0, 0.75, 0.9, 1.0};
  for (int trial = 0; trial < 300; ++trial) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(14);
    size_t lb = rng.Uniform(14);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(8)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(8)];
    const double full = FuzzyStringSimilarity(a, b);
    const NameSignature sig_a = NameSignature::Of(a);
    const NameSignature sig_b = NameSignature::Of(b);
    for (double threshold : thresholds) {
      const double pruned =
          FuzzyStringSimilarityWithThreshold(a, b, threshold, &scratch);
      const double bag_pruned = FuzzyStringSimilarityWithThreshold(
          a, b, threshold, &scratch, &sig_a, &sig_b);
      if (full >= threshold) {
        // Bit-identical, not approximately equal.
        EXPECT_EQ(pruned, full) << a << "|" << b << " @ " << threshold;
        EXPECT_EQ(bag_pruned, full) << a << "|" << b << " @ " << threshold;
      } else {
        EXPECT_LT(pruned, threshold) << a << "|" << b << " @ " << threshold;
        EXPECT_LT(bag_pruned, threshold)
            << a << "|" << b << " @ " << threshold;
      }
    }
  }
}

TEST(NameSignatureTest, BagDistanceLowerBoundsEditDistance) {
  Rng rng(8128);
  const std::string alphabet = "abcd0_";
  for (int trial = 0; trial < 500; ++trial) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(12);
    size_t lb = rng.Uniform(12);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(6)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(6)];
    const int bag = NameSignature::Of(a).BagDistance(NameSignature::Of(b));
    EXPECT_LE(bag, DamerauLevenshteinDistance(a, b)) << a << "|" << b;
    EXPECT_LE(bag, LevenshteinDistance(a, b)) << a << "|" << b;
  }
  // Symmetric, zero on identity, counts digits and punctuation in shared
  // buckets (both map to one bucket each).
  EXPECT_EQ(NameSignature::Of("name").BagDistance(NameSignature::Of("name")),
            0);
  EXPECT_EQ(NameSignature::Of("ab12").BagDistance(NameSignature::Of("ab34")),
            0);  // digit bucket is class-level, not per-digit
  EXPECT_EQ(NameSignature::Of("abc").BagDistance(NameSignature::Of("xyz")),
            3);
}

// Reference n-gram Dice: the pre-packing implementation (hash map of
// substring copies), kept here as the oracle for the packed version.
double NgramDiceReference(std::string_view a, std::string_view b, int n) {
  if (n < 1) n = 1;
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (la == lb) return 1.0;
  std::string pa = "^" + la + "$";
  std::string pb = "^" + lb + "$";
  if (pa.size() < static_cast<size_t>(n) ||
      pb.size() < static_cast<size_t>(n)) {
    return 0.0;
  }
  std::unordered_map<std::string, int> grams;
  size_t count_a = pa.size() - static_cast<size_t>(n) + 1;
  for (size_t i = 0; i < count_a; ++i) {
    ++grams[pa.substr(i, static_cast<size_t>(n))];
  }
  size_t count_b = pb.size() - static_cast<size_t>(n) + 1;
  size_t shared = 0;
  for (size_t i = 0; i < count_b; ++i) {
    auto it = grams.find(pb.substr(i, static_cast<size_t>(n)));
    if (it != grams.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  return 2.0 * static_cast<double>(shared) /
         static_cast<double>(count_a + count_b);
}

TEST(NgramTest, PackedGramsMatchReferenceImplementation) {
  Rng rng(1618);
  const std::string alphabet = "abcXYZ_-09";
  for (int trial = 0; trial < 300; ++trial) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(12);
    size_t lb = rng.Uniform(12);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(10)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(10)];
    // n <= 4 takes the uint32 path, 5..8 the uint64 path, > 8 the fallback.
    for (int n : {1, 2, 3, 4, 5, 8, 9}) {
      EXPECT_DOUBLE_EQ(NgramDiceSimilarity(a, b, n),
                       NgramDiceReference(a, b, n))
          << a << "|" << b << " n=" << n;
    }
  }
}

TEST(NgramTest, PreloweredMatchesLoweringPath) {
  EXPECT_DOUBLE_EQ(NgramDiceSimilarityPrelowered("authorname", "authorname"),
                   NgramDiceSimilarity("AuthorName", "authorname"));
  EXPECT_DOUBLE_EQ(NgramDiceSimilarityPrelowered("night", "nacht"),
                   NgramDiceSimilarity("night", "nacht"));
}

TEST(EditDistanceTest, ScratchReuseAcrossDifferentLengths) {
  EditDistanceScratch scratch;
  // Grow, shrink, grow: stale cells from longer strings must never leak.
  EXPECT_EQ(DamerauLevenshteinDistance("abcdefghij", "abcdefghij", &scratch),
            0);
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba", &scratch), 1);
  EXPECT_EQ(DamerauLevenshteinDistance("kitten", "sitting", &scratch), 3);
  EXPECT_EQ(BoundedDamerauLevenshteinDistance("short", "shirt", 2, &scratch),
            1);
  EXPECT_EQ(DamerauLevenshteinDistance("a", "b", &scratch), 1);
}

TEST(EditDistanceTest, TriangleInequalityOnSamples) {
  Rng rng(5);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 200; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      size_t len = rng.Uniform(8);
      for (size_t i = 0; i < len; ++i) str += alphabet[rng.Uniform(4)];
    }
    int ab = LevenshteinDistance(s[0], s[1]);
    int bc = LevenshteinDistance(s[1], s[2]);
    int ac = LevenshteinDistance(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

}  // namespace
}  // namespace xsm::sim
