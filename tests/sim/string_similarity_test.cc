#include "sim/string_similarity.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/random.h"

namespace xsm::sim {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
}

TEST(EditDistanceTest, TranspositionCostsOneInDamerau) {
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2);
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1);
  EXPECT_EQ(DamerauLevenshteinDistance("author", "auhtor"), 1);
  EXPECT_EQ(DamerauLevenshteinDistance("ca", "abc"), 3);  // OSA variant
}

TEST(EditDistanceTest, DamerauNeverExceedsLevenshtein) {
  Rng rng(99);
  const std::string alphabet = "abcde";
  for (int trial = 0; trial < 500; ++trial) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(10);
    size_t lb = rng.Uniform(10);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(5)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(5)];
    EXPECT_LE(DamerauLevenshteinDistance(a, b), LevenshteinDistance(a, b))
        << a << " vs " << b;
  }
}

TEST(FuzzySimilarityTest, IdentityAndEmpty) {
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("address", "address"), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("abc", ""), 0.0);
}

TEST(FuzzySimilarityTest, KnownValues) {
  // dist("name","nam") = 1, max len 4 -> 0.75.
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("name", "nam"), 0.75);
  // transposition: dist 1, len 4 -> 0.75.
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("name", "nmae"), 0.75);
  // dist("email","mail") = 1 deletion, max len 5 -> 0.8.
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarity("email", "mail"), 0.8);
}

TEST(FuzzySimilarityTest, CaseSensitivityVariants) {
  EXPECT_LT(FuzzyStringSimilarity("NAME", "name"), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarityIgnoreCase("NAME", "name"), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyStringSimilarityIgnoreCase("AuthorName", "authorname"),
                   1.0);
}

class SimilarityRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityRangeTest, AllKernelsInUnitRangeAndSymmetric) {
  Rng rng(GetParam());
  const std::string alphabet = "abcdefgh_-";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(14);
    size_t lb = rng.Uniform(14);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(10)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(10)];

    for (auto fn : {FuzzyStringSimilarity, JaroSimilarity,
                    JaroWinklerSimilarity}) {
      double ab = fn(a, b);
      double ba = fn(b, a);
      EXPECT_GE(ab, 0.0) << a << "|" << b;
      EXPECT_LE(ab, 1.0) << a << "|" << b;
      EXPECT_DOUBLE_EQ(ab, ba) << a << "|" << b;
    }
    double ng = NgramDiceSimilarity(a, b);
    EXPECT_GE(ng, 0.0);
    EXPECT_LE(ng, 1.0);
    EXPECT_DOUBLE_EQ(ng, NgramDiceSimilarity(b, a));
    // Identity always scores 1.
    EXPECT_DOUBLE_EQ(FuzzyStringSimilarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, a), a.empty() ? 1.0 : 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityRangeTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_NEAR(jw, 0.961111, 1e-5);
  // Winkler never decreases Jaro.
  EXPECT_GE(jw, JaroSimilarity("martha", "marhta"));
}

TEST(NgramTest, Basics) {
  EXPECT_DOUBLE_EQ(NgramDiceSimilarity("night", "night"), 1.0);
  EXPECT_GT(NgramDiceSimilarity("night", "nacht"), 0.0);
  EXPECT_LT(NgramDiceSimilarity("night", "nacht"), 0.5);
  EXPECT_DOUBLE_EQ(NgramDiceSimilarity("abc", "xyz"), 0.0);
  // Case-insensitive by construction.
  EXPECT_DOUBLE_EQ(NgramDiceSimilarity("Email", "email"), 1.0);
}

TEST(NgramTest, ShortStringsWithPadding) {
  // One-char strings still produce bigrams thanks to padding.
  EXPECT_GT(NgramDiceSimilarity("a", "a", 2), 0.0);
  EXPECT_DOUBLE_EQ(NgramDiceSimilarity("a", "b", 3), 0.0);
}

TEST(FuzzySimilarityTest, SchemaNamePairs) {
  // The kinds of pairs the experiment relies on: close variants score above
  // a 0.5 matcher threshold, unrelated names below it.
  EXPECT_GT(FuzzyStringSimilarityIgnoreCase("authorName", "author_name"),
            0.5);
  EXPECT_GT(FuzzyStringSimilarityIgnoreCase("email", "e-mail"), 0.5);
  EXPECT_GT(FuzzyStringSimilarityIgnoreCase("address", "addr"), 0.5);
  EXPECT_LT(FuzzyStringSimilarityIgnoreCase("email", "shelf"), 0.5);
  EXPECT_LT(FuzzyStringSimilarityIgnoreCase("address", "book"), 0.5);
}

TEST(EditDistanceTest, TriangleInequalityOnSamples) {
  Rng rng(5);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 200; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      size_t len = rng.Uniform(8);
      for (size_t i = 0; i < len; ++i) str += alphabet[rng.Uniform(4)];
    }
    int ab = LevenshteinDistance(s[0], s[1]);
    int bc = LevenshteinDistance(s[1], s[2]);
    int ac = LevenshteinDistance(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

}  // namespace
}  // namespace xsm::sim
