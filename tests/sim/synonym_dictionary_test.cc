#include "sim/synonym_dictionary.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xsm::sim {
namespace {

TEST(SynonymDictionaryTest, BasicGroups) {
  SynonymDictionary d(std::vector<std::vector<std::string>>{
      {"name", "title"}, {"email", "mail"}});
  EXPECT_TRUE(d.AreSynonyms("name", "title"));
  EXPECT_TRUE(d.AreSynonyms("title", "name"));
  EXPECT_FALSE(d.AreSynonyms("name", "mail"));
  EXPECT_EQ(d.num_groups(), 2u);
}

TEST(SynonymDictionaryTest, CaseInsensitive) {
  SynonymDictionary d(std::vector<std::vector<std::string>>{{"Name", "TITLE"}});
  EXPECT_TRUE(d.AreSynonyms("NAME", "title"));
}

TEST(SynonymDictionaryTest, UnknownTermsAreNotSynonyms) {
  SynonymDictionary d(std::vector<std::vector<std::string>>{{"a", "b"}});
  EXPECT_FALSE(d.AreSynonyms("a", "zzz"));
  EXPECT_FALSE(d.AreSynonyms("zzz", "yyy"));
  EXPECT_FALSE(d.AreSynonyms("zzz", "zzz"));  // not in dictionary
}

TEST(SynonymDictionaryTest, TermInMultipleGroups) {
  SynonymDictionary d;
  d.AddGroup({"name", "title"});
  d.AddGroup({"name", "fullname"});
  EXPECT_TRUE(d.AreSynonyms("name", "title"));
  EXPECT_TRUE(d.AreSynonyms("name", "fullname"));
  // Transitivity does NOT hold across groups by design.
  EXPECT_FALSE(d.AreSynonyms("title", "fullname"));
}

TEST(SynonymDictionaryTest, ScoreTiers) {
  SynonymDictionary d(std::vector<std::vector<std::string>>{{"email", "mail"}});
  EXPECT_DOUBLE_EQ(d.Score("email", "EMAIL"), 1.0);   // equal beats synonym
  EXPECT_DOUBLE_EQ(d.Score("email", "mail"), 0.9);
  EXPECT_DOUBLE_EQ(d.Score("email", "mail", 0.8), 0.8);
  EXPECT_DOUBLE_EQ(d.Score("email", "phone"), 0.0);
  // Equal unknown terms still score 1.0 (exact match needs no dictionary).
  EXPECT_DOUBLE_EQ(d.Score("zzz", "zzz"), 1.0);
}

TEST(SynonymDictionaryTest, DefaultDictionaryDomainVocab) {
  const SynonymDictionary& d = SynonymDictionary::Default();
  EXPECT_GT(d.num_groups(), 10u);
  EXPECT_TRUE(d.AreSynonyms("email", "mail"));
  EXPECT_TRUE(d.AreSynonyms("author", "writer"));
  EXPECT_TRUE(d.AreSynonyms("address", "location"));
  EXPECT_TRUE(d.AreSynonyms("zip", "postcode"));
  EXPECT_FALSE(d.AreSynonyms("email", "address"));
}

}  // namespace
}  // namespace xsm::sim
