#include "repo/loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace xsm::repo {
namespace {

namespace fs = std::filesystem;

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xsm_loader_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteFile(const std::string& name,
                        const std::string& content) {
    fs::path p = dir_ / name;
    std::ofstream out(p);
    out << content;
    return p.string();
  }

  fs::path dir_;
};

constexpr char kDtd[] =
    "<!ELEMENT lib (book*, address)>\n"
    "<!ELEMENT book (title, author)>\n"
    "<!ELEMENT title (#PCDATA)>\n"
    "<!ELEMENT author (#PCDATA)>\n"
    "<!ELEMENT address (#PCDATA)>\n";

constexpr char kXsd[] = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="person">
    <xs:complexType><xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="email" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>)";

TEST_F(LoaderTest, LoadDtdFile) {
  std::string path = WriteFile("lib.dtd", kDtd);
  schema::SchemaForest forest;
  auto r = LoadSchemaFile(path, &forest);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 1u);
  EXPECT_EQ(forest.num_trees(), 1u);
  EXPECT_EQ(forest.tree(0).name(0), "lib");
  EXPECT_EQ(forest.source(0), path);
}

TEST_F(LoaderTest, LoadXsdFile) {
  std::string path = WriteFile("person.xsd", kXsd);
  schema::SchemaForest forest;
  auto r = LoadSchemaFile(path, &forest);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 1u);
  EXPECT_EQ(forest.tree(0).name(0), "person");
  EXPECT_EQ(forest.tree(0).size(), 3u);
}

TEST_F(LoaderTest, FormatSniffingForUnknownExtension) {
  std::string dtd_path = WriteFile("schema1.txt", kDtd);
  std::string xsd_path = WriteFile("schema2.txt", kXsd);
  schema::SchemaForest forest;
  ASSERT_TRUE(LoadSchemaFile(dtd_path, &forest).ok());
  ASSERT_TRUE(LoadSchemaFile(xsd_path, &forest).ok());
  EXPECT_EQ(forest.num_trees(), 2u);
}

TEST_F(LoaderTest, LoadDirectory) {
  WriteFile("a.dtd", kDtd);
  WriteFile("b.xsd", kXsd);
  WriteFile("ignored.txt", "not a schema");
  schema::SchemaForest forest;
  auto r = LoadRepositoryFromDirectory(dir_.string(), &forest);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->files_loaded, 2u);
  EXPECT_EQ(r->files_failed, 0u);
  EXPECT_EQ(r->trees_added, 2u);
  EXPECT_EQ(forest.num_trees(), 2u);
  // Deterministic order: sorted paths → a.dtd before b.xsd.
  EXPECT_EQ(forest.tree(0).name(0), "lib");
  EXPECT_EQ(forest.tree(1).name(0), "person");
}

TEST_F(LoaderTest, LenientDirectorySkipsBadFiles) {
  WriteFile("good.dtd", kDtd);
  WriteFile("bad.xsd", "<broken");
  schema::SchemaForest forest;
  auto r = LoadRepositoryFromDirectory(dir_.string(), &forest);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files_loaded, 1u);
  EXPECT_EQ(r->files_failed, 1u);
  EXPECT_FALSE(r->warnings.empty());
}

TEST_F(LoaderTest, StrictDirectoryFailsOnBadFiles) {
  WriteFile("good.dtd", kDtd);
  WriteFile("bad.xsd", "<broken");
  schema::SchemaForest forest;
  LoadOptions strict;
  strict.lenient = false;
  EXPECT_FALSE(
      LoadRepositoryFromDirectory(dir_.string(), &forest, strict).ok());
}

TEST_F(LoaderTest, MissingFileAndDirectory) {
  schema::SchemaForest forest;
  EXPECT_FALSE(LoadSchemaFile((dir_ / "nope.dtd").string(), &forest).ok());
  EXPECT_FALSE(
      LoadRepositoryFromDirectory((dir_ / "nope").string(), &forest).ok());
}

TEST_F(LoaderTest, LoadSchemaTextValidatesFormat) {
  schema::SchemaForest forest;
  EXPECT_FALSE(LoadSchemaText(kDtd, "bogus", "tag", &forest).ok());
  EXPECT_FALSE(LoadSchemaText(kDtd, "dtd", "tag", nullptr).ok());
  auto r = LoadSchemaText(kDtd, "dtd", "inline-dtd", &forest);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(forest.source(0), "inline-dtd");
}

TEST_F(LoaderTest, WarningsCollectedInReport) {
  schema::SchemaForest forest;
  LoadReport report;
  std::string dtd_with_pe =
      "<!ENTITY % x \"y\">\n<!ELEMENT a (%x;)>\n<!ELEMENT b (#PCDATA)>\n";
  auto r = LoadSchemaText(dtd_with_pe, "dtd", "pe.dtd", &forest, {}, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(report.warnings.empty());
}

}  // namespace
}  // namespace xsm::repo
