#include "repo/synthetic.h"

#include <gtest/gtest.h>

#include <tuple>

#include "match/element_matching.h"
#include "schema/schema_tree.h"

namespace xsm::repo {
namespace {

TEST(SyntheticRepoTest, RespectsTargetSize) {
  SyntheticRepoOptions opts;
  opts.target_elements = 2000;
  opts.seed = 7;
  auto r = GenerateSyntheticRepository(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->total_nodes(), 2000u);
  // Overshoot bounded by one tree.
  EXPECT_LE(r->total_nodes(), 2000u + opts.max_tree_size);
  EXPECT_GT(r->num_trees(), 10u);
}

TEST(SyntheticRepoTest, DeterministicForSeed) {
  SyntheticRepoOptions opts;
  opts.target_elements = 1500;
  opts.seed = 42;
  auto a = GenerateSyntheticRepository(opts);
  auto b = GenerateSyntheticRepository(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_trees(), b->num_trees());
  ASSERT_EQ(a->total_nodes(), b->total_nodes());
  for (schema::TreeId t = 0; t < static_cast<schema::TreeId>(a->num_trees());
       ++t) {
    EXPECT_EQ(schema::ToTreeSpec(a->tree(t)), schema::ToTreeSpec(b->tree(t)));
  }
}

TEST(SyntheticRepoTest, DifferentSeedsDiffer) {
  SyntheticRepoOptions opts;
  opts.target_elements = 1500;
  opts.seed = 1;
  auto a = GenerateSyntheticRepository(opts);
  opts.seed = 2;
  auto b = GenerateSyntheticRepository(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff = a->num_trees() != b->num_trees();
  if (!any_diff) {
    for (schema::TreeId t = 0;
         t < static_cast<schema::TreeId>(a->num_trees()); ++t) {
      if (schema::ToTreeSpec(a->tree(t)) != schema::ToTreeSpec(b->tree(t))) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticRepoTest, TreesAreValidAndSizedWithinBounds) {
  SyntheticRepoOptions opts;
  opts.target_elements = 3000;
  opts.seed = 11;
  auto r = GenerateSyntheticRepository(opts);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->Validate().ok());
  for (schema::TreeId t = 0; t < static_cast<schema::TreeId>(r->num_trees());
       ++t) {
    EXPECT_GE(r->tree(t).size(), opts.min_tree_size);
    EXPECT_LE(r->tree(t).size(), opts.max_tree_size);
  }
}

TEST(SyntheticRepoTest, VocabularyYieldsMappingElements) {
  // The generator must reproduce the paper's key corpus property: the
  // canonical personal schema finds a substantial number of fuzzy matches.
  SyntheticRepoOptions opts;
  opts.target_elements = 5000;
  opts.seed = 3;
  auto repo = GenerateSyntheticRepository(opts);
  ASSERT_TRUE(repo.ok());
  auto personal = schema::ParseTreeSpec("name(address,email)");
  ASSERT_TRUE(personal.ok());
  auto matching =
      match::MatchElements(*personal, *repo, {.threshold = 0.5});
  ASSERT_TRUE(matching.ok());
  // Density in the rough band of the paper (4520 of 9759 ≈ 0.46 with
  // multiplicity): accept a generous [0.1, 1.0] band per element.
  double density =
      static_cast<double>(matching->total_mapping_elements()) /
      static_cast<double>(repo->total_nodes());
  EXPECT_GT(density, 0.10) << matching->total_mapping_elements();
  EXPECT_LT(density, 1.00);
  // All three sets non-empty.
  for (const auto& set : matching->sets) EXPECT_GT(set.size(), 0u);
}

TEST(SyntheticRepoTest, ValidatesOptions) {
  SyntheticRepoOptions opts;
  opts.target_elements = 0;
  EXPECT_FALSE(GenerateSyntheticRepository(opts).ok());
  opts = SyntheticRepoOptions{};
  opts.min_tree_size = 50;
  opts.max_tree_size = 10;
  EXPECT_FALSE(GenerateSyntheticRepository(opts).ok());
  opts = SyntheticRepoOptions{};
  opts.typo_probability = 1.5;
  EXPECT_FALSE(GenerateSyntheticRepository(opts).ok());
  opts = SyntheticRepoOptions{};
  opts.max_fanout = 0;
  EXPECT_FALSE(GenerateSyntheticRepository(opts).ok());
}

class SampleRepositoryTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(SampleRepositoryTest, DrawsWholeTreesUpToTarget) {
  auto [target, seed] = GetParam();
  SyntheticRepoOptions opts;
  opts.target_elements = 8000;
  opts.seed = 5;
  auto full = GenerateSyntheticRepository(opts);
  ASSERT_TRUE(full.ok());
  schema::SchemaForest sample = SampleRepository(*full, target, seed);
  EXPECT_GE(sample.total_nodes(), std::min(target, full->total_nodes()));
  EXPECT_LE(sample.total_nodes(), target + opts.max_tree_size);
  EXPECT_LE(sample.num_trees(), full->num_trees());
  EXPECT_TRUE(sample.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SampleRepositoryTest,
    ::testing::Combine(::testing::Values(size_t{500}, size_t{2500},
                                         size_t{6000}),
                       ::testing::Values(1u, 9u)));

TEST(SampleRepositoryTest, DeterministicPerSeed) {
  SyntheticRepoOptions opts;
  opts.target_elements = 4000;
  auto full = GenerateSyntheticRepository(opts);
  ASSERT_TRUE(full.ok());
  auto a = SampleRepository(*full, 1500, 3);
  auto b = SampleRepository(*full, 1500, 3);
  ASSERT_EQ(a.num_trees(), b.num_trees());
  for (schema::TreeId t = 0; t < static_cast<schema::TreeId>(a.num_trees());
       ++t) {
    EXPECT_EQ(a.source(t), b.source(t));
  }
}

TEST(ComputeStatsTest, ReportsCorpusShape) {
  SyntheticRepoOptions opts;
  opts.target_elements = 3000;
  auto repo = GenerateSyntheticRepository(opts);
  ASSERT_TRUE(repo.ok());
  RepositoryStats stats = ComputeStats(*repo);
  EXPECT_EQ(stats.trees, repo->num_trees());
  EXPECT_EQ(stats.nodes, repo->total_nodes());
  EXPECT_GT(stats.avg_tree_size, 3.0);
  EXPECT_GT(stats.distinct_names, 100u);
  EXPECT_GT(stats.max_depth, 1);
  EXPECT_GE(stats.max_tree_size, static_cast<size_t>(stats.avg_tree_size));
}

TEST(ComputeStatsTest, EmptyForest) {
  schema::SchemaForest empty;
  RepositoryStats stats = ComputeStats(empty);
  EXPECT_EQ(stats.trees, 0u);
  EXPECT_EQ(stats.nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_tree_size, 0.0);
}

}  // namespace
}  // namespace xsm::repo
