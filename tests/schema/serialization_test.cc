#include "schema/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "repo/synthetic.h"
#include "schema/schema_tree.h"

namespace xsm::schema {
namespace {

SchemaForest MakeForest() {
  SchemaForest f;
  SchemaTree t1;
  NodeId root = t1.AddNode(kInvalidNode, {.name = "lib"});
  NodeId book = t1.AddNode(root, {.name = "book", .repeatable = true});
  t1.AddNode(book, {.name = "isbn",
                    .kind = NodeKind::kAttribute,
                    .datatype = "CDATA",
                    .optional = true});
  t1.AddNode(book, {.name = "title", .datatype = "xs:string"});
  f.AddTree(std::move(t1), "library with spaces.dtd");
  f.AddTree(*ParseTreeSpec("person(name,email)"), "person.xsd");
  return f;
}

void ExpectForestsEqual(const SchemaForest& a, const SchemaForest& b) {
  ASSERT_EQ(a.num_trees(), b.num_trees());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  for (TreeId t = 0; t < static_cast<TreeId>(a.num_trees()); ++t) {
    EXPECT_EQ(a.source(t), b.source(t));
    const SchemaTree& ta = a.tree(t);
    const SchemaTree& tb = b.tree(t);
    ASSERT_EQ(ta.size(), tb.size());
    for (NodeId n = 0; n < static_cast<NodeId>(ta.size()); ++n) {
      EXPECT_EQ(ta.parent(n), tb.parent(n));
      EXPECT_EQ(ta.name(n), tb.name(n));
      EXPECT_EQ(ta.props(n).kind, tb.props(n).kind);
      EXPECT_EQ(ta.props(n).datatype, tb.props(n).datatype);
      EXPECT_EQ(ta.props(n).repeatable, tb.props(n).repeatable);
      EXPECT_EQ(ta.props(n).optional, tb.props(n).optional);
    }
  }
}

TEST(SerializationTest, RoundTrip) {
  SchemaForest f = MakeForest();
  std::string text = SerializeForest(f);
  auto parsed = DeserializeForest(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectForestsEqual(f, *parsed);
}

TEST(SerializationTest, RoundTripSyntheticCorpus) {
  repo::SyntheticRepoOptions opts;
  opts.target_elements = 1200;
  opts.seed = 77;
  auto f = repo::GenerateSyntheticRepository(opts);
  ASSERT_TRUE(f.ok());
  auto parsed = DeserializeForest(SerializeForest(*f));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectForestsEqual(*f, *parsed);
}

TEST(SerializationTest, EmptyForest) {
  SchemaForest empty;
  auto parsed = DeserializeForest(SerializeForest(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_trees(), 0u);
}

TEST(SerializationTest, EscapingOfSpecialCharacters) {
  SchemaForest f;
  SchemaTree t;
  t.AddNode(kInvalidNode, {.name = "weird name%with specials"});
  f.AddTree(std::move(t), "dir with space/file%.dtd");
  auto parsed = DeserializeForest(SerializeForest(f));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->source(0), "dir with space/file%.dtd");
  EXPECT_EQ(parsed->tree(0).name(0), "weird name%with specials");
}

TEST(SerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeForest("").ok());
  EXPECT_FALSE(DeserializeForest("not a forest").ok());
  EXPECT_FALSE(DeserializeForest("#xsm-forest v1\nnode 0 -1 E - x").ok());
  EXPECT_FALSE(DeserializeForest("#xsm-forest v1\ntree a\nnode 0 -1 E - x")
                   .ok());  // unterminated
  EXPECT_FALSE(
      DeserializeForest("#xsm-forest v1\ntree a\nnode 1 -1 E - x\nend")
          .ok());  // non-dense id
  EXPECT_FALSE(
      DeserializeForest("#xsm-forest v1\ntree a\nnode 0 5 E - x\nend")
          .ok());  // bad parent
  EXPECT_FALSE(
      DeserializeForest("#xsm-forest v1\ntree a\nnode 0 -1 Q - x\nend")
          .ok());  // bad kind
  EXPECT_FALSE(
      DeserializeForest("#xsm-forest v1\ntree a\nbogus\nend").ok());
}

TEST(SerializationTest, CommentsAndBlankLinesTolerated) {
  auto parsed = DeserializeForest(
      "#xsm-forest v1\n\n# a comment\ntree src\nnode 0 -1 E - root\n"
      "\nend\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_trees(), 1u);
}

TEST(SerializationTest, FileRoundTrip) {
  SchemaForest f = MakeForest();
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("xsm_ser_" + std::to_string(::getpid()) + ".forest"))
          .string();
  ASSERT_TRUE(SaveForestToFile(f, path).ok());
  auto loaded = LoadForestFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectForestsEqual(f, *loaded);
  std::filesystem::remove(path);
  EXPECT_FALSE(LoadForestFromFile(path).ok());
}

}  // namespace
}  // namespace xsm::schema
