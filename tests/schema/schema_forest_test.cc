#include "schema/schema_forest.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace xsm::schema {
namespace {

SchemaForest MakeForest() {
  SchemaForest f;
  f.AddTree(*ParseTreeSpec("lib(book(title,authorName),address)"),
            "lib.dtd");
  f.AddTree(*ParseTreeSpec("person(name,email)"), "person.xsd");
  return f;
}

TEST(SchemaForestTest, AddAndAccess) {
  SchemaForest f = MakeForest();
  EXPECT_EQ(f.num_trees(), 2u);
  EXPECT_EQ(f.total_nodes(), 8u);
  EXPECT_EQ(f.tree(0).name(0), "lib");
  EXPECT_EQ(f.tree(1).name(0), "person");
  EXPECT_EQ(f.source(0), "lib.dtd");
  EXPECT_EQ(f.source(1), "person.xsd");
}

TEST(SchemaForestTest, NodeRefAccessors) {
  SchemaForest f = MakeForest();
  NodeRef ref{1, 1};
  EXPECT_EQ(f.name(ref), "name");
  EXPECT_EQ(f.props(ref).kind, NodeKind::kElement);
}

TEST(SchemaForestTest, ForEachNodeVisitsAll) {
  SchemaForest f = MakeForest();
  size_t count = 0;
  std::set<NodeRef> seen;
  f.ForEachNode([&](NodeRef r) {
    ++count;
    seen.insert(r);
  });
  EXPECT_EQ(count, f.total_nodes());
  EXPECT_EQ(seen.size(), f.total_nodes());
}

TEST(SchemaForestTest, ValidateAll) {
  SchemaForest f = MakeForest();
  EXPECT_TRUE(f.Validate().ok());
}

TEST(NodeRefTest, Ordering) {
  NodeRef a{0, 5};
  NodeRef b{1, 0};
  NodeRef c{1, 3};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_FALSE(c < a);
}

TEST(NodeRefTest, EqualityAndValidity) {
  NodeRef a{2, 3};
  NodeRef b{2, 3};
  NodeRef c{2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(NodeRef{}.valid());
}

TEST(NodeRefTest, HashDistinguishes) {
  std::unordered_set<NodeRef> s;
  for (int32_t t = 0; t < 10; ++t) {
    for (int32_t n = 0; n < 10; ++n) s.insert(NodeRef{t, n});
  }
  EXPECT_EQ(s.size(), 100u);
}

TEST(SchemaForestTest, EmptyForest) {
  SchemaForest f;
  EXPECT_EQ(f.num_trees(), 0u);
  EXPECT_EQ(f.total_nodes(), 0u);
  EXPECT_TRUE(f.Validate().ok());
  size_t count = 0;
  f.ForEachNode([&](NodeRef) { ++count; });
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace xsm::schema
