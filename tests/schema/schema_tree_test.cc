#include "schema/schema_tree.h"

#include <gtest/gtest.h>

namespace xsm::schema {
namespace {

SchemaTree BuildPaperPersonalSchema() {
  // Fig. 1: book(title, author).
  SchemaTree s;
  NodeId book = s.AddNode(kInvalidNode, {.name = "book"});
  s.AddNode(book, {.name = "title"});
  s.AddNode(book, {.name = "author"});
  return s;
}

TEST(SchemaTreeTest, BuildBasics) {
  SchemaTree s = BuildPaperPersonalSchema();
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.num_edges(), 2);
  EXPECT_EQ(s.root(), 0);
  EXPECT_EQ(s.name(0), "book");
  EXPECT_EQ(s.parent(1), 0);
  EXPECT_EQ(s.parent(2), 0);
  EXPECT_EQ(s.depth(0), 0);
  EXPECT_EQ(s.depth(1), 1);
  EXPECT_EQ(s.children(0).size(), 2u);
  EXPECT_TRUE(s.IsLeaf(1));
  EXPECT_FALSE(s.IsLeaf(0));
}

TEST(SchemaTreeTest, EmptyTree) {
  SchemaTree s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.root(), kInvalidNode);
  EXPECT_EQ(s.num_edges(), 0);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_TRUE(s.PreOrder().empty());
}

TEST(SchemaTreeTest, PreOrderFollowsDocumentOrder) {
  // lib(book(title,authorName,data(shelf)),address) — paper's repository
  // fragment shape.
  SchemaTree t;
  NodeId lib = t.AddNode(kInvalidNode, {.name = "lib"});
  NodeId book = t.AddNode(lib, {.name = "book"});
  NodeId title = t.AddNode(book, {.name = "title"});
  NodeId author = t.AddNode(book, {.name = "authorName"});
  NodeId data = t.AddNode(book, {.name = "data"});
  NodeId shelf = t.AddNode(data, {.name = "shelf"});
  NodeId address = t.AddNode(lib, {.name = "address"});
  EXPECT_EQ(t.PreOrder(), (std::vector<NodeId>{lib, book, title, author, data,
                                               shelf, address}));
}

TEST(SchemaTreeTest, ValidateAcceptsWellFormed) {
  SchemaTree s = BuildPaperPersonalSchema();
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTreeTest, PropertiesRoundTrip) {
  SchemaTree s;
  NodeId r = s.AddNode(kInvalidNode, {.name = "root"});
  NodeId a = s.AddNode(r, {.name = "isbn",
                           .kind = NodeKind::kAttribute,
                           .datatype = "CDATA",
                           .repeatable = false,
                           .optional = true});
  EXPECT_EQ(s.props(a).kind, NodeKind::kAttribute);
  EXPECT_EQ(s.props(a).datatype, "CDATA");
  EXPECT_TRUE(s.props(a).optional);
  s.mutable_props(a)->datatype = "xs:string";
  EXPECT_EQ(s.props(a).datatype, "xs:string");
}

TEST(TreeSpecTest, ParseSimple) {
  auto r = ParseTreeSpec("book(title,author)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SchemaTree& s = *r;
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.name(0), "book");
  EXPECT_EQ(s.name(1), "title");
  EXPECT_EQ(s.name(2), "author");
}

TEST(TreeSpecTest, ParseNestedWithAttributesAndSpaces) {
  auto r = ParseTreeSpec(" lib ( book ( @isbn , title ) , address ) ");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SchemaTree& s = *r;
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.props(2).kind, NodeKind::kAttribute);
  EXPECT_EQ(s.name(2), "isbn");
  EXPECT_EQ(s.depth(3), 2);
  EXPECT_EQ(s.depth(4), 1);
}

TEST(TreeSpecTest, SingleNode) {
  auto r = ParseTreeSpec("root");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(r->num_edges(), 0);
}

TEST(TreeSpecTest, RejectsMalformed) {
  EXPECT_FALSE(ParseTreeSpec("").ok());
  EXPECT_FALSE(ParseTreeSpec("a(b").ok());
  EXPECT_FALSE(ParseTreeSpec("a(b))").ok());
  EXPECT_FALSE(ParseTreeSpec("a(,b)").ok());
  EXPECT_FALSE(ParseTreeSpec("a b").ok());
  EXPECT_FALSE(ParseTreeSpec("(a)").ok());
}

TEST(TreeSpecTest, RoundTrip) {
  const std::string spec = "lib(book(@isbn,title,data(shelf)),address)";
  auto r = ParseTreeSpec(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToTreeSpec(*r), spec);
}

TEST(TreeSpecTest, NamesWithPunctuation) {
  auto r = ParseTreeSpec("xs:schema(my-element(sub_el.v2))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name(0), "xs:schema");
  EXPECT_EQ(r->name(1), "my-element");
  EXPECT_EQ(r->name(2), "sub_el.v2");
}

TEST(SchemaTreeTest, ToStringShowsStructure) {
  SchemaTree s = BuildPaperPersonalSchema();
  std::string str = s.ToString();
  EXPECT_NE(str.find("book"), std::string::npos);
  EXPECT_NE(str.find("  title"), std::string::npos);
  EXPECT_NE(str.find("  author"), std::string::npos);
}

TEST(SchemaTreeTest, DeepChain) {
  SchemaTree s;
  NodeId prev = s.AddNode(kInvalidNode, {.name = "n0"});
  for (int i = 1; i < 100; ++i) {
    prev = s.AddNode(prev, {.name = "n" + std::to_string(i)});
  }
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.depth(99), 99);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.PreOrder().size(), 100u);
}

}  // namespace
}  // namespace xsm::schema
