// Observability over the HTTP surface: GET /metrics serves Prometheus
// text covering the service, cache, HTTP and WAL families; /v1/stats
// carries the hardening counters (sheds by reason, drain save failures,
// WAL recovery tallies); and the server's stats() reads back from the
// same registry the scrape renders.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/http_client.h"
#include "net/http_server.h"
#include "net/tenant_registry.h"
#include "repo/synthetic.h"

namespace xsm::net {
namespace {

constexpr const char* kHost = "127.0.0.1";
constexpr const char* kQueryLine =
    "person(name,phone) id=q1 delta=0.6 top=5";

schema::SchemaForest MakeForest() {
  repo::SyntheticRepoOptions options;
  options.target_elements = 1500;
  options.seed = 5;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok()) << forest.status().ToString();
  return std::move(*forest);
}

struct RunningServer {
  std::unique_ptr<TenantRegistry> registry;
  std::unique_ptr<HttpServer> server;
};

RunningServer StartServer() {
  TenantRegistryOptions registry_options;
  registry_options.service.num_threads = 2;
  RunningServer running;
  running.registry =
      std::make_unique<TenantRegistry>(std::move(registry_options));
  auto tenant = running.registry->Create("t1", MakeForest());
  EXPECT_TRUE(tenant.ok()) << tenant.status().ToString();
  running.server = std::make_unique<HttpServer>(running.registry.get(),
                                                HttpServerOptions());
  Status status = running.server->StartBackground();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return running;
}

TEST(HttpObservabilityTest, MetricsEndpointServesExposition) {
  auto running = StartServer();
  uint16_t port = running.server->port();

  // Run one query so the service families have non-zero samples.
  auto match = FetchOnce(kHost, port, "POST", "/v1/tenants/t1/match",
                         kQueryLine);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_EQ(match->status_code, 200);

  auto metrics = FetchOnce(kHost, port, "GET", "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->status_code, 200);
  ASSERT_NE(metrics->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*metrics->FindHeader("content-type"),
            "text/plain; version=0.0.4");

  const std::string& text = metrics->body;
  // Service + cache families, labeled by tenant.
  EXPECT_NE(text.find("# TYPE xsm_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("xsm_queries_total{tenant=\"t1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xsm_cluster_cache_misses_total{tenant=\"t1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE xsm_query_duration_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("xsm_query_duration_ms_bucket{tenant=\"t1\",le=\"+Inf\"} 1"),
            std::string::npos);
  // Live/WAL durability families registered per tenant.
  EXPECT_NE(text.find("xsm_wal_appends_total{tenant=\"t1\"} 0"),
            std::string::npos);
  // Registry-wide WAL recovery + tenants series.
  EXPECT_NE(text.find("xsm_wal_recoveries_total 0"), std::string::npos);
  EXPECT_NE(text.find("xsm_tenants 1"), std::string::npos);
  // HTTP server families on the same surface; the /metrics request
  // itself has already been routed, so requests >= 2.
  EXPECT_NE(text.find("xsm_http_requests_total"), std::string::npos);
  EXPECT_NE(text.find("xsm_http_requests_shed_total{reason=\"capacity\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("xsm_http_request_duration_ms_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("xsm_http_inflight 0"), std::string::npos);

  // Wrong method is a typed 405, not a crash.
  auto post = FetchOnce(kHost, port, "POST", "/metrics");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status_code, 405);

  running.server->RequestShutdown();
}

TEST(HttpObservabilityTest, ServerStatsCarriesHardeningCounters) {
  auto running = StartServer();
  uint16_t port = running.server->port();

  auto stats = FetchOnce(kHost, port, "GET", "/v1/stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->status_code, 200);
  const std::string& body = stats->body;
  EXPECT_NE(body.find("\"type\":\"server_stats\""), std::string::npos);
  // The PR-6..8 hardening counters, previously missing from /v1/stats.
  EXPECT_NE(body.find("\"sheds\":{\"capacity\":0}"), std::string::npos);
  EXPECT_NE(body.find("\"drain_save_failures\":0"), std::string::npos);
  EXPECT_NE(body.find("\"wal\":{\"recoveries\":0,\"records_replayed\":0,"
                      "\"records_skipped\":0,\"torn_tail_truncations\":0}"),
            std::string::npos);

  // stats() and the JSON read from the same registry handles.
  HttpServerStats server_stats = running.server->stats();
  EXPECT_EQ(server_stats.requests_shed, 0u);
  EXPECT_GE(server_stats.requests, 1u);
  EXPECT_EQ(running.registry->metrics().CounterValue(
                "xsm_http_requests_total"),
            server_stats.requests);

  // Tenant stats expose the registry-backed WAL/service counters too.
  auto tenant_stats = FetchOnce(kHost, port, "GET", "/v1/tenants/t1/stats");
  ASSERT_TRUE(tenant_stats.ok());
  EXPECT_NE(tenant_stats->body.find("\"slow_queries\":0"),
            std::string::npos);
  EXPECT_NE(tenant_stats->body.find("\"wal_appends\":0"),
            std::string::npos);

  running.server->RequestShutdown();
}

TEST(HttpObservabilityTest, TraceEventsOverHttpWhenEnabled) {
  TenantRegistryOptions registry_options;
  registry_options.service.num_threads = 2;
  registry_options.session.trace_events = true;
  RunningServer running;
  running.registry =
      std::make_unique<TenantRegistry>(std::move(registry_options));
  auto tenant = running.registry->Create("t1", MakeForest());
  ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
  running.server = std::make_unique<HttpServer>(running.registry.get(),
                                                HttpServerOptions());
  ASSERT_TRUE(running.server->StartBackground().ok());
  uint16_t port = running.server->port();

  auto match = FetchOnce(kHost, port, "POST", "/v1/tenants/t1/match",
                         kQueryLine);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_EQ(match->status_code, 200);
  EXPECT_NE(match->body.find("\"type\":\"trace\",\"id\":\"q1\""),
            std::string::npos);
  EXPECT_NE(match->body.find("\"name\":\"cluster_cache\""),
            std::string::npos);
  EXPECT_NE(match->body.find("\"name\":\"queue_wait\""), std::string::npos);

  running.server->RequestShutdown();
}

}  // namespace
}  // namespace xsm::net
