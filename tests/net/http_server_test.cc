// End-to-end tests for the xsm::net HTTP front end: event-identity with
// the in-process ServeSession, tenant lifecycle over REST, graceful drain
// with warm restart resuming the generation chain, mid-stream client
// disconnect mapping to query cancellation, admission shedding, and
// hostile bytes arriving over a real socket.
#include "net/http_server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/http_client.h"
#include "net/tenant_registry.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"
#include "service/serve_session.h"

namespace xsm::net {
namespace {

namespace fs = std::filesystem;

constexpr const char* kHost = "127.0.0.1";

// The serve/batch query grammar lines used across the tests.
constexpr const char* kQueryLine =
    "person(name,phone) id=q1 delta=0.6 top=5";
constexpr const char* kBatchBody =
    "person(name,phone) id=b1 delta=0.6 top=3\n"
    "book(title,author) id=b2 delta=0.6 top=3\n";

std::vector<std::string> SplitLines(const std::string& body) {
  std::vector<std::string> lines;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Wall-clock fields differ run to run; everything else must match exactly.
std::string NormalizeMs(const std::string& line) {
  static const std::regex kMs("\"ms\":[0-9.eE+-]+");
  return std::regex_replace(line, kMs, "\"ms\":0");
}

std::vector<std::string> NormalizeAll(std::vector<std::string> lines) {
  for (std::string& line : lines) line = NormalizeMs(line);
  return lines;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("xsm_http_test_" + tag + "_" +
              std::to_string(static_cast<unsigned>(getpid()))))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class HttpServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo::SyntheticRepoOptions options;
    options.target_elements = 2000;
    options.seed = 7;
    auto forest = repo::GenerateSyntheticRepository(options);
    ASSERT_TRUE(forest.ok()) << forest.status().ToString();
    forest_ = new schema::SchemaForest(std::move(*forest));
  }

  static void TearDownTestSuite() {
    delete forest_;
    forest_ = nullptr;
  }

  static TenantRegistryOptions RegistryOptions() {
    TenantRegistryOptions options;
    options.service.num_threads = 2;
    return options;
  }

  // Registry with one tenant "t1" over a copy of the shared forest.
  static std::unique_ptr<TenantRegistry> MakeRegistry(
      TenantRegistryOptions options = RegistryOptions()) {
    auto registry = std::make_unique<TenantRegistry>(std::move(options));
    auto tenant = registry->Create("t1", *forest_);
    EXPECT_TRUE(tenant.ok()) << tenant.status().ToString();
    return registry;
  }

  static schema::SchemaForest* forest_;
};

schema::SchemaForest* HttpServerTest::forest_ = nullptr;

struct RunningServer {
  std::unique_ptr<TenantRegistry> registry;
  std::unique_ptr<HttpServer> server;
};

RunningServer StartServer(std::unique_ptr<TenantRegistry> registry,
                          HttpServerOptions options = HttpServerOptions()) {
  RunningServer running;
  running.registry = std::move(registry);
  running.server =
      std::make_unique<HttpServer>(running.registry.get(), options);
  Status status = running.server->StartBackground();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return running;
}

// --- event identity --------------------------------------------------------

TEST_F(HttpServerTest, StreamedMatchIsEventIdenticalToInProcessRun) {
  auto running = StartServer(MakeRegistry());

  auto response = FetchOnce(kHost, running.server->port(), "POST",
                            "/v1/tenants/t1/match", kQueryLine);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  ASSERT_NE(response->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*response->FindHeader("content-type"), "application/x-ndjson");
  std::vector<std::string> http_events = SplitLines(response->body);
  ASSERT_FALSE(http_events.empty());

  // The same query against a fresh in-process service + session. Identical
  // forest, identical options, identical seeds — the events must be
  // byte-identical modulo wall-clock "ms" fields.
  TenantRegistryOptions options = RegistryOptions();
  auto service = service::MatchService::Create(*forest_, options.service);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  service::ServeSession session(service->get(), options.session);
  auto query = session.ParseQuery(kQueryLine, 0);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  std::vector<std::string> direct_events;
  auto result = session.RunQuery(
      *query, [&](const std::string& line) { direct_events.push_back(line); });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(NormalizeAll(http_events), NormalizeAll(direct_events));
  // Terminal event is a completed "done".
  EXPECT_NE(http_events.back().find("\"type\":\"done\""), std::string::npos);
  EXPECT_NE(http_events.back().find("\"status\":\"completed\""),
            std::string::npos);

  running.server->RequestShutdown();
}

TEST_F(HttpServerTest, BatchMatchesInProcessBatch) {
  auto running = StartServer(MakeRegistry());

  auto response = FetchOnce(kHost, running.server->port(), "POST",
                            "/v1/tenants/t1/batch", kBatchBody);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  std::vector<std::string> http_events = SplitLines(response->body);

  TenantRegistryOptions options = RegistryOptions();
  auto service = service::MatchService::Create(*forest_, options.service);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  service::ServeSession session(service->get(), options.session);
  std::vector<service::MatchQuery> queries;
  size_t index = 0;
  for (const std::string& line : SplitLines(kBatchBody)) {
    auto query = session.ParseQuery(line, index++);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    queries.push_back(std::move(*query));
  }
  std::vector<std::string> direct_events;
  session.RunBatch(queries, [&](const std::string& line) {
    direct_events.push_back(line);
  });

  // Batch interleaving is nondeterministic across pool threads, so compare
  // as sorted multisets — and verify the ordered tail contract (done
  // events arrive in input order) on the HTTP side directly.
  auto http_sorted = NormalizeAll(http_events);
  auto direct_sorted = NormalizeAll(direct_events);
  std::sort(http_sorted.begin(), http_sorted.end());
  std::sort(direct_sorted.begin(), direct_sorted.end());
  EXPECT_EQ(http_sorted, direct_sorted);
  ASSERT_GE(http_events.size(), 2u);
  EXPECT_NE(http_events[http_events.size() - 2].find("\"id\":\"b1\""),
            std::string::npos);
  EXPECT_NE(http_events.back().find("\"id\":\"b2\""), std::string::npos);

  running.server->RequestShutdown();
}

// --- REST lifecycle --------------------------------------------------------

TEST_F(HttpServerTest, HealthTenantsStatsEndpoints) {
  auto running = StartServer(MakeRegistry());
  uint16_t port = running.server->port();

  auto health = FetchOnce(kHost, port, "GET", "/v1/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
  EXPECT_NE(health->body.find("\"type\":\"health\""), std::string::npos);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health->body.find("\"tenants\":1"), std::string::npos);

  // The retired pre-/v1 alias answers a typed 410 naming the new path.
  auto gone = FetchOnce(kHost, port, "GET", "/healthz");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->status_code, 410);
  EXPECT_NE(gone->body.find("\"code\":\"gone\""), std::string::npos);
  EXPECT_NE(gone->body.find("\"migrate_to\":\"/v1/healthz\""),
            std::string::npos);

  auto tenants = FetchOnce(kHost, port, "GET", "/v1/tenants");
  ASSERT_TRUE(tenants.ok());
  EXPECT_NE(tenants->body.find("\"type\":\"tenant\""), std::string::npos);
  EXPECT_NE(tenants->body.find("\"name\":\"t1\""), std::string::npos);

  auto tenant_stats = FetchOnce(kHost, port, "GET", "/v1/tenants/t1/stats");
  ASSERT_TRUE(tenant_stats.ok());
  EXPECT_EQ(tenant_stats->status_code, 200);
  EXPECT_NE(tenant_stats->body.find("\"type\":\"stats\""), std::string::npos);

  auto server_stats = FetchOnce(kHost, port, "GET", "/v1/stats");
  ASSERT_TRUE(server_stats.ok());
  EXPECT_EQ(server_stats->status_code, 200);
  EXPECT_NE(server_stats->body.find("\"type\":\"server_stats\""),
            std::string::npos);

  auto missing = FetchOnce(kHost, port, "POST", "/v1/tenants/nope/match",
                           kQueryLine);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);
  EXPECT_NE(missing->body.find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(missing->body.find("\"code\":\"not_found\""), std::string::npos);

  auto bad_method = FetchOnce(kHost, port, "POST", "/v1/healthz");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method->status_code, 405);

  running.server->RequestShutdown();
}

TEST_F(HttpServerTest, CreateTenantIngestAndMatch) {
  auto running = StartServer(MakeRegistry());
  uint16_t port = running.server->port();

  auto created = FetchOnce(kHost, port, "PUT", "/v1/tenants/fresh",
                           "# two trees\n"
                           "person(name,phone)  source=seed1\n"
                           "book(title,author)\n");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->status_code, 201);
  EXPECT_NE(created->body.find("\"type\":\"tenant\""), std::string::npos);
  EXPECT_NE(created->body.find("\"trees\":2"), std::string::npos);

  auto duplicate = FetchOnce(kHost, port, "PUT", "/v1/tenants/fresh",
                             "person(name)\n");
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->status_code, 409);

  auto bad_name = FetchOnce(kHost, port, "PUT", "/v1/tenants/.hidden",
                            "person(name)\n");
  ASSERT_TRUE(bad_name.ok());
  EXPECT_EQ(bad_name->status_code, 400);

  auto ingested = FetchOnce(kHost, port, "POST", "/v1/tenants/fresh/ingest",
                            "!ingest customer(name,address(city,zip))\n"
                            "!generation\n");
  ASSERT_TRUE(ingested.ok());
  EXPECT_EQ(ingested->status_code, 200);
  std::vector<std::string> events = SplitLines(ingested->body);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].find("\"type\":\"generation\""), std::string::npos);
  EXPECT_NE(events[0].find("\"generation\":1"), std::string::npos);
  EXPECT_NE(events[1].find("\"generation\":1"), std::string::npos);

  // Filesystem commands must be refused over HTTP whatever the registry
  // was configured with.
  auto blocked = FetchOnce(kHost, port, "POST", "/v1/tenants/fresh/ingest",
                           "!save /tmp/evil.snap\n");
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->status_code, 409);
  EXPECT_NE(blocked->body.find("\"code\":\"failed_precondition\""),
            std::string::npos);

  auto match = FetchOnce(kHost, port, "POST", "/v1/tenants/fresh/match",
                         "person(name,phone) id=m1 delta=0.8 top=5");
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->status_code, 200);
  EXPECT_NE(match->body.find("\"type\":\"done\""), std::string::npos);

  // A match body with two query lines is a client error.
  auto two_lines = FetchOnce(kHost, port, "POST", "/v1/tenants/fresh/match",
                             "person(name) id=a\nbook(title) id=b\n");
  ASSERT_TRUE(two_lines.ok());
  EXPECT_EQ(two_lines->status_code, 400);

  running.server->RequestShutdown();
}

// --- drain + warm restart --------------------------------------------------

TEST_F(HttpServerTest, DrainSavesTenantsAndWarmRestartResumesGenerations) {
  TempDir state_dir("drain");

  std::string first_run_events;
  uint16_t first_port = 0;
  {
    TenantRegistryOptions options = RegistryOptions();
    options.state_dir = state_dir.path();
    auto running = StartServer(MakeRegistry(std::move(options)));
    first_port = running.server->port();

    // Advance t1 to generation 2 so the warm restart has a chain to resume.
    auto ingested = FetchOnce(kHost, first_port, "POST",
                              "/v1/tenants/t1/ingest",
                              "!ingest invoice(number,total)\n"
                              "!ingest shipment(code,destination)\n");
    ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
    ASSERT_EQ(ingested->status_code, 200);

    auto reference = FetchOnce(kHost, first_port, "POST",
                               "/v1/tenants/t1/match", kQueryLine);
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(reference->status_code, 200);
    first_run_events = reference->body;

    // Kill: graceful drain saves every tenant into the state directory.
    running.server->RequestShutdown();
    running.server.reset();  // joins the serve thread
    ASSERT_TRUE(fs::exists(fs::path(state_dir.path()) / "t1.snap"));
  }

  // Warm restart: a brand-new registry boots every tenant from disk.
  TenantRegistryOptions options = RegistryOptions();
  options.state_dir = state_dir.path();
  auto registry = std::make_unique<TenantRegistry>(std::move(options));
  ASSERT_EQ(registry->WarmStartAll(), 1u);
  ASSERT_NE(registry->Find("t1"), nullptr);
  auto running = StartServer(std::move(registry));

  // The generation chain resumes where the drain left it.
  auto generation = FetchOnce(kHost, running.server->port(), "POST",
                              "/v1/tenants/t1/ingest", "!generation\n");
  ASSERT_TRUE(generation.ok());
  EXPECT_NE(generation->body.find("\"generation\":2"), std::string::npos)
      << generation->body;

  // And queries answer byte-identically to the pre-drain server.
  auto replay = FetchOnce(kHost, running.server->port(), "POST",
                          "/v1/tenants/t1/match", kQueryLine);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->status_code, 200);
  EXPECT_EQ(NormalizeAll(SplitLines(replay->body)),
            NormalizeAll(SplitLines(first_run_events)));

  // Continuing the chain after restart lands on generation 3.
  auto advanced = FetchOnce(kHost, running.server->port(), "POST",
                            "/v1/tenants/t1/ingest",
                            "!ingest receipt(id,amount)\n");
  ASSERT_TRUE(advanced.ok());
  EXPECT_NE(advanced->body.find("\"generation\":3"), std::string::npos)
      << advanced->body;

  running.server->RequestShutdown();
}

// --- disconnect → cancellation ---------------------------------------------

TEST_F(HttpServerTest, MidStreamDisconnectCancelsTheQuery) {
  auto running = StartServer(MakeRegistry());

  service::Matcher* service = running.registry->Find("t1")->service.get();
  const uint64_t cancelled_before = service->stats().cancelled;

  // A wide-open query that streams thousands of mappings: read the first
  // one, then vanish. The loop sees EOF while the worker is mid-query and
  // cancels its token; the engine winds down with kCancelled.
  HttpClient client;
  ASSERT_TRUE(client.Connect(kHost, running.server->port()).ok());
  ASSERT_TRUE(client
                  .SendRequest("POST", "/v1/tenants/t1/match",
                               "person(name,phone) id=gone delta=0.0 threshold=0.01 "
                               "top=1000000")
                  .ok());
  auto seen = client.ReadUntil("\"type\":\"mapping\"");
  ASSERT_TRUE(seen.ok()) << seen.status().ToString();
  client.Close();

  // Cancellation is cooperative — poll for the counter to tick.
  bool cancelled = false;
  for (int i = 0; i < 200 && !cancelled; ++i) {
    cancelled = service->stats().cancelled > cancelled_before;
    if (!cancelled) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_TRUE(cancelled) << "query did not cancel after client disconnect";

  bool observed = false;
  for (int i = 0; i < 200 && !observed; ++i) {
    observed = running.server->stats().disconnect_cancels > 0;
    if (!observed) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_TRUE(observed);

  running.server->RequestShutdown();
}

// --- admission control -----------------------------------------------------

TEST_F(HttpServerTest, AdmissionShedsWithTypedErrorAtTheHardCap) {
  HttpServerOptions options;
  options.admission.max_inflight = 1;
  // One worker must stay free to answer the shed request while the slow
  // query occupies a slot (this box may have a single core).
  options.num_workers = 4;
  auto running = StartServer(MakeRegistry(), options);

  // Occupy the only slot with a long-running streamed query.
  HttpClient slow;
  ASSERT_TRUE(slow.Connect(kHost, running.server->port()).ok());
  ASSERT_TRUE(slow.SendRequest("POST", "/v1/tenants/t1/match",
                               "person(name,phone) id=slow delta=0.0 threshold=0.01 "
                               "top=1000000")
                  .ok());
  auto started = slow.ReadUntil("\"type\":\"mapping\"");
  ASSERT_TRUE(started.ok()) << started.status().ToString();

  // While it runs, the next request is shed with a typed NDJSON 503.
  bool saw_shed = false;
  std::string last_body;
  for (int i = 0; i < 40 && !saw_shed; ++i) {
    auto shed = FetchOnce(kHost, running.server->port(), "POST",
                          "/v1/tenants/t1/match", kQueryLine);
    ASSERT_TRUE(shed.ok()) << shed.status().ToString();
    last_body = shed->body;
    if (shed->status_code == 503) {
      saw_shed = true;
      EXPECT_NE(shed->body.find("\"type\":\"error\""), std::string::npos);
      EXPECT_NE(shed->body.find("\"code\":\"unavailable\""),
                std::string::npos);
      EXPECT_NE(shed->body.find("\"retryable\":true"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_shed) << "never shed; last body: " << last_body;
  EXPECT_GE(running.server->stats().requests_shed, 1u);

  slow.Close();
  running.server->RequestShutdown();
}

// --- wire-level hostility --------------------------------------------------

TEST_F(HttpServerTest, MalformedRequestGetsTypedErrorAndClose) {
  auto running = StartServer(MakeRegistry());

  HttpClient client;
  ASSERT_TRUE(client.Connect(kHost, running.server->port()).ok());
  ASSERT_TRUE(client.SendRaw("THIS IS NOT HTTP\r\n\r\n").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 400);
  EXPECT_FALSE(response->keep_alive);
  EXPECT_NE(response->body.find("\"type\":\"error\""), std::string::npos);
  EXPECT_GE(running.server->stats().parse_failures, 1u);

  running.server->RequestShutdown();
}

TEST_F(HttpServerTest, OversizedHeadersGet413) {
  HttpServerOptions options;
  options.limits.max_header_bytes = 256;
  auto running = StartServer(MakeRegistry(), options);

  HttpClient client;
  ASSERT_TRUE(client.Connect(kHost, running.server->port()).ok());
  std::string request = "GET /healthz HTTP/1.1\r\nX-Pad: ";
  request.append(1024, 'a');
  request += "\r\n\r\n";
  ASSERT_TRUE(client.SendRaw(request).ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 413);

  running.server->RequestShutdown();
}

TEST_F(HttpServerTest, TruncatedRequestBodyGets400OnHalfClose) {
  auto running = StartServer(MakeRegistry());

  HttpClient client;
  ASSERT_TRUE(client.Connect(kHost, running.server->port()).ok());
  ASSERT_TRUE(client
                  .SendRaw("POST /v1/tenants/t1/match HTTP/1.1\r\n"
                           "Content-Length: 100\r\n\r\nonly this")
                  .ok());
  client.CloseWrite();
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 400);

  running.server->RequestShutdown();
}

TEST_F(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  auto running = StartServer(MakeRegistry());

  HttpClient client;
  ASSERT_TRUE(client.Connect(kHost, running.server->port()).ok());
  std::string two = BuildRequest("GET", "/v1/healthz", "") +
                    BuildRequest("GET", "/v1/tenants", "");
  ASSERT_TRUE(client.SendRaw(two).ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status_code, 200);
  EXPECT_NE(first->body.find("\"type\":\"health\""), std::string::npos);
  auto second = client.ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status_code, 200);
  EXPECT_NE(second->body.find("\"type\":\"tenant\""), std::string::npos);

  running.server->RequestShutdown();
}

// --- holistic integration --------------------------------------------------

TEST_F(HttpServerTest, IntegrateStreamIsEventIdenticalToInProcessRun) {
  auto running = StartServer(MakeRegistry());

  auto response = FetchOnce(kHost, running.server->port(), "POST",
                            "/v1/tenants/t1/integrate", "min_linkage=2\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  ASSERT_NE(response->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*response->FindHeader("content-type"), "application/x-ndjson");
  std::vector<std::string> http_events = SplitLines(response->body);
  ASSERT_FALSE(http_events.empty());

  // The same integration against a fresh in-process service + session:
  // identical forest, options, and seeds — events must be byte-identical
  // modulo wall-clock "ms" fields.
  TenantRegistryOptions options = RegistryOptions();
  auto service = service::MatchService::Create(*forest_, options.service);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  service::ServeSession session(service->get(), options.session);
  std::vector<std::string> direct_events;
  Status status = session.RunIntegrate(
      "min_linkage=2",
      [&](const std::string& line) { direct_events.push_back(line); });
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(NormalizeAll(http_events), NormalizeAll(direct_events));
  EXPECT_NE(http_events.back().find("\"type\":\"mediated\""),
            std::string::npos);
  EXPECT_NE(http_events.back().find("\"status\":\"completed\""),
            std::string::npos);

  // More than one option line is a malformed request, caught pre-stream.
  auto malformed = FetchOnce(kHost, running.server->port(), "POST",
                             "/v1/tenants/t1/integrate", "a=1\nb=2\n");
  ASSERT_TRUE(malformed.ok()) << malformed.status().ToString();
  EXPECT_EQ(malformed->status_code, 400);

  auto wrong_method = FetchOnce(kHost, running.server->port(), "GET",
                                "/v1/tenants/t1/integrate", "");
  ASSERT_TRUE(wrong_method.ok()) << wrong_method.status().ToString();
  EXPECT_EQ(wrong_method->status_code, 405);

  running.server->RequestShutdown();
}

TEST_F(HttpServerTest, DrainStopsAcceptingNewConnections) {
  auto running = StartServer(MakeRegistry());
  uint16_t port = running.server->port();

  running.server->RequestShutdown();
  for (int i = 0; i < 200 && !running.server->draining(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(running.server->draining());

  // Once the listener closes, new connections are refused (or accepted by
  // nothing and immediately reset — either way no request completes).
  bool refused = false;
  for (int i = 0; i < 200 && !refused; ++i) {
    HttpClient probe;
    if (!probe.Connect(kHost, port).ok()) {
      refused = true;
      break;
    }
    auto response = probe.Fetch("GET", "/healthz");
    refused = !response.ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(refused);
}

}  // namespace
}  // namespace xsm::net
