// Hostile-input tests for the bounded HTTP/1.1 parser: truncation sweeps,
// oversized headers/bodies, malformed chunked framing, smuggling-shaped
// ambiguity, pipelining. The contract under attack input is the
// wire::Reader one — a typed sticky error, never unbounded allocation.
#include "net/http.h"

#include <gtest/gtest.h>

#include <string>

namespace xsm::net {
namespace {

HttpParser RequestParser(const HttpLimits& limits = HttpLimits()) {
  return HttpParser(HttpParser::Mode::kRequest, limits);
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser = RequestParser();
  parser.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().method, "GET");
  EXPECT_EQ(parser.message().target, "/healthz");
  EXPECT_EQ(parser.message().version, "HTTP/1.1");
  EXPECT_TRUE(parser.message().keep_alive);
  EXPECT_TRUE(parser.message().body.empty());
  ASSERT_NE(parser.message().FindHeader("host"), nullptr);
  EXPECT_EQ(*parser.message().FindHeader("host"), "x");
}

TEST(HttpParserTest, ParsesContentLengthBody) {
  HttpParser parser = RequestParser();
  parser.Feed("POST /v1/x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().body, "hello");
}

TEST(HttpParserTest, ByteAtATimeFeedingDecodesChunkedBody) {
  const std::string wire =
      "POST /v1/t/match HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n\r\n"
      "4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
  HttpParser parser = RequestParser();
  for (char c : wire) {
    parser.Feed(std::string_view(&c, 1));
    ASSERT_FALSE(parser.failed()) << parser.status().ToString();
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().body, "wikipedia");
  EXPECT_TRUE(parser.message().chunked);
}

TEST(HttpParserTest, ChunkExtensionsAreIgnored) {
  HttpParser parser = RequestParser();
  parser.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;name=value\r\nwiki\r\n0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().body, "wiki");
}

// --- truncation ------------------------------------------------------------

TEST(HttpParserTest, TruncationSweepFailsTypedAtEveryPrefix) {
  const std::string wire =
      "POST /v1/t/ingest HTTP/1.1\r\n"
      "Content-Length: 11\r\n"
      "Connection: keep-alive\r\n\r\n"
      "!generation";
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpParser parser = RequestParser();
    parser.Feed(std::string_view(wire).substr(0, cut));
    ASSERT_FALSE(parser.done()) << "prefix " << cut;
    parser.Finish();
    ASSERT_TRUE(parser.failed()) << "prefix " << cut;
    EXPECT_EQ(parser.status().code(), StatusCode::kParseError)
        << "prefix " << cut;
  }
  // The full message parses.
  HttpParser parser = RequestParser();
  parser.Feed(wire);
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().body, "!generation");
}

TEST(HttpParserTest, TruncationSweepOverChunkedBody) {
  const std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpParser parser = RequestParser();
    parser.Feed(std::string_view(wire).substr(0, cut));
    if (parser.done()) FAIL() << "done at prefix " << cut;
    parser.Finish();
    ASSERT_TRUE(parser.failed()) << "prefix " << cut;
  }
}

// --- size limits -----------------------------------------------------------

TEST(HttpParserTest, OversizedHeaderBlockIsOutOfRange) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  HttpParser parser = RequestParser(limits);
  std::string huge = "GET / HTTP/1.1\r\nX-Pad: ";
  huge.append(200, 'a');
  parser.Feed(huge);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kOutOfRange);
  // Sticky: later bytes change nothing.
  parser.Feed("\r\n\r\n");
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.buffered_bytes(), 0u);  // buffer released, not grown
}

TEST(HttpParserTest, TooManyHeadersIsOutOfRange) {
  HttpLimits limits;
  limits.max_headers = 4;
  HttpParser parser = RequestParser(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    wire += "X-H" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  parser.Feed(wire);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kOutOfRange);
}

TEST(HttpParserTest, ContentLengthBeyondLimitRejectedBeforeBodyBytes) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpParser parser = RequestParser(limits);
  // The claim alone must trip the limit — no body bytes are ever sent.
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 1000000000\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kOutOfRange);
}

TEST(HttpParserTest, ChunkSizeBeyondLimitRejected) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpParser parser = RequestParser(limits);
  parser.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "ffffffff\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kOutOfRange);
}

TEST(HttpParserTest, ChunkTotalBeyondLimitRejected) {
  HttpLimits limits;
  limits.max_body_bytes = 6;
  HttpParser parser = RequestParser(limits);
  parser.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nabcd\r\n4\r\nefgh\r\n0\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kOutOfRange);
}

TEST(HttpParserTest, HugeHexChunkSizeNeverOverflows) {
  HttpParser parser = RequestParser();
  parser.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "ffffffffffffffffffffffffffffff\r\n");
  ASSERT_TRUE(parser.failed());
  // Caught by the body-budget accumulator guard, not by wrapping.
  EXPECT_EQ(parser.status().code(), StatusCode::kOutOfRange);
}

TEST(HttpParserTest, OverlongChunkSizeLineRejected) {
  HttpLimits limits;
  limits.max_chunk_line_bytes = 8;
  HttpParser parser = RequestParser(limits);
  parser.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "1;ext=aaaaaaaaaaaaaaaaaaaa\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kParseError);
}

TEST(HttpParserTest, TrailerSectionBounded) {
  HttpLimits limits;
  limits.max_trailer_bytes = 16;
  HttpParser parser = RequestParser(limits);
  std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n";
  wire += "X-Trailer: ";
  wire.append(64, 'a');
  wire += "\r\n\r\n";
  parser.Feed(wire);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kOutOfRange);
}

// --- malformed syntax ------------------------------------------------------

TEST(HttpParserTest, MalformedChunkSizeIsParseError) {
  for (const char* bad : {"zz\r\n", "\r\n", "4 4\r\n", "-4\r\n"}) {
    HttpParser parser = RequestParser();
    parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    parser.Feed(bad);
    ASSERT_TRUE(parser.failed()) << bad;
    EXPECT_EQ(parser.status().code(), StatusCode::kParseError) << bad;
  }
}

TEST(HttpParserTest, MissingCrlfAfterChunkDataIsParseError) {
  HttpParser parser = RequestParser();
  parser.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nwikiXX");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kParseError);
}

TEST(HttpParserTest, BothContentLengthAndChunkedIsParseError) {
  // The classic request-smuggling ambiguity must die, not pick a side.
  HttpParser parser = RequestParser();
  parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\n"
      "Transfer-Encoding: chunked\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kParseError);
}

TEST(HttpParserTest, DuplicateContentLengthIsParseError) {
  HttpParser parser = RequestParser();
  parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kParseError);
}

TEST(HttpParserTest, NonNumericContentLengthIsParseError) {
  // (" 5" / "5 " are valid — surrounding OWS is trimmed per RFC 9110.)
  for (const char* bad : {"abc", "-1", "+5", "5x", "0x10", ""}) {
    HttpParser parser = RequestParser();
    parser.Feed(std::string("POST / HTTP/1.1\r\nContent-Length: ") + bad +
                "\r\n\r\n");
    ASSERT_TRUE(parser.failed()) << "'" << bad << "'";
    EXPECT_EQ(parser.status().code(), StatusCode::kParseError)
        << "'" << bad << "'";
  }
}

TEST(HttpParserTest, ObsoleteLineFoldingRejected) {
  HttpParser parser = RequestParser();
  parser.Feed("GET / HTTP/1.1\r\nX-A: one\r\n two\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kParseError);
}

TEST(HttpParserTest, UnsupportedVersionIsUnimplemented) {
  HttpParser parser = RequestParser();
  parser.Feed("GET / HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kUnimplemented);
}

TEST(HttpParserTest, NonChunkedTransferEncodingIsUnimplemented) {
  HttpParser parser = RequestParser();
  parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kUnimplemented);
}

TEST(HttpParserTest, MalformedStartLinesRejected) {
  for (const char* bad :
       {"GET\r\n\r\n", "GET /\r\n\r\n", "G@T / HTTP/1.1\r\n\r\n",
        " / HTTP/1.1\r\n\r\n", "GET x HTTP/1.1\r\n\r\n",
        "GET /a\tb HTTP/1.1\r\n\r\n"}) {
    HttpParser parser = RequestParser();
    parser.Feed(bad);
    ASSERT_TRUE(parser.failed()) << bad;
    EXPECT_EQ(parser.status().code(), StatusCode::kParseError) << bad;
  }
}

TEST(HttpParserTest, HeaderNameAndValueValidation) {
  for (const char* bad :
       {"GET / HTTP/1.1\r\n: v\r\n\r\n", "GET / HTTP/1.1\r\nno-colon\r\n\r\n",
        "GET / HTTP/1.1\r\nbad name: v\r\n\r\n"}) {
    HttpParser parser = RequestParser();
    parser.Feed(bad);
    ASSERT_TRUE(parser.failed()) << bad;
  }
}

// --- connection semantics --------------------------------------------------

TEST(HttpParserTest, ConnectionCloseAndHttp10Defaults) {
  HttpParser parser = RequestParser();
  parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.message().keep_alive);

  parser.Reset();
  parser.Feed("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.message().keep_alive);

  parser.Reset();
  parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_TRUE(parser.message().keep_alive);
}

// --- pipelining ------------------------------------------------------------

TEST(HttpParserTest, PipelinedRequestsParseInOrder) {
  HttpParser parser = RequestParser();
  parser.Feed(
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\none"
      "GET /b HTTP/1.1\r\n\r\n"
      "GET /c HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().target, "/a");
  EXPECT_EQ(parser.message().body, "one");
  parser.Reset();
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().target, "/b");
  parser.Reset();
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().target, "/c");
  parser.Reset();
  EXPECT_FALSE(parser.done());
  EXPECT_FALSE(parser.failed());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, PipelinedLookaheadIsBounded) {
  HttpLimits limits;
  limits.max_pipeline_bytes = 64;
  HttpParser parser = RequestParser(limits);
  parser.Feed("GET /a HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  // A peer pumping unread requests while we serve the current one hits
  // the lookahead cap instead of growing the buffer without bound.
  std::string flood(200, 'x');
  parser.Feed(flood);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.status().code(), StatusCode::kOutOfRange);
}

// --- response mode ---------------------------------------------------------

TEST(HttpParserTest, ParsesChunkedResponse) {
  HttpParser parser(HttpParser::Mode::kResponse);
  parser.Feed(ChunkedResponseHead(200, "application/x-ndjson", true));
  parser.Feed(EncodeChunk("{\"a\":1}\n"));
  parser.Feed(EncodeChunk("{\"b\":2}\n"));
  parser.Feed(std::string(kChunkedFinal));
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().status_code, 200);
  EXPECT_EQ(parser.message().body, "{\"a\":1}\n{\"b\":2}\n");
}

TEST(HttpParserTest, SimpleResponseRoundTrips) {
  HttpParser parser(HttpParser::Mode::kResponse);
  parser.Feed(SimpleResponse(404, "application/x-ndjson", "{\"e\":1}\n",
                             /*keep_alive=*/false));
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().status_code, 404);
  EXPECT_EQ(parser.message().reason, "Not Found");
  EXPECT_EQ(parser.message().body, "{\"e\":1}\n");
  EXPECT_FALSE(parser.message().keep_alive);
}

TEST(HttpParserTest, ResponseWithoutFramingReadsUntilEof) {
  HttpParser parser(HttpParser::Mode::kResponse);
  parser.Feed("HTTP/1.1 200 OK\r\n\r\npartial then more");
  EXPECT_FALSE(parser.done());
  parser.Feed(" and more");
  parser.Finish();
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.message().body, "partial then more and more");
}

// --- helpers ---------------------------------------------------------------

TEST(HttpHelpersTest, SplitPathSegments) {
  EXPECT_EQ(SplitPathSegments("/v1/tenants/t1/match?x=1"),
            (std::vector<std::string>{"v1", "tenants", "t1", "match"}));
  EXPECT_EQ(SplitPathSegments("/"), std::vector<std::string>{});
  EXPECT_EQ(SplitPathSegments("//a//b/"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitPathSegments("/healthz"),
            std::vector<std::string>{"healthz"});
}

TEST(HttpHelpersTest, EncodeChunk) {
  EXPECT_EQ(EncodeChunk("wiki"), "4\r\nwiki\r\n");
  EXPECT_EQ(EncodeChunk(""), "");  // never emits a terminator by accident
}

TEST(HttpHelpersTest, HttpCodeForStatus) {
  EXPECT_EQ(HttpCodeForStatus(Status::ParseError("x")), 400);
  EXPECT_EQ(HttpCodeForStatus(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpCodeForStatus(Status::OutOfRange("x")), 413);
  EXPECT_EQ(HttpCodeForStatus(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpCodeForStatus(Status::FailedPrecondition("x")), 409);
  EXPECT_EQ(HttpCodeForStatus(Status::Unimplemented("x")), 501);
  EXPECT_EQ(HttpCodeForStatus(Status::DeadlineExceeded("x")), 504);
  EXPECT_EQ(HttpCodeForStatus(Status::Internal("x")), 500);
}

}  // namespace
}  // namespace xsm::net
