// HttpClient deadlines and RetryingHttpClient classification against a
// scripted misbehaving server: hangs, half-closes mid-response, typed
// 503 sheds. Connect timeout, read deadline, and retry-budget exhaustion
// must all surface as typed statuses — never hangs — and the jittered
// backoff schedule must replay exactly from its seed.
#include "net/retrying_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/http_client.h"
#include "util/status.h"

namespace xsm::net {
namespace {

int ListenOn(uint16_t* port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port = ntohs(addr.sin_port);
  EXPECT_EQ(::listen(fd, backlog), 0);
  return fd;
}

/// A server whose connections follow a fixed script, one action per
/// accepted connection; after the script it keeps accepting and answering
/// 200 (so stray retries can't hang a test).
class ScriptedServer {
 public:
  enum class Action {
    kHang,       ///< read the request, never answer, hold the socket
    kHalfClose,  ///< answer a truncated response, then close
    kShed503,    ///< typed retryable shed, like the real server's
    kPlain503,   ///< 503 *without* the retryable flag
    kOk200,      ///< a well-formed success
  };

  explicit ScriptedServer(std::vector<Action> script)
      : script_(std::move(script)) {
    listen_fd_ = ListenOn(&port_, 16);
    thread_ = std::thread([this] { Serve(); });
  }

  ~ScriptedServer() {
    stop_.store(true);
    thread_.join();
    for (int fd : held_) ::close(fd);
    ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

 private:
  void Serve() {
    size_t next = 0;
    while (!stop_.load()) {
      fd_set readable;
      FD_ZERO(&readable);
      FD_SET(listen_fd_, &readable);
      timeval tv{0, 50 * 1000};
      if (::select(listen_fd_ + 1, &readable, nullptr, nullptr, &tv) <= 0) {
        continue;
      }
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      Action action =
          next < script_.size() ? script_[next++] : Action::kOk200;
      HandleConnection(fd, action);
    }
  }

  // Reads one full request (headers + Content-Length body) so closing the
  // socket later can't RST the client's pending response bytes.
  static bool ReadRequest(int fd) {
    std::string bytes;
    char buf[4096];
    size_t body_needed = 0;
    size_t header_end = std::string::npos;
    while (true) {
      if (header_end == std::string::npos) {
        header_end = bytes.find("\r\n\r\n");
        if (header_end != std::string::npos) {
          size_t cl = bytes.find("content-length:");
          if (cl == std::string::npos) cl = bytes.find("Content-Length:");
          if (cl != std::string::npos && cl < header_end) {
            body_needed = std::strtoul(bytes.c_str() + cl + 15, nullptr, 10);
          }
        }
      }
      if (header_end != std::string::npos &&
          bytes.size() >= header_end + 4 + body_needed) {
        return true;
      }
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) return false;
      bytes.append(buf, static_cast<size_t>(n));
    }
  }

  static void WriteAll(int fd, const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  static std::string Response(int code, const std::string& reason,
                              const std::string& body) {
    return "HTTP/1.1 " + std::to_string(code) + " " + reason +
           "\r\nContent-Type: application/x-ndjson\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
           body;
  }

  void HandleConnection(int fd, Action action) {
    if (!ReadRequest(fd)) {
      ::close(fd);
      return;
    }
    switch (action) {
      case Action::kHang:
        held_.push_back(fd);  // never answered; closed at shutdown
        return;
      case Action::kHalfClose:
        WriteAll(fd,
                 "HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\nonly "
                 "this much");
        break;
      case Action::kShed503:
        WriteAll(fd, Response(503, "Service Unavailable",
                              "{\"type\":\"error\",\"code\":\"shed\","
                              "\"retryable\":true}\n"));
        break;
      case Action::kPlain503:
        WriteAll(fd, Response(503, "Service Unavailable",
                              "{\"type\":\"error\",\"code\":\"down\"}\n"));
        break;
      case Action::kOk200:
        WriteAll(fd, Response(200, "OK", "{\"type\":\"ok\"}\n"));
        break;
    }
    ::close(fd);
  }

  std::vector<Action> script_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::vector<int> held_;
};

using Action = ScriptedServer::Action;

TEST(HttpClientDeadlineTest, ConnectTimeoutIsTyped) {
  // A listener with a tiny backlog that never accepts: once the queue is
  // full the kernel ignores further SYNs and the handshake stalls.
  uint16_t port = 0;
  int fd = ListenOn(&port, 0);
  std::vector<int> fillers;
  for (int i = 0; i < 16; ++i) {
    int filler = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(filler, 0);
    ::fcntl(filler, F_SETFL, O_NONBLOCK);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ::connect(filler, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(filler);
  }
  // Give the fillers' handshakes a moment to occupy the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  HttpClient client;
  Status status = client.Connect("127.0.0.1", port, /*timeout_seconds=*/0.3);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  EXPECT_FALSE(client.connected());

  for (int filler : fillers) ::close(filler);
  ::close(fd);
}

TEST(HttpClientDeadlineTest, HangingServerReadDeadlineIsTyped) {
  ScriptedServer server({Action::kHang});
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 1.0).ok());
  ASSERT_TRUE(client.SendRequest("GET", "/hang", "").ok());
  auto response = client.ReadResponse(HttpLimits(), /*timeout_seconds=*/0.2);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  EXPECT_NE(response.status().message().find("deadline"), std::string::npos);
}

TEST(HttpClientDeadlineTest, HalfCloseMidResponseIsTypedIOError) {
  ScriptedServer server({Action::kHalfClose});
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 1.0).ok());
  ASSERT_TRUE(client.SendRequest("GET", "/half", "").ok());
  auto response = client.ReadResponse(HttpLimits(), 1.0);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIOError)
      << response.status().ToString();
  EXPECT_NE(
      response.status().message().find("before a complete response"),
      std::string::npos)
      << response.status().ToString();
}

RetryOptions FastRetryOptions(std::vector<double>* recorded = nullptr) {
  RetryOptions options;
  options.connect_timeout_seconds = 1.0;
  options.read_timeout_seconds = 0.3;
  options.initial_backoff_seconds = 0.05;
  options.sleeper = [recorded](double seconds) {
    if (recorded != nullptr) recorded->push_back(seconds);
  };
  return options;
}

TEST(RetryingClientTest, BudgetExhaustionIsTypedUnavailable) {
  ScriptedServer server(
      {Action::kShed503, Action::kShed503, Action::kShed503,
       Action::kShed503});
  std::vector<double> backoffs;
  RetryOptions options = FastRetryOptions(&backoffs);
  options.max_attempts = 4;
  RetryingHttpClient client("127.0.0.1", server.port(), options);
  auto response = client.Fetch("POST", "/v1/tenants/t1/match", "query");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable)
      << response.status().ToString();
  EXPECT_NE(response.status().message().find("retry budget exhausted"),
            std::string::npos);
  EXPECT_NE(response.status().message().find("shed-503"), std::string::npos)
      << response.status().ToString();
  EXPECT_EQ(client.stats().attempts, 4);
  EXPECT_EQ(client.stats().shed_503s, 4);
  EXPECT_EQ(client.stats().last_failure, FailureClass::kShed503);
  ASSERT_EQ(backoffs.size(), 3u);

  // The schedule is a pure function of the seed: a fresh client with the
  // same seed reproduces it draw for draw, and every delay respects the
  // capped-exponential-with-jitter envelope.
  RetryingHttpClient replay("127.0.0.1", server.port(), options);
  for (size_t k = 0; k < backoffs.size(); ++k) {
    EXPECT_DOUBLE_EQ(replay.NextBackoffSeconds(static_cast<int>(k)),
                     backoffs[k])
        << "retry " << k;
    const double base =
        std::min(options.initial_backoff_seconds *
                     std::pow(options.backoff_multiplier, double(k)),
                 options.max_backoff_seconds);
    EXPECT_GE(backoffs[k], base * (1.0 - options.jitter_fraction));
    EXPECT_LE(backoffs[k], base * (1.0 + options.jitter_fraction));
  }

  // A different seed decorrelates the schedule.
  RetryOptions other = options;
  other.seed = options.seed + 1;
  RetryingHttpClient decorrelated("127.0.0.1", server.port(), other);
  bool any_different = false;
  for (size_t k = 0; k < backoffs.size(); ++k) {
    if (decorrelated.NextBackoffSeconds(static_cast<int>(k)) !=
        backoffs[k]) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryingClientTest, ShedsThenSuccessWithinBudget) {
  ScriptedServer server({Action::kShed503, Action::kShed503, Action::kOk200});
  RetryingHttpClient client("127.0.0.1", server.port(), FastRetryOptions());
  auto response = client.Fetch("GET", "/v1/stats");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(client.stats().attempts, 3);
  EXPECT_EQ(client.stats().shed_503s, 2);
  EXPECT_EQ(client.stats().last_failure, FailureClass::kNone);
}

TEST(RetryingClientTest, Non503RetryableFlagIsHonored) {
  // A 503 without "retryable":true is the server saying "don't": returned
  // as-is on the first attempt, no retries burned.
  ScriptedServer server({Action::kPlain503});
  RetryingHttpClient client("127.0.0.1", server.port(), FastRetryOptions());
  auto response = client.Fetch("GET", "/v1/stats");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 503);
  EXPECT_EQ(client.stats().attempts, 1);
  EXPECT_EQ(client.stats().shed_503s, 0);
}

TEST(RetryingClientTest, HalfCloseRetriedAsReset) {
  ScriptedServer server({Action::kHalfClose, Action::kOk200});
  RetryingHttpClient client("127.0.0.1", server.port(), FastRetryOptions());
  auto response = client.Fetch("GET", "/flaky");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(client.stats().attempts, 2);
  EXPECT_EQ(client.stats().resets, 1);
}

TEST(RetryingClientTest, HangRetriedAsResponseTimeout) {
  ScriptedServer server({Action::kHang, Action::kOk200});
  RetryingHttpClient client("127.0.0.1", server.port(), FastRetryOptions());
  auto response = client.Fetch("GET", "/slow");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(client.stats().attempts, 2);
  EXPECT_EQ(client.stats().response_timeouts, 1);
  EXPECT_GT(client.stats().backoff_seconds, 0.0);
}

TEST(RetryingClientTest, ConnectRefusedClassifiedAndExhausted) {
  // Bind + close to find a port with nothing listening on it.
  uint16_t port = 0;
  int fd = ListenOn(&port, 1);
  ::close(fd);

  RetryOptions options = FastRetryOptions();
  options.max_attempts = 3;
  RetryingHttpClient client("127.0.0.1", port, options);
  auto response = client.Fetch("GET", "/");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status().message().find("connect-refused"),
            std::string::npos)
      << response.status().ToString();
  EXPECT_EQ(client.stats().attempts, 3);
  EXPECT_EQ(client.stats().connect_refused, 3);
  EXPECT_EQ(client.stats().last_failure, FailureClass::kConnectRefused);
}

}  // namespace
}  // namespace xsm::net
