// Per-tenant WAL wiring through TenantRegistry and the drain path: a
// SIGKILL'd registry (destroyed without any save) warm-restarts with
// every acknowledged delta intact; a tenant whose snapshot save fails
// mid-drain never aborts the drain — the other tenants persist, the
// failure surfaces typed, and the HttpServer counts it.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "live/repository_delta.h"
#include "net/http_server.h"
#include "net/tenant_registry.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/io.h"
#include "util/status.h"

namespace xsm::net {
namespace {

namespace fs = std::filesystem;
using util::io::FaultInjectionEnv;
using util::io::FaultPlan;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("xsm_tenant_wal_" + tag + "_" +
              std::to_string(static_cast<unsigned>(getpid()))))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

schema::SchemaForest MakeCorpus(size_t elements, uint64_t seed) {
  repo::SyntheticRepoOptions options;
  options.target_elements = elements;
  options.seed = seed;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok()) << forest.status().ToString();
  return std::move(*forest);
}

live::RepositoryDelta MakeAddDelta(const std::string& spec,
                                   const std::string& source) {
  live::DeltaBuilder builder;
  auto tree = schema::ParseTreeSpec(spec);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  builder.AddTree(std::move(*tree), source);
  auto delta = builder.Build();
  EXPECT_TRUE(delta.ok()) << delta.status().ToString();
  return std::move(*delta);
}

TenantRegistryOptions StateOptions(const std::string& state_dir,
                                   util::io::Env* env = nullptr) {
  TenantRegistryOptions options;
  options.service.num_threads = 2;
  options.state_dir = state_dir;
  options.env = env;
  return options;
}

TEST(TenantWalTest, KilledRegistryWarmRestartsWithZeroAcknowledgedLoss) {
  TempDir dir("zeroloss");
  uint64_t acked_generation = 0;
  uint64_t acked_fingerprint = 0;
  {
    TenantRegistry registry(StateOptions(dir.path()));
    auto tenant = registry.Create("t1", MakeCorpus(200, 3));
    ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
    ASSERT_TRUE((*tenant)->service->wal_attached());

    for (int i = 0; i < 3; ++i) {
      auto report = (*tenant)->service->ApplyDelta(MakeAddDelta(
          "doc" + std::to_string(i) + "(title,body)", "feed://doc"));
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      acked_generation = report->generation;
      acked_fingerprint = report->fingerprint;
    }
    // SIGKILL: the registry dies here with no SaveAll / drain.
  }

  TenantRegistry restarted(StateOptions(dir.path()));
  live::RecoveryReport report;
  auto tenant = restarted.WarmStart("t1", &report);
  ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
  EXPECT_EQ((*tenant)->service->CurrentGeneration(), acked_generation);
  EXPECT_EQ((*tenant)->service->Pin()->fingerprint(),
            acked_fingerprint);
  EXPECT_EQ(report.snapshot_generation, 0u) << "checkpoint was at creation";
  EXPECT_EQ(report.records_replayed, 3u);
  ASSERT_TRUE((*tenant)->service->wal_attached())
      << "recovered tenant must keep journaling";

  // Without the WAL the same kill would have lost every delta: the
  // snapshot alone only reaches the creation-time checkpoint.
  TenantRegistryOptions no_wal = StateOptions(dir.path());
  no_wal.enable_wal = false;
  TenantRegistry amnesiac(no_wal);
  auto stale = amnesiac.WarmStart("t1");
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_EQ((*stale)->service->CurrentGeneration(), 0u);
}

TEST(TenantWalTest, WarmStartAllRecoversEveryTenant) {
  TempDir dir("warmall");
  std::vector<uint64_t> fingerprints(3);
  {
    TenantRegistry registry(StateOptions(dir.path()));
    for (int t = 0; t < 3; ++t) {
      auto tenant = registry.Create("t" + std::to_string(t),
                                    MakeCorpus(150, 10 + t));
      ASSERT_TRUE(tenant.ok());
      // Different delta counts per tenant: recovery is per-journal.
      for (int i = 0; i <= t; ++i) {
        auto report = (*tenant)->service->ApplyDelta(
            MakeAddDelta("extra" + std::to_string(i) + "(a,b)", "feed://x"));
        ASSERT_TRUE(report.ok());
        fingerprints[t] = report->fingerprint;
      }
    }
  }

  TenantRegistry restarted(StateOptions(dir.path()));
  EXPECT_EQ(restarted.WarmStartAll(), 3u);
  for (int t = 0; t < 3; ++t) {
    Tenant* tenant = restarted.Find("t" + std::to_string(t));
    ASSERT_NE(tenant, nullptr) << "t" << t;
    EXPECT_EQ(tenant->service->CurrentGeneration(),
              static_cast<uint64_t>(t + 1));
    EXPECT_EQ(tenant->service->Pin()->fingerprint(),
              fingerprints[t]);
  }
}

TEST(TenantWalTest, SaveAllSurvivesOneTenantsFailure) {
  TempDir dir("saveall");
  // Rename ordinals on the injected env: tenant creation checkpoints go
  // through the default env (the WAL is not attached yet), so the first
  // injected renames are the three AttachWal journal Creates (#0-#2).
  // SaveAll then saves alphabetically — t0 snapshot #3, t0 compaction #4,
  // t1 snapshot #5 — so failing rename #5 fails exactly t1's save.
  FaultPlan plan;
  plan.fail_rename_at = 5;
  FaultInjectionEnv env(plan);

  TenantRegistry registry(StateOptions(dir.path(), &env));
  for (int t = 0; t < 3; ++t) {
    auto tenant =
        registry.Create("t" + std::to_string(t), MakeCorpus(150, 20 + t));
    ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
    ASSERT_TRUE(
        (*tenant)->service->ApplyDelta(MakeAddDelta("n(a,b)", "x")).ok());
  }

  size_t saved = 0;
  std::vector<TenantRegistry::TenantSaveFailure> failures;
  Status status = registry.SaveAll(&saved, &failures);
  EXPECT_EQ(saved, 2u) << "the other tenants must still save";
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].tenant, "t1");
  EXPECT_EQ(failures[0].status.code(), StatusCode::kIOError);
  EXPECT_NE(failures[0].status.message().find("injected rename failure"),
            std::string::npos)
      << failures[0].status.ToString();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError)
      << "first error propagates: " << status.ToString();

  // t0 and t2 checkpointed at generation 1; t1's snapshot is still the
  // creation checkpoint but its journal has the delta — nothing is lost
  // even for the tenant whose save failed.
  TenantRegistry restarted(StateOptions(dir.path()));
  EXPECT_EQ(restarted.WarmStartAll(), 3u);
  for (int t = 0; t < 3; ++t) {
    Tenant* tenant = restarted.Find("t" + std::to_string(t));
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->service->CurrentGeneration(), 1u) << "t" << t;
  }
}

TEST(TenantWalTest, DrainReportsSaveFailuresAndFinishes) {
  TempDir dir("drain");
  FaultPlan plan;
  plan.fail_rename_at = 5;  // same geometry as above: t1's drain save
  FaultInjectionEnv env(plan);

  auto registry =
      std::make_unique<TenantRegistry>(StateOptions(dir.path(), &env));
  for (int t = 0; t < 3; ++t) {
    auto tenant =
        registry->Create("t" + std::to_string(t), MakeCorpus(150, 30 + t));
    ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
    ASSERT_TRUE(
        (*tenant)->service->ApplyDelta(MakeAddDelta("n(a,b)", "x")).ok());
  }

  HttpServerOptions options;
  options.num_workers = 2;
  options.max_connections = 8;
  auto server = std::make_unique<HttpServer>(registry.get(), options);
  ASSERT_TRUE(server->StartBackground().ok());
  server->RequestShutdown();

  // The drain runs on the background thread; the failure counter moving to
  // nonzero is its completion signal for this test.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server->stats().drain_save_failures == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->stats().drain_save_failures, 1u)
      << "one tenant's failed save must be counted, not fatal";
  server.reset();  // joins the drained loop
  registry.reset();

  // The drain still persisted the healthy tenants and journaling covered
  // the failed one: a warm restart loses nothing.
  TenantRegistry restarted(StateOptions(dir.path()));
  EXPECT_EQ(restarted.WarmStartAll(), 3u);
  for (int t = 0; t < 3; ++t) {
    Tenant* tenant = restarted.Find("t" + std::to_string(t));
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->service->CurrentGeneration(), 1u) << "t" << t;
  }
}

}  // namespace
}  // namespace xsm::net
