#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "label/tree_index.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::cluster {
namespace {

using schema::NodeId;
using schema::NodeRef;
using schema::SchemaForest;

// A forest with two well-separated "regions" inside tree 0 plus a second
// tree, to exercise locality and cross-tree separation.
//
// Tree 0:  root
//          ├─ a(a1,a2,a3)          region A: nodes 1..4
//          └─ mid(b(b1,b2,b3))     region B: nodes 5..9
// Tree 1:  r2(c1,c2)
struct Fixture {
  SchemaForest forest;
  label::ForestIndex index;
  std::vector<ClusterPoint> points;
  std::vector<size_t> me_sizes;

  Fixture() {
    forest.AddTree(*schema::ParseTreeSpec(
        "root(a(a1,a2,a3),mid(b(b1,b2,b3)))"));
    forest.AddTree(*schema::ParseTreeSpec("r2(c1,c2)"));
    index = label::ForestIndex::Build(forest);
    // Personal schema of 2 nodes. Bit 0 is the scarce one (MEmin): present
    // at region roots a(1) and b(6) and at tree 1 node 1.
    // Bit 1 everywhere else.
    auto add = [&](schema::TreeId t, NodeId n, uint32_t mask) {
      points.push_back({NodeRef{t, n}, mask});
    };
    add(0, 1, 0b01);  // a      (MEmin, region A)
    add(0, 2, 0b10);  // a1
    add(0, 3, 0b10);  // a2
    add(0, 4, 0b10);  // a3
    add(0, 6, 0b01);  // b      (MEmin, region B)
    add(0, 7, 0b10);  // b1
    add(0, 8, 0b10);  // b2
    add(0, 9, 0b10);  // b3
    add(1, 1, 0b01);  // c1     (MEmin, tree 1)
    add(1, 2, 0b10);  // c2
    me_sizes = {3, 7};
  }
};

KMeansOptions NoRecluster() {
  KMeansOptions o;
  o.join_reclustering = false;
  o.remove_reclustering = false;
  o.max_iterations = 10;
  return o;
}

TEST(KMeansTest, MinSetInitSeedsOneCentroidPerScarceElement) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  auto r = clusterer.Cluster(f.points, f.me_sizes, NoRecluster());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.initial_centroids, 3u);  // a, b, c1
}

TEST(KMeansTest, RegionsSeparateAndCrossTreeNeverMixes) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  auto r = clusterer.Cluster(f.points, f.me_sizes, NoRecluster());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->clusters.size(), 3u);
  for (const Cluster& c : r->clusters) {
    // Single-tree membership.
    for (int32_t m : c.members) {
      EXPECT_EQ(f.points[static_cast<size_t>(m)].node.tree, c.tree);
    }
  }
  // Region A = points {0,1,2,3}, region B = {4,5,6,7}, tree1 = {8,9}.
  std::set<std::set<int32_t>> got;
  for (const Cluster& c : r->clusters) {
    got.insert(std::set<int32_t>(c.members.begin(), c.members.end()));
  }
  std::set<std::set<int32_t>> expected{
      {0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}};
  EXPECT_EQ(got, expected);
}

TEST(KMeansTest, MedoidIsCentral) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  auto r = clusterer.Cluster(f.points, f.me_sizes, NoRecluster());
  ASSERT_TRUE(r.ok());
  for (const Cluster& c : r->clusters) {
    if (c.tree != 0) continue;
    // In both regions the hub node (a=1 or b=6) is the medoid.
    EXPECT_TRUE(c.centroid.node == 1 || c.centroid.node == 6)
        << "centroid " << c.centroid.node;
  }
}

TEST(KMeansTest, UnionMasksAndUsefulness) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  auto r = clusterer.Cluster(f.points, f.me_sizes, NoRecluster());
  ASSERT_TRUE(r.ok());
  for (const Cluster& c : r->clusters) {
    EXPECT_TRUE(c.useful(0b11));
  }
}

TEST(KMeansTest, JoinReclusteringMergesCloseRegions) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  KMeansOptions o = NoRecluster();
  o.join_reclustering = true;
  // dist(a=1, b=6) = a-root-mid-b = 3. Threshold 4 merges them ("large
  // clusters" behavior); threshold 2 keeps them apart ("small clusters").
  o.join_distance = 4;
  auto merged = clusterer.Cluster(f.points, f.me_sizes, o);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->clusters.size(), 2u);  // tree0 merged, tree1 alone
  EXPECT_GE(merged->stats.clusters_joined, 1u);

  o.join_distance = 2;
  auto apart = clusterer.Cluster(f.points, f.me_sizes, o);
  ASSERT_TRUE(apart.ok());
  EXPECT_EQ(apart->clusters.size(), 3u);
}

TEST(KMeansTest, RemoveReclusteringDropsTinyClusters) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  KMeansOptions o = NoRecluster();
  o.remove_reclustering = true;
  o.min_cluster_size = 3;  // tree-1 cluster has only 2 members
  auto r = clusterer.Cluster(f.points, f.me_sizes, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->clusters.size(), 2u);
  EXPECT_GE(r->stats.clusters_removed, 1u);
  EXPECT_EQ(r->stats.unassigned_points, 2u);
  for (const Cluster& c : r->clusters) {
    EXPECT_EQ(c.tree, 0);
  }
}

TEST(KMeansTest, DeterministicAcrossRuns) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  KMeansOptions o;
  o.join_distance = 3;
  auto a = clusterer.Cluster(f.points, f.me_sizes, o);
  auto b = clusterer.Cluster(f.points, f.me_sizes, o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->clusters.size(), b->clusters.size());
  for (size_t i = 0; i < a->clusters.size(); ++i) {
    EXPECT_EQ(a->clusters[i].members, b->clusters[i].members);
    EXPECT_EQ(a->clusters[i].centroid, b->clusters[i].centroid);
  }
}

TEST(KMeansTest, RandomInitRespectsRequestedCentroidCount) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  KMeansOptions o = NoRecluster();
  o.init = CentroidInit::kRandom;
  o.num_centroids = 5;
  auto r = clusterer.Cluster(f.points, f.me_sizes, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.initial_centroids, 5u);
}

TEST(KMeansTest, FarthestFirstCoversBothTrees) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  KMeansOptions o = NoRecluster();
  o.init = CentroidInit::kFarthestFirst;
  o.num_centroids = 3;
  auto r = clusterer.Cluster(f.points, f.me_sizes, o);
  ASSERT_TRUE(r.ok());
  // Infinite cross-tree distance forces at least one centroid per tree, so
  // no point is left unassigned.
  EXPECT_EQ(r->stats.unassigned_points, 0u);
  std::set<schema::TreeId> trees;
  for (const Cluster& c : r->clusters) trees.insert(c.tree);
  EXPECT_EQ(trees.size(), 2u);
}

TEST(KMeansTest, PointsInTreesWithoutCentroidsAreUnassigned) {
  Fixture f;
  // Remove the scarce bit from tree 1: kMinSet seeds no centroid there.
  for (auto& p : f.points) {
    if (p.node.tree == 1) p.personal_mask = 0b10;
  }
  f.me_sizes = {2, 8};
  KMeansClusterer clusterer(&f.forest, &f.index);
  auto r = clusterer.Cluster(f.points, f.me_sizes, NoRecluster());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.unassigned_points, 2u);
  for (const Cluster& c : r->clusters) EXPECT_EQ(c.tree, 0);
}

TEST(KMeansTest, ConvergesAndRecordsStats) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  KMeansOptions o;
  o.max_iterations = 25;
  auto r = clusterer.Cluster(f.points, f.me_sizes, o);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->stats.iterations, 2);
  EXPECT_LT(r->stats.iterations, 25);  // converged before the cap
  EXPECT_EQ(r->stats.switches_per_iteration.size(),
            static_cast<size_t>(r->stats.iterations));
  // Last iteration is stable.
  EXPECT_EQ(r->stats.switches_per_iteration.back(), 0u);
  EXPECT_GE(r->stats.time_seconds, 0.0);
}

TEST(KMeansTest, ValidatesOptions) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  KMeansOptions bad;
  bad.join_distance = -1;
  EXPECT_FALSE(clusterer.Cluster(f.points, f.me_sizes, bad).ok());
  bad = KMeansOptions{};
  bad.convergence_fraction = 2.0;
  EXPECT_FALSE(clusterer.Cluster(f.points, f.me_sizes, bad).ok());
  bad = KMeansOptions{};
  bad.max_iterations = 0;
  EXPECT_FALSE(clusterer.Cluster(f.points, f.me_sizes, bad).ok());
}

TEST(KMeansTest, EmptyPointsYieldEmptyResult) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  auto r = clusterer.Cluster({}, f.me_sizes, KMeansOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->clusters.empty());
}

TEST(KMeansTest, NoMappingElementsIsAnError) {
  Fixture f;
  KMeansClusterer clusterer(&f.forest, &f.index);
  std::vector<size_t> zero_sizes = {0, 0};
  EXPECT_FALSE(clusterer.Cluster(f.points, zero_sizes, KMeansOptions{}).ok());
}

TEST(TreeClustersTest, OneClusterPerTreeWithPoints) {
  Fixture f;
  ClusteringResult r = TreeClusters(f.points);
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0].tree, 0);
  EXPECT_EQ(r.clusters[0].members.size(), 8u);
  EXPECT_EQ(r.clusters[0].union_mask, 0b11u);
  EXPECT_EQ(r.clusters[1].tree, 1);
  EXPECT_EQ(r.clusters[1].members.size(), 2u);
  // Centroid is the tree root.
  EXPECT_EQ(r.clusters[0].centroid, (NodeRef{0, 0}));
}

TEST(TreeClustersTest, SkipsTreesWithoutPoints) {
  Fixture f;
  // Only tree-1 points.
  std::vector<ClusterPoint> sub(f.points.begin() + 8, f.points.end());
  ClusteringResult r = TreeClusters(sub);
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].tree, 1);
}

TEST(TreeClustersTest, Empty) {
  EXPECT_TRUE(TreeClusters({}).clusters.empty());
}

}  // namespace
}  // namespace xsm::cluster
