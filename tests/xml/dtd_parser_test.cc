#include "xml/dtd_parser.h"

#include <gtest/gtest.h>

namespace xsm::xml {
namespace {

constexpr char kLibraryDtd[] = R"(
<!-- A small library DTD, like the paper's Fig. 1 repository fragment. -->
<!ELEMENT lib (book*, address)>
<!ELEMENT book (data, title)>
<!ELEMENT data (authorName, shelf?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authorName (#PCDATA)>
<!ELEMENT shelf (#PCDATA)>
<!ELEMENT address (#PCDATA)>
<!ATTLIST book isbn CDATA #REQUIRED lang CDATA #IMPLIED>
)";

TEST(DtdParserTest, ParsesElementsAndAttributes) {
  auto r = ParseDtd(kLibraryDtd);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elements.size(), 7u);
  EXPECT_TRUE(r->warnings.empty());

  const DtdElementDecl* lib = r->FindElement("lib");
  ASSERT_NE(lib, nullptr);
  ASSERT_EQ(lib->children.size(), 2u);
  EXPECT_EQ(lib->children[0].name, "book");
  EXPECT_TRUE(lib->children[0].repeatable);
  EXPECT_TRUE(lib->children[0].optional);
  EXPECT_EQ(lib->children[1].name, "address");
  EXPECT_FALSE(lib->children[1].repeatable);

  const DtdElementDecl* data = r->FindElement("data");
  ASSERT_NE(data, nullptr);
  EXPECT_FALSE(data->children[0].optional);
  EXPECT_TRUE(data->children[1].optional);  // shelf?

  const DtdElementDecl* title = r->FindElement("title");
  ASSERT_NE(title, nullptr);
  EXPECT_TRUE(title->has_pcdata);
  EXPECT_TRUE(title->children.empty());

  ASSERT_EQ(r->attributes.size(), 2u);
  EXPECT_EQ(r->attributes[0].element, "book");
  EXPECT_EQ(r->attributes[0].name, "isbn");
  EXPECT_TRUE(r->attributes[0].required);
  EXPECT_FALSE(r->attributes[1].required);
}

TEST(DtdParserTest, ChoiceGroupsMarkOptional) {
  auto r = ParseDtd("<!ELEMENT a (b | c | d)>");
  ASSERT_TRUE(r.ok());
  const DtdElementDecl* a = r->FindElement("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->children.size(), 3u);
  for (const auto& c : a->children) EXPECT_TRUE(c.optional);
}

TEST(DtdParserTest, NestedGroupsAndCardinality) {
  auto r = ParseDtd("<!ELEMENT a (b, (c | d)*, e+)>");
  ASSERT_TRUE(r.ok());
  const DtdElementDecl* a = r->FindElement("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->children.size(), 4u);
  EXPECT_FALSE(a->children[0].repeatable);  // b
  EXPECT_TRUE(a->children[1].repeatable);   // c (inside (..)*)
  EXPECT_TRUE(a->children[1].optional);
  EXPECT_TRUE(a->children[2].repeatable);   // d
  EXPECT_TRUE(a->children[3].repeatable);   // e+
  EXPECT_FALSE(a->children[3].optional);
}

TEST(DtdParserTest, MixedContentModel) {
  auto r = ParseDtd("<!ELEMENT p (#PCDATA | b | i)*>");
  ASSERT_TRUE(r.ok());
  const DtdElementDecl* p = r->FindElement("p");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->has_pcdata);
  EXPECT_EQ(p->children.size(), 2u);
  EXPECT_TRUE(p->children[0].repeatable);
}

TEST(DtdParserTest, EmptyAndAny) {
  auto r = ParseDtd("<!ELEMENT br EMPTY><!ELEMENT any ANY>");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->FindElement("br")->is_empty);
  EXPECT_TRUE(r->FindElement("any")->is_any);
}

TEST(DtdParserTest, DuplicateNamesInModelDeduplicated) {
  auto r = ParseDtd("<!ELEMENT a (b, c, b?)>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->FindElement("a")->children.size(), 2u);
}

TEST(DtdParserTest, LenientSkipsParameterEntities) {
  auto r = ParseDtd(
      "<!ENTITY % common \"(a|b)\">\n"
      "<!ELEMENT x %common;>\n"
      "<!ELEMENT y (z)>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->elements.size(), 1u);
  EXPECT_EQ(r->elements[0].name, "y");
  EXPECT_FALSE(r->warnings.empty());
}

TEST(DtdParserTest, StrictModeFailsOnBadDeclarations) {
  DtdParseOptions strict{.lenient = false};
  EXPECT_FALSE(ParseDtd("<!ELEMENT x %pe;>", strict).ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b", strict).ok());
  EXPECT_FALSE(ParseDtd("<!BOGUS thing>", strict).ok());
  EXPECT_TRUE(ParseDtd("<!ELEMENT a (b)>", strict).ok());
}

TEST(DtdParserTest, CommentsAndEntitiesIgnored) {
  auto r = ParseDtd(
      "<!-- <!ELEMENT fake (x)> -->\n"
      "<!ENTITY copy \"(c)\">\n"
      "<!ELEMENT real (#PCDATA)>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->elements.size(), 1u);
  EXPECT_EQ(r->elements[0].name, "real");
}

TEST(DtdToSchemaTest, ExpandsLibrary) {
  auto dtd = ParseDtd(kLibraryDtd);
  ASSERT_TRUE(dtd.ok());
  auto trees = DtdToSchemaTrees(*dtd);
  ASSERT_TRUE(trees.ok()) << trees.status().ToString();
  ASSERT_EQ(trees->size(), 1u);  // single root: lib
  const schema::SchemaTree& t = (*trees)[0];
  ASSERT_TRUE(t.Validate().ok());
  // lib, book, isbn@, lang@, data, authorName, shelf, title, address
  EXPECT_EQ(t.size(), 9u);
  EXPECT_EQ(t.name(t.root()), "lib");
  // Attribute nodes are present with datatype CDATA.
  int attr_count = 0;
  for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(t.size());
       ++n) {
    if (t.props(n).kind == schema::NodeKind::kAttribute) {
      ++attr_count;
      EXPECT_EQ(t.props(n).datatype, "CDATA");
    }
  }
  EXPECT_EQ(attr_count, 2);
}

TEST(DtdToSchemaTest, MultipleRoots) {
  auto dtd = ParseDtd(
      "<!ELEMENT r1 (shared)><!ELEMENT r2 (shared)>"
      "<!ELEMENT shared (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  auto trees = DtdToSchemaTrees(*dtd);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), 2u);  // r1 and r2; shared is referenced
}

TEST(DtdToSchemaTest, RecursionIsCut) {
  auto dtd = ParseDtd("<!ELEMENT a (b)><!ELEMENT b (a?, c)>"
                      "<!ELEMENT c (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  auto trees = DtdToSchemaTrees(*dtd);
  ASSERT_TRUE(trees.ok()) << trees.status().ToString();
  ASSERT_EQ(trees->size(), 1u);
  // a(b(c)) — the recursive a under b is cut.
  EXPECT_EQ((*trees)[0].size(), 3u);
}

TEST(DtdToSchemaTest, RecursionCanFail) {
  auto dtd = ParseDtd("<!ELEMENT a (b)><!ELEMENT b (a?)>");
  ASSERT_TRUE(dtd.ok());
  DtdToSchemaOptions opts;
  opts.fail_on_recursion = true;
  EXPECT_FALSE(DtdToSchemaTrees(*dtd, opts).ok());
}

TEST(DtdToSchemaTest, PureCycleYieldsOneCoveringRoot) {
  auto dtd = ParseDtd("<!ELEMENT a (b)><!ELEMENT b (a)>");
  ASSERT_TRUE(dtd.ok());
  auto trees = DtdToSchemaTrees(*dtd);
  ASSERT_TRUE(trees.ok());
  // The first declaration claims the cycle: a(b), recursion cut below b.
  ASSERT_EQ(trees->size(), 1u);
  EXPECT_EQ((*trees)[0].name(0), "a");
  EXPECT_EQ((*trees)[0].size(), 2u);
}

TEST(DtdToSchemaTest, UndeclaredChildBecomesLeaf) {
  auto dtd = ParseDtd("<!ELEMENT a (mystery)>");
  ASSERT_TRUE(dtd.ok());
  auto trees = DtdToSchemaTrees(*dtd);
  ASSERT_TRUE(trees.ok());
  ASSERT_EQ(trees->size(), 1u);
  EXPECT_EQ((*trees)[0].size(), 2u);
  EXPECT_EQ((*trees)[0].name(1), "mystery");
}

TEST(DtdToSchemaTest, EmptyDtd) {
  auto dtd = ParseDtd("");
  ASSERT_TRUE(dtd.ok());
  auto trees = DtdToSchemaTrees(*dtd);
  ASSERT_TRUE(trees.ok());
  EXPECT_TRUE(trees->empty());
}

}  // namespace
}  // namespace xsm::xml
