#include "xml/xml_parser.h"

#include <gtest/gtest.h>

namespace xsm::xml {
namespace {

TEST(XmlParserTest, SimpleDocument) {
  auto r = ParseXml("<root><a x=\"1\"/><b>text</b></root>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const XmlElement& root = *r->root;
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "a");
  ASSERT_NE(root.children[0]->FindAttribute("x"), nullptr);
  EXPECT_EQ(*root.children[0]->FindAttribute("x"), "1");
  EXPECT_EQ(root.children[0]->FindAttribute("missing"), nullptr);
  EXPECT_EQ(root.children[1]->text, "text");
}

TEST(XmlParserTest, PrologCommentsAndPis) {
  auto r = ParseXml(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!-- a comment -->\n"
      "<?pi data?>\n"
      "<root>\n  <!-- inner --> <child/> <?another pi?>\n</root>\n"
      "<!-- trailing -->");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->root->children.size(), 1u);
}

TEST(XmlParserTest, DoctypeWithInternalSubset) {
  auto r = ParseXml(
      "<!DOCTYPE note [<!ELEMENT note (to,from)><!ELEMENT to (#PCDATA)>]>"
      "<note><to>a</to></note>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->doctype_name, "note");
  EXPECT_NE(r->internal_dtd.find("<!ELEMENT note (to,from)>"),
            std::string::npos);
}

TEST(XmlParserTest, DoctypeWithSystemLiteral) {
  auto r = ParseXml(
      "<!DOCTYPE html SYSTEM \"http://x/y.dtd\"><html></html>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doctype_name, "html");
  EXPECT_TRUE(r->internal_dtd.empty());
}

TEST(XmlParserTest, NestedElementsAndMixedContent) {
  auto r = ParseXml("<a>pre<b><c/></b>post</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->root->text, "prepost");
  ASSERT_EQ(r->root->children.size(), 1u);
  EXPECT_EQ(r->root->children[0]->children.size(), 1u);
}

TEST(XmlParserTest, CdataSection) {
  auto r = ParseXml("<a><![CDATA[<not-xml> & raw]]></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->root->text, "<not-xml> & raw");
}

TEST(XmlParserTest, EntityDecoding) {
  auto r = ParseXml("<a x=\"&lt;&amp;&gt;\">&quot;q&apos; &#65;&#x42;</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->root->FindAttribute("x"), "<&>");
  EXPECT_EQ(r->root->text, "\"q' AB");
}

TEST(XmlParserTest, DecodeEntitiesDirect) {
  EXPECT_EQ(DecodeEntities("a&lt;b"), "a<b");
  EXPECT_EQ(DecodeEntities("&unknown;"), "&unknown;");
  EXPECT_EQ(DecodeEntities("lone & ampersand"), "lone & ampersand");
  EXPECT_EQ(DecodeEntities("&#x20AC;"), "\xE2\x82\xAC");  // euro sign
}

TEST(XmlParserTest, SelfClosingAndAttributesWithSingleQuotes) {
  auto r = ParseXml("<a k1='v1' k2=\"v2\"/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->root->FindAttribute("k1"), "v1");
  EXPECT_EQ(*r->root->FindAttribute("k2"), "v2");
  EXPECT_TRUE(r->root->children.empty());
}

TEST(XmlParserTest, LocalName) {
  auto r = ParseXml("<xs:schema xmlns:xs=\"http://x\"/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->root->name, "xs:schema");
  EXPECT_EQ(r->root->LocalName(), "schema");
}

TEST(XmlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a b></a>").ok());
  EXPECT_FALSE(ParseXml("<a b=v></a>").ok());
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());  // two roots
  EXPECT_FALSE(ParseXml("just text").ok());
  EXPECT_FALSE(ParseXml("<a attr=\"x <\"/>").ok());  // '<' in value
}

TEST(XmlParserTest, ErrorsCarryLineNumbers) {
  auto r = ParseXml("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(XmlParserTest, Utf8BomAccepted) {
  auto r = ParseXml("\xEF\xBB\xBF<root/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->root->name, "root");
}

TEST(XmlParserTest, WhitespaceInEndTag) {
  auto r = ParseXml("<a></a  >");
  ASSERT_TRUE(r.ok());
}

}  // namespace
}  // namespace xsm::xml
