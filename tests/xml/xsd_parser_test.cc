#include "xml/xsd_parser.h"

#include <gtest/gtest.h>

namespace xsm::xml {
namespace {

constexpr char kPersonXsd[] = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="person">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="name" type="xs:string"/>
        <xs:element name="address" type="AddressType" minOccurs="0"/>
        <xs:element name="email" type="xs:string" maxOccurs="unbounded"/>
      </xs:sequence>
      <xs:attribute name="id" type="xs:ID" use="required"/>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="AddressType">
    <xs:sequence>
      <xs:element name="street" type="xs:string"/>
      <xs:element name="city" type="xs:string"/>
      <xs:element name="zip" type="xs:int"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>)";

TEST(XsdParserTest, ParsesGlobalElementWithNamedType) {
  auto r = ParseXsd(kPersonXsd);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->trees.size(), 1u);
  const schema::SchemaTree& t = r->trees[0];
  ASSERT_TRUE(t.Validate().ok());
  // person, id@, name, address(street, city, zip), email = 8 nodes.
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.name(t.root()), "person");

  // Attribute id is required.
  schema::NodeId id_node = -1;
  schema::NodeId address_node = -1;
  schema::NodeId email_node = -1;
  for (schema::NodeId n = 0; n < static_cast<schema::NodeId>(t.size());
       ++n) {
    if (t.name(n) == "id") id_node = n;
    if (t.name(n) == "address") address_node = n;
    if (t.name(n) == "email") email_node = n;
  }
  ASSERT_NE(id_node, -1);
  EXPECT_EQ(t.props(id_node).kind, schema::NodeKind::kAttribute);
  EXPECT_FALSE(t.props(id_node).optional);
  ASSERT_NE(address_node, -1);
  EXPECT_TRUE(t.props(address_node).optional);     // minOccurs=0
  EXPECT_EQ(t.children(address_node).size(), 3u);  // named type expanded
  ASSERT_NE(email_node, -1);
  EXPECT_TRUE(t.props(email_node).repeatable);  // maxOccurs=unbounded
  EXPECT_EQ(t.props(email_node).datatype, "xs:string");
}

TEST(XsdParserTest, MultipleGlobalElements) {
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="a" type="xs:string"/>
    <xs:element name="b" type="xs:string"/>
  </xs:schema>)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->trees.size(), 2u);
  EXPECT_EQ(r->trees[0].name(0), "a");
  EXPECT_EQ(r->trees[1].name(0), "b");
}

TEST(XsdParserTest, ElementRefResolved) {
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="list">
      <xs:complexType><xs:sequence>
        <xs:element ref="item" maxOccurs="unbounded"/>
      </xs:sequence></xs:complexType>
    </xs:element>
    <xs:element name="item">
      <xs:complexType><xs:sequence>
        <xs:element name="label" type="xs:string"/>
      </xs:sequence></xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Two global elements → two trees; the `list` tree embeds item(label).
  ASSERT_EQ(r->trees.size(), 2u);
  const schema::SchemaTree& list = r->trees[0];
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.name(1), "item");
  EXPECT_TRUE(list.props(1).repeatable);  // occurrence attrs from the ref
  EXPECT_EQ(list.name(2), "label");
}

TEST(XsdParserTest, ChoiceAndNestedGroups) {
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="payment">
      <xs:complexType>
        <xs:choice>
          <xs:element name="card" type="xs:string"/>
          <xs:sequence>
            <xs:element name="iban" type="xs:string"/>
            <xs:element name="bic" type="xs:string"/>
          </xs:sequence>
        </xs:choice>
      </xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->trees.size(), 1u);
  EXPECT_EQ(r->trees[0].size(), 4u);  // payment, card, iban, bic
}

TEST(XsdParserTest, RecursiveTypeIsCut) {
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="node" type="NodeType"/>
    <xs:complexType name="NodeType">
      <xs:sequence>
        <xs:element name="value" type="xs:string"/>
        <xs:element name="child" type="NodeType" minOccurs="0"/>
      </xs:sequence>
    </xs:complexType>
  </xs:schema>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->trees.size(), 1u);
  // node(value, child) — the nested NodeType under child is cut.
  EXPECT_EQ(r->trees[0].size(), 3u);
}

TEST(XsdParserTest, RecursionCanFail) {
  XsdParseOptions opts;
  opts.fail_on_recursion = true;
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="node" type="T"/>
    <xs:complexType name="T">
      <xs:sequence><xs:element name="kid" type="T"/></xs:sequence>
    </xs:complexType>
  </xs:schema>)",
                    opts);
  EXPECT_FALSE(r.ok());
}

TEST(XsdParserTest, ExtensionInheritsBase) {
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="manager" type="ManagerType"/>
    <xs:complexType name="PersonType">
      <xs:sequence><xs:element name="name" type="xs:string"/></xs:sequence>
    </xs:complexType>
    <xs:complexType name="ManagerType">
      <xs:complexContent>
        <xs:extension base="PersonType">
          <xs:sequence><xs:element name="team" type="xs:string"/></xs:sequence>
        </xs:extension>
      </xs:complexContent>
    </xs:complexType>
  </xs:schema>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->trees.size(), 1u);
  const schema::SchemaTree& t = r->trees[0];
  EXPECT_EQ(t.size(), 3u);  // manager, name (inherited), team
  EXPECT_EQ(t.name(1), "name");
  EXPECT_EQ(t.name(2), "team");
}

TEST(XsdParserTest, InlineSimpleTypeBecomesDatatype) {
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="score">
      <xs:simpleType>
        <xs:restriction base="xs:int"/>
      </xs:simpleType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->trees.size(), 1u);
  EXPECT_EQ(r->trees[0].props(0).datatype, "xs:int");
}

TEST(XsdParserTest, LenientSkipsUnsupportedConstructs) {
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="doc">
      <xs:complexType>
        <xs:sequence>
          <xs:group ref="g"/>
          <xs:element name="body" type="xs:string"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->trees.size(), 1u);
  EXPECT_EQ(r->trees[0].size(), 2u);  // doc, body
  EXPECT_FALSE(r->warnings.empty());
}

TEST(XsdParserTest, StrictFailsOnUnsupported) {
  XsdParseOptions strict;
  strict.lenient = false;
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="doc">
      <xs:complexType><xs:sequence><xs:group ref="g"/>
      </xs:sequence></xs:complexType>
    </xs:element>
  </xs:schema>)",
                    strict);
  EXPECT_FALSE(r.ok());
}

TEST(XsdParserTest, NotASchemaDocument) {
  EXPECT_FALSE(ParseXsd("<html></html>").ok());
  EXPECT_FALSE(ParseXsd("not xml at all").ok());
}

TEST(XsdParserTest, SchemaWithNoGlobalElements) {
  auto r = ParseXsd(R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:complexType name="Orphan">
      <xs:sequence><xs:element name="x" type="xs:string"/></xs:sequence>
    </xs:complexType>
  </xs:schema>)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->trees.empty());
  EXPECT_FALSE(r->warnings.empty());
}

}  // namespace
}  // namespace xsm::xml
