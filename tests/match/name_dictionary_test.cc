#include "match/name_dictionary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::match {
namespace {

using schema::NodeRef;
using schema::SchemaForest;

TEST(NameDictionaryTest, DeduplicatesAndIndexesEveryNode) {
  SchemaForest f;
  f.AddTree(*schema::ParseTreeSpec("book(title,@title,author(name))"));
  f.AddTree(*schema::ParseTreeSpec("person(name,email)"));
  NameDictionary dict = NameDictionary::Build(f);

  EXPECT_EQ(dict.forest(), &f);
  EXPECT_EQ(dict.total_nodes(), f.total_nodes());
  // Distinct names: book, title (element + attribute), author, name,
  // person, email.
  EXPECT_EQ(dict.size(), 6u);

  size_t title = dict.Find("title");
  ASSERT_NE(title, NameDictionary::kNotFound);
  EXPECT_EQ(dict.entry(title).element_nodes.size(), 1u);
  EXPECT_EQ(dict.entry(title).attribute_nodes.size(), 1u);

  size_t name = dict.Find("name");
  ASSERT_NE(name, NameDictionary::kNotFound);
  EXPECT_EQ(dict.entry(name).num_nodes(), 2u);  // one per tree
  EXPECT_EQ(dict.Find("no-such-name"), NameDictionary::kNotFound);
}

TEST(NameDictionaryTest, CachesLowercaseForms) {
  SchemaForest f;
  f.AddTree(*schema::ParseTreeSpec("Order(CustomerName,ZIP)"));
  NameDictionary dict = NameDictionary::Build(f);
  size_t i = dict.Find("CustomerName");
  ASSERT_NE(i, NameDictionary::kNotFound);
  EXPECT_EQ(dict.entry(i).name, "CustomerName");
  EXPECT_EQ(dict.entry(i).lower, "customername");
  // Lookup is by raw spelling.
  EXPECT_EQ(dict.Find("customername"), NameDictionary::kNotFound);
}

TEST(NameDictionaryTest, PostingListsSortedAndPartitionNodes) {
  repo::SyntheticRepoOptions options;
  options.target_elements = 1200;
  options.seed = 17;
  auto forest = repo::GenerateSyntheticRepository(options);
  ASSERT_TRUE(forest.ok());
  NameDictionary dict = NameDictionary::Build(*forest);

  EXPECT_EQ(dict.total_nodes(), forest->total_nodes());
  EXPECT_EQ(dict.size(), repo::ComputeStats(*forest).distinct_names);

  size_t covered = 0;
  std::unordered_set<NodeRef> seen;
  for (const NameDictionary::Entry& entry : dict.entries()) {
    EXPECT_GE(entry.num_nodes(), 1u);
    EXPECT_TRUE(std::is_sorted(entry.element_nodes.begin(),
                               entry.element_nodes.end()));
    EXPECT_TRUE(std::is_sorted(entry.attribute_nodes.begin(),
                               entry.attribute_nodes.end()));
    NodeRef first = entry.element_nodes.empty()
                        ? entry.attribute_nodes.front()
                        : entry.element_nodes.front();
    if (!entry.element_nodes.empty() && !entry.attribute_nodes.empty()) {
      first = std::min(entry.element_nodes.front(),
                       entry.attribute_nodes.front());
    }
    EXPECT_EQ(entry.representative, first);
    for (NodeRef ref : entry.element_nodes) {
      EXPECT_EQ(forest->props(ref).name, entry.name);
      EXPECT_EQ(forest->props(ref).kind, schema::NodeKind::kElement);
      EXPECT_TRUE(seen.insert(ref).second) << "node indexed twice";
    }
    for (NodeRef ref : entry.attribute_nodes) {
      EXPECT_EQ(forest->props(ref).name, entry.name);
      EXPECT_EQ(forest->props(ref).kind, schema::NodeKind::kAttribute);
      EXPECT_TRUE(seen.insert(ref).second) << "node indexed twice";
    }
    covered += entry.num_nodes();
  }
  EXPECT_EQ(covered, forest->total_nodes());
}

}  // namespace
}  // namespace xsm::match
