#include "match/element_matching.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::match {
namespace {

using schema::NodeRef;
using schema::SchemaForest;
using schema::SchemaTree;

SchemaForest MakeRepo() {
  SchemaForest f;
  // Tree 0: library domain with name-ish and address-ish nodes.
  f.AddTree(*schema::ParseTreeSpec(
      "lib(book(title,authorName),address(city))"));
  // Tree 1: person domain.
  f.AddTree(*schema::ParseTreeSpec("person(name,email,addr)"));
  // Tree 2: unrelated vocabulary.
  f.AddTree(*schema::ParseTreeSpec("engine(piston,crankshaft)"));
  return f;
}

SchemaTree Personal() {
  // The experiment's personal schema shape: name(address,email).
  return *schema::ParseTreeSpec("name(address,email)");
}

TEST(ElementMatchingTest, ProducesExpectedSets) {
  SchemaForest repo = MakeRepo();
  SchemaTree personal = Personal();
  ElementMatchingOptions opts;
  // sim("address","addr") = 4/7 ≈ 0.571 must clear the threshold.
  opts.threshold = 0.55;
  auto r = MatchElements(personal, repo, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Personal node 0 = "name": matches person/name exactly.
  const auto& name_set = r->sets[0];
  ASSERT_FALSE(name_set.elements.empty());
  bool has_exact = false;
  for (const auto& e : name_set.elements) {
    if (repo.name(e.node) == "name") {
      has_exact = true;
      EXPECT_DOUBLE_EQ(e.score, 1.0);
    }
    EXPECT_GE(e.score, 0.55);
  }
  EXPECT_TRUE(has_exact);

  // Personal node 1 = "address": matches lib/address (1.0) and person/addr.
  const auto& addr_set = r->sets[1];
  std::vector<std::string> names;
  for (const auto& e : addr_set.elements) {
    names.push_back(repo.name(e.node));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "address"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "addr"), names.end());

  // Nothing in tree 2 should match anything.
  for (const auto& set : r->sets) {
    for (const auto& e : set.elements) {
      EXPECT_NE(e.node.tree, 2);
    }
  }
}

TEST(ElementMatchingTest, SetsSortedByNodeRef) {
  SchemaForest repo = MakeRepo();
  auto r = MatchElements(Personal(), repo, {.threshold = 0.3});
  ASSERT_TRUE(r.ok());
  for (const auto& set : r->sets) {
    EXPECT_TRUE(std::is_sorted(
        set.elements.begin(), set.elements.end(),
        [](const MappingElement& a, const MappingElement& b) {
          return a.node < b.node;
        }));
  }
  EXPECT_TRUE(std::is_sorted(r->distinct_nodes.begin(),
                             r->distinct_nodes.end()));
}

TEST(ElementMatchingTest, MasksMatchSets) {
  SchemaForest repo = MakeRepo();
  auto r = MatchElements(Personal(), repo, {.threshold = 0.5});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->distinct_nodes.size(), r->masks.size());
  // Rebuild sets from masks and compare sizes.
  size_t rebuilt = 0;
  for (uint32_t mask : r->masks) {
    rebuilt += static_cast<size_t>(__builtin_popcount(mask));
    EXPECT_NE(mask, 0u);
    EXPECT_EQ(mask & ~r->FullMask(), 0u);
  }
  EXPECT_EQ(rebuilt, r->total_mapping_elements());
  // Every mask bit corresponds to set membership.
  for (size_t i = 0; i < r->distinct_nodes.size(); ++i) {
    for (size_t b = 0; b < r->sets.size(); ++b) {
      bool in_set = false;
      for (const auto& e : r->sets[b].elements) {
        if (e.node == r->distinct_nodes[i]) {
          in_set = true;
          break;
        }
      }
      EXPECT_EQ(in_set, (r->masks[i] >> b) & 1u)
          << "node " << i << " bit " << b;
    }
  }
}

TEST(ElementMatchingTest, ThresholdMonotonicity) {
  SchemaForest repo = MakeRepo();
  auto low = MatchElements(Personal(), repo, {.threshold = 0.3});
  auto high = MatchElements(Personal(), repo, {.threshold = 0.8});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GE(low->total_mapping_elements(), high->total_mapping_elements());
  for (size_t i = 0; i < low->sets.size(); ++i) {
    EXPECT_GE(low->sets[i].size(), high->sets[i].size());
  }
}

TEST(ElementMatchingTest, SmallestSetNode) {
  SchemaForest repo = MakeRepo();
  auto r = MatchElements(Personal(), repo, {.threshold = 0.5});
  ASSERT_TRUE(r.ok());
  schema::NodeId smallest = r->SmallestSetNode();
  ASSERT_NE(smallest, schema::kInvalidNode);
  size_t min_size = r->sets[static_cast<size_t>(smallest)].size();
  for (const auto& s : r->sets) {
    if (s.size() > 0) {
      EXPECT_LE(min_size, s.size());
    }
  }
}

TEST(ElementMatchingTest, AttributeFiltering) {
  SchemaForest repo;
  repo.AddTree(*schema::ParseTreeSpec("book(@title,title)"));
  SchemaTree personal = *schema::ParseTreeSpec("title");
  auto with_attrs =
      MatchElements(personal, repo, {.threshold = 0.9});
  auto without_attrs = MatchElements(
      personal, repo, {.threshold = 0.9, .match_attributes = false});
  ASSERT_TRUE(with_attrs.ok());
  ASSERT_TRUE(without_attrs.ok());
  EXPECT_EQ(with_attrs->sets[0].size(), 2u);
  EXPECT_EQ(without_attrs->sets[0].size(), 1u);
}

TEST(ElementMatchingTest, RejectsBadInputs) {
  SchemaForest repo = MakeRepo();
  SchemaTree empty;
  EXPECT_FALSE(MatchElements(empty, repo, {}).ok());

  SchemaTree too_big;
  schema::NodeId root = too_big.AddNode(schema::kInvalidNode, {.name = "r"});
  for (int i = 0; i < 40; ++i) {
    too_big.AddNode(root, {.name = "c" + std::to_string(i)});
  }
  EXPECT_FALSE(MatchElements(too_big, repo, {}).ok());

  EXPECT_FALSE(MatchElements(Personal(), repo, {.threshold = -0.1}).ok());
  EXPECT_FALSE(MatchElements(Personal(), repo, {.threshold = 1.5}).ok());
}

TEST(ElementMatchingTest, EmptyRepository) {
  schema::SchemaForest repo;
  auto r = MatchElements(Personal(), repo, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_mapping_elements(), 0u);
  EXPECT_TRUE(r->distinct_nodes.empty());
  EXPECT_EQ(r->SmallestSetNode(), schema::kInvalidNode);
}

TEST(ElementMatchingTest, MemoizedAndUnmemoizedAgree) {
  SchemaForest repo = MakeRepo();
  SchemaTree personal = Personal();
  // DatatypeMatcher is not name-only, so it disables memoization; a
  // composite of fuzzy+datatype must equal manual expectation regardless.
  FuzzyNameMatcher fuzzy;
  ElementMatchingOptions memo_opts{.threshold = 0.5, .matcher = &fuzzy};
  auto memoized = MatchElements(personal, repo, memo_opts);
  ASSERT_TRUE(memoized.ok());

  CompositeMatcher composite;  // name-only = false → no memoization
  composite.Add(std::make_shared<FuzzyNameMatcher>(), 1.0);
  auto datatype_only = std::make_shared<DatatypeMatcher>();
  composite.Add(datatype_only, 0.0);  // zero weight: same scores as fuzzy
  ElementMatchingOptions plain_opts{.threshold = 0.5, .matcher = &composite};
  auto plain = MatchElements(personal, repo, plain_opts);
  ASSERT_TRUE(plain.ok());

  ASSERT_EQ(memoized->sets.size(), plain->sets.size());
  for (size_t i = 0; i < memoized->sets.size(); ++i) {
    ASSERT_EQ(memoized->sets[i].size(), plain->sets[i].size());
    for (size_t j = 0; j < memoized->sets[i].elements.size(); ++j) {
      EXPECT_EQ(memoized->sets[i].elements[j].node,
                plain->sets[i].elements[j].node);
      EXPECT_DOUBLE_EQ(memoized->sets[i].elements[j].score,
                       plain->sets[i].elements[j].score);
    }
  }
}

}  // namespace
}  // namespace xsm::match
