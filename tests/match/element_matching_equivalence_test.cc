// Randomized-corpus equivalence suite for the two-stage element-matching
// engine: MatchElements (dictionary engine, optionally sharded over a
// thread pool) must reproduce MatchElementsReference (the retained seed
// sweep) bit-for-bit — sets, scores, masks, distinct_nodes — across
// thresholds, matcher types, shard counts and thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "match/element_matching.h"
#include "match/name_dictionary.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/thread_pool.h"

namespace xsm::match {
namespace {

using schema::SchemaForest;
using schema::SchemaTree;

SchemaForest MakeCorpus(size_t elements, uint64_t seed) {
  repo::SyntheticRepoOptions options;
  options.target_elements = elements;
  options.seed = seed;
  auto forest = repo::GenerateSyntheticRepository(options);
  EXPECT_TRUE(forest.ok());
  return std::move(*forest);
}

std::vector<SchemaTree> PersonalSchemas() {
  std::vector<SchemaTree> personals;
  for (const char* spec :
       {"name(address,email)", "order(item(price),customer(name))",
        "article(title,publisher,author(firstName,lastName))", "title"}) {
    personals.push_back(*schema::ParseTreeSpec(spec));
  }
  return personals;
}

/// Asserts exact equality, element by element, score bit by score bit.
void ExpectIdentical(const ElementMatchingResult& expected,
                     const ElementMatchingResult& actual,
                     const std::string& context) {
  ASSERT_EQ(expected.sets.size(), actual.sets.size()) << context;
  for (size_t i = 0; i < expected.sets.size(); ++i) {
    ASSERT_EQ(expected.sets[i].personal_node, actual.sets[i].personal_node)
        << context;
    ASSERT_EQ(expected.sets[i].size(), actual.sets[i].size())
        << context << " set " << i;
    for (size_t j = 0; j < expected.sets[i].elements.size(); ++j) {
      const MappingElement& e = expected.sets[i].elements[j];
      const MappingElement& a = actual.sets[i].elements[j];
      ASSERT_EQ(e.node, a.node) << context << " set " << i << " elem " << j;
      // Bit-identical scores: EXPECT_EQ, not EXPECT_NEAR.
      ASSERT_EQ(e.score, a.score) << context << " set " << i << " elem " << j;
    }
  }
  ASSERT_EQ(expected.distinct_nodes, actual.distinct_nodes) << context;
  ASSERT_EQ(expected.masks, actual.masks) << context;
}

struct NamedMatcher {
  std::string name;
  std::shared_ptr<const ElementMatcher> matcher;
};

std::vector<NamedMatcher> NameOnlyMatchers() {
  std::vector<NamedMatcher> matchers;
  matchers.push_back({"fuzzy-ci", std::make_shared<FuzzyNameMatcher>(true)});
  matchers.push_back({"fuzzy-cs", std::make_shared<FuzzyNameMatcher>(false)});
  matchers.push_back(
      {"jaro-winkler", std::make_shared<JaroWinklerNameMatcher>()});
  matchers.push_back({"ngram3", std::make_shared<NgramNameMatcher>(3)});
  matchers.push_back({"ngram2", std::make_shared<NgramNameMatcher>(2)});
  matchers.push_back({"token", std::make_shared<TokenNameMatcher>()});
  matchers.push_back({"synonym", std::make_shared<SynonymNameMatcher>()});
  auto composite = std::make_shared<CompositeMatcher>();
  composite->Add(std::make_shared<FuzzyNameMatcher>(), 0.6);
  composite->Add(std::make_shared<JaroWinklerNameMatcher>(), 0.4);
  matchers.push_back({"composite", composite});
  return matchers;
}

TEST(ElementMatchingEquivalenceTest, AllMatchersThresholdsSerial) {
  SchemaForest repo = MakeCorpus(800, 7);
  NameDictionary dict = NameDictionary::Build(repo);
  const double thresholds[] = {0.0, 0.35, 0.5, 0.75, 0.95};
  for (const SchemaTree& personal : PersonalSchemas()) {
    for (const NamedMatcher& nm : NameOnlyMatchers()) {
      for (double threshold : thresholds) {
        ElementMatchingOptions options;
        options.threshold = threshold;
        options.matcher = nm.matcher.get();
        auto reference = MatchElementsReference(personal, repo, options);
        ASSERT_TRUE(reference.ok());

        // Transient dictionary (built inside the call).
        auto cold = MatchElements(personal, repo, options);
        ASSERT_TRUE(cold.ok());
        std::string context =
            nm.name + " @" + std::to_string(threshold) + " personal=" +
            personal.name(0);
        ExpectIdentical(*reference, *cold, context + " [cold]");

        // Warm (precomputed, snapshot-style) dictionary.
        options.dictionary = &dict;
        auto warm = MatchElements(personal, repo, options);
        ASSERT_TRUE(warm.ok());
        ExpectIdentical(*reference, *warm, context + " [warm]");
      }
    }
  }
}

TEST(ElementMatchingEquivalenceTest, ParallelShardsAcrossThreadCounts) {
  SchemaForest repo = MakeCorpus(1500, 11);
  NameDictionary dict = NameDictionary::Build(repo);
  FuzzyNameMatcher fuzzy;
  JaroWinklerNameMatcher jw;
  const ElementMatcher* matchers[] = {&fuzzy, &jw};
  const double thresholds[] = {0.3, 0.5, 0.8};
  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    for (const SchemaTree& personal : PersonalSchemas()) {
      for (const ElementMatcher* matcher : matchers) {
        for (double threshold : thresholds) {
          for (size_t shards : {0u, 1u, 7u, 64u}) {
            ElementMatchingOptions options;
            options.threshold = threshold;
            options.matcher = matcher;
            options.dictionary = &dict;
            options.pool = &pool;
            options.num_shards = shards;
            auto parallel = MatchElements(personal, repo, options);
            ASSERT_TRUE(parallel.ok());

            ElementMatchingOptions serial_options;
            serial_options.threshold = threshold;
            serial_options.matcher = matcher;
            auto reference =
                MatchElementsReference(personal, repo, serial_options);
            ASSERT_TRUE(reference.ok());
            ExpectIdentical(*reference, *parallel,
                            std::string(matcher->name()) + " threads=" +
                                std::to_string(threads) + " shards=" +
                                std::to_string(shards) + " @" +
                                std::to_string(threshold));
          }
        }
      }
    }
  }
}

TEST(ElementMatchingEquivalenceTest, AttributeFilteringEquivalence) {
  SchemaForest repo = MakeCorpus(1000, 23);
  NameDictionary dict = NameDictionary::Build(repo);
  ThreadPool pool(3);
  for (bool match_attributes : {true, false}) {
    ElementMatchingOptions options;
    options.threshold = 0.5;
    options.match_attributes = match_attributes;
    auto reference = MatchElementsReference(
        *schema::ParseTreeSpec("name(address,email)"), repo, options);
    ASSERT_TRUE(reference.ok());

    options.dictionary = &dict;
    options.pool = &pool;
    auto engine = MatchElements(*schema::ParseTreeSpec("name(address,email)"),
                                repo, options);
    ASSERT_TRUE(engine.ok());
    ExpectIdentical(*reference, *engine,
                    match_attributes ? "attrs=on" : "attrs=off");
  }
}

TEST(ElementMatchingEquivalenceTest, NonNameOnlyMatcherFallsBackExactly) {
  SchemaForest repo = MakeCorpus(600, 3);
  CompositeMatcher composite;
  composite.Add(std::make_shared<FuzzyNameMatcher>(), 0.7);
  composite.Add(std::make_shared<DatatypeMatcher>(), 0.3);
  ASSERT_FALSE(composite.name_only());

  ElementMatchingOptions options;
  options.threshold = 0.4;
  options.matcher = &composite;
  SchemaTree personal = *schema::ParseTreeSpec("person(name,email)");
  auto reference = MatchElementsReference(personal, repo, options);
  auto engine = MatchElements(personal, repo, options);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(engine.ok());
  ExpectIdentical(*reference, *engine, "datatype-composite");
}

TEST(ElementMatchingEquivalenceTest, RejectsForeignDictionary) {
  SchemaForest repo_a = MakeCorpus(400, 1);
  SchemaForest repo_b = MakeCorpus(400, 2);
  NameDictionary dict_b = NameDictionary::Build(repo_b);
  ElementMatchingOptions options;
  options.dictionary = &dict_b;
  auto r = MatchElements(*schema::ParseTreeSpec("name(address,email)"),
                         repo_a, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ElementMatchingEquivalenceTest, CancellationStopsScoring) {
  SchemaForest repo = MakeCorpus(1000, 5);
  SchemaTree personal = *schema::ParseTreeSpec("name(address,email)");

  core::ExecutionControl cancelled;
  cancelled.cancel.Cancel();
  ElementMatchingOptions options;
  options.control = &cancelled;
  auto r = MatchElements(personal, repo, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  // Same under a pool: every shard observes the stop.
  ThreadPool pool(2);
  options.pool = &pool;
  r = MatchElements(personal, repo, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  core::ExecutionControl expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(10);
  ElementMatchingOptions deadline_options;
  deadline_options.control = &expired;
  r = MatchElements(personal, repo, deadline_options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  // A null-control run is oblivious.
  auto ok = MatchElements(personal, repo, ElementMatchingOptions{});
  ASSERT_TRUE(ok.ok());
}

TEST(ElementMatchingEquivalenceTest, EmptyRepositoryAndNoMatches) {
  SchemaForest empty;
  auto r = MatchElements(*schema::ParseTreeSpec("name"), empty,
                         ElementMatchingOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->distinct_nodes.empty());
  EXPECT_EQ(r->total_mapping_elements(), 0u);

  // Nothing clears threshold 1.0 against an unrelated vocabulary.
  SchemaForest repo;
  repo.AddTree(*schema::ParseTreeSpec("engine(piston,crankshaft)"));
  ElementMatchingOptions strict;
  strict.threshold = 1.0;
  auto none = MatchElements(*schema::ParseTreeSpec("zzz"), repo, strict);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->total_mapping_elements(), 0u);
  auto reference = MatchElementsReference(*schema::ParseTreeSpec("zzz"),
                                          repo, strict);
  ASSERT_TRUE(reference.ok());
  ExpectIdentical(*reference, *none, "strict-threshold");
}

}  // namespace
}  // namespace xsm::match
