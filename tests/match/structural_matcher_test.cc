#include "match/structural_matcher.h"

#include <gtest/gtest.h>

#include <memory>

#include "schema/schema_tree.h"

namespace xsm::match {
namespace {

using schema::NodeId;
using schema::SchemaTree;

TEST(SoftTokenSetSimilarityTest, Basics) {
  EXPECT_DOUBLE_EQ(SoftTokenSetSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SoftTokenSetSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SoftTokenSetSimilarity({}, {"a"}), 0.0);
  EXPECT_DOUBLE_EQ(SoftTokenSetSimilarity({"book"}, {"book"}), 1.0);
  EXPECT_DOUBLE_EQ(SoftTokenSetSimilarity({"abc"}, {"xyz"}),
                   SoftTokenSetSimilarity({"xyz"}, {"abc"}));  // symmetric
}

TEST(SoftTokenSetSimilarityTest, PartialOverlapAndFuzzyCredit) {
  // {book, title} vs {book}: book matches 1.0 both ways, title gets its
  // best match against "book".
  double s = SoftTokenSetSimilarity({"book", "title"}, {"book"});
  EXPECT_GT(s, 0.3);
  EXPECT_LT(s, 1.0);
  // Fuzzy variant tokens earn close-to-full credit.
  EXPECT_GT(SoftTokenSetSimilarity({"author"}, {"authors"}), 0.8);
}

struct Fixture {
  // Personal: book(title,author). Repository: the Fig. 1 library plus a
  // garage tree with no shared context.
  SchemaTree personal = *schema::ParseTreeSpec("book(title,author)");
  SchemaTree lib = *schema::ParseTreeSpec(
      "lib(address,book(data(title,authorName),shelf))");
  SchemaTree garage = *schema::ParseTreeSpec("garage(car(plate,owner))");
  // lib ids: lib0 address1 book2 data3 title4 authorName5 shelf6.
};

TEST(PathContextMatcherTest, SharedAncestorsScoreHigher) {
  Fixture f;
  PathContextMatcher m;
  // personal title (id 1) has ancestor tokens {book};
  // lib title (id 4) has {lib, book, data}; lib address (id 1) has {lib}.
  double title_vs_title = m.Score(f.personal, 1, f.lib, 4);
  double title_vs_address = m.Score(f.personal, 1, f.lib, 1);
  EXPECT_GT(title_vs_title, title_vs_address);
  // Roots both have empty contexts: full score.
  EXPECT_DOUBLE_EQ(m.Score(f.personal, 0, f.garage, 0), 1.0);
}

TEST(ChildrenContextMatcherTest, ChildSetsCompared) {
  Fixture f;
  ChildrenContextMatcher m;
  // personal book {title, author} vs lib data {title, authorName}: high.
  double book_vs_data = m.Score(f.personal, 0, f.lib, 3);
  EXPECT_GE(book_vs_data, 0.8);
  // personal book vs garage car {plate, owner}: low.
  double book_vs_car = m.Score(f.personal, 0, f.garage, 1);
  EXPECT_LT(book_vs_car, book_vs_data);
  // Two leaves agree vacuously.
  EXPECT_DOUBLE_EQ(m.Score(f.personal, 1, f.lib, 4), 1.0);
  // Leaf against an inner node: no shared child evidence.
  EXPECT_DOUBLE_EQ(m.Score(f.personal, 1, f.lib, 3), 0.0);
}

TEST(LeafContextMatcherTest, DescendantLeavesCompared) {
  Fixture f;
  LeafContextMatcher m;
  // personal book leaves {title, author}; lib book (id 2) leaves
  // {title, authorName, shelf}; garage car leaves {plate, owner}.
  double book_vs_book = m.Score(f.personal, 0, f.lib, 2);
  double book_vs_car = m.Score(f.personal, 0, f.garage, 1);
  EXPECT_GT(book_vs_book, book_vs_car);
  EXPECT_GT(book_vs_book, 0.5);
}

TEST(LeafContextMatcherTest, CapBoundsWork) {
  // A wide subtree: cap keeps the computation bounded but still sane.
  SchemaTree wide;
  NodeId root = wide.AddNode(schema::kInvalidNode, {.name = "root"});
  for (int i = 0; i < 100; ++i) {
    wide.AddNode(root, {.name = "leaf" + std::to_string(i)});
  }
  SchemaTree p = *schema::ParseTreeSpec("r(leaf1,leaf2)");
  LeafContextMatcher capped(8);
  double s = capped.Score(p, 0, wide, 0);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(CompositeStructuralMatcherTest, WeightedAverage) {
  Fixture f;
  auto path = std::make_shared<PathContextMatcher>();
  auto children = std::make_shared<ChildrenContextMatcher>();
  CompositeStructuralMatcher composite;
  composite.Add(path, 1.0);
  composite.Add(children, 3.0);
  double expected = (1.0 * path->Score(f.personal, 0, f.lib, 2) +
                     3.0 * children->Score(f.personal, 0, f.lib, 2)) /
                    4.0;
  EXPECT_DOUBLE_EQ(composite.Score(f.personal, 0, f.lib, 2), expected);
  EXPECT_EQ(composite.num_components(), 2u);
}

TEST(CompositeStructuralMatcherTest, EmptyAndDefault) {
  Fixture f;
  CompositeStructuralMatcher empty;
  EXPECT_DOUBLE_EQ(empty.Score(f.personal, 0, f.lib, 2), 0.0);
  const CompositeStructuralMatcher& dflt =
      CompositeStructuralMatcher::Default();
  EXPECT_EQ(dflt.num_components(), 3u);
  double s = dflt.Score(f.personal, 0, f.lib, 2);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(StructuralMatcherTest, ScoresStayInUnitRange) {
  Fixture f;
  const StructuralMatcher* matchers[] = {
      &CompositeStructuralMatcher::Default()};
  PathContextMatcher path;
  ChildrenContextMatcher children;
  LeafContextMatcher leaves;
  for (const StructuralMatcher* m :
       {static_cast<const StructuralMatcher*>(&path),
        static_cast<const StructuralMatcher*>(&children),
        static_cast<const StructuralMatcher*>(&leaves), matchers[0]}) {
    for (NodeId pn = 0; pn < static_cast<NodeId>(f.personal.size()); ++pn) {
      for (NodeId rn = 0; rn < static_cast<NodeId>(f.lib.size()); ++rn) {
        double s = m->Score(f.personal, pn, f.lib, rn);
        EXPECT_GE(s, 0.0) << m->name();
        EXPECT_LE(s, 1.0) << m->name();
      }
    }
  }
}

}  // namespace
}  // namespace xsm::match
