#include "match/element_matcher.h"

#include <gtest/gtest.h>

#include <memory>

namespace xsm::match {
namespace {

using schema::NodeProperties;

NodeProperties Named(const std::string& name) {
  NodeProperties p;
  p.name = name;
  return p;
}

TEST(FuzzyNameMatcherTest, ScoresNames) {
  FuzzyNameMatcher m;
  EXPECT_DOUBLE_EQ(m.Score(Named("name"), Named("name")), 1.0);
  EXPECT_DOUBLE_EQ(m.Score(Named("Name"), Named("name")), 1.0);  // case-fold
  EXPECT_GT(m.Score(Named("address"), Named("addr")), 0.5);
  EXPECT_LT(m.Score(Named("email"), Named("shelf")), 0.5);
  EXPECT_TRUE(m.name_only());
}

TEST(FuzzyNameMatcherTest, CaseSensitiveVariant) {
  FuzzyNameMatcher m(/*ignore_case=*/false);
  EXPECT_LT(m.Score(Named("NAME"), Named("name")), 1.0);
}

TEST(JaroWinklerNameMatcherTest, PrefixSensitive) {
  JaroWinklerNameMatcher m;
  EXPECT_DOUBLE_EQ(m.Score(Named("title"), Named("title")), 1.0);
  // Shared prefix scores above a same-letters-different-prefix pair.
  EXPECT_GT(m.Score(Named("authorName"), Named("authorNm")),
            m.Score(Named("authorName"), Named("nameAuthor")));
}

TEST(NgramNameMatcherTest, Basics) {
  NgramNameMatcher m(3);
  EXPECT_DOUBLE_EQ(m.Score(Named("email"), Named("EMAIL")), 1.0);
  EXPECT_EQ(m.Score(Named("abc"), Named("xyz")), 0.0);
}

TEST(TokenNameMatcherTest, TokenJaccard) {
  TokenNameMatcher m;
  // {author,name} vs {name,of,author}: intersection 2, union 3.
  EXPECT_NEAR(m.Score(Named("authorName"), Named("name_of_author")),
              2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.Score(Named("book"), Named("Book")), 1.0);
  EXPECT_DOUBLE_EQ(m.Score(Named("book"), Named("shelf")), 0.0);
  EXPECT_DOUBLE_EQ(m.Score(Named(""), Named("")), 1.0);
  EXPECT_DOUBLE_EQ(m.Score(Named("x"), Named("")), 0.0);
}

TEST(SynonymNameMatcherTest, UsesDefaultDictionary) {
  SynonymNameMatcher m;
  EXPECT_DOUBLE_EQ(m.Score(Named("email"), Named("mail")), 0.9);
  EXPECT_DOUBLE_EQ(m.Score(Named("email"), Named("email")), 1.0);
  EXPECT_DOUBLE_EQ(m.Score(Named("email"), Named("book")), 0.0);
}

TEST(DatatypeMatcherTest, Families) {
  DatatypeMatcher m;
  NodeProperties a = Named("x");
  NodeProperties b = Named("y");
  a.datatype = "xs:string";
  b.datatype = "xs:string";
  EXPECT_DOUBLE_EQ(m.Score(a, b), 1.0);
  b.datatype = "CDATA";
  EXPECT_DOUBLE_EQ(m.Score(a, b), 0.8);  // same string family
  b.datatype = "xs:int";
  EXPECT_DOUBLE_EQ(m.Score(a, b), 0.4);  // string vs numeric
  a.datatype = "xs:date";
  EXPECT_DOUBLE_EQ(m.Score(a, b), 0.0);  // temporal vs numeric
  b.datatype = "";
  EXPECT_DOUBLE_EQ(m.Score(a, b), 0.5);  // undeclared side is neutral
  EXPECT_FALSE(m.name_only());
}

TEST(CompositeMatcherTest, WeightedAverage) {
  auto fuzzy = std::make_shared<FuzzyNameMatcher>();
  auto synonym = std::make_shared<SynonymNameMatcher>();
  CompositeMatcher composite;
  composite.Add(fuzzy, 1.0);
  composite.Add(synonym, 3.0);
  NodeProperties a = Named("email");
  NodeProperties b = Named("mail");
  double expected =
      (1.0 * fuzzy->Score(a, b) + 3.0 * synonym->Score(a, b)) / 4.0;
  EXPECT_DOUBLE_EQ(composite.Score(a, b), expected);
  EXPECT_EQ(composite.num_components(), 2u);
  EXPECT_TRUE(composite.name_only());
}

TEST(CompositeMatcherTest, NameOnlyPropagation) {
  CompositeMatcher composite;
  composite.Add(std::make_shared<FuzzyNameMatcher>(), 1.0);
  composite.Add(std::make_shared<DatatypeMatcher>(), 1.0);
  EXPECT_FALSE(composite.name_only());
}

TEST(CompositeMatcherTest, EmptyScoresZero) {
  CompositeMatcher composite;
  EXPECT_DOUBLE_EQ(composite.Score(Named("a"), Named("a")), 0.0);
}

}  // namespace
}  // namespace xsm::match
