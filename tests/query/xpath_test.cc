#include "query/xpath.h"

#include <gtest/gtest.h>

#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::query {
namespace {

using schema::SchemaForest;
using schema::SchemaTree;

TEST(XPathParseTest, SimplePath) {
  auto r = ParseXPath("/book/author");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->steps.size(), 2u);
  EXPECT_EQ(r->steps[0].name, "book");
  EXPECT_EQ(r->steps[1].name, "author");
  EXPECT_EQ(r->ToString(), "/book/author");
}

TEST(XPathParseTest, PredicateWithLiteral) {
  auto r = ParseXPath("/book[title=\"Iliad\"]/author");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->steps.size(), 2u);
  ASSERT_EQ(r->steps[0].predicates.size(), 1u);
  EXPECT_EQ(r->steps[0].predicates[0].child_path,
            (std::vector<std::string>{"title"}));
  EXPECT_EQ(r->steps[0].predicates[0].literal, "Iliad");
  EXPECT_EQ(r->ToString(), "/book[title=\"Iliad\"]/author");
}

TEST(XPathParseTest, SingleQuotesAndMultiplePredicates) {
  auto r = ParseXPath("/a[b='x'][c/d='y']/e");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->steps[0].predicates.size(), 2u);
  EXPECT_EQ(r->steps[0].predicates[1].child_path,
            (std::vector<std::string>{"c", "d"}));
}

TEST(XPathParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("book/author").ok());   // relative
  EXPECT_FALSE(ParseXPath("/").ok());             // empty step
  EXPECT_FALSE(ParseXPath("/a//b").ok());         // empty step
  EXPECT_FALSE(ParseXPath("/a[b=]").ok());        // missing literal
  EXPECT_FALSE(ParseXPath("/a[b=\"x\"").ok());    // missing ]
  EXPECT_FALSE(ParseXPath("/a[=\"x\"]").ok());    // missing child
  EXPECT_FALSE(ParseXPath("/a[b\"x\"]").ok());    // missing =
}

// Paper Fig. 1 scenario: personal schema book(title,author), repository
// tree lib(address,book(data(title,authorName),shelf)) with the mapping
// book→lib/book, title→.../data/title, author→.../data/authorName.
struct RewriteFixture {
  SchemaTree personal = *schema::ParseTreeSpec("book(title,author)");
  SchemaForest repo;
  generate::SchemaMapping mapping;

  RewriteFixture() {
    repo.AddTree(*schema::ParseTreeSpec(
        "lib(address,book(data(title,authorName),shelf))"));
    // Node ids: lib=0 address=1 book=2 data=3 title=4 authorName=5 shelf=6.
    mapping.tree = 0;
    mapping.images = {2, 4, 5};  // book, title, author
    mapping.delta = 0.9;
  }
};

TEST(RewriteQueryTest, PaperScenario) {
  RewriteFixture f;
  auto query = ParseXPath("/book[title=\"Iliad\"]/author");
  ASSERT_TRUE(query.ok());
  auto rewritten = RewriteQuery(*query, f.personal, f.mapping, f.repo);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(rewritten->ToString(),
            "/lib/book[data/title=\"Iliad\"]/data/authorName");
}

TEST(RewriteQueryTest, RootOnlyQuery) {
  RewriteFixture f;
  auto query = ParseXPath("/book");
  ASSERT_TRUE(query.ok());
  auto rewritten = RewriteQuery(*query, f.personal, f.mapping, f.repo);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->ToString(), "/lib/book");
}

TEST(RewriteQueryTest, NonDescendingImageUsesParentSteps) {
  // Personal a(b); images where b's image is a sibling subtree of a's
  // image: navigation needs "..".
  SchemaTree personal = *schema::ParseTreeSpec("a(b)");
  SchemaForest repo;
  repo.AddTree(*schema::ParseTreeSpec("root(x(aa),y(bb))"));
  // ids: root=0 x=1 aa=2 y=3 bb=4.
  generate::SchemaMapping mapping;
  mapping.tree = 0;
  mapping.images = {2, 4};  // a→aa, b→bb
  auto query = ParseXPath("/a/b");
  ASSERT_TRUE(query.ok());
  auto rewritten = RewriteQuery(*query, personal, mapping, repo);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(rewritten->ToString(), "/root/x/aa/../../y/bb");
}

TEST(RewriteQueryTest, PredicateOnSameNode) {
  // Predicate child mapping to the same image region.
  RewriteFixture f;
  auto query = ParseXPath("/book[author='Homer']/title");
  ASSERT_TRUE(query.ok());
  auto rewritten = RewriteQuery(*query, f.personal, f.mapping, f.repo);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->ToString(),
            "/lib/book[data/authorName=\"Homer\"]/data/title");
}

TEST(RewriteQueryTest, Errors) {
  RewriteFixture f;
  auto wrong_root = ParseXPath("/magazine/author");
  ASSERT_TRUE(wrong_root.ok());
  EXPECT_FALSE(RewriteQuery(*wrong_root, f.personal, f.mapping, f.repo).ok());

  auto wrong_child = ParseXPath("/book/publisher");
  ASSERT_TRUE(wrong_child.ok());
  EXPECT_FALSE(
      RewriteQuery(*wrong_child, f.personal, f.mapping, f.repo).ok());

  auto wrong_pred = ParseXPath("/book[isbn=\"1\"]/author");
  ASSERT_TRUE(wrong_pred.ok());
  EXPECT_FALSE(RewriteQuery(*wrong_pred, f.personal, f.mapping, f.repo).ok());

  // Mapping size mismatch.
  generate::SchemaMapping bad = f.mapping;
  bad.images.pop_back();
  auto query = ParseXPath("/book/author");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(RewriteQuery(*query, f.personal, bad, f.repo).ok());
}

}  // namespace
}  // namespace xsm::query
