#include "label/tree_index.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "schema/schema_tree.h"
#include "util/random.h"

namespace xsm::label {
namespace {

using schema::kInvalidNode;
using schema::NodeId;
using schema::SchemaTree;

// Naive reference implementations via parent walks.
int NaiveDepth(const SchemaTree& t, NodeId n) {
  int d = 0;
  while (t.parent(n) != kInvalidNode) {
    n = t.parent(n);
    ++d;
  }
  return d;
}

NodeId NaiveLca(const SchemaTree& t, NodeId u, NodeId v) {
  std::vector<bool> on_path(t.size(), false);
  for (NodeId x = u; x != kInvalidNode; x = t.parent(x)) {
    on_path[static_cast<size_t>(x)] = true;
  }
  for (NodeId x = v; x != kInvalidNode; x = t.parent(x)) {
    if (on_path[static_cast<size_t>(x)]) return x;
  }
  return kInvalidNode;
}

int NaiveDistance(const SchemaTree& t, NodeId u, NodeId v) {
  NodeId l = NaiveLca(t, u, v);
  return NaiveDepth(t, u) + NaiveDepth(t, v) - 2 * NaiveDepth(t, l);
}

SchemaTree RandomTree(size_t n, uint64_t seed) {
  xsm::Rng rng(seed);
  SchemaTree t;
  t.AddNode(kInvalidNode, {.name = "n0"});
  for (size_t i = 1; i < n; ++i) {
    NodeId parent = static_cast<NodeId>(rng.Uniform(i));
    t.AddNode(parent, {.name = "n" + std::to_string(i)});
  }
  return t;
}

TEST(TreeIndexTest, PaperRepositoryFragment) {
  // Fig. 1 repository tree:
  // lib(n1') -> book(n2'), address(n7'); book -> title(n4'?)...
  // Use: lib(book(title,authorName,data(shelf)),address)
  auto t = *schema::ParseTreeSpec(
      "lib(book(title,authorName,data(shelf)),address)");
  TreeIndex idx = TreeIndex::Build(t);
  // Node ids in pre-order: lib=0 book=1 title=2 authorName=3 data=4 shelf=5
  // address=6.
  EXPECT_EQ(idx.Lca(2, 3), 1);       // title, authorName -> book
  EXPECT_EQ(idx.Lca(5, 6), 0);       // shelf, address -> lib
  EXPECT_EQ(idx.Distance(2, 3), 2);  // title-book-authorName
  EXPECT_EQ(idx.Distance(5, 6), 4);  // shelf-data-book-lib-address
  EXPECT_EQ(idx.Distance(0, 5), 3);
  EXPECT_EQ(idx.Distance(4, 4), 0);
  EXPECT_TRUE(idx.IsAncestorOrSelf(0, 5));
  EXPECT_TRUE(idx.IsAncestorOrSelf(1, 1));
  EXPECT_FALSE(idx.IsAncestorOrSelf(6, 5));
  EXPECT_FALSE(idx.IsAncestorOrSelf(5, 0));
  EXPECT_EQ(idx.height(), 3);
  EXPECT_EQ(idx.diameter(), 4);  // shelf..address
}

TEST(TreeIndexTest, SingleNode) {
  auto t = *schema::ParseTreeSpec("solo");
  TreeIndex idx = TreeIndex::Build(t);
  EXPECT_EQ(idx.Distance(0, 0), 0);
  EXPECT_EQ(idx.Lca(0, 0), 0);
  EXPECT_EQ(idx.diameter(), 0);
  EXPECT_EQ(idx.height(), 0);
}

TEST(TreeIndexTest, ChainDiameter) {
  SchemaTree t;
  NodeId prev = t.AddNode(kInvalidNode, {.name = "a"});
  for (int i = 0; i < 9; ++i) prev = t.AddNode(prev, {.name = "x"});
  TreeIndex idx = TreeIndex::Build(t);
  EXPECT_EQ(idx.diameter(), 9);
  EXPECT_EQ(idx.height(), 9);
  EXPECT_EQ(idx.Distance(0, 9), 9);
  EXPECT_EQ(idx.Lca(0, 9), 0);
}

TEST(TreeIndexTest, StarDiameter) {
  SchemaTree t;
  NodeId root = t.AddNode(kInvalidNode, {.name = "hub"});
  for (int i = 0; i < 20; ++i) t.AddNode(root, {.name = "leaf"});
  TreeIndex idx = TreeIndex::Build(t);
  EXPECT_EQ(idx.diameter(), 2);
  EXPECT_EQ(idx.height(), 1);
  EXPECT_EQ(idx.Distance(1, 20), 2);
  EXPECT_EQ(idx.Lca(1, 20), root);
}

class TreeIndexPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(TreeIndexPropertyTest, MatchesNaiveOnRandomTrees) {
  auto [size, seed] = GetParam();
  SchemaTree t = RandomTree(static_cast<size_t>(size), seed);
  ASSERT_TRUE(t.Validate().ok());
  TreeIndex idx = TreeIndex::Build(t);
  xsm::Rng rng(seed ^ 0xABCDEF);
  for (int trial = 0; trial < 200; ++trial) {
    NodeId u = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId v = static_cast<NodeId>(rng.Uniform(t.size()));
    EXPECT_EQ(idx.Lca(u, v), NaiveLca(t, u, v))
        << "u=" << u << " v=" << v << " size=" << size << " seed=" << seed;
    EXPECT_EQ(idx.Distance(u, v), NaiveDistance(t, u, v));
    EXPECT_EQ(idx.IsAncestorOrSelf(u, v), NaiveLca(t, u, v) == u);
  }
  // Depth agrees everywhere.
  for (NodeId n = 0; n < static_cast<NodeId>(t.size()); ++n) {
    EXPECT_EQ(idx.depth(n), NaiveDepth(t, n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, TreeIndexPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 7, 25, 100, 500),
                       ::testing::Values(1u, 2u, 3u)));

TEST(TreeIndexTest, DiameterMatchesBruteForce) {
  for (uint64_t seed = 10; seed < 16; ++seed) {
    SchemaTree t = RandomTree(60, seed);
    TreeIndex idx = TreeIndex::Build(t);
    int brute = 0;
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      for (NodeId v = u; v < static_cast<NodeId>(t.size()); ++v) {
        brute = std::max(brute, NaiveDistance(t, u, v));
      }
    }
    EXPECT_EQ(idx.diameter(), brute) << "seed=" << seed;
  }
}

TEST(ForestIndexTest, CrossTreeDistanceIsInfinite) {
  schema::SchemaForest f;
  f.AddTree(*schema::ParseTreeSpec("a(b,c)"));
  f.AddTree(*schema::ParseTreeSpec("x(y(z))"));
  ForestIndex fi = ForestIndex::Build(f);
  EXPECT_EQ(fi.num_trees(), 2u);
  EXPECT_EQ(fi.Distance({0, 1}, {1, 1}), ForestIndex::kInfiniteDistance);
  EXPECT_EQ(fi.Distance({0, 1}, {0, 2}), 2);
  EXPECT_EQ(fi.Distance({1, 0}, {1, 2}), 2);
}

TEST(ForestIndexTest, MaxDiameter) {
  schema::SchemaForest f;
  f.AddTree(*schema::ParseTreeSpec("a(b,c)"));          // diameter 2
  f.AddTree(*schema::ParseTreeSpec("x(y(z(w(q))))"));   // diameter 4
  ForestIndex fi = ForestIndex::Build(f);
  EXPECT_EQ(fi.max_diameter(), 4);
  EXPECT_EQ(fi.tree(0).diameter(), 2);
  EXPECT_EQ(fi.tree(1).diameter(), 4);
}

}  // namespace
}  // namespace xsm::label
