#include "generate/partial_generator.h"

#include <gtest/gtest.h>

#include "label/tree_index.h"
#include "objective/objective.h"
#include "schema/schema_tree.h"

namespace xsm::generate {
namespace {

using match::MappingElement;
using schema::NodeRef;
using schema::SchemaTree;

struct Fixture {
  SchemaTree personal = *schema::ParseTreeSpec("name(address,email)");
  SchemaTree repo_tree =
      *schema::ParseTreeSpec("person(name,contact(address,phone))");
  label::TreeIndex index = label::TreeIndex::Build(repo_tree);
  // Non-useful cluster: no email candidate at all.
  ClusterCandidates cands;

  Fixture() {
    cands.tree = 0;
    cands.candidates.resize(3);
    cands.candidates[0] = {{NodeRef{0, 1}, 1.0}};  // name -> name
    cands.candidates[1] = {{NodeRef{0, 3}, 1.0}};  // address -> address
    // email: empty.
  }
};

PartialGeneratorOptions Opts(double delta = 0.0, size_t min_assigned = 2) {
  PartialGeneratorOptions o;
  o.delta = delta;
  o.min_assigned = min_assigned;
  return o;
}

TEST(PartialGeneratorTest, RecoversMaximalPartialMapping) {
  Fixture f;
  objective::BellflowerObjective obj(0.5, 4, 3, 2);
  PartialMappingGenerator gen(f.personal, obj, Opts());
  std::vector<PartialMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(f.cands, f.index, &out, &counters).ok());
  ASSERT_EQ(out.size(), 1u);
  const PartialMapping& m = out[0];
  EXPECT_EQ(m.assigned_count, 2);
  EXPECT_NEAR(m.Coverage(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(m.images[0], 1);                    // name
  EXPECT_EQ(m.images[1], 3);                    // address
  EXPECT_EQ(m.images[2], schema::kInvalidNode);  // email unassigned
  // Δsim averages over all 3 personal nodes: (1+1+0)/3.
  EXPECT_NEAR(m.delta_sim, 2.0 / 3.0, 1e-12);
  // One closed edge (name->address), dist(1,3)=3: excess 2, K=4 ->
  // Δpath = 1 - 2/4 = 0.5.
  EXPECT_NEAR(m.delta_path, 0.5, 1e-12);
  EXPECT_NEAR(m.delta, 0.5 * 2.0 / 3.0 + 0.5 * 0.5, 1e-12);
}

TEST(PartialGeneratorTest, MinAssignedFilters) {
  Fixture f;
  f.cands.candidates[1].clear();  // only "name" assignable now
  objective::BellflowerObjective obj(0.5, 4, 3, 2);
  PartialMappingGenerator gen(f.personal, obj, Opts(0.0, 2));
  std::vector<PartialMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(f.cands, f.index, &out, &counters).ok());
  EXPECT_TRUE(out.empty());

  PartialMappingGenerator gen1(f.personal, obj, Opts(0.0, 1));
  ASSERT_TRUE(gen1.Generate(f.cands, f.index, &out, &counters).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].assigned_count, 1);
  // No closed edges: Δpath defaults to 1.
  EXPECT_DOUBLE_EQ(out[0].delta_path, 1.0);
}

TEST(PartialGeneratorTest, DeltaThresholdApplies) {
  Fixture f;
  objective::BellflowerObjective obj(0.5, 4, 3, 2);
  PartialMappingGenerator strict(f.personal, obj, Opts(0.9));
  std::vector<PartialMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(strict.Generate(f.cands, f.index, &out, &counters).ok());
  EXPECT_TRUE(out.empty());  // best partial scores ~0.583
}

TEST(PartialGeneratorTest, SkippedParentAnchorsToGrandparent) {
  // personal a(b(c)); cluster lacks b entirely: c must anchor to a's image.
  SchemaTree personal = *schema::ParseTreeSpec("a(b(c))");
  SchemaTree repo = *schema::ParseTreeSpec("x(y(z))");
  label::TreeIndex index = label::TreeIndex::Build(repo);
  ClusterCandidates cands;
  cands.tree = 0;
  cands.candidates.resize(3);
  cands.candidates[0] = {{NodeRef{0, 0}, 1.0}};  // a -> x
  cands.candidates[2] = {{NodeRef{0, 2}, 1.0}};  // c -> z
  objective::BellflowerObjective obj(0.5, 4, 3, 2);
  PartialMappingGenerator gen(personal, obj, Opts());
  std::vector<PartialMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(cands, index, &out, &counters).ok());
  ASSERT_EQ(out.size(), 1u);
  // Edge c->anchor(a): dist(x=0, z=2) = 2 -> excess 1, Δpath = 1-1/4.
  EXPECT_NEAR(out[0].delta_path, 0.75, 1e-12);
  EXPECT_EQ(out[0].assigned_count, 2);
}

TEST(PartialGeneratorTest, InjectivityAcrossAssignedSubset) {
  SchemaTree personal = *schema::ParseTreeSpec("a(b,c)");
  SchemaTree repo = *schema::ParseTreeSpec("x(y)");
  label::TreeIndex index = label::TreeIndex::Build(repo);
  ClusterCandidates cands;
  cands.tree = 0;
  cands.candidates.resize(3);
  cands.candidates[0] = {{NodeRef{0, 0}, 1.0}};
  cands.candidates[1] = {{NodeRef{0, 1}, 1.0}};
  cands.candidates[2] = {{NodeRef{0, 1}, 1.0}};  // same node as b's
  objective::BellflowerObjective obj(0.5, 4, 3, 2);
  PartialMappingGenerator gen(personal, obj, Opts(0.0, 3));
  std::vector<PartialMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(cands, index, &out, &counters).ok());
  EXPECT_TRUE(out.empty());  // b and c would collide on node 1
}

TEST(PartialGeneratorTest, BudgetTruncates) {
  Fixture f;
  // Blow up the candidate lists a bit.
  for (schema::NodeId n = 0; n < 5; ++n) {
    f.cands.candidates[0].push_back({NodeRef{0, n}, 0.8});
    f.cands.candidates[1].push_back({NodeRef{0, n}, 0.8});
  }
  objective::BellflowerObjective obj(0.5, 4, 3, 2);
  PartialGeneratorOptions o = Opts();
  o.max_partial_mappings = 3;
  PartialMappingGenerator gen(f.personal, obj, o);
  std::vector<PartialMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(f.cands, f.index, &out, &counters).ok());
  EXPECT_TRUE(counters.truncated);
  EXPECT_LE(counters.partial_mappings, 4u);
}

TEST(PartialGeneratorTest, RejectsMismatchedInput) {
  Fixture f;
  f.cands.candidates.pop_back();
  objective::BellflowerObjective obj(0.5, 4, 3, 2);
  PartialMappingGenerator gen(f.personal, obj, Opts());
  std::vector<PartialMapping> out;
  GeneratorCounters counters;
  EXPECT_FALSE(gen.Generate(f.cands, f.index, &out, &counters).ok());
  EXPECT_FALSE(gen.Generate(f.cands, f.index, nullptr, &counters).ok());
}

TEST(PartialMappingOrderTest, SortsByDeltaThenIdentity) {
  PartialMapping a;
  a.delta = 0.9;
  a.tree = 1;
  PartialMapping b;
  b.delta = 0.8;
  b.tree = 0;
  PartialMapping c;
  c.delta = 0.8;
  c.tree = 2;
  std::vector<PartialMapping> v{c, b, a};
  std::sort(v.begin(), v.end(), PartialMappingOrder());
  EXPECT_DOUBLE_EQ(v[0].delta, 0.9);
  EXPECT_EQ(v[1].tree, 0);
  EXPECT_EQ(v[2].tree, 2);
}

}  // namespace
}  // namespace xsm::generate
