#include "generate/mapping_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "label/tree_index.h"
#include "objective/objective.h"
#include "schema/schema_tree.h"
#include "util/random.h"

namespace xsm::generate {
namespace {

using match::MappingElement;
using schema::NodeId;
using schema::NodeRef;
using schema::SchemaTree;

// Canonical form of a result set for comparisons.
std::set<std::pair<schema::TreeId, std::vector<NodeId>>> Canon(
    const std::vector<SchemaMapping>& mappings) {
  std::set<std::pair<schema::TreeId, std::vector<NodeId>>> out;
  for (const auto& m : mappings) out.insert({m.tree, m.images});
  return out;
}

struct Scenario {
  SchemaTree personal;
  SchemaTree repo_tree;
  label::TreeIndex index;
  ClusterCandidates cands;
};

// Personal: name(address,email). Repository tree:
// person(name,contact(address,email),nick)
Scenario MakeSimpleScenario() {
  Scenario s;
  s.personal = *schema::ParseTreeSpec("name(address,email)");
  s.repo_tree =
      *schema::ParseTreeSpec("person(name,contact(address,email),nick)");
  s.index = label::TreeIndex::Build(s.repo_tree);
  s.cands.tree = 0;
  s.cands.candidates.resize(3);
  // name → {name(1): 1.0, nick(5): 0.5}
  s.cands.candidates[0] = {{NodeRef{0, 1}, 1.0}, {NodeRef{0, 5}, 0.5}};
  // address → {address(3): 1.0}
  s.cands.candidates[1] = {{NodeRef{0, 3}, 1.0}};
  // email → {email(4): 1.0}
  s.cands.candidates[2] = {{NodeRef{0, 4}, 1.0}};
  return s;
}

TEST(ClusterCandidatesTest, UsefulAndSearchSpace) {
  Scenario s = MakeSimpleScenario();
  EXPECT_TRUE(s.cands.useful());
  EXPECT_DOUBLE_EQ(s.cands.SearchSpaceSize(), 2.0);
  s.cands.candidates[1].clear();
  EXPECT_FALSE(s.cands.useful());
  ClusterCandidates empty;
  EXPECT_FALSE(empty.useful());
  EXPECT_DOUBLE_EQ(empty.SearchSpaceSize(), 0.0);
}

TEST(MappingGeneratorTest, FindsExpectedMappingsAndScores) {
  Scenario s = MakeSimpleScenario();
  objective::BellflowerObjective obj(0.5, /*k=*/3, 3, 2);
  GeneratorOptions opts;
  opts.algorithm = Algorithm::kExhaustive;
  opts.delta = 0.0;
  MappingGenerator gen(s.personal, obj, opts);
  std::vector<SchemaMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(s.cands, s.index, &out, &counters).ok());

  // 2 complete assignments (name→name or name→nick).
  ASSERT_EQ(out.size(), 2u);
  std::sort(out.begin(), out.end(), MappingOrder());

  // Best: name→name(1), address→address(3), email→email(4).
  const SchemaMapping& best = out[0];
  EXPECT_EQ(best.images, (std::vector<NodeId>{1, 3, 4}));
  EXPECT_DOUBLE_EQ(best.delta_sim, 1.0);
  // Edge name→address: dist(1,3)=3; edge name→email: dist(1,4)=3. |Et|=6,
  // |Es|=2, K=3 → Δpath = 1 - 4/6 = 1/3.
  EXPECT_EQ(best.total_path_length, 6);
  EXPECT_NEAR(best.delta_path, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(best.delta, 0.5 * 1.0 + 0.5 / 3.0, 1e-12);
}

TEST(MappingGeneratorTest, DeltaThresholdFilters) {
  Scenario s = MakeSimpleScenario();
  objective::BellflowerObjective obj(0.5, 3, 3, 2);
  GeneratorOptions opts;
  opts.algorithm = Algorithm::kBranchAndBound;
  opts.delta = 0.6;
  MappingGenerator gen(s.personal, obj, opts);
  std::vector<SchemaMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(s.cands, s.index, &out, &counters).ok());
  EXPECT_EQ(out.size(), 1u);  // only the name→name mapping survives
  for (const auto& m : out) EXPECT_GE(m.delta, 0.6);
}

TEST(MappingGeneratorTest, InjectivityEnforced) {
  // Personal a(b); both personal nodes match the same single repo node.
  Scenario s;
  s.personal = *schema::ParseTreeSpec("a(b)");
  s.repo_tree = *schema::ParseTreeSpec("x(y)");
  s.index = label::TreeIndex::Build(s.repo_tree);
  s.cands.tree = 0;
  s.cands.candidates.resize(2);
  s.cands.candidates[0] = {{NodeRef{0, 1}, 1.0}};
  s.cands.candidates[1] = {{NodeRef{0, 1}, 1.0}};
  objective::BellflowerObjective obj(0.5, 2, 2, 1);
  GeneratorOptions opts;
  opts.algorithm = Algorithm::kExhaustive;
  opts.delta = 0.0;
  MappingGenerator gen(s.personal, obj, opts);
  std::vector<SchemaMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(s.cands, s.index, &out, &counters).ok());
  EXPECT_TRUE(out.empty());  // the only assignment collides
}

TEST(MappingGeneratorTest, NonUsefulClusterYieldsNothing) {
  Scenario s = MakeSimpleScenario();
  s.cands.candidates[2].clear();
  objective::BellflowerObjective obj(0.5, 3, 3, 2);
  MappingGenerator gen(s.personal, obj, {});
  std::vector<SchemaMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(s.cands, s.index, &out, &counters).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(counters.partial_mappings, 0u);
}

TEST(MappingGeneratorTest, RejectsMismatchedCandidates) {
  Scenario s = MakeSimpleScenario();
  s.cands.candidates.pop_back();
  objective::BellflowerObjective obj(0.5, 3, 3, 2);
  MappingGenerator gen(s.personal, obj, {});
  std::vector<SchemaMapping> out;
  GeneratorCounters counters;
  EXPECT_FALSE(gen.Generate(s.cands, s.index, &out, &counters).ok());
}

TEST(MappingGeneratorTest, PartialMappingBudgetTruncates) {
  Scenario s = MakeSimpleScenario();
  objective::BellflowerObjective obj(0.5, 3, 3, 2);
  GeneratorOptions opts;
  opts.algorithm = Algorithm::kExhaustive;
  opts.delta = 0.0;
  opts.max_partial_mappings = 2;
  MappingGenerator gen(s.personal, obj, opts);
  std::vector<SchemaMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(s.cands, s.index, &out, &counters).ok());
  EXPECT_TRUE(counters.truncated);
  EXPECT_LE(counters.partial_mappings, 3u);
}

TEST(MappingGeneratorTest, CountersAccumulateAcrossCalls) {
  Scenario s = MakeSimpleScenario();
  objective::BellflowerObjective obj(0.5, 3, 3, 2);
  GeneratorOptions opts;
  opts.algorithm = Algorithm::kExhaustive;
  opts.delta = 0.0;
  MappingGenerator gen(s.personal, obj, opts);
  std::vector<SchemaMapping> out;
  GeneratorCounters counters;
  ASSERT_TRUE(gen.Generate(s.cands, s.index, &out, &counters).ok());
  uint64_t first = counters.partial_mappings;
  ASSERT_GT(first, 0u);
  ASSERT_TRUE(gen.Generate(s.cands, s.index, &out, &counters).ok());
  EXPECT_EQ(counters.partial_mappings, 2 * first);
  EXPECT_EQ(out.size(), 4u);
}

// ---------------------------------------------------------------------------
// Property suite: on random scenarios, B&B and A* return exactly the
// exhaustive result set, and B&B never does more work than exhaustive.
// ---------------------------------------------------------------------------

SchemaTree RandomTree(size_t n, xsm::Rng* rng) {
  SchemaTree t;
  t.AddNode(schema::kInvalidNode, {.name = "n0"});
  for (size_t i = 1; i < n; ++i) {
    t.AddNode(static_cast<NodeId>(rng->Uniform(i)),
              {.name = "n" + std::to_string(i)});
  }
  return t;
}

class GeneratorEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(GeneratorEquivalenceTest, BnBAndAStarMatchExhaustive) {
  auto [personal_size, delta, seed] = GetParam();
  xsm::Rng rng(seed);

  for (int trial = 0; trial < 10; ++trial) {
    SchemaTree personal = RandomTree(static_cast<size_t>(personal_size),
                                     &rng);
    SchemaTree repo = RandomTree(12 + rng.Uniform(20), &rng);
    label::TreeIndex index = label::TreeIndex::Build(repo);

    ClusterCandidates cands;
    cands.tree = 0;
    cands.candidates.resize(personal.size());
    for (auto& list : cands.candidates) {
      size_t count = 1 + rng.Uniform(4);
      std::set<NodeId> chosen;
      while (chosen.size() < count) {
        chosen.insert(static_cast<NodeId>(rng.Uniform(repo.size())));
      }
      for (NodeId n : chosen) {
        list.push_back({NodeRef{0, n}, 0.3 + 0.7 * rng.NextDouble()});
      }
    }

    objective::BellflowerObjective obj(
        0.25 + 0.5 * rng.NextDouble(),
        std::max(1, index.diameter() - 1),
        static_cast<int>(personal.size()),
        static_cast<int>(personal.num_edges()));

    auto run = [&](Algorithm alg) {
      GeneratorOptions opts;
      opts.algorithm = alg;
      opts.delta = delta;
      MappingGenerator gen(personal, obj, opts);
      std::vector<SchemaMapping> out;
      GeneratorCounters counters;
      EXPECT_TRUE(gen.Generate(cands, index, &out, &counters).ok());
      return std::make_pair(out, counters);
    };

    auto run_with_bound = [&](BoundMode mode) {
      GeneratorOptions opts;
      opts.algorithm = Algorithm::kBranchAndBound;
      opts.bound_mode = mode;
      opts.delta = delta;
      MappingGenerator gen(personal, obj, opts);
      std::vector<SchemaMapping> out;
      GeneratorCounters counters;
      EXPECT_TRUE(gen.Generate(cands, index, &out, &counters).ok());
      return std::make_pair(out, counters);
    };

    auto [exhaustive, ex_counters] = run(Algorithm::kExhaustive);
    auto [bnb, bnb_counters] = run(Algorithm::kBranchAndBound);
    auto [astar, astar_counters] = run(Algorithm::kAStar);
    auto [beam, beam_counters] = run(Algorithm::kBeam);
    auto [bnb_simple, bnb_simple_counters] =
        run_with_bound(BoundMode::kSimple);

    EXPECT_EQ(Canon(bnb), Canon(exhaustive)) << "seed=" << seed;
    EXPECT_EQ(Canon(astar), Canon(exhaustive)) << "seed=" << seed;
    // Both bound modes are admissible: identical result sets, and the
    // forward-checking bound never does more work than the simple one.
    EXPECT_EQ(Canon(bnb_simple), Canon(exhaustive)) << "seed=" << seed;
    EXPECT_LE(bnb_counters.partial_mappings,
              bnb_simple_counters.partial_mappings);
    // Beam may lose results but never invents them.
    auto exh_set = Canon(exhaustive);
    for (const auto& key : Canon(beam)) {
      EXPECT_TRUE(exh_set.count(key)) << "beam invented a mapping";
    }
    // Pruning never increases work.
    EXPECT_LE(bnb_counters.partial_mappings, ex_counters.partial_mappings);
    // Every emitted mapping respects the threshold and injectivity.
    for (const auto& m : bnb) {
      EXPECT_GE(m.delta, delta);
      std::set<NodeId> uniq(m.images.begin(), m.images.end());
      EXPECT_EQ(uniq.size(), m.images.size());
    }
    // Scores agree between algorithms for identical assignments.
    for (const auto& m : bnb) {
      for (const auto& e : exhaustive) {
        if (e.SameAssignment(m)) {
          EXPECT_DOUBLE_EQ(e.delta, m.delta);
          EXPECT_EQ(e.total_path_length, m.total_path_length);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomScenarios, GeneratorEquivalenceTest,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(0.5, 0.75, 0.9),
                       ::testing::Values(11u, 29u)));

TEST(MappingGeneratorTest, BeamWithLargeWidthMatchesExhaustive) {
  Scenario s = MakeSimpleScenario();
  objective::BellflowerObjective obj(0.5, 3, 3, 2);
  GeneratorOptions exhaustive_opts;
  exhaustive_opts.algorithm = Algorithm::kExhaustive;
  exhaustive_opts.delta = 0.3;
  GeneratorOptions beam_opts = exhaustive_opts;
  beam_opts.algorithm = Algorithm::kBeam;
  beam_opts.beam_width = 1000;

  std::vector<SchemaMapping> exhaustive_out;
  std::vector<SchemaMapping> beam_out;
  GeneratorCounters c1;
  GeneratorCounters c2;
  MappingGenerator g1(s.personal, obj, exhaustive_opts);
  MappingGenerator g2(s.personal, obj, beam_opts);
  ASSERT_TRUE(g1.Generate(s.cands, s.index, &exhaustive_out, &c1).ok());
  ASSERT_TRUE(g2.Generate(s.cands, s.index, &beam_out, &c2).ok());
  EXPECT_EQ(Canon(beam_out), Canon(exhaustive_out));
}

}  // namespace
}  // namespace xsm::generate
