// xsm::wal — journal format round trips plus the damage taxonomy: torn
// tails at every truncation offset are recovered from (expected crash
// artifacts), while every complete-but-damaged artifact is refused with
// a typed status, never silently skipped.
#include "wal/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "util/io.h"
#include "util/status.h"

namespace xsm::wal {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("xsm_wal_test_" + tag + "_" +
              std::to_string(static_cast<unsigned>(getpid()))))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string File(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

util::io::Env* env() { return util::io::Env::Default(); }

std::string ReadBytes(const std::string& path) {
  auto bytes = env()->ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? *bytes : std::string();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  ASSERT_TRUE(
      util::io::AtomicFileWriter::WriteFileAtomic(env(), path, bytes).ok());
}

// Builds a journal with the given payloads and returns its bytes.
std::string BuildJournal(TempDir& dir, const std::vector<std::string>& payloads,
                         uint64_t base_generation = 7,
                         uint64_t base_fingerprint = 0xfeedface) {
  const std::string path = dir.File("build.wal");
  auto writer = WalWriter::Create(env(), path, base_generation,
                                  base_fingerprint);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (const auto& payload : payloads) {
    EXPECT_TRUE((*writer)->Append(RecordType::kDelta, payload).ok());
  }
  return ReadBytes(path);
}

TEST(WalTest, CreateWritesParsableEmptyJournal) {
  TempDir dir("create");
  const std::string path = dir.File("j.wal");
  auto writer = WalWriter::Create(env(), path, 42, 0xabcdef);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ((*writer)->info().base_generation, 42u);
  EXPECT_EQ((*writer)->size_bytes(), kWalHeaderSize);

  auto read = ReadWal(env(), path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->info.format_version, kWalFormatVersion);
  EXPECT_EQ(read->info.base_generation, 42u);
  EXPECT_EQ(read->info.base_fingerprint, 0xabcdefu);
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(read->valid_bytes, kWalHeaderSize);
}

TEST(WalTest, AppendReadRoundTrip) {
  TempDir dir("roundtrip");
  const std::string path = dir.File("j.wal");
  auto writer = WalWriter::Create(env(), path, 1, 2);
  ASSERT_TRUE(writer.ok());
  const std::vector<std::string> payloads = {"first", "", "third payload",
                                             std::string(1000, 'x')};
  for (const auto& payload : payloads) {
    ASSERT_TRUE((*writer)->Append(RecordType::kDelta, payload).ok());
  }
  EXPECT_EQ((*writer)->records_appended(), payloads.size());

  auto read = ReadWal(env(), path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(read->records[i].type, RecordType::kDelta);
    EXPECT_EQ(read->records[i].payload, payloads[i]);
  }
  EXPECT_FALSE(read->torn_tail);
  auto size = env()->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(read->valid_bytes, *size);
}

TEST(WalTest, MissingJournalIsNotFound) {
  TempDir dir("missing");
  auto read = ReadWal(env(), dir.File("nope.wal"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// Every possible kill offset mid-append yields a recoverable journal: the
// intact prefix parses, the torn tail is reported and dropped, never an
// error. This is the core "a crash tears only the tail" property.
TEST(WalTest, TruncationSweepEveryOffsetIsTornTailNotError) {
  TempDir dir("sweep");
  const std::string full =
      BuildJournal(dir, {"alpha", "beta payload", "gamma"});
  const std::string path = dir.File("torn.wal");

  // First find the two record boundaries so we know the expected intact
  // record count at each offset.
  auto whole = ParseWal(full);
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(whole->records.size(), 3u);
  std::vector<size_t> boundaries = {kWalHeaderSize};
  for (const auto& record : whole->records) {
    boundaries.push_back(boundaries.back() + kWalRecordFrameSize +
                         record.payload.size());
  }
  ASSERT_EQ(boundaries.back(), full.size());

  for (size_t cut = kWalHeaderSize; cut < full.size(); ++cut) {
    WriteBytes(path, full.substr(0, cut));
    auto read = ReadWal(env(), path);
    ASSERT_TRUE(read.ok()) << "cut=" << cut << ": " << read.status().ToString();
    size_t expect_records = 0;
    while (expect_records + 1 < boundaries.size() &&
           boundaries[expect_records + 1] <= cut) {
      ++expect_records;
    }
    EXPECT_EQ(read->records.size(), expect_records) << "cut=" << cut;
    EXPECT_EQ(read->valid_bytes, boundaries[expect_records]) << "cut=" << cut;
    const bool expect_torn = cut != boundaries[expect_records];
    EXPECT_EQ(read->torn_tail, expect_torn) << "cut=" << cut;
    EXPECT_EQ(read->dropped_bytes, cut - boundaries[expect_records])
        << "cut=" << cut;
  }
}

// A bit flip anywhere in a record must never yield that record back as
// intact: flips in the CRC, type, or payload are typed kCorruption; a
// flip in the size field is physically indistinguishable from a torn
// tail (the payload looks shorter than its frame claims), so the parser
// may report torn_tail — but then the record is dropped, not served.
TEST(WalTest, BitFlipInCompleteRecordNeverSurvives) {
  TempDir dir("bitflip");
  const std::string full = BuildJournal(dir, {"sensitive payload"});
  for (size_t i = kWalHeaderSize; i < full.size(); ++i) {
    std::string damaged = full;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    auto read = ParseWal(damaged);
    if (read.ok()) {
      EXPECT_TRUE(read->torn_tail) << "flip at byte " << i;
      EXPECT_TRUE(read->records.empty()) << "flip at byte " << i;
    } else {
      EXPECT_EQ(read.status().code(), StatusCode::kCorruption)
          << "flip at byte " << i << ": " << read.status().ToString();
    }
  }
}

TEST(WalTest, BadMagicIsParseError) {
  TempDir dir("magic");
  std::string bytes = BuildJournal(dir, {});
  bytes[0] = 'Y';
  auto read = ParseWal(bytes);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kParseError);
}

TEST(WalTest, HeaderDamage) {
  TempDir dir("header");
  const std::string bytes = BuildJournal(dir, {});

  // Truncated header: kCorruption.
  for (size_t cut = 0; cut < kWalHeaderSize; ++cut) {
    if (cut >= 1 && cut < 8) continue;  // still inside magic → ParseError ok
    auto read = ParseWal(bytes.substr(0, cut));
    ASSERT_FALSE(read.ok()) << "cut=" << cut;
  }

  // Flipped header field byte (base_generation): CRC catches it.
  std::string damaged = bytes;
  damaged[12] = static_cast<char>(damaged[12] ^ 0x01);
  auto read = ParseWal(damaged);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, FutureFormatVersionIsUnimplemented) {
  // The version gate fires before the header CRC check, so a journal from
  // a future build is refused kUnimplemented (upgrade advice), not
  // mistaken for damage.
  std::string bytes = SerializeWalHeader(1, 2);
  ASSERT_EQ(bytes.size(), kWalHeaderSize);
  bytes[8] = static_cast<char>(kWalFormatVersion + 1);  // little-endian LSB
  auto read = ParseWal(bytes);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnimplemented)
      << read.status().ToString();
}

TEST(WalTest, OpenTruncatesTornTailAndAppendsCleanly) {
  TempDir dir("reopen");
  const std::string full = BuildJournal(dir, {"one", "two"});
  const std::string path = dir.File("j.wal");
  // Simulate a crash 5 bytes into a third record's frame.
  WriteBytes(path, full + std::string(5, '\x7f'));

  auto read = ReadWal(env(), path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->dropped_bytes, 5u);
  ASSERT_EQ(read->records.size(), 2u);

  auto writer = WalWriter::Open(env(), path, *read);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(RecordType::kDelta, "three").ok());

  auto after = ReadWal(env(), path);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->torn_tail);
  ASSERT_EQ(after->records.size(), 3u);
  EXPECT_EQ(after->records[2].payload, "three");
}

TEST(WalTest, CreateAtomicallyReplacesExistingJournal) {
  TempDir dir("replace");
  const std::string path = dir.File("j.wal");
  {
    auto writer = WalWriter::Create(env(), path, 1, 11);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(RecordType::kDelta, "stale").ok());
  }
  // Compaction: a fresh journal based at a later checkpoint replaces it.
  auto writer = WalWriter::Create(env(), path, 9, 99);
  ASSERT_TRUE(writer.ok());
  auto read = ReadWal(env(), path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->info.base_generation, 9u);
  EXPECT_EQ(read->info.base_fingerprint, 99u);
  EXPECT_TRUE(read->records.empty());
}

TEST(WalTest, AppendFailureLeavesRecoverableJournal) {
  TempDir dir("appendfail");
  const std::string path = dir.File("j.wal");
  // Build a valid one-record journal with the real env...
  {
    auto writer = WalWriter::Create(env(), path, 3, 33);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(RecordType::kDelta, "durable").ok());
  }
  auto read = ReadWal(env(), path);
  ASSERT_TRUE(read.ok());

  // ...then reopen under fault injection: the very next append dies after
  // persisting a torn 3-byte prefix of the frame.
  util::io::FaultPlan plan;
  plan.fail_append_at = 0;
  plan.append_persist_bytes = 3;
  util::io::FaultInjectionEnv faulty(plan);
  auto writer = WalWriter::Open(&faulty, path, *read);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  Status append = (*writer)->Append(RecordType::kDelta, "lost");
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.code(), StatusCode::kIOError);

  // Recovery sees the durable record and drops the torn prefix.
  auto after = ReadWal(env(), path);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->records.size(), 1u);
  EXPECT_EQ(after->records[0].payload, "durable");
  EXPECT_TRUE(after->torn_tail);
  EXPECT_EQ(after->dropped_bytes, 3u);
}

}  // namespace
}  // namespace xsm::wal
