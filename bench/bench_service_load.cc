// Service load harness: drives xsm::net's HTTP front-end with many
// concurrent keep-alive connections and reports end-to-end request
// latency quantiles (exact nearest-rank p50/p95/p99, per-thread
// QuantileAccumulators merged at the end).
//
// Two phases, each against its own in-process server:
//
//   sustained — `connections` keep-alive connections are all established
//     before the first request, then driver threads issue streamed match
//     queries over every connection. Shedding is disabled; the gate is
//     zero failed requests while ≥ 1000 connections (full mode) are open
//     at once.
//
//   overload — a deliberately tiny admission cap (max_inflight) with a
//     per-query default deadline. Drivers hammer one-shot requests far
//     past the cap: shed requests must come back as typed NDJSON 503s
//     ("code":"unavailable", retryable), accepted requests must keep
//     completing within the deadline budget (the soft→hard band tightens
//     their deadlines rather than queueing them to death).
//
// Emits BENCH_service_load.json for the CI regression tripwire
// (headline: sustained_qps; correctness: zero_failed, shed_all_typed).
//
// Usage: bench_service_load [--smoke] [--no-timing-gate] [--out PATH]
//   --smoke           small corpus / 64 connections (CI per-commit lane)
//   --no-timing-gate  report the deadline verdict but never fail on it
//                     (sanitizer builds distort wall-clock)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "experiment_common.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/tenant_registry.h"
#include "repo/synthetic.h"
#include "util/histogram.h"
#include "util/timer.h"

namespace xsm {
namespace {

constexpr const char* kHost = "127.0.0.1";
constexpr const char* kTenant = "bench";

const char* kSpecs[] = {
    "person(name,phone)",
    "name(address,email)",
    "book(title,author)",
    "customer(name,address(city,zip))",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

struct PhaseResult {
  uint64_t requests = 0;
  uint64_t accepted = 0;   ///< HTTP 200 with a terminal done event
  uint64_t shed = 0;       ///< HTTP 503
  uint64_t shed_typed = 0; ///< 503s whose body is the typed NDJSON error
  uint64_t failed = 0;     ///< anything else (transport error, bad body)
  double seconds = 0;
  QuantileAccumulator latency_ms;          ///< all completed requests
  QuantileAccumulator accepted_latency_ms; ///< 200s only
};

std::string MatchQueryLine(size_t conn, size_t round) {
  const char* spec = kSpecs[(conn + round) % kNumSpecs];
  return std::string(spec) + " id=c" + std::to_string(conn) + "r" +
         std::to_string(round) + " delta=0.75 top=5";
}

bool LooksCompleted(const std::string& body) {
  return body.find("\"type\":\"done\"") != std::string::npos;
}

bool LooksTypedShed(const std::string& body) {
  return body.find("\"type\":\"error\"") != std::string::npos &&
         body.find("\"code\":\"unavailable\"") != std::string::npos &&
         body.find("\"retryable\":true") != std::string::npos;
}

std::unique_ptr<net::TenantRegistry> MakeRegistry(
    const schema::SchemaForest& forest, double deadline_seconds) {
  net::TenantRegistryOptions options;
  options.service.default_deadline_seconds = deadline_seconds;
  auto registry = std::make_unique<net::TenantRegistry>(options);
  auto tenant = registry->Create(kTenant, forest);
  if (!tenant.ok()) {
    std::fprintf(stderr, "tenant create failed: %s\n",
                 tenant.status().ToString().c_str());
    std::exit(2);
  }
  return registry;
}

/// Phase 1: all `num_connections` connections open simultaneously, then
/// `num_drivers` threads sweep them with `rounds` keep-alive match
/// requests each.
PhaseResult RunSustained(uint16_t port, size_t num_connections,
                         size_t num_drivers, size_t rounds) {
  std::vector<net::HttpClient> clients(num_connections);
  for (size_t i = 0; i < num_connections; ++i) {
    Status status = clients[i].Connect(kHost, port);
    if (!status.ok()) {
      std::fprintf(stderr, "connect %zu/%zu failed: %s\n", i,
                   num_connections, status.ToString().c_str());
      std::exit(2);
    }
  }

  PhaseResult result;
  std::vector<QuantileAccumulator> latencies(num_drivers);
  std::vector<uint64_t> failures(num_drivers, 0);
  std::vector<uint64_t> counts(num_drivers, 0);

  Timer timer;
  std::vector<std::thread> drivers;
  for (size_t d = 0; d < num_drivers; ++d) {
    drivers.emplace_back([&, d] {
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t i = d; i < num_connections; i += num_drivers) {
          const std::string query = MatchQueryLine(i, round);
          Timer request_timer;
          auto response = clients[i].Fetch(
              "POST", std::string("/v1/tenants/") + kTenant + "/match",
              query);
          const double ms = 1e3 * request_timer.ElapsedSeconds();
          ++counts[d];
          if (!response.ok() || response->status_code != 200 ||
              !LooksCompleted(response->body)) {
            ++failures[d];
            continue;
          }
          latencies[d].Add(ms);
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  result.seconds = timer.ElapsedSeconds();

  for (size_t d = 0; d < num_drivers; ++d) {
    result.requests += counts[d];
    result.failed += failures[d];
    result.latency_ms.Merge(latencies[d]);
  }
  result.accepted = result.requests - result.failed;
  return result;
}

/// Phase 2: `num_drivers` threads each fire `per_driver` one-shot
/// requests at a server whose admission cap is far below the offered
/// concurrency. The query is deliberately heavy so accepted requests
/// lean on the deadline (anytime contract) instead of finishing early.
PhaseResult RunOverload(uint16_t port, size_t num_drivers,
                        size_t per_driver) {
  PhaseResult result;
  std::mutex mu;

  Timer timer;
  std::vector<std::thread> drivers;
  for (size_t d = 0; d < num_drivers; ++d) {
    drivers.emplace_back([&, d] {
      for (size_t r = 0; r < per_driver; ++r) {
        // Heavy on CPU (tiny element threshold explodes the candidate
        // space) but light on emission (high δ keeps the stream small) —
        // the accepted request must hold its admission slot until the
        // deadline without ballooning the response body.
        const std::string query =
            "person(name,phone) id=o" + std::to_string(d) + "r" +
            std::to_string(r) +
            " delta=0.95 threshold=0.05 top=5";
        Timer request_timer;
        auto response = net::FetchOnce(
            kHost, port, "POST",
            std::string("/v1/tenants/") + kTenant + "/match", query);
        const double ms = 1e3 * request_timer.ElapsedSeconds();

        std::lock_guard<std::mutex> lock(mu);
        ++result.requests;
        if (!response.ok()) {
          if (++result.failed <= 5) {
            std::fprintf(stderr, "overload transport failure: %s\n",
                         response.status().ToString().c_str());
          }
          continue;
        }
        result.latency_ms.Add(ms);
        if (response->status_code == 503) {
          ++result.shed;
          if (LooksTypedShed(response->body)) ++result.shed_typed;
        } else if (response->status_code == 200 &&
                   LooksCompleted(response->body)) {
          ++result.accepted;
          result.accepted_latency_ms.Add(ms);
        } else {
          if (++result.failed <= 5) {
            std::fprintf(stderr, "overload bad response: code=%d body=%.*s\n",
                         response->status_code,
                         static_cast<int>(
                             std::min<size_t>(response->body.size(), 160)),
                         response->body.c_str());
          }
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;

  bool smoke = false;
  bool timing_gate = true;
  std::string out_path = "BENCH_service_load.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-timing-gate") == 0) {
      timing_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_service_load [--smoke] [--no-timing-gate] "
                   "[--out PATH]\n");
      return 2;
    }
  }

  const size_t elements = smoke ? 600 : 3000;
  const size_t connections = smoke ? 64 : 1000;
  const size_t drivers = smoke ? 4 : 8;
  const size_t rounds = 2;
  const double overload_deadline = smoke ? 0.3 : 1.0;
  const size_t overload_drivers = smoke ? 12 : 24;
  const size_t overload_per_driver = smoke ? 3 : 4;

  repo::SyntheticRepoOptions repo_options;
  repo_options.target_elements = elements;
  repo_options.seed = bench::kExperimentSeed;
  auto forest = repo::GenerateSyntheticRepository(repo_options);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 2;
  }

  std::printf("service load (%s): %zu elements / %zu trees, "
              "%zu connections x %zu rounds, %zu drivers\n\n",
              smoke ? "smoke" : "full", forest->total_nodes(),
              forest->num_trees(), connections, rounds, drivers);

  // --- phase 1: sustained ---------------------------------------------------
  PhaseResult sustained;
  {
    auto registry = MakeRegistry(*forest, /*deadline_seconds=*/0);
    net::HttpServerOptions options;
    options.num_workers = 8;
    options.admission.max_inflight = 0;  // shedding off: every request counts
    options.max_connections = connections + 16;
    net::HttpServer server(registry.get(), options);
    Status status = server.StartBackground();
    if (!status.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   status.ToString().c_str());
      return 2;
    }
    sustained = RunSustained(server.port(), connections, drivers, rounds);
    server.RequestShutdown();
  }
  const double sustained_qps =
      sustained.seconds > 0
          ? static_cast<double>(sustained.requests - sustained.failed) /
                sustained.seconds
          : 0;
  std::printf("sustained: %llu requests over %zu connections in %.2fs "
              "(%.1f qps), %llu failed\n",
              static_cast<unsigned long long>(sustained.requests),
              connections, sustained.seconds, sustained_qps,
              static_cast<unsigned long long>(sustained.failed));
  std::printf("  latency p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  "
              "(min %.2f, max %.2f)\n\n",
              sustained.latency_ms.P50(), sustained.latency_ms.P95(),
              sustained.latency_ms.P99(), sustained.latency_ms.min(),
              sustained.latency_ms.max());

  // --- phase 2: overload ----------------------------------------------------
  PhaseResult overload;
  uint64_t server_shed = 0;
  {
    auto registry = MakeRegistry(*forest, overload_deadline);
    net::HttpServerOptions options;
    options.num_workers = 16;
    options.admission.max_inflight = 4;
    options.admission.soft_inflight = 2;
    net::HttpServer server(registry.get(), options);
    Status status = server.StartBackground();
    if (!status.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   status.ToString().c_str());
      return 2;
    }
    overload =
        RunOverload(server.port(), overload_drivers, overload_per_driver);
    server_shed = server.stats().requests_shed;
    server.RequestShutdown();
  }
  // Accepted requests ride the (possibly tightened) default deadline; the
  // budget allows the full deadline plus scheduling/streaming slack.
  const double deadline_budget_ms = 1e3 * overload_deadline + 2000.0;
  const double p99_accepted = overload.accepted_latency_ms.P99();
  const bool zero_failed = sustained.failed == 0 && overload.failed == 0;
  const bool shed_all_typed =
      overload.shed > 0 && overload.shed_typed == overload.shed;
  const bool deadlines_met =
      overload.accepted > 0 && p99_accepted <= deadline_budget_ms;

  std::printf("overload: %llu requests (%zu drivers vs cap 4): "
              "%llu accepted, %llu shed (%llu typed, server counted %llu), "
              "%llu failed\n",
              static_cast<unsigned long long>(overload.requests),
              overload_drivers,
              static_cast<unsigned long long>(overload.accepted),
              static_cast<unsigned long long>(overload.shed),
              static_cast<unsigned long long>(overload.shed_typed),
              static_cast<unsigned long long>(server_shed),
              static_cast<unsigned long long>(overload.failed));
  std::printf("  accepted p99 %.2f ms against budget %.0f ms "
              "(deadline %.1fs)%s\n\n",
              p99_accepted, deadline_budget_ms, overload_deadline,
              timing_gate ? "" : "  [timing gate off]");

  std::printf("verdicts: zero_failed=%s shed_all_typed=%s "
              "deadlines_met=%s\n",
              zero_failed ? "yes" : "NO", shed_all_typed ? "yes" : "NO",
              deadlines_met ? "yes" : "NO");

  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"service_load\",\n"
      "  \"mode\": \"%s\",\n"
      "  \"elements\": %zu,\n"
      "  \"connections\": %zu,\n"
      "  \"sustained\": {\"requests\": %llu, \"failed\": %llu, "
      "\"seconds\": %.3f, \"qps\": %.2f, \"p50_ms\": %.3f, "
      "\"p95_ms\": %.3f, \"p99_ms\": %.3f},\n"
      "  \"overload\": {\"requests\": %llu, \"accepted\": %llu, "
      "\"shed\": %llu, \"shed_typed\": %llu, \"failed\": %llu, "
      "\"deadline_seconds\": %.2f, \"p99_accepted_ms\": %.3f, "
      "\"deadline_budget_ms\": %.1f},\n"
      "  \"sustained_qps\": %.2f,\n"
      "  \"p99_ms_under_shedding\": %.3f,\n"
      "  \"zero_failed\": %s,\n"
      "  \"shed_all_typed\": %s,\n"
      "  \"deadlines_met\": %s,\n"
      "  \"timing_gate\": %s\n"
      "}\n",
      smoke ? "smoke" : "full", elements, connections,
      static_cast<unsigned long long>(sustained.requests),
      static_cast<unsigned long long>(sustained.failed), sustained.seconds,
      sustained_qps, sustained.latency_ms.P50(), sustained.latency_ms.P95(),
      sustained.latency_ms.P99(),
      static_cast<unsigned long long>(overload.requests),
      static_cast<unsigned long long>(overload.accepted),
      static_cast<unsigned long long>(overload.shed),
      static_cast<unsigned long long>(overload.shed_typed),
      static_cast<unsigned long long>(overload.failed), overload_deadline,
      p99_accepted, deadline_budget_ms, sustained_qps, p99_accepted,
      zero_failed ? "true" : "false", shed_all_typed ? "true" : "false",
      deadlines_met ? "true" : "false", timing_gate ? "true" : "false");

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(buf, 1, std::strlen(buf), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (!zero_failed || !shed_all_typed) return 1;
  if (timing_gate && !deadlines_met) return 1;
  return 0;
}
