// Live ingestion benchmark: publish latency and warm-query throughput of
// the evolving-repository path (live::RepositoryManager applying
// copy-on-write deltas) across delta sizes, against the from-scratch
// snapshot rebuild it replaces.
//
// For each delta size (a fraction of the repository's trees, half
// replacements, a quarter additions, a quarter removals) the harness
// measures:
//   - incremental publish latency (delta apply + incremental index /
//     dictionary build + atomic swap), via RepositoryManager::Apply
//   - the from-scratch build of the same post-delta forest
//   - the copy-on-write guarantee: untouched trees must not be rebuilt
//     (trees_rebuilt == adds + replaces, exactly), enforced as a hard gate
//   - fingerprint equality between the incremental and scratch snapshots
// and, for the smallest delta, warm-query throughput through MatchService
// before the delta, on the first (cold-namespace) pass after it, and once
// the new generation's cache is warm again.
//
// Emits a machine-readable JSON trajectory point (default:
// BENCH_live_ingestion.json) so publish latencies are tracked across
// commits.
//
// Usage: bench_live_ingestion [--smoke] [--out PATH] [corpus_elements]
//   --smoke   small corpus, fewer repeats (CI exercise of the live path
//             and the JSON emitter); the copy-on-write gate still applies.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "live/repository_delta.h"
#include "live/repository_manager.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "service/repository_snapshot.h"
#include "util/random.h"
#include "util/timer.h"

namespace xsm {
namespace {

const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "customer(name,address(city,zip))",
    "employee(name,department,email)",
    "product(name,price,@id)",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

const double kFractions[] = {0.01, 0.05, 0.10, 0.25};
constexpr size_t kNumFractions = sizeof(kFractions) / sizeof(kFractions[0]);

schema::SchemaTree MutateTree(const schema::SchemaTree& tree, Rng* rng) {
  schema::SchemaTree mutated = tree;
  schema::NodeId victim = static_cast<schema::NodeId>(
      rng->Uniform(static_cast<uint64_t>(tree.size())));
  schema::NodeProperties* props = mutated.mutable_props(victim);
  props->name += "Rev";
  props->optional = !props->optional;
  return mutated;
}

/// Composes one delta touching ~`fraction` of `base`'s trees: half
/// replacements, a quarter removals, a quarter additions (drawn from
/// `donors`). Deterministic for a given rng state.
Result<live::RepositoryDelta> ComposeDelta(
    const schema::SchemaForest& base, const schema::SchemaForest& donors,
    double fraction, Rng* rng) {
  const size_t trees = base.num_trees();
  const size_t touched = std::max<size_t>(1, static_cast<size_t>(
                                                 fraction * trees));
  const size_t removes = touched / 4;
  const size_t adds = std::min(touched / 4, donors.num_trees());
  const size_t replaces = std::max<size_t>(1, touched - removes - adds);

  // Distinct targets: a shuffled prefix of the tree ids.
  std::vector<schema::TreeId> ids(trees);
  for (size_t t = 0; t < trees; ++t) ids[t] = static_cast<schema::TreeId>(t);
  for (size_t t = trees - 1; t > 0; --t) {
    std::swap(ids[t], ids[rng->Uniform(t + 1)]);
  }

  live::DeltaBuilder builder;
  size_t next = 0;
  for (size_t i = 0; i < replaces && next < trees; ++i, ++next) {
    builder.ReplaceTree(ids[next], MutateTree(base.tree(ids[next]), rng));
  }
  for (size_t i = 0; i < removes && next < trees; ++i, ++next) {
    builder.RemoveTree(ids[next]);
  }
  for (size_t i = 0; i < adds; ++i) {
    builder.AddTree(donors.tree_ptr(static_cast<schema::TreeId>(i)),
                    "donor:" + std::to_string(i));
  }
  return builder.Build();
}

struct DeltaReport {
  double fraction = 0;
  size_t adds = 0, replaces = 0, removes = 0;
  size_t trees_reused = 0, trees_rebuilt = 0;
  size_t names_copied = 0, names_computed = 0;
  double publish_seconds = 0;  ///< best incremental publish latency
  double scratch_seconds = 0;  ///< best from-scratch build of same forest
  bool cow_ok = false;         ///< untouched trees were never rebuilt
  bool fingerprints_equal = false;
};

struct WarmQueryReport {
  double before_qps = 0;      ///< warm throughput on generation 0
  double cold_pass_seconds = 0;  ///< first pass after the delta (cold ns)
  double after_qps = 0;       ///< warm throughput on generation 1
};

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;

  bool smoke = false;
  std::string out_path = "BENCH_live_ingestion.json";
  size_t elements = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      elements = static_cast<size_t>(std::atol(argv[i]));
    }
  }
  if (elements == 0) elements = smoke ? 1500 : 12000;
  const int repeats = smoke ? 1 : 3;

  repo::SyntheticRepoOptions repo_options;
  repo_options.target_elements = elements;
  repo_options.seed = bench::kExperimentSeed;
  auto base = repo::GenerateSyntheticRepository(repo_options);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  repo::SyntheticRepoOptions donor_options;
  donor_options.target_elements = std::max<size_t>(200, elements / 4);
  donor_options.seed = bench::kExperimentSeed + 17;
  auto donors = repo::GenerateSyntheticRepository(donor_options);
  if (!donors.ok()) {
    std::fprintf(stderr, "%s\n", donors.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "live ingestion: incremental publish vs from-scratch rebuild "
      "(%zu elements / %zu trees, repeat=%d)\n\n",
      base->total_nodes(), base->num_trees(), repeats);
  std::printf("%9s %6s %5s %5s %5s  %10s %10s %8s  %7s %7s\n", "fraction",
              "touch", "rep", "add", "rem", "publish ms", "scratch ms",
              "speedup", "reused", "rebuilt");

  bool all_cow_ok = true;
  bool all_fp_equal = true;
  std::vector<DeltaReport> reports;
  for (size_t f = 0; f < kNumFractions; ++f) {
    DeltaReport report;
    report.fraction = kFractions[f];
    double best_publish = 0, best_scratch = 0;
    for (int r = 0; r < repeats; ++r) {
      // Fresh manager per repeat so every publish starts from the same
      // generation-0 state; same rng seed so the delta is identical.
      auto manager = live::RepositoryManager::Create(*base);
      if (!manager.ok()) {
        std::fprintf(stderr, "%s\n", manager.status().ToString().c_str());
        return 1;
      }
      Rng rng(bench::kExperimentSeed * 31 + f);
      auto delta = ComposeDelta(*base, *donors, kFractions[f], &rng);
      if (!delta.ok()) {
        std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
        return 1;
      }
      const size_t base_trees = (*manager)->Current()->num_trees();

      Timer publish_timer;
      auto applied = (*manager)->Apply(*delta);
      double publish = publish_timer.ElapsedSeconds();
      if (!applied.ok()) {
        std::fprintf(stderr, "%s\n", applied.status().ToString().c_str());
        return 1;
      }

      // From-scratch comparison: same post-delta forest (payloads shared,
      // so only index/dictionary/fingerprint work is timed — exactly what
      // the incremental path avoids).
      schema::SchemaForest post = applied->snapshot->forest();
      Timer scratch_timer;
      auto scratch = service::RepositorySnapshot::Create(std::move(post));
      double scratch_seconds = scratch_timer.ElapsedSeconds();
      if (!scratch.ok()) {
        std::fprintf(stderr, "%s\n", scratch.status().ToString().c_str());
        return 1;
      }

      if (r == 0) {
        report.adds = delta->num_adds();
        report.replaces = delta->num_replaces();
        report.removes = delta->num_removes();
        report.trees_reused = applied->trees_reused;
        report.trees_rebuilt = applied->trees_rebuilt;
        report.names_copied = applied->name_entries_copied;
        report.names_computed = applied->name_entries_computed;
        // The copy-on-write guarantee, exactly: every added/replaced tree
        // rebuilt, every untouched tree reused, nothing else.
        report.cow_ok =
            applied->trees_rebuilt ==
                delta->num_adds() + delta->num_replaces() &&
            applied->trees_reused ==
                base_trees - delta->num_replaces() - delta->num_removes();
        report.fingerprints_equal =
            applied->fingerprint == (*scratch)->fingerprint();
        best_publish = publish;
        best_scratch = scratch_seconds;
      } else {
        best_publish = std::min(best_publish, publish);
        best_scratch = std::min(best_scratch, scratch_seconds);
      }
    }
    report.publish_seconds = best_publish;
    report.scratch_seconds = best_scratch;
    all_cow_ok = all_cow_ok && report.cow_ok;
    all_fp_equal = all_fp_equal && report.fingerprints_equal;

    std::printf("%8.0f%% %6zu %5zu %5zu %5zu  %10.3f %10.3f %7.2fx  %7zu "
                "%7zu%s%s\n",
                100 * report.fraction,
                report.adds + report.replaces + report.removes,
                report.replaces, report.adds, report.removes,
                1e3 * report.publish_seconds, 1e3 * report.scratch_seconds,
                report.scratch_seconds / report.publish_seconds,
                report.trees_reused, report.trees_rebuilt,
                report.cow_ok ? "" : "  COW VIOLATION",
                report.fingerprints_equal ? "" : "  FINGERPRINT MISMATCH");
    reports.push_back(report);
  }

  // Warm-query throughput across a small (<= 10%) delta.
  WarmQueryReport warm;
  {
    auto service = service::MatchService::Create(*base);
    if (!service.ok()) {
      std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
      return 1;
    }
    std::vector<service::MatchQuery> queries;
    for (size_t s = 0; s < kNumSpecs; ++s) {
      service::MatchQuery query;
      query.id = "warm-" + std::to_string(s);
      query.personal = *schema::ParseTreeSpec(kSpecs[s]);
      query.options.delta = 0.7;
      query.options.top_n = 5;
      queries.push_back(std::move(query));
    }
    auto run_pass = [&]() {
      Timer timer;
      for (const service::MatchQuery& query : queries) {
        auto result = (*service)->Match(query);
        if (!result.ok()) {
          std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
          std::exit(1);
        }
      }
      return timer.ElapsedSeconds();
    };
    run_pass();  // fill generation 0's cache
    double before = run_pass();
    warm.before_qps = static_cast<double>(queries.size()) / before;

    Rng rng(bench::kExperimentSeed * 131);
    auto delta = ComposeDelta((*service)->CurrentSnapshot()->forest(),
                              *donors, 0.10, &rng);
    if (!delta.ok() || !(*service)->ApplyDelta(*delta).ok()) {
      std::fprintf(stderr, "warm-query delta failed\n");
      return 1;
    }
    warm.cold_pass_seconds = run_pass();  // new namespace: rebuilds states
    double after = run_pass();            // warm again
    warm.after_qps = static_cast<double>(queries.size()) / after;
  }
  std::printf(
      "\nwarm query throughput: %.1f q/s before delta | first post-delta "
      "pass %.1f ms (cold namespace) | %.1f q/s once warm\n",
      warm.before_qps, 1e3 * warm.cold_pass_seconds, warm.after_qps);

  // --- JSON trajectory point. ----------------------------------------------
  std::string json;
  char buf[512];
  json += "{\n";
  json += "  \"bench\": \"live_ingestion\",\n";
  json += smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"elements\": %zu,\n  \"trees\": %zu,\n"
                "  \"repeat\": %d,\n  \"deltas\": [\n",
                base->total_nodes(), base->num_trees(), repeats);
  json += buf;
  for (size_t i = 0; i < reports.size(); ++i) {
    const DeltaReport& r = reports[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"fraction\": %.2f, \"adds\": %zu, \"replaces\": %zu, "
        "\"removes\": %zu,\n"
        "      \"publish_ms\": %.4f, \"scratch_ms\": %.4f, "
        "\"speedup_vs_scratch\": %.3f,\n"
        "      \"trees_reused\": %zu, \"trees_rebuilt\": %zu, "
        "\"names_copied\": %zu, \"names_computed\": %zu,\n"
        "      \"untouched_trees_rebuilt\": %s, "
        "\"fingerprint_equals_scratch\": %s}%s\n",
        r.fraction, r.adds, r.replaces, r.removes,
        1e3 * r.publish_seconds, 1e3 * r.scratch_seconds,
        r.scratch_seconds / r.publish_seconds, r.trees_reused,
        r.trees_rebuilt, r.names_copied, r.names_computed,
        r.cow_ok ? "false" : "true", r.fingerprints_equal ? "true" : "false",
        i + 1 < reports.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"warm_query\": {\"before_qps\": %.2f, "
                "\"cold_pass_ms\": %.3f, \"after_qps\": %.2f},\n"
                "  \"cow_verified\": %s,\n"
                "  \"fingerprints_verified\": %s\n}\n",
                warm.before_qps, 1e3 * warm.cold_pass_seconds,
                warm.after_qps, all_cow_ok ? "true" : "false",
                all_fp_equal ? "true" : "false");
  json += buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  // Hard gates, smoke included: these are correctness properties of the
  // copy-on-write path, not performance targets.
  if (!all_cow_ok) {
    std::printf("COW VIOLATION: untouched trees were rebuilt\n");
    return 1;
  }
  if (!all_fp_equal) {
    std::printf("FINGERPRINT MISMATCH between incremental and scratch\n");
    return 1;
  }
  std::printf("copy-on-write verified: untouched trees never rebuilt; "
              "incremental fingerprints match scratch\n");
  return 0;
}
