// Benchmark: time-to-first mapping — blocking vs. streaming execution ×
// natural vs. quality-descending cluster order.
//
// The paper's §7 future-work item says cluster quality ordering improves
// "time-to-first good mapping"; the streaming MatchSession API is what
// makes that improvement *observable* — a blocking caller sees nothing
// until the whole run finishes no matter how early the first mapping was
// generated. Three modes per order:
//   blocking  — Match(); the first mapping is usable only after total_ms.
//   streaming — same full run with a MatchObserver; first_ms records when
//               OnMapping first fired (identical total work and results).
//   first-1   — streaming with stop_after_n_mappings = 1: the anytime
//               mode; the run ends (status early_stopped) as soon as one
//               mapping exists.
//
// Expected shape: streaming first_ms ≪ blocking total_ms, the quality
// order's first_ms ≤ the natural order's, and first-1 total_ms ≈ first_ms.
#include <cstdio>
#include <cstdlib>

#include "core/match_observer.h"
#include "experiment_common.h"
#include "util/timer.h"

namespace {

class FirstMappingObserver : public xsm::core::MatchObserver {
 public:
  explicit FirstMappingObserver(const xsm::Timer* timer) : timer_(timer) {}

  void OnMapping(const xsm::generate::SchemaMapping& mapping,
                 size_t running_rank) override {
    (void)mapping;
    (void)running_rank;
    if (first_ms_ < 0) first_ms_ = timer_->ElapsedSeconds() * 1e3;
  }

  double first_ms() const { return first_ms_; }

 private:
  const xsm::Timer* timer_;
  double first_ms_ = -1;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace xsm;
  using namespace xsm::bench;

  size_t elements = kPaperRepositoryElements;
  if (argc > 1) elements = static_cast<size_t>(std::atol(argv[1]));

  auto setup = MakeCanonicalSetup(elements);
  PrintBanner(
      "Time-to-first-mapping: blocking vs streaming x cluster order "
      "(delta = 0.95)",
      *setup);

  struct OrderRow {
    const char* name;
    core::ClusterOrder order;
  };
  const OrderRow kOrders[] = {
      {"natural", core::ClusterOrder::kNatural},
      {"quality-desc", core::ClusterOrder::kQualityDescending},
  };

  std::printf("%-14s %-10s %10s %10s %10s %18s %-16s\n", "order", "mode",
              "total ms", "first ms", "mappings", "clusters to first",
              "status");
  for (const OrderRow& row : kOrders) {
    core::MatchOptions options = VariantOptions(Variant::kMedium);
    // Selective threshold: only a handful of clusters can produce mappings
    // at all — the regime where ordering and early exit pay off.
    options.delta = 0.95;
    options.cluster_order = row.order;

    // Blocking: the historical all-or-nothing call.
    Timer blocking_timer;
    auto blocking = setup->system->Match(setup->personal, options);
    double blocking_ms = blocking_timer.ElapsedSeconds() * 1e3;
    if (!blocking.ok()) {
      std::fprintf(stderr, "blocking %s failed: %s\n", row.name,
                   blocking.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s %-10s %10.2f %10s %10zu %18zu %-16s\n", row.name,
                "blocking", blocking_ms, "-", blocking->mappings.size(),
                blocking->stats.clusters_until_first_mapping,
                std::string(core::ExecutionStatusName(blocking->execution))
                    .c_str());

    // Streaming: same work, but the first mapping is observable early.
    Timer streaming_timer;
    FirstMappingObserver streaming_observer(&streaming_timer);
    auto streaming = setup->system->Match(
        setup->personal, options, core::ExecutionControl(),
        &streaming_observer);
    double streaming_ms = streaming_timer.ElapsedSeconds() * 1e3;
    if (!streaming.ok()) {
      std::fprintf(stderr, "streaming %s failed: %s\n", row.name,
                   streaming.status().ToString().c_str());
      return 1;
    }
    if (streaming->mappings.size() != blocking->mappings.size()) {
      std::fprintf(stderr,
                   "BUG: streaming found %zu mappings, blocking %zu\n",
                   streaming->mappings.size(), blocking->mappings.size());
      return 1;
    }
    std::printf("%-14s %-10s %10.2f %10.2f %10zu %18zu %-16s\n", row.name,
                "streaming", streaming_ms, streaming_observer.first_ms(),
                streaming->mappings.size(),
                streaming->stats.clusters_until_first_mapping,
                std::string(core::ExecutionStatusName(streaming->execution))
                    .c_str());

    // Anytime: stop as soon as the first mapping exists.
    core::ExecutionControl first_control;
    first_control.stop_after_n_mappings = 1;
    Timer first_timer;
    FirstMappingObserver first_observer(&first_timer);
    auto first = setup->system->Match(setup->personal, options,
                                      first_control, &first_observer);
    double first_total_ms = first_timer.ElapsedSeconds() * 1e3;
    if (!first.ok()) {
      std::fprintf(stderr, "first-1 %s failed: %s\n", row.name,
                   first.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s %-10s %10.2f %10.2f %10zu %18zu %-16s\n\n", row.name,
                "first-1", first_total_ms, first_observer.first_ms(),
                first->mappings.size(),
                first->stats.clusters_until_first_mapping,
                std::string(core::ExecutionStatusName(first->execution))
                    .c_str());
  }

  std::printf(
      "expected shape: streaming first ms << blocking total ms; the\n"
      "quality order reaches its first mapping no later than natural;\n"
      "first-1 stops right after its first mapping (early_stopped).\n");
  return 0;
}
