// Reproduces Table 1 of the paper:
//   a) properties of clusters   — # useful clusters, avg # of mapping
//      elements, total # of schema mappings (search space, % of baseline);
//   b) mapping generator performance — # partial mappings (B&B counter),
//      # schema mappings with Δ ≥ 0.75, wall time;
// for the four variants (small/medium/large join thresholds, tree = no
// clustering), plus the §5 "efficiency of clustering" wall times.
#include <cstdio>
#include <vector>

#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Table 1: clustered schema matching on the 9.7k repository",
              *setup);

  struct Row {
    const char* name;
    core::MatchStats stats;
    double total_time;
  };
  std::vector<Row> rows;
  double baseline_space = 0;

  for (Variant variant : kAllVariants) {
    core::MatchOptions options = VariantOptions(variant);
    auto result = setup->system->Match(setup->personal, options);
    if (!result.ok()) {
      std::fprintf(stderr, "match failed (%s): %s\n", VariantName(variant),
                   result.status().ToString().c_str());
      return 1;
    }
    if (variant == Variant::kTree) {
      baseline_space = result->stats.search_space;
    }
    double total_time = result->stats.time_clustering_seconds +
                        result->stats.time_generation_seconds;
    rows.push_back({VariantName(variant), result->stats, total_time});
  }

  std::printf("element matcher produced %zu mapping elements "
              "(%zu distinct nodes)\n\n",
              rows[0].stats.total_mapping_elements,
              rows[0].stats.distinct_mapping_nodes);

  std::printf("a) properties of clusters\n");
  std::printf("%-10s %16s %22s %26s\n", "clustering", "# useful clusters",
              "avg # mapping elements", "total # schema mappings");
  for (const Row& row : rows) {
    std::printf("%-10s %16zu %22.1f %18.0f (%5.2f%%)\n", row.name,
                row.stats.num_useful_clusters,
                row.stats.avg_elements_per_useful_cluster,
                row.stats.search_space,
                baseline_space > 0
                    ? 100.0 * row.stats.search_space / baseline_space
                    : 100.0);
  }

  std::printf("\nb) mapping generator performance\n");
  std::printf("%-10s %20s %26s %12s\n", "clustering", "# partial mappings",
              "# schema mappings d>=0.75", "time (s)");
  for (const Row& row : rows) {
    std::printf("%-10s %20llu %26zu %12.3f\n", row.name,
                static_cast<unsigned long long>(
                    row.stats.generator.partial_mappings),
                row.stats.num_mappings, row.stats.time_generation_seconds);
  }

  std::printf("\nclustering efficiency (see 'Efficiency of clustering')\n");
  std::printf("%-10s %14s %12s %20s %12s\n", "clustering", "time (s)",
              "iterations", "initial centroids", "# clusters");
  for (const Row& row : rows) {
    if (row.stats.kmeans.iterations == 0) continue;  // tree baseline
    std::printf("%-10s %14.3f %12d %20zu %12zu\n", row.name,
                row.stats.kmeans.time_seconds, row.stats.kmeans.iterations,
                row.stats.kmeans.initial_centroids, row.stats.num_clusters);
  }

  std::printf("\ntotal pipeline (clustering + generation)\n");
  std::printf("%-10s %14s\n", "clustering", "time (s)");
  for (const Row& row : rows) {
    std::printf("%-10s %14.3f\n", row.name, row.total_time);
  }
  return 0;
}
