// Observability overhead harness: queries/sec of the warm-cache match hot
// path with full metrics instrumentation (registry counters + latency
// histogram + slow-query check) versus the registry-disabled baseline
// (enable_metrics=false skips the per-query Timer/Observe; the counters
// remain, at the same cost as the plain atomics they replaced).
//
// This gates the tentpole's performance claim: pre-registered handles and
// relaxed-atomic increments keep the scrape surface under 3% of warm-path
// throughput. A traced run (per-query span collection) is reported as an
// informational third column — tracing is opt-in per query and not gated.
//
// Hard gates (every mode): the Prometheus exposition renders valid and
// covers the service families; registry counter values agree exactly with
// the service's stats struct; instrumented and baseline services return
// identical results. Timing (full mode, skippable with --no-timing-gate):
// instrumented_qps_ratio >= 0.97 — i.e. < 3% overhead.
//
// Usage: bench_observability [--smoke] [--no-timing-gate] [--out PATH]
//                            [corpus_elements]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "experiment_common.h"
#include "obs/metrics.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "util/timer.h"

namespace xsm {
namespace {

const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "order(item(price),customer)",
    "customer(name,address(city,zip))",
    "article(title,publisher)",
    "employee(name,department,email)",
    "product(name,price,@id)",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);
constexpr size_t kCopies = 3;

std::vector<service::MatchQuery> MakeQueries() {
  std::vector<service::MatchQuery> queries;
  for (size_t copy = 0; copy < kCopies; ++copy) {
    for (size_t s = 0; s < kNumSpecs; ++s) {
      service::MatchQuery query;
      query.id = "q" + std::to_string(copy) + "-" + std::to_string(s);
      query.personal = *schema::ParseTreeSpec(kSpecs[s]);
      query.options.delta = 0.7;
      query.options.top_n = 10;
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

/// (tree, delta) pairs of every mapping of every query in one batch, for
/// the instrumented-vs-baseline identity gate.
std::vector<std::pair<schema::TreeId, double>> BatchDigest(
    service::MatchService* service,
    const std::vector<service::MatchQuery>& queries) {
  std::vector<std::pair<schema::TreeId, double>> digest;
  auto batch = service->MatchBatch(queries);
  for (const auto& result : batch.results) {
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    for (const auto& mapping : result->mappings) {
      digest.emplace_back(mapping.tree, mapping.delta);
    }
  }
  return digest;
}

/// Queries/sec over `repeat` batches.
double MeasureBatches(service::MatchService* service,
                      const std::vector<service::MatchQuery>& queries,
                      int repeat) {
  Timer timer;
  for (int r = 0; r < repeat; ++r) {
    auto results = service->MatchBatch(queries).results;
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  return static_cast<double>(queries.size()) * repeat /
         timer.ElapsedSeconds();
}

/// Structural validity of the exposition: families present, histogram
/// buckets cumulative and capped by the +Inf bucket == _count.
bool ExpositionValid(const std::string& text, uint64_t expected_queries) {
  if (text.find("# TYPE xsm_queries_total counter") == std::string::npos) {
    return false;
  }
  if (text.find("# TYPE xsm_query_duration_ms histogram") ==
      std::string::npos) {
    return false;
  }
  const std::string want = "xsm_queries_total{tenant=\"bench\"} " +
                           std::to_string(expected_queries);
  if (text.find(want) == std::string::npos) return false;
  // Cumulative bucket scan.
  uint64_t last = 0;
  size_t pos = 0;
  const std::string bucket = "xsm_query_duration_ms_bucket";
  while ((pos = text.find(bucket, pos)) != std::string::npos) {
    size_t space = text.find(' ', pos);
    if (space == std::string::npos) return false;
    uint64_t value = std::strtoull(text.c_str() + space + 1, nullptr, 10);
    if (value < last) return false;
    last = value;
    pos = space;
  }
  return last == expected_queries;  // +Inf bucket covers every observation
}

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;

  bool smoke = false;
  bool timing_gate = true;
  std::string out_path = "BENCH_observability.json";
  size_t elements = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-timing-gate") == 0) {
      timing_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      elements = static_cast<size_t>(std::atol(argv[i]));
    }
  }
  if (elements == 0) elements = smoke ? 2000 : 6000;
  const int repeat = smoke ? 3 : 8;
  const int rounds = smoke ? 3 : 5;  // alternating best-of rounds
  const size_t threads = 4;

  repo::SyntheticRepoOptions repo_options;
  repo_options.target_elements = elements;
  repo_options.seed = bench::kExperimentSeed;
  auto forest = repo::GenerateSyntheticRepository(repo_options);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }
  auto snapshot = service::RepositorySnapshot::Create(std::move(*forest));
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  std::vector<service::MatchQuery> queries = MakeQueries();

  // Baseline: instrumentation off (no per-query Timer/Observe/slow check).
  service::MatchServiceOptions baseline_options;
  baseline_options.num_threads = threads;
  baseline_options.enable_metrics = false;
  service::MatchService baseline(*snapshot, baseline_options);

  // Instrumented: shared registry, tenant label, latency histogram and a
  // slow-query threshold high enough to never fire (the check still runs).
  obs::MetricsRegistry registry;
  service::MatchServiceOptions instrumented_options;
  instrumented_options.num_threads = threads;
  instrumented_options.metrics = &registry;
  instrumented_options.metrics_tenant = "bench";
  instrumented_options.slow_query_ms = 1e9;
  service::MatchService instrumented(*snapshot, instrumented_options);

  std::printf(
      "observability overhead: %zu elements / %zu trees, %zu queries per "
      "batch, %zu threads, repeat=%d x %d rounds\n\n",
      (*snapshot)->total_nodes(), (*snapshot)->num_trees(), queries.size(),
      threads, repeat, rounds);

  // Identity gate + cache warm-up in one pass.
  const bool results_identical =
      BatchDigest(&baseline, queries) == BatchDigest(&instrumented, queries);

  // Alternate rounds so machine drift hits both sides equally; keep the
  // best of each (the least-perturbed run).
  double baseline_qps = 0, instrumented_qps = 0;
  for (int round = 0; round < rounds; ++round) {
    double b = MeasureBatches(&baseline, queries, repeat);
    double i = MeasureBatches(&instrumented, queries, repeat);
    if (b > baseline_qps) baseline_qps = b;
    if (i > instrumented_qps) instrumented_qps = i;
  }
  const double ratio = instrumented_qps / baseline_qps;
  const double overhead_pct = (1.0 - ratio) * 100.0;

  // Consistency gate: the registry's counters ARE the service stats.
  service::ServiceStats stats = instrumented.stats();
  obs::LabelSet labels = {{"tenant", "bench"}};
  const bool counters_consistent =
      registry.CounterValue("xsm_queries_total", labels) == stats.queries &&
      registry.CounterValue("xsm_batches_total", labels) == stats.batches &&
      stats.slow_queries == 0;
  const bool exposition_valid =
      ExpositionValid(registry.RenderPrometheusText(), stats.queries);

  std::printf("%-28s %12.1f qps\n", "baseline (metrics off):", baseline_qps);
  std::printf("%-28s %12.1f qps\n", "instrumented:", instrumented_qps);
  std::printf("%-28s %12.3f  (overhead %.2f%%)\n",
              "instrumented/baseline:", ratio, overhead_pct);
  std::printf("\nresults identical: %s | counters consistent: %s | "
              "exposition valid: %s\n",
              results_identical ? "yes" : "NO",
              counters_consistent ? "yes" : "NO",
              exposition_valid ? "yes" : "NO");

  const double target_ratio = 0.97;  // < 3% overhead
  // Smoke corpora on shared CI machines are too noisy for a 3% gate; there
  // the bar is "not catastrophically slower".
  const double gate_ratio = smoke ? 0.5 : target_ratio;
  const bool overhead_ok = !timing_gate || ratio >= gate_ratio;

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n  \"bench\": \"observability\",\n"
      "  \"mode\": \"%s\",\n"
      "  \"elements\": %zu,\n"
      "  \"queries_per_batch\": %zu,\n"
      "  \"threads\": %zu,\n"
      "  \"repeat\": %d,\n"
      "  \"rounds\": %d,\n"
      "  \"baseline_qps\": %.1f,\n"
      "  \"instrumented_qps\": %.1f,\n"
      "  \"instrumented_qps_ratio\": %.4f,\n"
      "  \"overhead_pct\": %.2f,\n"
      "  \"target_overhead_pct\": 3.0,\n"
      "  \"overhead_ok\": %s,\n"
      "  \"exposition_valid\": %s,\n"
      "  \"counters_consistent\": %s,\n"
      "  \"results_identical\": %s\n"
      "}\n",
      smoke ? "smoke" : "full", (*snapshot)->total_nodes(), queries.size(),
      threads, repeat, rounds, baseline_qps, instrumented_qps, ratio,
      overhead_pct, overhead_ok ? "true" : "false",
      exposition_valid ? "true" : "false",
      counters_consistent ? "true" : "false",
      results_identical ? "true" : "false");

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(buf, 1, std::strlen(buf), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (!results_identical) {
    std::printf("RESULT MISMATCH between instrumented and baseline\n");
    return 1;
  }
  if (!counters_consistent) {
    std::printf("REGISTRY/STATS DISAGREEMENT\n");
    return 1;
  }
  if (!exposition_valid) {
    std::printf("EXPOSITION INVALID\n");
    return 1;
  }
  if (timing_gate && ratio < gate_ratio) {
    std::printf("OVERHEAD GATE FAILED: ratio %.4f < %.2f (%.2f%% overhead)\n",
                ratio, gate_ratio, overhead_pct);
    return 1;
  }
  std::printf("observability overhead verified: %.2f%% on the warm match "
              "path (gate < 3%% in full mode)\n",
              overhead_pct);
  return 0;
}
