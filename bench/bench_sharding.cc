// Scatter-gather sharding harness: exactness and scaling of the
// ShardedMatchService against the single-snapshot MatchService on the same
// content.
//
// Hard gate (every mode): `sharded_identical` — for every shard count the
// sharded backend's results (mapping tree / Δ / images, in rank order) and
// repository fingerprint are identical to the unsharded engine's. This is
// the tentpole claim: sharding is a pure execution strategy, invisible in
// results.
//
// Timing (full mode, skippable with --no-timing-gate): the headline
// `query_scaling_ratio` — warm-path queries/sec of the best shard count
// over the unsharded engine — must clear a floor that adapts to the
// hardware. The fan-out scatters mapping generation across shards onto a
// min(K, cores)-thread pool, so with multiple cores the ratio should rise
// toward the core count (until per-query work is too small to amortize
// the fan-out); on a single core no speedup is physically possible and
// the gate instead proves the scatter machinery costs almost nothing
// (>= 0.8x). The committed full-mode baseline + check_bench_regression
// guard the achieved ratio against order-of-magnitude regressions.
//
// Also reported (informational): per-K publish time — the K per-shard
// snapshots build in parallel, so publishing large repositories speeds up
// with K as well.
//
// Usage: bench_sharding [--smoke] [--no-timing-gate] [--out PATH]
//                       [corpus_elements]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "experiment_common.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "shard/sharded_match_service.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xsm {
namespace {

const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "order(item(price),customer)",
    "customer(name,address(city,zip))",
    "article(title,publisher)",
    "employee(name,department,email)",
    "product(name,price,@id)",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);
constexpr size_t kShardCounts[] = {2, 4, 8};

std::vector<service::MatchQuery> MakeQueries() {
  std::vector<service::MatchQuery> queries;
  for (size_t s = 0; s < kNumSpecs; ++s) {
    service::MatchQuery query;
    query.id = "q" + std::to_string(s);
    query.personal = *schema::ParseTreeSpec(kSpecs[s]);
    query.options.delta = 0.7;
    query.options.top_n = 10;
    queries.push_back(std::move(query));
  }
  return queries;
}

/// Rank-ordered (tree, Δ, image-count) triples of every query's mappings:
/// the cross-backend identity digest.
struct Digest {
  std::vector<std::vector<std::pair<schema::TreeId, double>>> per_query;
  std::vector<size_t> image_counts;
  bool operator==(const Digest& other) const {
    return per_query == other.per_query &&
           image_counts == other.image_counts;
  }
};

Digest DigestOf(service::Matcher* matcher,
                const std::vector<service::MatchQuery>& queries) {
  Digest digest;
  for (const service::MatchQuery& query : queries) {
    auto outcome = matcher->Run(query);
    if (!outcome.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", query.id.c_str(),
                   outcome.status().ToString().c_str());
      std::exit(1);
    }
    std::vector<std::pair<schema::TreeId, double>> mappings;
    for (const auto& mapping : outcome->result.mappings) {
      mappings.emplace_back(mapping.tree, mapping.delta);
      digest.image_counts.push_back(mapping.images.size());
    }
    digest.per_query.push_back(std::move(mappings));
  }
  return digest;
}

/// Warm-path queries/sec: sequential single-query runs over the set.
double MeasureQueries(service::Matcher* matcher,
                      const std::vector<service::MatchQuery>& queries,
                      int repeat) {
  Timer timer;
  for (int r = 0; r < repeat; ++r) {
    for (const service::MatchQuery& query : queries) {
      auto outcome = matcher->Run(query);
      if (!outcome.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     outcome.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  return static_cast<double>(queries.size()) * repeat /
         timer.ElapsedSeconds();
}

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;

  bool smoke = false;
  bool timing_gate = true;
  std::string out_path = "BENCH_sharding.json";
  size_t elements = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-timing-gate") == 0) {
      timing_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      elements = static_cast<size_t>(std::atol(argv[i]));
    }
  }
  if (elements == 0) elements = smoke ? 3000 : 100000;
  const int repeat = smoke ? 2 : 4;
  const int rounds = smoke ? 2 : 4;  // alternating best-of rounds
  const size_t threads = 8;

  repo::SyntheticRepoOptions repo_options;
  repo_options.target_elements = elements;
  repo_options.seed = bench::kExperimentSeed;
  auto forest = repo::GenerateSyntheticRepository(repo_options);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }

  service::MatchServiceOptions options;
  options.num_threads = threads;

  // Unsharded reference (publish timed for the informational column).
  Timer unsharded_publish;
  auto snapshot = service::RepositorySnapshot::Create(*forest);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const double unsharded_publish_seconds = unsharded_publish.ElapsedSeconds();
  service::MatchService unsharded(*snapshot, options);

  std::printf(
      "sharded scatter-gather: %zu elements / %zu trees, %zu queries, "
      "%zu threads, repeat=%d x %d rounds\n\n",
      (*snapshot)->total_nodes(), (*snapshot)->num_trees(), kNumSpecs,
      threads, repeat, rounds);

  // Sharded backends, publish timed per K.
  std::vector<std::unique_ptr<shard::ShardedMatchService>> backends;
  std::vector<double> publish_seconds;
  for (size_t k : kShardCounts) {
    shard::ShardedOptions shard_options;
    shard_options.num_shards = k;
    Timer publish;
    auto sharded = shard::ShardedMatchService::Create(*forest, options,
                                                      shard_options);
    if (!sharded.ok()) {
      std::fprintf(stderr, "K=%zu: %s\n", k,
                   sharded.status().ToString().c_str());
      return 1;
    }
    publish_seconds.push_back(publish.ElapsedSeconds());
    backends.push_back(std::move(*sharded));
  }

  // Identity gate + cluster-state warm-up in one pass.
  std::vector<service::MatchQuery> queries = MakeQueries();
  const Digest want = DigestOf(&unsharded, queries);
  bool sharded_identical = true;
  for (size_t i = 0; i < backends.size(); ++i) {
    if (backends[i]->Pin()->fingerprint() !=
        unsharded.Pin()->fingerprint()) {
      std::fprintf(stderr, "K=%zu: fingerprint mismatch\n", kShardCounts[i]);
      sharded_identical = false;
    }
    if (!(DigestOf(backends[i].get(), queries) == want)) {
      std::fprintf(stderr, "K=%zu: results differ from unsharded\n",
                   kShardCounts[i]);
      sharded_identical = false;
    }
  }

  // Alternate rounds so machine drift hits every backend equally; keep
  // the best of each (the least-perturbed run).
  double unsharded_qps = 0;
  std::vector<double> sharded_qps(backends.size(), 0);
  for (int round = 0; round < rounds; ++round) {
    double u = MeasureQueries(&unsharded, queries, repeat);
    if (u > unsharded_qps) unsharded_qps = u;
    for (size_t i = 0; i < backends.size(); ++i) {
      double s = MeasureQueries(backends[i].get(), queries, repeat);
      if (s > sharded_qps[i]) sharded_qps[i] = s;
    }
  }

  std::printf("%-14s | %10s | %10s | %8s | %11s\n", "backend", "publish(s)",
              "warm qps", "speedup", "fan-outs");
  std::printf("%-14s | %10.3f | %10.1f | %8s | %11s\n", "unsharded",
              unsharded_publish_seconds, unsharded_qps, "1.00x", "-");
  double best_qps = 0;
  size_t best_k = 1;
  for (size_t i = 0; i < backends.size(); ++i) {
    if (sharded_qps[i] > best_qps) {
      best_qps = sharded_qps[i];
      best_k = kShardCounts[i];
    }
    char label[32];
    std::snprintf(label, sizeof(label), "sharded K=%zu", kShardCounts[i]);
    std::printf("%-14s | %10.3f | %10.1f | %7.2fx | %11llu\n", label,
                publish_seconds[i], sharded_qps[i],
                sharded_qps[i] / unsharded_qps,
                static_cast<unsigned long long>(
                    backends[i]->metrics().CounterValue(
                        "xsm_shard_fanouts_total")));
  }
  const double ratio = best_qps / unsharded_qps;

  std::printf("\nsharded identical: %s | best: K=%zu at %.2fx unsharded\n",
              sharded_identical ? "yes" : "NO", best_k, ratio);

  // Full-mode floor: with >= 2 cores the scatter must beat the unsharded
  // engine at 100k+ elements; on a single core (where no speedup is
  // possible) it must prove itself near-free. Smoke corpora are too small
  // to amortize fan-out on shared CI machines; there the bar is "not
  // catastrophically slower".
  const size_t cores = ThreadPool::DefaultThreadCount();
  const double gate_ratio = smoke ? 0.3 : (cores >= 2 ? 1.1 : 0.8);
  const bool scaling_ok = !timing_gate || ratio >= gate_ratio;

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n  \"bench\": \"sharding\",\n"
      "  \"mode\": \"%s\",\n"
      "  \"elements\": %zu,\n"
      "  \"queries\": %zu,\n"
      "  \"cores\": %zu,\n"
      "  \"threads\": %zu,\n"
      "  \"repeat\": %d,\n"
      "  \"rounds\": %d,\n"
      "  \"unsharded_publish_seconds\": %.3f,\n"
      "  \"unsharded_qps\": %.1f,\n"
      "  \"best_shard_count\": %zu,\n"
      "  \"best_sharded_qps\": %.1f,\n"
      "  \"query_scaling_ratio\": %.4f,\n"
      "  \"scaling_ok\": %s,\n"
      "  \"sharded_identical\": %s\n"
      "}\n",
      smoke ? "smoke" : "full", (*snapshot)->total_nodes(), kNumSpecs,
      cores, threads, repeat, rounds, unsharded_publish_seconds,
      unsharded_qps,
      best_k, best_qps, ratio, scaling_ok ? "true" : "false",
      sharded_identical ? "true" : "false");
  std::fputs(buf, stdout);
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out != nullptr) {
    std::fputs(buf, out);
    std::fclose(out);
  }

  if (!sharded_identical) return 1;
  if (!scaling_ok) {
    std::fprintf(stderr, "FAIL query_scaling_ratio %.3f < %.3f\n", ratio,
                 gate_ratio);
    return 1;
  }
  return 0;
}
