// Reproduces Fig. 5 of the paper: percentage of preserved mappings as a
// function of the objective threshold δ ∈ [0.75, 1.0], for the small /
// medium / large clustering variants against the non-clustered ("tree
// clusters") baseline.
//
// Expected shape: each clustered curve sits below 1.0 at δ = 0.75 and
// rises toward 1.0 as δ grows — clustering loses mostly low-ranked
// mappings; smaller clusters lose more.
#include <cstdio>
#include <map>
#include <vector>

#include "core/preservation.h"
#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Fig. 5: percentage of preserved mappings vs threshold",
              *setup);

  // Baseline first.
  auto baseline =
      setup->system->Match(setup->personal, VariantOptions(Variant::kTree));
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("non-clustered baseline: %zu mappings with delta >= %.2f\n\n",
              baseline->mappings.size(), kPaperDelta);

  const int kPoints = 11;  // δ = 0.75, 0.775, ..., 1.0
  std::map<Variant, std::vector<core::PreservationPoint>> curves;
  for (Variant variant :
       {Variant::kSmall, Variant::kMedium, Variant::kLarge}) {
    auto clustered =
        setup->system->Match(setup->personal, VariantOptions(variant));
    if (!clustered.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", VariantName(variant),
                   clustered.status().ToString().c_str());
      return 1;
    }
    if (!core::IsSubsetOf(clustered->mappings, baseline->mappings)) {
      std::fprintf(stderr,
                   "invariant violated: clustered mappings not a subset of "
                   "the baseline\n");
      return 1;
    }
    curves[variant] = core::PreservationCurve(
        baseline->mappings, clustered->mappings, kPaperDelta, 1.0, kPoints);
  }

  std::printf("%-8s %10s %10s %10s %10s   (baseline count)\n", "delta",
              "small", "medium", "large", "tree");
  for (int i = 0; i < kPoints; ++i) {
    double delta = curves[Variant::kSmall][static_cast<size_t>(i)].delta;
    std::printf("%-8.3f %10.3f %10.3f %10.3f %10.3f   (%zu)\n", delta,
                curves[Variant::kSmall][static_cast<size_t>(i)].preserved,
                curves[Variant::kMedium][static_cast<size_t>(i)].preserved,
                curves[Variant::kLarge][static_cast<size_t>(i)].preserved,
                1.0,
                curves[Variant::kSmall][static_cast<size_t>(i)]
                    .baseline_count);
  }

  std::printf("\npaper reference points: small preserves ~0.14 at "
              "delta=0.75 and ~0.55 at 0.9; medium ~0.23 and ~0.72.\n");
  return 0;
}
