// Ablation: centroid initialization strategies (paper §4 "Initialization
// of centroids" explores "various heuristics", describing MEmin in detail).
// Compares the paper's MEmin seeding with uniform-random and
// farthest-first seeding at the same centroid budget, on the medium
// variant.
//
// Expected shape: MEmin concentrates centroids where useful clusters can
// exist (every useful cluster needs an MEmin element), so it yields more
// useful clusters and preserves more mappings than random seeding at equal
// cost.
#include <cstdio>
#include <vector>

#include "core/preservation.h"
#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Ablation: centroid initialization strategies", *setup);

  auto baseline =
      setup->system->Match(setup->personal, VariantOptions(Variant::kTree));
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline failed\n");
    return 1;
  }

  // MEmin budget: run it first to learn the centroid count, then grant the
  // same budget to the alternatives.
  struct Row {
    const char* name;
    cluster::CentroidInit init;
  };
  const Row kRows[] = {
      {"minset (paper)", cluster::CentroidInit::kMinSet},
      {"random", cluster::CentroidInit::kRandom},
      {"farthest-first", cluster::CentroidInit::kFarthestFirst},
  };

  size_t budget = 0;
  std::printf("%-16s %10s %10s %12s %14s %12s %10s\n", "init", "clusters",
              "useful", "space", "partials", "mappings", "preserved");
  for (const Row& row : kRows) {
    core::MatchOptions options = VariantOptions(Variant::kMedium);
    options.kmeans.init = row.init;
    options.kmeans.num_centroids = budget;  // 0 for the first (MEmin) run
    auto result = setup->system->Match(setup->personal, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", row.name,
                   result.status().ToString().c_str());
      return 1;
    }
    if (budget == 0) budget = result->stats.kmeans.initial_centroids;
    double preserved =
        baseline->mappings.empty()
            ? 1.0
            : static_cast<double>(result->mappings.size()) /
                  static_cast<double>(baseline->mappings.size());
    std::printf("%-16s %10zu %10zu %12.0f %14llu %12zu %10.3f\n", row.name,
                result->stats.num_clusters,
                result->stats.num_useful_clusters,
                result->stats.search_space,
                static_cast<unsigned long long>(
                    result->stats.generator.partial_mappings),
                result->mappings.size(), preserved);
  }
  std::printf("\n(all runs use the same centroid budget of %zu)\n", budget);
  return 0;
}
