// Recovery benchmark: crash-restart latency as a function of
// deltas-since-checkpoint — the axis WAL compaction exists to bound.
//
// Scenario per measured point K:
//   checkpoint the repository at generation 0, journal K acknowledged
//   deltas, then "crash" (the manager is dropped with no save) and time
//   live::RepositoryManager::Recover — snapshot load, CRC-verified journal
//   replay, fingerprint re-verification of every replayed generation, and
//   journal re-attachment all included; nothing cheats.
// The comparison line is the restart a deployment has without the store +
// journal: re-parse the forest text and rebuild every index and dictionary
// from scratch — which additionally LOSES all K deltas, so beating it on
// time understates the case.
//
// Hard gates (every mode): zero acknowledged-delta loss — every recovery
// lands exactly on the last acknowledged generation with the acknowledged
// fingerprint, replaying exactly K records with no skips and no torn tail;
// sampled queries identical between the recovered and the never-crashed
// repository. Timing: recovery from a fresh checkpoint (K=0) must beat the
// cold rebuild in every mode, and by ≥2x in full mode (smoke corpora are
// too small for stable ratios). Replay cost at larger K is reported as the
// trend that motivates compaction, not gated — it scales with K by design.
//
// Emits a machine-readable JSON trajectory point (default:
// BENCH_recovery.json) so recovery latencies are tracked across commits.
//
// Usage: bench_recovery [--smoke] [--no-timing-gate] [--out PATH]
//                       [corpus_elements]
//   --smoke   small corpus, fewer repeats (CI exercise of the recovery
//             path and the JSON emitter); correctness gates still apply.
//   --no-timing-gate
//             keep every correctness gate but do not fail on the timing
//             comparisons — for instrumented builds (ASan/UBSan CI jobs)
//             where timing ratios mean nothing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "experiment_common.h"
#include "live/repository_delta.h"
#include "live/repository_manager.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "schema/serialization.h"
#include "service/match_service.h"
#include "service/repository_snapshot.h"
#include "store/snapshot_store.h"
#include "util/io.h"
#include "util/timer.h"

namespace xsm {
namespace {

const char* kQuerySpecs[] = {
    "name(address,email)",
    "invoice(number,vendor(name,tax))",
    "customer(name,address(city,zip))",
};
constexpr size_t kNumQuerySpecs = sizeof(kQuerySpecs) / sizeof(kQuerySpecs[0]);

/// A small rotating vocabulary of delta payloads: enough shape variety to
/// exercise the incremental dictionary on replay, deterministic so the
/// journaled chain and the never-crashed chain are the same by content.
std::string DeltaSpec(size_t i) {
  static const char* kShapes[] = {
      "record%zu(created,author(name,email),tags)",
      "invoice%zu(number,total,vendor(name,address))",
      "shipment%zu(carrier,eta,items(sku,qty))",
      "profile%zu(handle,contact(phone,email),verified)",
  };
  char buf[96];
  std::snprintf(buf, sizeof(buf), kShapes[i % 4], i);
  return buf;
}

live::RepositoryDelta MakeDelta(size_t i, schema::TreeId base_trees) {
  live::DeltaBuilder builder;
  auto tree = schema::ParseTreeSpec(DeltaSpec(i));
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    std::exit(1);
  }
  if (i % 4 == 3) {
    // Replacements keep the replay path honest: they rebuild an existing
    // tree's index/labeling, not just append. Base-generation TreeIds
    // 0..base_trees-1 stay valid because nothing here removes trees.
    builder.ReplaceTree(
        static_cast<schema::TreeId>((i * 7) % static_cast<size_t>(base_trees)),
        std::move(*tree), "bench://replaced");
  } else {
    builder.AddTree(std::move(*tree), "bench://added");
  }
  auto delta = builder.Build();
  if (!delta.ok()) {
    std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*delta);
}

/// Ranks/scores of one query against one snapshot, for identity checks.
std::vector<std::pair<schema::TreeId, double>> QueryDigest(
    const std::shared_ptr<const service::RepositorySnapshot>& snapshot,
    const char* spec) {
  service::MatchService service(snapshot);
  service::MatchQuery query;
  query.id = std::string("recovery-") + spec;
  query.personal = *schema::ParseTreeSpec(spec);
  query.options.delta = 0.6;
  query.options.top_n = 10;
  auto result = service.Match(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<std::pair<schema::TreeId, double>> digest;
  for (const auto& mapping : result->mappings) {
    digest.emplace_back(mapping.tree, mapping.delta);
  }
  return digest;
}

struct Acked {
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
};

struct Row {
  size_t deltas = 0;
  double recover_seconds = 0;
  double speedup_vs_cold = 0;
  live::RecoveryReport report;
};

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;
  namespace fs = std::filesystem;

  bool smoke = false;
  bool timing_gate = true;
  std::string out_path = "BENCH_recovery.json";
  size_t elements = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-timing-gate") == 0) {
      timing_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      elements = static_cast<size_t>(std::atol(argv[i]));
    }
  }
  if (elements == 0) elements = smoke ? 1500 : 8000;
  const int repeats = smoke ? 3 : 7;
  const std::vector<size_t> points =
      smoke ? std::vector<size_t>{0, 4, 16}
            : std::vector<size_t>{0, 16, 64, 256};
  const size_t max_deltas = points.back();

  repo::SyntheticRepoOptions repo_options;
  repo_options.target_elements = elements;
  repo_options.seed = bench::kExperimentSeed;
  auto generated = repo::GenerateSyntheticRepository(repo_options);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }

  const fs::path dir = fs::temp_directory_path() / "bench_recovery_state";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  const std::string text_path = (dir / "repository.forest").string();
  const std::string snap_path = (dir / "checkpoint.snap").string();
  const std::string wal_path = (dir / "journal.wal").string();

  // The forest text a cold restart would re-parse (xsm_cli gen/convert
  // output), saved before the forest is moved into the manager.
  Status saved_text = schema::SaveForestToFile(*generated, text_path);
  if (!saved_text.ok()) {
    std::fprintf(stderr, "%s\n", saved_text.ToString().c_str());
    return 1;
  }

  auto manager = live::RepositoryManager::Create(std::move(*generated));
  if (!manager.ok()) {
    std::fprintf(stderr, "%s\n", manager.status().ToString().c_str());
    return 1;
  }
  const schema::TreeId base_trees =
      static_cast<schema::TreeId>((*manager)->Current()->num_trees());
  const size_t base_nodes = (*manager)->Current()->total_nodes();

  std::printf(
      "recovery: checkpoint + journal replay vs cold rebuild "
      "(%zu elements / %u trees, repeat=%d)\n\n",
      (*manager)->Current()->total_nodes(),
      static_cast<unsigned>(base_trees), repeats);

  // --- Cold restart: parse forest text, rebuild every index. ----------------
  // This path also loses all journaled deltas; it is the floor, not a peer.
  double best_cold = 0;
  uint64_t cold_fingerprint = 0;
  for (int r = 0; r < repeats; ++r) {
    Timer cold_timer;
    auto loaded = schema::LoadForestFromFile(text_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    auto snapshot = service::RepositorySnapshot::Create(std::move(*loaded));
    double cold_seconds = cold_timer.ElapsedSeconds();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
      return 1;
    }
    cold_fingerprint = (*snapshot)->fingerprint();
    if (r == 0 || cold_seconds < best_cold) best_cold = cold_seconds;
  }
  if (cold_fingerprint != (*manager)->Current()->fingerprint()) {
    std::printf("COLD REBUILD FINGERPRINT MISMATCH\n");
    return 1;
  }

  // --- Checkpoint + journal, then grow the acknowledged chain. --------------
  Timer save_timer;
  auto checkpoint = store::SaveSnapshotToFile(*(*manager)->Current(), snap_path);
  double save_seconds = save_timer.ElapsedSeconds();
  if (!checkpoint.ok()) {
    std::fprintf(stderr, "%s\n", checkpoint.status().ToString().c_str());
    return 1;
  }
  Status attached = (*manager)->AttachWal(util::io::Env::Default(), wal_path);
  if (!attached.ok()) {
    std::fprintf(stderr, "%s\n", attached.ToString().c_str());
    return 1;
  }

  // A twin chain with no journal measures what the fsync-per-delta append
  // costs the write path (informational, not gated).
  auto reloaded = schema::LoadForestFromFile(text_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "%s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  auto unjournaled = live::RepositoryManager::Create(std::move(*reloaded));
  if (!unjournaled.ok()) {
    std::fprintf(stderr, "%s\n", unjournaled.status().ToString().c_str());
    return 1;
  }

  // Apply max_deltas acknowledged deltas, snapshotting the journal file at
  // each measured K: every append is fsync'd before acknowledgement, so
  // the copy is exactly the journal a crash at that instant leaves behind.
  std::vector<Acked> acked(max_deltas + 1);
  acked[0] = {0, (*manager)->Current()->fingerprint()};
  std::vector<std::string> wal_at;
  for (size_t k : points) {
    wal_at.push_back((dir / ("journal_k" + std::to_string(k) + ".wal"))
                         .string());
  }
  double journaled_apply_seconds = 0, unjournaled_apply_seconds = 0;
  size_t next_point = 0;
  for (size_t k = 0; k <= max_deltas; ++k) {
    if (next_point < points.size() && points[next_point] == k) {
      if (!fs::copy_file(wal_path, wal_at[next_point],
                         fs::copy_options::overwrite_existing, ec) ||
          ec) {
        std::fprintf(stderr, "cannot copy journal at K=%zu\n", k);
        return 1;
      }
      ++next_point;
    }
    if (k == max_deltas) break;
    live::RepositoryDelta delta = MakeDelta(k, base_trees);
    Timer journaled_timer;
    auto report = (*manager)->Apply(delta);
    journaled_apply_seconds += journaled_timer.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    acked[k + 1] = {report->generation, report->fingerprint};
    Timer unjournaled_timer;
    auto twin = (*unjournaled)->Apply(delta);
    unjournaled_apply_seconds += unjournaled_timer.ElapsedSeconds();
    if (!twin.ok()) {
      std::fprintf(stderr, "%s\n", twin.status().ToString().c_str());
      return 1;
    }
  }

  // --- Recover at every measured K. -----------------------------------------
  // Each journal copy is the on-disk state after a kill with K deltas
  // acknowledged since the checkpoint; the recovered chain must land on
  // the acknowledged generation and fingerprint exactly.
  bool zero_loss = true;
  bool fingerprints_identical = true;
  std::vector<Row> rows;
  std::shared_ptr<const service::RepositorySnapshot> recovered_final;
  for (size_t p = 0; p < points.size(); ++p) {
    const size_t k = points[p];
    Row row;
    row.deltas = k;
    for (int r = 0; r < repeats; ++r) {
      live::RecoveryReport report;
      Timer recover_timer;
      auto recovered = live::RepositoryManager::Recover(
          util::io::Env::Default(), snap_path, wal_at[p], &report);
      double recover_seconds = recover_timer.ElapsedSeconds();
      if (!recovered.ok()) {
        std::fprintf(stderr, "recover at K=%zu: %s\n", k,
                     recovered.status().ToString().c_str());
        return 1;
      }
      zero_loss = zero_loss &&
                  report.records_replayed == k &&
                  report.records_skipped == 0 && !report.torn_tail &&
                  (*recovered)->CurrentGeneration() == acked[k].generation;
      fingerprints_identical =
          fingerprints_identical &&
          (*recovered)->Current()->fingerprint() == acked[k].fingerprint;
      if (r == 0 || recover_seconds < row.recover_seconds) {
        row.recover_seconds = recover_seconds;
        row.report = report;
      }
      if (k == max_deltas) recovered_final = (*recovered)->Current();
    }
    row.speedup_vs_cold = best_cold / row.recover_seconds;
    rows.push_back(row);
  }

  // Query-for-query identity between the recovered repository at the
  // largest K and the chain that never crashed.
  bool queries_identical = true;
  for (size_t s = 0; s < kNumQuerySpecs; ++s) {
    queries_identical =
        queries_identical &&
        QueryDigest(recovered_final, kQuerySpecs[s]) ==
            QueryDigest((*manager)->Current(), kQuerySpecs[s]);
  }

  const double journal_overhead =
      unjournaled_apply_seconds > 0
          ? journaled_apply_seconds / unjournaled_apply_seconds
          : 0;
  const double warm_load_seconds = rows.front().recover_seconds;

  std::printf("%-34s %10.3f ms  (loses all journaled deltas)\n",
              "cold rebuild (forest text):", 1e3 * best_cold);
  std::printf("%-34s %10.3f ms\n", "checkpoint save:", 1e3 * save_seconds);
  std::printf("%-34s %10.2fx  (fsync-per-delta vs bare apply)\n",
              "journaling write overhead:", journal_overhead);
  std::printf("\n%12s %14s %16s %14s\n", "deltas", "recover (ms)",
              "per-delta (ms)", "vs cold");
  for (const Row& row : rows) {
    const double per_delta =
        row.deltas == 0
            ? 0
            : 1e3 * (row.recover_seconds - warm_load_seconds) /
                  static_cast<double>(row.deltas);
    std::printf("%12zu %14.3f %16.4f %13.2fx\n", row.deltas,
                1e3 * row.recover_seconds, per_delta < 0 ? 0 : per_delta,
                row.speedup_vs_cold);
  }
  std::printf("\nzero loss: %s | fingerprints: %s | queries identical: %s\n",
              zero_loss ? "ok" : "ACKNOWLEDGED DELTA LOST",
              fingerprints_identical ? "ok" : "MISMATCH",
              queries_identical ? "yes" : "NO");

  // --- JSON trajectory point. -----------------------------------------------
  const double target_speedup = 2.0;
  const bool meets_target = rows.front().speedup_vs_cold >= target_speedup;
  std::string json = "{\n  \"bench\": \"recovery\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"mode\": \"%s\",\n"
                "  \"elements\": %zu,\n  \"trees\": %u,\n  \"repeat\": %d,\n"
                "  \"cold_rebuild_ms\": %.4f,\n"
                "  \"checkpoint_save_ms\": %.4f,\n"
                "  \"journal_overhead\": %.4f,\n"
                "  \"rows\": [\n",
                smoke ? "smoke" : "full", base_nodes,
                static_cast<unsigned>(base_trees), repeats, 1e3 * best_cold,
                1e3 * save_seconds, journal_overhead);
  json += buf;
  for (size_t p = 0; p < rows.size(); ++p) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"deltas_since_checkpoint\": %zu, "
                  "\"recover_ms\": %.4f, "
                  "\"records_replayed\": %zu, "
                  "\"speedup_recover_vs_cold_rebuild\": %.3f}%s\n",
                  rows[p].deltas, 1e3 * rows[p].recover_seconds,
                  rows[p].report.records_replayed, rows[p].speedup_vs_cold,
                  p + 1 == rows.size() ? "" : ",");
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  ],\n"
                "  \"zero_loss\": %s,\n"
                "  \"fingerprints_identical\": %s,\n"
                "  \"queries_identical\": %s,\n"
                "  \"target_speedup\": %.1f,\n"
                "  \"meets_target\": %s\n"
                "}\n",
                zero_loss ? "true" : "false",
                fingerprints_identical ? "true" : "false",
                queries_identical ? "true" : "false", target_speedup,
                meets_target ? "true" : "false");
  json += buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  fs::remove_all(dir, ec);

  // Hard gates. Correctness first (every mode): recovery must land every
  // measured K exactly on the acknowledged chain — anything else is an
  // acknowledged delta lost or a divergent replay — and the recovered
  // repository must answer queries identically to the never-crashed one.
  // Then performance: recovery from a fresh checkpoint must beat the cold
  // rebuild (which also loses the deltas); the ≥2x bar applies to
  // full-size corpora. Replay at larger K is the compaction motivation
  // and is reported, not gated.
  if (!zero_loss || !fingerprints_identical) {
    std::printf("ZERO-LOSS GATE FAILED\n");
    return 1;
  }
  if (!queries_identical) {
    std::printf("QUERY MISMATCH between recovered and never-crashed chain\n");
    return 1;
  }
  if (timing_gate && rows.front().recover_seconds >= best_cold) {
    std::printf("RECOVERY SLOWER THAN COLD REBUILD (%.3f ms vs %.3f ms)\n",
                1e3 * rows.front().recover_seconds, 1e3 * best_cold);
    return 1;
  }
  if (timing_gate && !smoke && !meets_target) {
    std::printf("SPEEDUP TARGET MISSED: %.2fx < %.1fx\n",
                rows.front().speedup_vs_cold, target_speedup);
    return 1;
  }
  std::printf("recovery verified: zero acknowledged-delta loss at every "
              "measured journal depth, %.2fx faster than the cold rebuild "
              "from a fresh checkpoint\n",
              rows.front().speedup_vs_cold);
  return 0;
}
