// Reproduces Fig. 6 of the paper: the effectiveness of the "medium
// clusters" variant under three objective functions that differ only in α
// (0.25 / 0.50 / 0.75). Preservation is measured against the non-clustered
// run of the *same* objective.
//
// Expected shape: the clustering distance measure is path-length based, so
// it preserves best when the objective favors the path hint (α = 0.25) and
// degrades as α grows — "the importance of adapting the clustering
// algorithm to a specific objective function".
#include <cstdio>
#include <vector>

#include "core/preservation.h"
#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Fig. 6: clustered matching under three objective functions",
              *setup);

  const double kAlphas[] = {0.25, 0.50, 0.75};
  const int kPoints = 11;
  std::vector<std::vector<core::PreservationPoint>> curves;
  std::vector<size_t> baseline_counts;

  for (double alpha : kAlphas) {
    core::MatchOptions tree_options = VariantOptions(Variant::kTree);
    tree_options.objective.alpha = alpha;
    core::MatchOptions medium_options = VariantOptions(Variant::kMedium);
    medium_options.objective.alpha = alpha;

    auto baseline = setup->system->Match(setup->personal, tree_options);
    auto clustered = setup->system->Match(setup->personal, medium_options);
    if (!baseline.ok() || !clustered.ok()) {
      std::fprintf(stderr, "match failed for alpha=%.2f\n", alpha);
      return 1;
    }
    baseline_counts.push_back(baseline->mappings.size());
    curves.push_back(core::PreservationCurve(
        baseline->mappings, clustered->mappings, kPaperDelta, 1.0,
        kPoints));
    std::printf("alpha=%.2f: baseline %zu mappings, medium clusters keep "
                "%zu\n",
                alpha, baseline->mappings.size(),
                clustered->mappings.size());
  }

  std::printf("\npreserved fraction per threshold\n");
  std::printf("%-8s %12s %12s %12s\n", "delta", "a=0.25", "a=0.50",
              "a=0.75");
  for (int i = 0; i < kPoints; ++i) {
    std::printf("%-8.3f %12.3f %12.3f %12.3f\n",
                curves[0][static_cast<size_t>(i)].delta,
                curves[0][static_cast<size_t>(i)].preserved,
                curves[1][static_cast<size_t>(i)].preserved,
                curves[2][static_cast<size_t>(i)].preserved);
  }
  std::printf("\npaper shape: the path-heavy objective (a=0.25) is "
              "preserved best; preservation drops as a grows.\n");
  return 0;
}
