// Element-matching engine benchmark: the seed all-pairs sweep
// (MatchElementsReference) versus the candidate-pruned dictionary engine,
// serial and sharded across a thread pool, on synthetic corpora of
// increasing size. The dictionary is built once per corpus outside the
// timed region — the warm, snapshot-resident configuration MatchService
// runs — and every engine's output is checked bit-identical to the seed
// before anything is timed.
//
// Emits a machine-readable JSON trajectory point (default:
// BENCH_element_matching.json) so speedups are tracked across commits.
//
// Usage: bench_element_matching [--smoke] [--out PATH] [corpus_elements...]
//   --smoke   small corpus, one repeat, no speedup gate (CI exercise of the
//             fast path and the JSON emitter)
//   full runs gate on >= 5x for the warm-dictionary multi-thread engine at
//   the default threshold versus the seed path.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "match/element_matching.h"
#include "match/name_dictionary.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xsm {
namespace {

constexpr double kThreshold = 0.5;  // the experiments' default
constexpr double kTargetSpeedup = 5.0;

const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "order(item(price),customer)",
    "customer(name,address(city,zip))",
    "article(title,publisher)",
    "employee(name,department,email)",
    "product(name,price,@id)",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

struct EngineTiming {
  double seconds = 0;
  size_t mapping_elements = 0;
};

bool Identical(const match::ElementMatchingResult& a,
               const match::ElementMatchingResult& b) {
  if (a.distinct_nodes != b.distinct_nodes || a.masks != b.masks ||
      a.sets.size() != b.sets.size()) {
    return false;
  }
  for (size_t i = 0; i < a.sets.size(); ++i) {
    if (a.sets[i].size() != b.sets[i].size()) return false;
    for (size_t j = 0; j < a.sets[i].elements.size(); ++j) {
      if (a.sets[i].elements[j].node != b.sets[i].elements[j].node ||
          a.sets[i].elements[j].score != b.sets[i].elements[j].score) {
        return false;
      }
    }
  }
  return true;
}

/// Runs `fn(personal)` for every personal schema `repeat` times and returns
/// the total wall-clock plus the (per-pass) mapping-element count.
template <typename Fn>
EngineTiming Measure(const std::vector<schema::SchemaTree>& personals,
                     int repeat, Fn&& fn) {
  EngineTiming timing;
  Timer timer;
  for (int r = 0; r < repeat; ++r) {
    timing.mapping_elements = 0;
    for (const schema::SchemaTree& personal : personals) {
      auto result = fn(personal);
      if (!result.ok()) {
        std::fprintf(stderr, "engine failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      timing.mapping_elements += result->total_mapping_elements();
    }
  }
  timing.seconds = timer.ElapsedSeconds();
  return timing;
}

struct ConfigReport {
  size_t target_elements = 0;
  repo::RepositoryStats stats;
  double dictionary_build_seconds = 0;
  EngineTiming seed;
  EngineTiming pruned;
  EngineTiming parallel;
};

void AppendEngineJson(std::string* out, const char* name,
                      const EngineTiming& timing, int repeat,
                      size_t queries_per_pass) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "        \"%s\": {\"seconds\": %.6f, \"per_query_ms\": %.4f, "
                "\"mapping_elements\": %zu}",
                name, timing.seconds,
                1e3 * timing.seconds /
                    (static_cast<double>(repeat) *
                     static_cast<double>(queries_per_pass)),
                timing.mapping_elements);
  out->append(buf);
}

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;

  bool smoke = false;
  std::string out_path = "BENCH_element_matching.json";
  std::vector<size_t> corpus_sizes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      corpus_sizes.push_back(static_cast<size_t>(std::atol(argv[i])));
    }
  }
  if (corpus_sizes.empty()) {
    corpus_sizes = smoke ? std::vector<size_t>{1500}
                         : std::vector<size_t>{2500, 6000, 12000};
  }
  const int repeat = smoke ? 1 : 5;
  const size_t threads = ThreadPool::DefaultThreadCount();
  ThreadPool pool(threads);

  std::vector<schema::SchemaTree> personals;
  for (const char* spec : kSpecs) {
    personals.push_back(*schema::ParseTreeSpec(spec));
  }

  std::printf(
      "element matching: seed sweep vs pruned dictionary engine "
      "(threshold %.2f, %zu personal schemas, repeat=%d, %zu threads)\n\n",
      kThreshold, kNumSpecs, repeat, threads);
  std::printf("%9s %8s %7s %9s  %9s %9s %9s  %8s %8s\n", "elements", "trees",
              "names", "dict ms", "seed ms", "pruned ms", "par ms",
              "pruned x", "par x");

  std::vector<ConfigReport> reports;
  double best_parallel_speedup = 0;
  bool all_identical = true;
  for (size_t target : corpus_sizes) {
    repo::SyntheticRepoOptions repo_options;
    repo_options.target_elements = target;
    repo_options.seed = bench::kExperimentSeed;
    auto forest = repo::GenerateSyntheticRepository(repo_options);
    if (!forest.ok()) {
      std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
      return 1;
    }

    ConfigReport report;
    report.target_elements = target;
    report.stats = repo::ComputeStats(*forest);

    Timer dict_timer;
    match::NameDictionary dictionary = match::NameDictionary::Build(*forest);
    report.dictionary_build_seconds = dict_timer.ElapsedSeconds();

    match::ElementMatchingOptions seed_options;
    seed_options.threshold = kThreshold;

    match::ElementMatchingOptions pruned_options = seed_options;
    pruned_options.dictionary = &dictionary;

    match::ElementMatchingOptions parallel_options = pruned_options;
    parallel_options.pool = &pool;

    // Correctness first: every engine must agree with the seed sweep.
    for (const schema::SchemaTree& personal : personals) {
      auto expected = match::MatchElementsReference(personal, *forest,
                                                    seed_options);
      auto got_pruned = match::MatchElements(personal, *forest,
                                             pruned_options);
      auto got_parallel = match::MatchElements(personal, *forest,
                                               parallel_options);
      if (!expected.ok() || !got_pruned.ok() || !got_parallel.ok() ||
          !Identical(*expected, *got_pruned) ||
          !Identical(*expected, *got_parallel)) {
        std::fprintf(stderr,
                     "ENGINE MISMATCH on corpus %zu, personal %s\n", target,
                     personal.name(0).c_str());
        all_identical = false;
      }
    }

    report.seed = Measure(personals, repeat,
                          [&](const schema::SchemaTree& personal) {
                            return match::MatchElementsReference(
                                personal, *forest, seed_options);
                          });
    report.pruned = Measure(personals, repeat,
                            [&](const schema::SchemaTree& personal) {
                              return match::MatchElements(personal, *forest,
                                                          pruned_options);
                            });
    report.parallel = Measure(personals, repeat,
                              [&](const schema::SchemaTree& personal) {
                                return match::MatchElements(
                                    personal, *forest, parallel_options);
                              });

    const double pruned_x = report.seed.seconds / report.pruned.seconds;
    const double parallel_x = report.seed.seconds / report.parallel.seconds;
    best_parallel_speedup = std::max(best_parallel_speedup, parallel_x);
    std::printf("%9zu %8zu %7zu %9.2f  %9.2f %9.2f %9.2f  %7.2fx %7.2fx\n",
                report.stats.nodes, report.stats.trees,
                report.stats.distinct_names,
                1e3 * report.dictionary_build_seconds,
                1e3 * report.seed.seconds, 1e3 * report.pruned.seconds,
                1e3 * report.parallel.seconds, pruned_x, parallel_x);
    reports.push_back(report);
  }

  // --- JSON trajectory point. ----------------------------------------------
  std::string json;
  json += "{\n";
  json += "  \"bench\": \"element_matching\",\n";
  json += smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"threshold\": %.2f,\n  \"threads\": %zu,\n"
                "  \"repeat\": %d,\n  \"personal_schemas\": %zu,\n",
                kThreshold, threads, repeat, kNumSpecs);
  json += buf;
  json += "  \"configs\": [\n";
  for (size_t c = 0; c < reports.size(); ++c) {
    const ConfigReport& r = reports[c];
    std::snprintf(buf, sizeof(buf),
                  "    {\"target_elements\": %zu, \"nodes\": %zu, "
                  "\"trees\": %zu, \"distinct_names\": %zu,\n"
                  "      \"dictionary_build_seconds\": %.6f,\n"
                  "      \"engines\": {\n",
                  r.target_elements, r.stats.nodes, r.stats.trees,
                  r.stats.distinct_names, r.dictionary_build_seconds);
    json += buf;
    AppendEngineJson(&json, "seed", r.seed, repeat, kNumSpecs);
    json += ",\n";
    AppendEngineJson(&json, "pruned", r.pruned, repeat, kNumSpecs);
    json += ",\n";
    AppendEngineJson(&json, "pruned_parallel", r.parallel, repeat, kNumSpecs);
    json += "\n      },\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"speedup_pruned_vs_seed\": %.3f,\n"
                  "      \"speedup_parallel_vs_seed\": %.3f}%s\n",
                  r.seed.seconds / r.pruned.seconds,
                  r.seed.seconds / r.parallel.seconds,
                  c + 1 < reports.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"results_identical_to_seed\": %s,\n"
                "  \"best_parallel_speedup_vs_seed\": %.3f,\n"
                "  \"target_speedup\": %.1f,\n  \"meets_target\": %s\n}\n",
                all_identical ? "true" : "false", best_parallel_speedup,
                kTargetSpeedup,
                best_parallel_speedup >= kTargetSpeedup ? "true" : "false");
  json += buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (!all_identical) {
    std::printf("RESULT MISMATCH between engines\n");
    return 1;
  }
  std::printf(
      "warm-dictionary multi-thread vs seed: %.2fx (target >= %.0fx) %s\n",
      best_parallel_speedup, kTargetSpeedup,
      smoke ? "(smoke: not gated)"
            : (best_parallel_speedup >= kTargetSpeedup ? "OK"
                                                       : "BELOW TARGET"));
  if (!smoke && best_parallel_speedup < kTargetSpeedup) return 1;
  return 0;
}
