// Reproduces Fig. 4 of the paper: the cluster-size distribution produced by
// three reclustering strategies — no reclustering, join, join & remove —
// using the bucket scheme [1,1] [2,3] [4,7] ... [128,255].
//
// Expected shape (paper: 579 / 333 / 243 clusters): without reclustering
// the majority of clusters is tiny ("starved" centroids competing for the
// same elements); join absorbs most of them into neighbors; join & remove
// eliminates the remaining tiny clusters.
#include <cstdio>
#include <vector>

#include "experiment_common.h"
#include "util/histogram.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Fig. 4: cluster size distribution per reclustering strategy",
              *setup);
  ClusteringInputs inputs = MakeClusteringInputs(*setup);
  std::printf("clustering %zu mapping elements\n\n", inputs.points.size());

  struct Strategy {
    const char* name;
    bool join;
    bool remove;
  };
  const Strategy kStrategies[] = {
      {"no reclustering", false, false},
      {"join", true, false},
      {"join & remove", true, true},
  };

  label::ForestIndex index = label::ForestIndex::Build(setup->repository);
  cluster::KMeansClusterer clusterer(&setup->repository, &index);

  const int kBuckets = 8;  // [1,1] .. [128,255], as in the paper.
  std::vector<PowerHistogram> histograms;
  std::vector<size_t> totals;

  for (const Strategy& strategy : kStrategies) {
    cluster::KMeansOptions options;
    options.join_reclustering = strategy.join;
    options.join_distance = 3;  // the "medium clusters" variant
    options.remove_reclustering = strategy.remove;
    options.min_cluster_size = 4;
    auto result =
        clusterer.Cluster(inputs.points, inputs.me_set_sizes, options);
    if (!result.ok()) {
      std::fprintf(stderr, "clustering failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PowerHistogram histogram(kBuckets);
    size_t pair_total = 0;
    for (const cluster::Cluster& c : result->clusters) {
      size_t pairs = 0;
      for (int32_t m : c.members) {
        pairs += static_cast<size_t>(__builtin_popcount(
            inputs.points[static_cast<size_t>(m)].personal_mask));
      }
      histogram.Add(pairs);
      pair_total += pairs;
    }
    histograms.push_back(histogram);
    totals.push_back(result->clusters.size());
    std::printf("%-16s -> %4zu clusters (%d iterations, %zu joins, "
                "%zu removed, %zu elements unassigned)\n",
                strategy.name, result->clusters.size(),
                result->stats.iterations, result->stats.clusters_joined,
                result->stats.clusters_removed,
                result->stats.unassigned_points);
  }

  std::printf("\nnumber of clusters per size bucket "
              "(mapping elements per cluster)\n");
  std::printf("%-12s", "bucket");
  for (const Strategy& s : kStrategies) std::printf(" %18s", s.name);
  std::printf("\n");
  for (int b = 0; b < kBuckets; ++b) {
    std::printf("%-12s", PowerHistogram::BucketLabel(b).c_str());
    for (size_t s = 0; s < histograms.size(); ++s) {
      std::printf(" %18llu", static_cast<unsigned long long>(
                                 histograms[s].BucketCount(b)));
    }
    std::printf("\n");
  }
  std::printf("%-12s", "total");
  for (size_t s = 0; s < histograms.size(); ++s) {
    std::printf(" %18zu", totals[s]);
  }
  std::printf("\n");
  return 0;
}
