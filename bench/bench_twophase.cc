// Extension experiment: the paper's §2.3 *non-generic* clustered matching
// technique — "element matchers are split in two groups ... The second
// group of matchers is used after the clustering step by considering each
// cluster individually. We expect that some structure element matchers
// would have less work, and consequently an improved efficiency, if being
// applied on clusters, rather than on the whole repository."
//
// Compares structural-matcher work and wall time between:
//   global    — structural matchers score every mapping element (the
//               non-clustered placement);
//   two-phase — structural matchers score only elements inside useful
//               clusters (the paper's proposal).
#include <cstdio>

#include "experiment_common.h"
#include "match/structural_matcher.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Extension: two-phase (structural) clustered matching",
              *setup);

  struct Row {
    const char* name;
    bool within_clusters;
  };
  const Row kRows[] = {
      {"global (all elements)", false},
      {"two-phase (in clusters)", true},
  };

  std::printf("%-26s %22s %16s %12s\n", "placement",
              "structural evaluations", "struct time (s)", "mappings");
  uint64_t global_evals = 0;
  for (const Row& row : kRows) {
    core::MatchOptions options = VariantOptions(Variant::kMedium);
    options.structural_matcher =
        &match::CompositeStructuralMatcher::Default();
    options.structural_weight = 0.4;
    options.structural_within_clusters_only = row.within_clusters;
    auto result = setup->system->Match(setup->personal, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", row.name,
                   result.status().ToString().c_str());
      return 1;
    }
    if (!row.within_clusters) {
      global_evals = result->stats.structural_evaluations;
    }
    double saving =
        result->stats.structural_evaluations > 0 && global_evals > 0
            ? static_cast<double>(global_evals) /
                  static_cast<double>(result->stats.structural_evaluations)
            : 1.0;
    std::printf("%-26s %22llu %16.4f %12zu   (%.1fx less work)\n", row.name,
                static_cast<unsigned long long>(
                    result->stats.structural_evaluations),
                result->stats.time_structural_seconds,
                result->mappings.size(), saving);
  }
  std::printf("\nexpected shape: the two-phase placement scores only the "
              "elements that survived\nclustering into useful clusters — "
              "strictly less structural work.\n");
  return 0;
}
