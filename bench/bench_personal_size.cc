// Extension experiment: personal-schema size (paper §7 lists "matching
// with larger personal schemas" as a challenge; §2.2 gives the search
// space as O(|ME_n|^|Ns|)).
//
// Sweeps personal schemas from 2 to 6 nodes over the same repository and
// reports search-space size and generator work for the non-clustered
// baseline vs medium clusters. Expected shape: the baseline explodes
// roughly exponentially in |Ns| while the clustered load stays orders of
// magnitude lower, and the gap widens.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Extension: scaling the personal schema size", *setup);

  // Nested growth of the experiment's schema: every next schema adds one
  // node that still has matches in the repository vocabulary.
  const std::vector<std::string> kSpecs = {
      "name(address)",
      "name(address,email)",
      "name(address,email,phone)",
      "name(address(city),email,phone)",
      "name(address(city,zip),email,phone)",
  };

  std::printf("%-34s | %13s %13s | %13s %13s | %9s\n", "personal schema",
              "space(tree)", "partials", "space(med)", "partials",
              "reduction");
  for (const std::string& spec : kSpecs) {
    auto personal = schema::ParseTreeSpec(spec);
    if (!personal.ok()) {
      std::fprintf(stderr, "bad spec %s\n", spec.c_str());
      return 1;
    }
    core::MatchOptions tree_options = VariantOptions(Variant::kTree);
    core::MatchOptions medium_options = VariantOptions(Variant::kMedium);
    // Cap runaway exhaustive work on the largest schemas.
    tree_options.generator.max_partial_mappings = 50'000'000;
    medium_options.generator.max_partial_mappings = 50'000'000;

    auto tree = setup->system->Match(*personal, tree_options);
    auto medium = setup->system->Match(*personal, medium_options);
    if (!tree.ok() || !medium.ok()) {
      std::fprintf(stderr, "match failed for %s\n", spec.c_str());
      return 1;
    }
    double reduction =
        medium->stats.search_space > 0
            ? tree->stats.search_space / medium->stats.search_space
            : 0;
    std::printf("%-34s | %13.3g %13llu | %13.3g %13llu | %8.1fx%s\n",
                spec.c_str(), tree->stats.search_space,
                static_cast<unsigned long long>(
                    tree->stats.generator.partial_mappings),
                medium->stats.search_space,
                static_cast<unsigned long long>(
                    medium->stats.generator.partial_mappings),
                reduction,
                tree->stats.generator.truncated ? "  (baseline capped)"
                                                : "");
  }
  std::printf("\nexpected shape: the baseline grows ~exponentially with "
              "|Ns| (O(|ME|^|Ns|), paper §2.2); clustering keeps the "
              "per-cluster spaces small, so the reduction factor widens.\n");
  return 0;
}
