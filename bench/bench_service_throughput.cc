// Service throughput harness: queries/sec of service::MatchService over a
// synthetic repository, at 1/4/8 worker threads, with a cold cluster cache
// (every query pays element matching + clustering) versus a warm one (the
// cluster state is served from the ClusterIndexCache).
//
// This measures the PR's architectural claim: amortizing the paper's
// preprocessing across queries plus concurrent batch execution should give
// warm-cache multi-thread throughput >= 2x the cold-cache single-thread
// baseline.
//
// Usage: bench_service_throughput [target_elements] [repeat]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "repo/synthetic.h"
#include "service/match_service.h"
#include "util/timer.h"

namespace xsm {
namespace {

const char* kSpecs[] = {
    "name(address,email)",
    "person(name,phone)",
    "book(title,author)",
    "order(item(price),customer)",
    "customer(name,address(city,zip))",
    "article(title,publisher)",
    "employee(name,department,email)",
    "product(name,price,@id)",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);
constexpr size_t kCopies = 3;  // each spec appears this many times per batch

std::vector<service::MatchQuery> MakeQueries() {
  std::vector<service::MatchQuery> queries;
  for (size_t copy = 0; copy < kCopies; ++copy) {
    for (size_t s = 0; s < kNumSpecs; ++s) {
      service::MatchQuery query;
      query.id = "q" + std::to_string(copy) + "-" + std::to_string(s);
      query.personal = *schema::ParseTreeSpec(kSpecs[s]);
      query.options.delta = 0.7;
      query.options.top_n = 10;
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

/// Runs `repeat` batches and returns queries/sec over all of them.
double MeasureBatches(service::MatchService* service,
                      const std::vector<service::MatchQuery>& queries,
                      int repeat) {
  Timer timer;
  for (int r = 0; r < repeat; ++r) {
    auto results = service->MatchBatch(queries).results;
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  double seconds = timer.ElapsedSeconds();
  return static_cast<double>(queries.size()) * repeat / seconds;
}

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;

  size_t target_elements =
      argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 6000;
  int repeat = argc > 2 ? std::atoi(argv[2]) : 3;

  repo::SyntheticRepoOptions repo_options;
  repo_options.target_elements = target_elements;
  repo_options.seed = bench::kExperimentSeed;
  auto forest = repo::GenerateSyntheticRepository(repo_options);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }

  auto snapshot = service::RepositorySnapshot::Create(std::move(*forest));
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }

  std::vector<service::MatchQuery> queries = MakeQueries();
  std::printf(
      "service throughput: %zu elements / %zu trees, %zu queries per batch "
      "(%zu distinct personal schemas), repeat=%d\n\n",
      (*snapshot)->total_nodes(), (*snapshot)->num_trees(), queries.size(),
      kNumSpecs, repeat);

  std::printf("%8s  %14s  %14s  %8s\n", "threads", "cold qps", "warm qps",
              "warm/cold");

  const size_t thread_counts[] = {1, 4, 8};
  double cold_single = 0;
  double warm_best = 0;
  for (size_t threads : thread_counts) {
    // Cold: cache disabled, every query reruns matching + clustering.
    service::MatchServiceOptions cold_options;
    cold_options.num_threads = threads;
    cold_options.cluster_cache_capacity = 0;
    service::MatchService cold_service(*snapshot, cold_options);
    double cold_qps = MeasureBatches(&cold_service, queries, repeat);

    // Warm: one priming batch fills the cache, then measure.
    service::MatchServiceOptions warm_options;
    warm_options.num_threads = threads;
    service::MatchService warm_service(*snapshot, warm_options);
    MeasureBatches(&warm_service, queries, 1);
    double warm_qps = MeasureBatches(&warm_service, queries, repeat);

    if (threads == 1) cold_single = cold_qps;
    if (warm_qps > warm_best) warm_best = warm_qps;
    std::printf("%8zu  %14.1f  %14.1f  %7.2fx\n", threads, cold_qps,
                warm_qps, warm_qps / cold_qps);
  }

  double speedup = warm_best / cold_single;
  std::printf(
      "\nwarm multi-thread vs cold single-thread: %.2fx (target >= 2x) %s\n",
      speedup, speedup >= 2.0 ? "OK" : "BELOW TARGET");
  return speedup >= 2.0 ? 0 : 1;
}
