// Ablation: cluster processing order (paper §7 future work (2): "ordering
// the clusters — a measure of cluster's quality can be used to decide
// which clusters have better chances to produce good mappings. In this
// way, the time-to-first good mapping can be improved").
//
// Compares natural (repository) order with quality-descending order on the
// medium-clusters variant, measuring work-to-first-mapping. Expected
// shape: identical result sets; quality ordering reaches its first mapping
// after fewer clusters / partial mappings.
#include <cstdio>

#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Ablation: cluster ordering / time-to-first-mapping "
              "(delta = 0.95)",
              *setup);

  struct Row {
    const char* name;
    core::ClusterOrder order;
  };
  const Row kRows[] = {
      {"natural (paper)", core::ClusterOrder::kNatural},
      {"quality-desc", core::ClusterOrder::kQualityDescending},
  };

  std::printf("%-18s %14s %22s %22s %12s\n", "order", "mappings",
              "clusters to first", "partials to first", "best delta");
  for (const Row& row : kRows) {
    core::MatchOptions options = VariantOptions(Variant::kMedium);
    // Use a very selective threshold so only a handful of clusters can
    // produce mappings at all — the regime where ordering pays off.
    options.delta = 0.95;
    options.cluster_order = row.order;
    auto result = setup->system->Match(setup->personal, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", row.name,
                   result.status().ToString().c_str());
      return 1;
    }
    double best =
        result->mappings.empty() ? 0.0 : result->mappings.front().delta;
    std::printf("%-18s %14zu %22zu %22llu %12.4f\n", row.name,
                result->mappings.size(),
                result->stats.clusters_until_first_mapping,
                static_cast<unsigned long long>(
                    result->stats.partials_until_first_mapping),
                best);
  }
  std::printf("\nexpected shape: same result sets; the quality order finds "
              "its first mapping after far fewer clusters.\n");
  return 0;
}
