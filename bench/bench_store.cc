// Snapshot store benchmark: cold boot versus warm boot — the restart cost
// the store exists to eliminate.
//
// Cold boot is measured on both restart paths a deployment has without the
// store:
//   - raw XSD text (the paper-world corpus shape): parse every .xsd file,
//     then rebuild TreeIndex labelings, NameDictionary and fingerprints
//   - the forest text snapshot (xsm_cli gen/convert output): cheaper parse,
//     same full index/dictionary rebuild
// Warm boot is store::LoadSnapshotFromFile — CRC verification, decode, and
// the end-to-end fingerprint re-check included; nothing cheats. The XSD
// corpus is emitted by an exact round-trip writer, so all three paths boot
// the *same repository* (enforced by fingerprint equality, a hard gate).
//
// Hard gates: fingerprints identical across every boot path, sampled
// queries identical between warm and rebuilt snapshots, warm load faster
// than both cold paths in every mode, and ≥5x versus the raw-XSD cold boot
// in full mode (smoke corpora are too small for stable ratios).
//
// Emits a machine-readable JSON trajectory point (default:
// BENCH_store.json) so boot latencies are tracked across commits.
//
// Usage: bench_store [--smoke] [--no-timing-gate] [--out PATH]
//                    [corpus_elements]
//   --smoke   small corpus, fewer repeats (CI exercise of the store path
//             and the JSON emitter); correctness gates still apply.
//   --no-timing-gate
//             keep every correctness gate but do not fail on the timing
//             comparisons — for instrumented builds (ASan/UBSan CI jobs)
//             where timing ratios mean nothing.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "repo/loader.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "schema/serialization.h"
#include "service/match_service.h"
#include "service/repository_snapshot.h"
#include "store/snapshot_store.h"
#include "util/timer.h"

namespace xsm {
namespace {

const char* kSpecs[] = {
    "name(address,email)",
    "book(title,author)",
    "customer(name,address(city,zip))",
};
constexpr size_t kNumSpecs = sizeof(kSpecs) / sizeof(kSpecs[0]);

// --- Exact round-trip XSD writer. -------------------------------------------
// Emits one schema tree as an xs:schema document that the repo's XSD
// parser expands back into the identical tree: child order is preserved by
// interleaving single-run xs:sequence groups with xs:attribute entries in
// document order, flags map to minOccurs/maxOccurs/use, and datatypes to
// type= attributes.

void AppendXmlEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '&': *out += "&amp;"; break;
      case '<': *out += "&lt;"; break;
      case '>': *out += "&gt;"; break;
      case '"': *out += "&quot;"; break;
      default: out->push_back(c);
    }
  }
}

void EmitXsdElement(const schema::SchemaTree& tree, schema::NodeId n,
                    int indent, std::string* out) {
  const schema::NodeProperties& props = tree.props(n);
  out->append(static_cast<size_t>(indent), ' ');
  *out += "<xs:element name=\"";
  AppendXmlEscaped(out, props.name);
  *out += '"';
  if (!props.datatype.empty()) {
    *out += " type=\"";
    AppendXmlEscaped(out, props.datatype);
    *out += '"';
  }
  if (n != tree.root()) {
    if (props.optional) *out += " minOccurs=\"0\"";
    if (props.repeatable) *out += " maxOccurs=\"unbounded\"";
  }
  const std::vector<schema::NodeId>& children = tree.children(n);
  if (children.empty()) {
    *out += "/>\n";
    return;
  }
  *out += ">\n";
  out->append(static_cast<size_t>(indent + 2), ' ');
  *out += "<xs:complexType>\n";
  bool in_sequence = false;
  auto close_sequence = [&] {
    if (!in_sequence) return;
    out->append(static_cast<size_t>(indent + 4), ' ');
    *out += "</xs:sequence>\n";
    in_sequence = false;
  };
  for (schema::NodeId child : children) {
    if (tree.props(child).kind == schema::NodeKind::kAttribute) {
      close_sequence();
      const schema::NodeProperties& attr = tree.props(child);
      out->append(static_cast<size_t>(indent + 4), ' ');
      *out += "<xs:attribute name=\"";
      AppendXmlEscaped(out, attr.name);
      *out += '"';
      if (!attr.datatype.empty()) {
        *out += " type=\"";
        AppendXmlEscaped(out, attr.datatype);
        *out += '"';
      }
      if (!attr.optional) *out += " use=\"required\"";
      *out += "/>\n";
    } else {
      if (!in_sequence) {
        out->append(static_cast<size_t>(indent + 4), ' ');
        *out += "<xs:sequence>\n";
        in_sequence = true;
      }
      EmitXsdElement(tree, child, indent + 6, out);
    }
  }
  close_sequence();
  out->append(static_cast<size_t>(indent + 2), ' ');
  *out += "</xs:complexType>\n";
  out->append(static_cast<size_t>(indent), ' ');
  *out += "</xs:element>\n";
}

std::string TreeToXsd(const schema::SchemaTree& tree) {
  std::string out =
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n";
  EmitXsdElement(tree, tree.root(), 2, &out);
  out += "</xs:schema>\n";
  return out;
}

/// Rebuilds `tree` with pre-order node ids. The synthetic generator grows
/// trees by attaching nodes to random parents, so its insertion order
/// interleaves subtrees; an XSD parse necessarily re-encounters nodes in
/// document (pre-)order. Normalizing the corpus up front makes every boot
/// path produce the bit-identical forest — which the fingerprint gate then
/// actually proves.
schema::SchemaTree NormalizeToPreOrder(const schema::SchemaTree& tree) {
  schema::SchemaTree normalized;
  std::vector<schema::NodeId> new_id(tree.size(), schema::kInvalidNode);
  for (schema::NodeId n : tree.PreOrder()) {
    schema::NodeId parent = tree.parent(n);
    new_id[static_cast<size_t>(n)] = normalized.AddNode(
        parent == schema::kInvalidNode
            ? schema::kInvalidNode
            : new_id[static_cast<size_t>(parent)],
        schema::NodeProperties(tree.props(n)));
  }
  return normalized;
}

/// Ranks/scores of one query against one snapshot, for identity checks.
std::vector<std::pair<schema::TreeId, double>> QueryDigest(
    const std::shared_ptr<const service::RepositorySnapshot>& snapshot,
    const char* spec) {
  service::MatchService service(snapshot);
  service::MatchQuery query;
  query.id = std::string("store-") + spec;
  query.personal = *schema::ParseTreeSpec(spec);
  query.options.delta = 0.6;
  query.options.top_n = 10;
  auto result = service.Match(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<std::pair<schema::TreeId, double>> digest;
  for (const auto& mapping : result->mappings) {
    digest.emplace_back(mapping.tree, mapping.delta);
  }
  return digest;
}

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;
  namespace fs = std::filesystem;

  bool smoke = false;
  bool timing_gate = true;
  std::string out_path = "BENCH_store.json";
  size_t elements = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-timing-gate") == 0) {
      timing_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      elements = static_cast<size_t>(std::atol(argv[i]));
    }
  }
  if (elements == 0) elements = smoke ? 1500 : 12000;
  const int repeats = smoke ? 3 : 7;

  repo::SyntheticRepoOptions repo_options;
  repo_options.target_elements = elements;
  repo_options.seed = bench::kExperimentSeed;
  auto generated = repo::GenerateSyntheticRepository(repo_options);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  std::optional<schema::SchemaForest> forest;
  forest.emplace();
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(generated->num_trees()); ++t) {
    forest->AddTree(NormalizeToPreOrder(generated->tree(t)),
                    generated->source(t));
  }

  const fs::path dir =
      fs::temp_directory_path() / "bench_store_corpus";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  const std::string text_path = (dir / "repository.forest").string();
  const std::string snap_path = (dir / "repository.snap").string();
  const fs::path xsd_dir = dir / "xsd";
  fs::create_directories(xsd_dir);

  // The raw-XSD corpus a paper-world restart would re-parse: one document
  // per tree, zero-padded so directory order equals tree order.
  uintmax_t xsd_bytes = 0;
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest->num_trees()); ++t) {
    char name[32];
    std::snprintf(name, sizeof(name), "tree_%05d.xsd", t);
    std::string xsd = TreeToXsd(forest->tree(t));
    xsd_bytes += xsd.size();
    std::ofstream out(xsd_dir / name, std::ios::binary);
    out << xsd;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", name);
      return 1;
    }
  }

  // The forest-text alternative (xsm_cli gen/convert output).
  Status saved_text = schema::SaveForestToFile(*forest, text_path);
  if (!saved_text.ok()) {
    std::fprintf(stderr, "%s\n", saved_text.ToString().c_str());
    return 1;
  }

  // Reference snapshot + the persisted binary the warm path loads.
  auto reference = service::RepositorySnapshot::Create(std::move(*forest));
  if (!reference.ok()) {
    std::fprintf(stderr, "%s\n", reference.status().ToString().c_str());
    return 1;
  }
  Timer save_timer;
  auto saved = store::SaveSnapshotToFile(**reference, snap_path);
  double save_seconds = save_timer.ElapsedSeconds();
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "snapshot store: cold parse+index boot vs warm load "
      "(%zu elements / %zu trees, repeat=%d)\n\n",
      (*reference)->total_nodes(), (*reference)->num_trees(), repeats);

  // --- Cold boot A: raw XSD corpus. -----------------------------------------
  double best_xsd_parse = 0, best_xsd_build = 0, best_xsd = 0;
  uint64_t xsd_fingerprint = 0;
  for (int r = 0; r < repeats; ++r) {
    Timer parse_timer;
    schema::SchemaForest loaded_forest;
    auto report =
        repo::LoadRepositoryFromDirectory(xsd_dir.string(), &loaded_forest);
    double parse_seconds = parse_timer.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    if (report->files_failed != 0) {
      std::fprintf(stderr, "XSD corpus: %zu files failed to parse\n",
                   report->files_failed);
      return 1;
    }
    Timer build_timer;
    auto snapshot =
        service::RepositorySnapshot::Create(std::move(loaded_forest));
    double build_seconds = build_timer.ElapsedSeconds();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
      return 1;
    }
    xsd_fingerprint = (*snapshot)->fingerprint();
    if (r == 0 || parse_seconds + build_seconds < best_xsd) {
      best_xsd_parse = parse_seconds;
      best_xsd_build = build_seconds;
      best_xsd = parse_seconds + build_seconds;
    }
  }

  // --- Cold boot B: forest text snapshot. -----------------------------------
  double best_text_parse = 0, best_text_build = 0, best_text = 0;
  uint64_t text_fingerprint = 0;
  for (int r = 0; r < repeats; ++r) {
    Timer parse_timer;
    auto loaded_forest = schema::LoadForestFromFile(text_path);
    double parse_seconds = parse_timer.ElapsedSeconds();
    if (!loaded_forest.ok()) {
      std::fprintf(stderr, "%s\n",
                   loaded_forest.status().ToString().c_str());
      return 1;
    }
    Timer build_timer;
    auto snapshot =
        service::RepositorySnapshot::Create(std::move(*loaded_forest));
    double build_seconds = build_timer.ElapsedSeconds();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
      return 1;
    }
    text_fingerprint = (*snapshot)->fingerprint();
    if (r == 0 || parse_seconds + build_seconds < best_text) {
      best_text_parse = parse_seconds;
      best_text_build = build_seconds;
      best_text = parse_seconds + build_seconds;
    }
  }

  // --- Warm boot: load the persisted snapshot. ------------------------------
  double best_warm = 0;
  std::shared_ptr<const service::RepositorySnapshot> warm_snapshot;
  for (int r = 0; r < repeats; ++r) {
    Timer warm_timer;
    auto snapshot = store::LoadSnapshotFromFile(snap_path);
    double warm_seconds = warm_timer.ElapsedSeconds();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
      return 1;
    }
    warm_snapshot = *snapshot;
    if (r == 0 || warm_seconds < best_warm) best_warm = warm_seconds;
  }

  const double speedup_vs_xsd = best_xsd / best_warm;
  const double speedup_vs_text = best_text / best_warm;
  // Every boot path must arrive at the same repository content.
  const bool fingerprint_ok =
      warm_snapshot->fingerprint() == (*reference)->fingerprint() &&
      warm_snapshot->fingerprint() == saved->fingerprint &&
      warm_snapshot->fingerprint() == xsd_fingerprint &&
      warm_snapshot->fingerprint() == text_fingerprint;

  auto probe = store::ProbeSnapshotFile(snap_path);
  const bool probe_ok = probe.ok() &&
                        probe->fingerprint == saved->fingerprint &&
                        probe->generation == (*reference)->generation() &&
                        probe->total_bytes == saved->total_bytes;

  // Query-for-query identity between the loaded and the rebuilt snapshot.
  bool queries_identical = true;
  for (size_t s = 0; s < kNumSpecs; ++s) {
    queries_identical =
        queries_identical &&
        QueryDigest(warm_snapshot, kSpecs[s]) ==
            QueryDigest(*reference, kSpecs[s]);
  }

  const uintmax_t text_bytes = fs::file_size(text_path);
  const uintmax_t snap_bytes = fs::file_size(snap_path);

  std::printf("%-30s %10.3f ms  (parse %.3f + index/dictionary %.3f)\n",
              "cold boot (raw XSD corpus):", 1e3 * best_xsd,
              1e3 * best_xsd_parse, 1e3 * best_xsd_build);
  std::printf("%-30s %10.3f ms  (parse %.3f + index/dictionary %.3f)\n",
              "cold boot (forest text):", 1e3 * best_text,
              1e3 * best_text_parse, 1e3 * best_text_build);
  std::printf("%-30s %10.3f ms  (%.2fx vs XSD, %.2fx vs text)\n",
              "warm boot (snapshot load):", 1e3 * best_warm, speedup_vs_xsd,
              speedup_vs_text);
  std::printf("%-30s %10.3f ms\n", "save latency:", 1e3 * save_seconds);
  std::printf("%-30s %10.1f KiB XSD, %.1f KiB text, %.1f KiB snapshot\n",
              "footprint:", xsd_bytes / 1024.0, text_bytes / 1024.0,
              snap_bytes / 1024.0);
  std::printf("fingerprints (all paths): %s | probe: %s | queries "
              "identical: %s\n",
              fingerprint_ok ? "ok" : "MISMATCH",
              probe_ok ? "ok" : "MISMATCH",
              queries_identical ? "yes" : "NO");

  // --- JSON trajectory point. -----------------------------------------------
  const double target_speedup = 5.0;
  const bool meets_target = speedup_vs_xsd >= target_speedup;
  std::string json;
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"store\",\n"
      "  \"mode\": \"%s\",\n"
      "  \"elements\": %zu,\n  \"trees\": %zu,\n  \"repeat\": %d,\n"
      "  \"cold_xsd\": {\"parse_ms\": %.4f, \"build_ms\": %.4f, "
      "\"total_ms\": %.4f},\n"
      "  \"cold_text\": {\"parse_ms\": %.4f, \"build_ms\": %.4f, "
      "\"total_ms\": %.4f},\n"
      "  \"warm\": {\"load_ms\": %.4f},\n"
      "  \"save_ms\": %.4f,\n"
      "  \"xsd_bytes\": %llu,\n  \"text_bytes\": %llu,\n"
      "  \"snapshot_bytes\": %llu,\n"
      "  \"speedup_warm_vs_cold_xsd\": %.3f,\n"
      "  \"speedup_warm_vs_cold_text\": %.3f,\n"
      "  \"fingerprint_roundtrip\": %s,\n"
      "  \"probe_consistent\": %s,\n"
      "  \"queries_identical\": %s,\n"
      "  \"target_speedup\": %.1f,\n"
      "  \"meets_target\": %s\n"
      "}\n",
      smoke ? "smoke" : "full", (*reference)->total_nodes(),
      (*reference)->num_trees(), repeats, 1e3 * best_xsd_parse,
      1e3 * best_xsd_build, 1e3 * best_xsd, 1e3 * best_text_parse,
      1e3 * best_text_build, 1e3 * best_text, 1e3 * best_warm,
      1e3 * save_seconds, static_cast<unsigned long long>(xsd_bytes),
      static_cast<unsigned long long>(text_bytes),
      static_cast<unsigned long long>(snap_bytes), speedup_vs_xsd,
      speedup_vs_text, fingerprint_ok ? "true" : "false",
      probe_ok ? "true" : "false", queries_identical ? "true" : "false",
      target_speedup, meets_target ? "true" : "false");
  json = buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  fs::remove_all(dir, ec);

  // Hard gates. Correctness first (every mode): the loaded snapshot must
  // provably be the saved one and every boot path the same repository.
  // Then performance: a warm boot that does not beat both cold rebuilds
  // means the store lost its reason to exist; the ≥5x bar (against the
  // raw-XSD restart the motivation names) applies to full-size corpora.
  if (!fingerprint_ok || !probe_ok) {
    std::printf("FINGERPRINT MISMATCH across boot paths\n");
    return 1;
  }
  if (!queries_identical) {
    std::printf("QUERY MISMATCH between loaded and rebuilt snapshot\n");
    return 1;
  }
  if (timing_gate && (best_warm >= best_xsd || best_warm >= best_text)) {
    std::printf("WARM LOAD SLOWER THAN COLD REBUILD (%.3f ms vs XSD %.3f "
                "ms / text %.3f ms)\n",
                1e3 * best_warm, 1e3 * best_xsd, 1e3 * best_text);
    return 1;
  }
  if (timing_gate && !smoke && !meets_target) {
    std::printf("SPEEDUP TARGET MISSED: %.2fx < %.1fx\n", speedup_vs_xsd,
                target_speedup);
    return 1;
  }
  std::printf("store verified: warm load %.2fx faster than the raw-XSD "
              "cold boot (%.2fx vs forest text), fingerprints and queries "
              "identical\n",
              speedup_vs_xsd, speedup_vs_text);
  return 0;
}
