#include "experiment_common.h"

#include <cstdio>

#include "util/string_util.h"

namespace xsm::bench {

std::unique_ptr<ExperimentSetup> MakeCanonicalSetup(size_t target_elements,
                                                    uint64_t seed) {
  auto setup = std::make_unique<ExperimentSetup>();
  repo::SyntheticRepoOptions options;
  options.target_elements = target_elements;
  options.seed = seed;
  auto forest = repo::GenerateSyntheticRepository(options);
  // The generator only fails on invalid options; the defaults are valid.
  setup->repository = std::move(*forest);
  setup->personal = *schema::ParseTreeSpec("name(address,email)");
  setup->system = std::make_unique<core::Bellflower>(&setup->repository);
  return setup;
}

const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kSmall:
      return "small";
    case Variant::kMedium:
      return "medium";
    case Variant::kLarge:
      return "large";
    case Variant::kTree:
      return "tree";
  }
  return "?";
}

core::MatchOptions VariantOptions(Variant variant) {
  core::MatchOptions options;
  options.element.threshold = 0.5;
  options.objective.alpha = 0.5;
  // K follows the paper's derivation ("determined using other constraints
  // in the system, e.g., the maximum length of a path"): k_norm <= 0 lets
  // Bellflower resolve K = max(1, repository diameter - 1).
  options.objective.k_norm = 0.0;
  options.delta = kPaperDelta;
  options.kmeans.min_cluster_size = 4;
  options.kmeans.max_iterations = 25;
  switch (variant) {
    case Variant::kSmall:
      options.clustering = core::ClusteringMode::kKMeans;
      options.kmeans.join_distance = 2;
      break;
    case Variant::kMedium:
      options.clustering = core::ClusteringMode::kKMeans;
      options.kmeans.join_distance = 3;
      break;
    case Variant::kLarge:
      options.clustering = core::ClusteringMode::kKMeans;
      options.kmeans.join_distance = 4;
      break;
    case Variant::kTree:
      options.clustering = core::ClusteringMode::kTreeClusters;
      break;
  }
  return options;
}

ClusteringInputs MakeClusteringInputs(const ExperimentSetup& setup,
                                      double element_threshold) {
  ClusteringInputs inputs;
  auto matching = match::MatchElements(setup.personal, setup.repository,
                                       {.threshold = element_threshold});
  if (!matching.ok()) return inputs;  // empty: harnesses print zero rows
  inputs.points.reserve(matching->distinct_nodes.size());
  for (size_t i = 0; i < matching->distinct_nodes.size(); ++i) {
    inputs.points.push_back(
        {matching->distinct_nodes[i], matching->masks[i]});
  }
  inputs.me_set_sizes.resize(setup.personal.size());
  for (size_t i = 0; i < setup.personal.size(); ++i) {
    inputs.me_set_sizes[i] = matching->sets[i].size();
  }
  return inputs;
}

void PrintBanner(const char* experiment, const ExperimentSetup& setup) {
  repo::RepositoryStats stats = repo::ComputeStats(setup.repository);
  std::printf("== %s ==\n", experiment);
  std::printf(
      "repository: %zu elements over %zu trees (avg %.1f, max %zu, "
      "depth %d, %zu distinct names)\n",
      stats.nodes, stats.trees, stats.avg_tree_size, stats.max_tree_size,
      stats.max_depth, stats.distinct_names);
  std::printf("personal schema: %s\n",
              schema::ToTreeSpec(setup.personal).c_str());
  std::printf("objective: delta >= %.2f, alpha = 0.5, K = %.0f\n\n",
              kPaperDelta,
              setup.system->ResolveK(objective::ObjectiveParams{}));
}

}  // namespace xsm::bench
