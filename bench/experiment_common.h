// Shared setup for the paper-reproduction harnesses (§5 experiment):
// personal schema name(address,email) matched against a repository of
// ~9759 elements with δ = 0.75, plus the four clustering variants
// (small / medium / large join thresholds and the non-clustered tree
// baseline).
#ifndef XSM_BENCH_EXPERIMENT_COMMON_H_
#define XSM_BENCH_EXPERIMENT_COMMON_H_

#include <memory>
#include <string>

#include "core/bellflower.h"
#include "repo/synthetic.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"

namespace xsm::bench {

/// The paper's §5 experiment constants.
inline constexpr size_t kPaperRepositoryElements = 9759;
inline constexpr double kPaperDelta = 0.75;
inline constexpr uint64_t kExperimentSeed = 2006;

/// Owns the repository and the matcher built over it.
struct ExperimentSetup {
  schema::SchemaForest repository;
  schema::SchemaTree personal;
  std::unique_ptr<core::Bellflower> system;
};

/// Builds the canonical experiment: synthetic repository of about
/// `target_elements` nodes (seeded, deterministic) and the personal schema
/// name(address,email) with "a structure similar to schema s in Fig. 1".
std::unique_ptr<ExperimentSetup> MakeCanonicalSetup(
    size_t target_elements = kPaperRepositoryElements,
    uint64_t seed = kExperimentSeed);

/// The four §5 variants.
enum class Variant { kSmall = 0, kMedium = 1, kLarge = 2, kTree = 3 };

inline constexpr Variant kAllVariants[] = {Variant::kSmall, Variant::kMedium,
                                           Variant::kLarge, Variant::kTree};

/// "small" / "medium" / "large" / "tree".
const char* VariantName(Variant variant);

/// MatchOptions for a variant: join distance 2/3/4 for the clustered ones,
/// ClusteringMode::kTreeClusters for the baseline. δ, α and the element
/// threshold are the experiment defaults (0.75, 0.5, 0.5).
core::MatchOptions VariantOptions(Variant variant);

/// Prints the standard harness banner (repository stats, matcher config).
void PrintBanner(const char* experiment, const ExperimentSetup& setup);

/// Element-matching outputs in the form the clusterer consumes, for
/// harnesses that drive the k-means step directly (Fig. 4, ablations).
struct ClusteringInputs {
  std::vector<cluster::ClusterPoint> points;
  std::vector<size_t> me_set_sizes;
};

ClusteringInputs MakeClusteringInputs(const ExperimentSetup& setup,
                                      double element_threshold = 0.5);

}  // namespace xsm::bench

#endif  // XSM_BENCH_EXPERIMENT_COMMON_H_
