// Extension experiment: partial schema mappings (paper §2.3: non-useful
// clusters "do not produce any schema mappings. To overcome this
// limitation, the definition of a schema mapping should be extended with a
// notion of partial schema mapping ... Such partial mappings might,
// nevertheless, be valuable to the user.").
//
// Runs the medium variant with the extension enabled and reports how many
// non-useful clusters yield partial mappings and their coverage/Δ
// distribution.
#include <cstdio>

#include "experiment_common.h"
#include "util/histogram.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Extension: partial mappings from non-useful clusters",
              *setup);

  core::MatchOptions options = VariantOptions(Variant::kMedium);
  options.include_partial_mappings = true;
  options.partial.delta = 0.55;
  options.partial.min_assigned = 2;

  auto result = setup->system->Match(setup->personal, options);
  if (!result.ok()) {
    std::fprintf(stderr, "match failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  size_t non_useful =
      result->stats.num_clusters - result->stats.num_useful_clusters;
  std::printf("clusters: %zu total, %zu useful, %zu non-useful\n",
              result->stats.num_clusters,
              result->stats.num_useful_clusters, non_useful);
  std::printf("complete mappings: %zu   partial mappings recovered: %zu "
              "(+%0.1f%%)\n",
              result->mappings.size(), result->partial_mappings.size(),
              result->mappings.empty()
                  ? 0.0
                  : 100.0 *
                        static_cast<double>(result->partial_mappings.size()) /
                        static_cast<double>(result->mappings.size()));
  std::printf("partial generator work: %llu partial assignments\n\n",
              static_cast<unsigned long long>(
                  result->stats.partial_generator.partial_mappings));

  // Coverage distribution.
  size_t by_assigned[8] = {0};
  StatsAccumulator deltas;
  for (const auto& pm : result->partial_mappings) {
    if (pm.assigned_count < 8) ++by_assigned[pm.assigned_count];
    deltas.Add(pm.delta);
  }
  std::printf("coverage distribution (assigned of %zu personal nodes):\n",
              setup->personal.size());
  for (size_t a = 1; a < setup->personal.size(); ++a) {
    std::printf("  %zu/%zu nodes: %zu partial mappings\n", a,
                setup->personal.size(), by_assigned[a]);
  }
  std::printf("\npartial delta: mean %.3f, min %.3f, max %.3f\n",
              deltas.mean(), deltas.min(), deltas.max());
  if (!result->partial_mappings.empty()) {
    const auto& best = result->partial_mappings.front();
    std::printf("best partial mapping: tree=%d delta=%.3f coverage=%.2f\n",
                best.tree, best.delta, best.Coverage());
  }
  return 0;
}
