// Ablation: mapping-generator algorithms (paper §3 uses Branch & Bound and
// §5 notes B&B "tested 30 times less partial mappings" than the full
// space; §2.2 cites beam search (iMap) and A* (LSD) as the search
// strategies of related systems).
//
// Compares exhaustive, B&B, A*, and beam search on the medium-clusters
// variant and the non-clustered baseline. Expected shape: B&B and A*
// return exactly the exhaustive result set with far fewer partial
// mappings; beam search is cheapest but loses mappings.
#include <cstdio>
#include <vector>

#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Ablation: mapping generator algorithms", *setup);

  struct Algo {
    const char* name;
    generate::Algorithm algorithm;
    generate::BoundMode bound_mode;
  };
  const Algo kAlgos[] = {
      {"exhaustive", generate::Algorithm::kExhaustive,
       generate::BoundMode::kSimple},
      {"b&b simple", generate::Algorithm::kBranchAndBound,
       generate::BoundMode::kSimple},
      {"b&b fwd-check", generate::Algorithm::kBranchAndBound,
       generate::BoundMode::kForwardChecking},
      {"a-star", generate::Algorithm::kAStar,
       generate::BoundMode::kSimple},
      {"beam(64)", generate::Algorithm::kBeam,
       generate::BoundMode::kSimple},
  };

  for (Variant variant : {Variant::kMedium, Variant::kTree}) {
    std::printf("--- %s clusters ---\n", VariantName(variant));
    std::printf("%-14s %16s %16s %12s %10s\n", "algorithm", "partials",
                "complete", "mappings", "time (s)");
    uint64_t exhaustive_partials = 0;
    for (const Algo& algo : kAlgos) {
      core::MatchOptions options = VariantOptions(variant);
      options.generator.algorithm = algo.algorithm;
      options.generator.bound_mode = algo.bound_mode;
      options.generator.beam_width = 64;
      auto result = setup->system->Match(setup->personal, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", algo.name,
                     result.status().ToString().c_str());
        return 1;
      }
      if (algo.algorithm == generate::Algorithm::kExhaustive) {
        exhaustive_partials = result->stats.generator.partial_mappings;
      }
      double speedup =
          result->stats.generator.partial_mappings > 0
              ? static_cast<double>(exhaustive_partials) /
                    static_cast<double>(
                        result->stats.generator.partial_mappings)
              : 0;
      std::printf("%-14s %16llu %16llu %12zu %10.3f   (%.1fx fewer "
                  "partials)\n",
                  algo.name,
                  static_cast<unsigned long long>(
                      result->stats.generator.partial_mappings),
                  static_cast<unsigned long long>(
                      result->stats.generator.complete_mappings),
                  result->mappings.size(),
                  result->stats.time_generation_seconds, speedup);
    }
    std::printf("\n");
  }
  std::printf("paper reference: on tree clusters, B&B tested ~30x fewer "
              "partial mappings than the search-space size.\n");
  return 0;
}
