// Microbenchmarks (google-benchmark) for the kernels the paper's pipeline
// leans on: string similarity (element matchers), labeled tree distance
// (clustering distance measure + Δpath), the k-means iteration, element
// matching over the full repository, and per-cluster B&B generation.
#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/kmeans.h"
#include "core/bellflower.h"
#include "label/tree_index.h"
#include "match/element_matching.h"
#include "repo/synthetic.h"
#include "schema/schema_tree.h"
#include "sim/string_similarity.h"
#include "util/random.h"

namespace {

using namespace xsm;

// --- string similarity kernels ------------------------------------------

const std::vector<std::pair<std::string, std::string>>& NamePairs() {
  static const auto* kPairs =
      new std::vector<std::pair<std::string, std::string>>{
          {"name", "fullName"},       {"address", "billingAddress"},
          {"email", "e-mail"},        {"authorName", "author_name"},
          {"quantity", "qty"},        {"telephone", "phoneNumber"},
          {"shelf", "bookshelf"},     {"customer", "client"},
          {"purchaseOrder", "order"}, {"identifier", "id"},
      };
  return *kPairs;
}

void BM_FuzzySimilarity(benchmark::State& state) {
  const auto& pairs = NamePairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(sim::FuzzyStringSimilarityIgnoreCase(a, b));
  }
}
BENCHMARK(BM_FuzzySimilarity);

void BM_JaroWinkler(benchmark::State& state) {
  const auto& pairs = NamePairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(sim::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_NgramDice(benchmark::State& state) {
  const auto& pairs = NamePairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(sim::NgramDiceSimilarity(a, b));
  }
}
BENCHMARK(BM_NgramDice);

// --- labeled tree distance ------------------------------------------------

schema::SchemaTree RandomTree(size_t n, uint64_t seed) {
  Rng rng(seed);
  schema::SchemaTree t;
  t.AddNode(schema::kInvalidNode, {.name = "root"});
  for (size_t i = 1; i < n; ++i) {
    t.AddNode(static_cast<schema::NodeId>(rng.Uniform(i)),
              {.name = "n" + std::to_string(i)});
  }
  return t;
}

void BM_TreeIndexBuild(benchmark::State& state) {
  schema::SchemaTree tree =
      RandomTree(static_cast<size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(label::TreeIndex::Build(tree));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreeIndexBuild)->Range(64, 4096)->Complexity();

void BM_TreeDistanceQuery(benchmark::State& state) {
  const size_t n = 2048;
  schema::SchemaTree tree = RandomTree(n, 7);
  label::TreeIndex index = label::TreeIndex::Build(tree);
  Rng rng(13);
  for (auto _ : state) {
    auto u = static_cast<schema::NodeId>(rng.Uniform(n));
    auto v = static_cast<schema::NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(index.Distance(u, v));
  }
}
BENCHMARK(BM_TreeDistanceQuery);

// Naive parent-walk distance, to quantify what the node-labeling buys.
void BM_TreeDistanceNaive(benchmark::State& state) {
  const size_t n = 2048;
  schema::SchemaTree tree = RandomTree(n, 7);
  Rng rng(13);
  std::vector<bool> mark(n);
  for (auto _ : state) {
    auto u = static_cast<schema::NodeId>(rng.Uniform(n));
    auto v = static_cast<schema::NodeId>(rng.Uniform(n));
    std::fill(mark.begin(), mark.end(), false);
    int du = 0;
    for (auto x = u; x != schema::kInvalidNode; x = tree.parent(x)) {
      mark[static_cast<size_t>(x)] = true;
    }
    int d = 0;
    auto x = v;
    while (!mark[static_cast<size_t>(x)]) {
      x = tree.parent(x);
      ++d;
    }
    for (auto y = u; y != x; y = tree.parent(y)) ++du;
    benchmark::DoNotOptimize(d + du);
  }
}
BENCHMARK(BM_TreeDistanceNaive);

// --- pipeline stages over the canonical repository -------------------------

struct PipelineFixture {
  schema::SchemaForest repository;
  schema::SchemaTree personal;
  label::ForestIndex index;
  std::vector<cluster::ClusterPoint> points;
  std::vector<size_t> me_sizes;

  explicit PipelineFixture(size_t elements) {
    repo::SyntheticRepoOptions options;
    options.target_elements = elements;
    options.seed = 2006;
    repository = std::move(*repo::GenerateSyntheticRepository(options));
    personal = *schema::ParseTreeSpec("name(address,email)");
    index = label::ForestIndex::Build(repository);
    auto matching =
        match::MatchElements(personal, repository, {.threshold = 0.5});
    for (size_t i = 0; i < matching->distinct_nodes.size(); ++i) {
      points.push_back(
          {matching->distinct_nodes[i], matching->masks[i]});
    }
    me_sizes.resize(personal.size());
    for (size_t i = 0; i < personal.size(); ++i) {
      me_sizes[i] = matching->sets[i].size();
    }
  }

  static const PipelineFixture& Get() {
    static const PipelineFixture* kFixture = new PipelineFixture(9759);
    return *kFixture;
  }
};

void BM_ElementMatching(benchmark::State& state) {
  const PipelineFixture& fx = PipelineFixture::Get();
  for (auto _ : state) {
    auto matching =
        match::MatchElements(fx.personal, fx.repository, {.threshold = 0.5});
    benchmark::DoNotOptimize(matching);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.repository.total_nodes()));
}
BENCHMARK(BM_ElementMatching);

void BM_KMeansClustering(benchmark::State& state) {
  const PipelineFixture& fx = PipelineFixture::Get();
  cluster::KMeansClusterer clusterer(&fx.repository, &fx.index);
  cluster::KMeansOptions options;
  options.join_distance = static_cast<int>(state.range(0));
  options.min_cluster_size = 4;
  for (auto _ : state) {
    auto result = clusterer.Cluster(fx.points, fx.me_sizes, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.points.size()));
}
BENCHMARK(BM_KMeansClustering)->Arg(2)->Arg(3)->Arg(4);

void BM_FullMatchPipeline(benchmark::State& state) {
  const PipelineFixture& fx = PipelineFixture::Get();
  core::Bellflower system(&fx.repository);
  core::MatchOptions options;
  options.element.threshold = 0.5;
  options.delta = 0.75;
  options.clustering = state.range(0) == 0
                           ? core::ClusteringMode::kTreeClusters
                           : core::ClusteringMode::kKMeans;
  options.kmeans.join_distance = 3;
  options.kmeans.min_cluster_size = 4;
  for (auto _ : state) {
    auto result = system.Match(fx.personal, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullMatchPipeline)
    ->Arg(0)   // non-clustered baseline
    ->Arg(1);  // clustered (medium)

}  // namespace

BENCHMARK_MAIN();
