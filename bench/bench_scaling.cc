// Repository-size scaling (paper §2.3 + §3): the paper built experiment
// repositories "with sizes from 2500 to 10200 elements" and argues that
// clustering turns the mapping generator's workload from polynomial to
// ~linear in repository size when the per-cluster element count is held
// roughly constant.
//
// This harness sweeps repository size and reports, for the medium-clusters
// variant vs the non-clustered baseline: search-space size, B&B partial
// mappings, and wall time. Expected shape: the baseline columns grow
// super-linearly with repository size, the clustered columns roughly
// linearly, and the reduction factor widens.
#include <cstdio>
#include <vector>

#include "experiment_common.h"
#include "repo/synthetic.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  const size_t kSizes[] = {2500, 5000, 7500, 10200};

  // Like the paper, sub-repositories are random samples of whole schemas
  // from one full collection.
  repo::SyntheticRepoOptions full_options;
  full_options.target_elements = 20000;
  full_options.seed = kExperimentSeed;
  auto full = repo::GenerateSyntheticRepository(full_options);
  if (!full.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  std::printf("== Repository-size scaling (paper sizes 2500..10200) ==\n");
  std::printf("full collection: %zu elements over %zu trees; samples drawn "
              "per size\n\n",
              full->total_nodes(), full->num_trees());
  std::printf("%-8s | %14s %14s %9s | %14s %14s %9s | %9s\n", "elements",
              "space(tree)", "partials(tree)", "time(s)", "space(med)",
              "partials(med)", "time(s)", "reduction");

  for (size_t size : kSizes) {
    auto setup = std::make_unique<ExperimentSetup>();
    setup->repository = repo::SampleRepository(*full, size, /*seed=*/97);
    setup->personal = *schema::ParseTreeSpec("name(address,email)");
    setup->system = std::make_unique<core::Bellflower>(&setup->repository);
    auto tree =
        setup->system->Match(setup->personal, VariantOptions(Variant::kTree));
    auto medium = setup->system->Match(setup->personal,
                                       VariantOptions(Variant::kMedium));
    if (!tree.ok() || !medium.ok()) {
      std::fprintf(stderr, "match failed at size %zu\n", size);
      return 1;
    }
    double tree_time = tree->stats.time_generation_seconds;
    double medium_time = medium->stats.time_clustering_seconds +
                         medium->stats.time_generation_seconds;
    double reduction =
        medium->stats.search_space > 0
            ? tree->stats.search_space / medium->stats.search_space
            : 0;
    std::printf(
        "%-8zu | %14.0f %14llu %9.3f | %14.0f %14llu %9.3f | %8.1fx\n",
        setup->repository.total_nodes(), tree->stats.search_space,
        static_cast<unsigned long long>(
            tree->stats.generator.partial_mappings),
        tree_time, medium->stats.search_space,
        static_cast<unsigned long long>(
            medium->stats.generator.partial_mappings),
        medium_time, reduction);
  }

  std::printf(
      "\nexpected shape: the non-clustered search space grows "
      "super-linearly with\nrepository size while the clustered one grows "
      "~linearly, so the reduction\nfactor widens with scale (paper "
      "§2.3).\n");
  return 0;
}
