// Holistic integration benchmark: end-to-end IntegrationEngine runs over a
// planted-correspondence corpus across repository scales.
//
// The corpus is constructed so ground truth is exact: every "planted" group
// is one token name (eight repeats of one letter) placed in every tree but
// the first, and all other nodes carry noise names built from a disjoint
// alphabet whose pairwise similarity stays below the correspondence
// threshold. The only edges the engine can find are the planted repeats, so
//   - planted recall (every group recovered as exactly its planted member
//     set) must be 1.0 — a hard gate, smoke included, and
//   - the mediated schema is known independently of the engine.
//
// For each scale the harness measures:
//   - cold integration latency on a fresh service (cluster cache empty)
//   - warm integration latency re-running on the same service (every slice
//     state served from the fingerprint-namespaced cluster cache);
//     speedup_warm_vs_cold is the tracked headline ratio
//   - cluster/correspondence counts as a sanity surface
// and, at the largest scale, re-runs the integration on fresh services with
// 1 / 2 / 8 threads, comparing SerializeIntegration bytes — the determinism
// contract (byte-identical result for fixed fingerprint + seed) as a hard
// gate.
//
// Emits a machine-readable JSON trajectory point (default:
// BENCH_integration.json) consumed by check_bench_regression's
// "integration" profile.
//
// Usage: bench_integration [--smoke] [--out PATH]
//   --smoke   smaller scale series, fewer repeats (CI exercise of the
//             integration path); both correctness gates still apply.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "integrate/integration_engine.h"
#include "integrate/integration_io.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "service/match_service.h"
#include "util/random.h"
#include "util/timer.h"

namespace xsm {
namespace {

constexpr size_t kGroups = 8;  // planted synonym groups per corpus

/// Planted group token: eight repeats of one letter from 'a'..'l'. Two
/// distinct tokens share no characters, so their similarity is 0.
std::string GroupToken(size_t g) { return std::string(8, 'a' + g); }

/// Noise name: three blocks of four identical characters drawn from the
/// disjoint alphabet 'm'..'z' (base-14 digits of a counter). Any two noise
/// names differ in at least one whole block (similarity <= 2/3, below the
/// 0.75 threshold), and noise never matches a group token. Only 14^3
/// counter values yield distinct names; past that the digits wrap and a
/// duplicate would plant an unintended correspondence, so overflow aborts.
std::string NoiseName(size_t* counter) {
  size_t value = (*counter)++;
  if (value >= 14 * 14 * 14) {
    std::fprintf(stderr, "noise namespace exhausted (corpus too large)\n");
    std::exit(2);
  }
  std::string name;
  for (int block = 0; block < 3; ++block) {
    name.append(4, static_cast<char>('m' + value % 14));
    value /= 14;
  }
  return name;
}

/// `num_trees` trees; tree 0 is noise-only, every other tree contains all
/// kGroups tokens plus 27 noise nodes in shuffled order under random
/// parents (28 noise names per tree including the root keeps the largest
/// 96-tree corpus inside the 14^3 noise namespace). Expected clustering:
/// kGroups clusters of (num_trees - 1) members each.
schema::SchemaForest BuildCorpus(uint64_t seed, size_t num_trees) {
  schema::SchemaForest forest;
  size_t counter = 0;
  Rng rng(seed);
  for (size_t t = 0; t < num_trees; ++t) {
    std::vector<std::string> names;
    for (size_t n = 0; n < 27; ++n) names.push_back(NoiseName(&counter));
    if (t != 0) {
      for (size_t g = 0; g < kGroups; ++g) names.push_back(GroupToken(g));
    }
    rng.Shuffle(&names);

    schema::SchemaTree tree;
    schema::NodeProperties root;
    root.name = NoiseName(&counter);
    tree.AddNode(schema::kInvalidNode, root);
    for (const std::string& name : names) {
      schema::NodeProperties props;
      props.name = name;
      schema::NodeId parent = static_cast<schema::NodeId>(
          rng.Uniform(static_cast<uint64_t>(tree.size())));
      tree.AddNode(parent, props);
    }
    forest.AddTree(std::move(tree), "bench:" + std::to_string(t));
  }
  return forest;
}

std::unique_ptr<service::MatchService> ServiceOver(
    const schema::SchemaForest& forest, size_t num_threads) {
  service::MatchServiceOptions options;
  options.num_threads = num_threads;
  options.cluster_cache_capacity = 4096;
  auto service = service::MatchService::Create(forest, options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*service);
}

integrate::IntegrationResult Integrate(service::MatchService* service) {
  integrate::IntegrationEngine engine(service);
  auto result = engine.Integrate(integrate::IntegrationOptions());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

/// True iff every planted group surfaces as a cluster with exactly its
/// planted member set (num_trees - 1 members, all named by the token).
bool PlantedRecallExact(const integrate::IntegrationResult& result,
                        size_t num_trees) {
  if (result.clusters.size() != kGroups) return false;
  for (size_t g = 0; g < kGroups; ++g) {
    const std::string token = GroupToken(g);
    bool found = false;
    for (const integrate::CorrespondenceCluster& cluster : result.clusters) {
      if (cluster.name != token) continue;
      found = cluster.members.size() == num_trees - 1 &&
              cluster.schemas == num_trees - 1;
      break;
    }
    if (!found) return false;
  }
  return true;
}

struct ScaleReport {
  size_t trees = 0;
  size_t elements = 0;
  size_t clusters = 0;
  size_t correspondences = 0;
  double cold_seconds = 0;  ///< best-of-repeats fresh-service run
  double warm_seconds = 0;  ///< best-of-repeats cache-warm re-run
  bool recall_ok = false;
};

}  // namespace
}  // namespace xsm

int main(int argc, char** argv) {
  using namespace xsm;

  bool smoke = false;
  std::string out_path = "BENCH_integration.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_integration [--smoke] [--out PATH]\n");
      return 2;
    }
  }
  const std::vector<size_t> scales =
      smoke ? std::vector<size_t>{8, 16, 32}
            : std::vector<size_t>{16, 32, 64, 96};
  const int repeats = smoke ? 1 : 3;
  const size_t num_threads = 4;

  std::printf(
      "holistic integration: cold vs cache-warm engine runs "
      "(%zu planted groups, %zu threads, repeat=%d)\n\n",
      kGroups, num_threads, repeats);
  std::printf("%6s %9s %9s %7s  %10s %10s %8s  %7s\n", "trees", "elements",
              "clusters", "edges", "cold ms", "warm ms", "speedup", "recall");

  bool all_recall_ok = true;
  std::vector<ScaleReport> reports;
  for (size_t scale : scales) {
    schema::SchemaForest forest =
        BuildCorpus(bench::kExperimentSeed + scale, scale);
    ScaleReport report;
    report.trees = scale;
    report.elements = forest.total_nodes();
    for (int r = 0; r < repeats; ++r) {
      auto service = ServiceOver(forest, num_threads);
      Timer cold_timer;
      integrate::IntegrationResult cold = Integrate(service.get());
      double cold_seconds = cold_timer.ElapsedSeconds();
      Timer warm_timer;
      integrate::IntegrationResult warm = Integrate(service.get());
      double warm_seconds = warm_timer.ElapsedSeconds();
      if (r == 0) {
        report.clusters = cold.clusters.size();
        report.correspondences = cold.stats.correspondences;
        report.recall_ok = PlantedRecallExact(cold, scale) &&
                           integrate::SerializeIntegration(warm) ==
                               integrate::SerializeIntegration(cold);
        report.cold_seconds = cold_seconds;
        report.warm_seconds = warm_seconds;
      } else {
        report.cold_seconds = std::min(report.cold_seconds, cold_seconds);
        report.warm_seconds = std::min(report.warm_seconds, warm_seconds);
      }
    }
    all_recall_ok = all_recall_ok && report.recall_ok;
    std::printf("%6zu %9zu %9zu %7zu  %10.3f %10.3f %7.2fx  %7s\n",
                report.trees, report.elements, report.clusters,
                report.correspondences, 1e3 * report.cold_seconds,
                1e3 * report.warm_seconds,
                report.cold_seconds / report.warm_seconds,
                report.recall_ok ? "exact" : "MISS");
    reports.push_back(report);
  }

  // Determinism across thread counts at the largest scale: fresh service
  // per thread count, byte-compared serializations.
  bool determinism_ok = true;
  {
    schema::SchemaForest forest =
        BuildCorpus(bench::kExperimentSeed + scales.back(), scales.back());
    std::string reference;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      auto service = ServiceOver(forest, threads);
      std::string bytes =
          integrate::SerializeIntegration(Integrate(service.get()));
      if (reference.empty()) {
        reference = std::move(bytes);
      } else {
        determinism_ok = determinism_ok && bytes == reference;
      }
    }
  }
  std::printf("\ndeterminism across 1/2/8 threads: %s\n",
              determinism_ok ? "byte-identical" : "DIVERGED");

  // --- JSON trajectory point. ----------------------------------------------
  std::string json;
  char buf[512];
  json += "{\n";
  json += "  \"bench\": \"integration\",\n";
  json += smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"groups\": %zu,\n  \"threads\": %zu,\n"
                "  \"repeat\": %d,\n  \"scales\": [\n",
                kGroups, num_threads, repeats);
  json += buf;
  for (size_t i = 0; i < reports.size(); ++i) {
    const ScaleReport& r = reports[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"trees\": %zu, \"elements\": %zu, \"clusters\": %zu, "
        "\"correspondences\": %zu,\n"
        "      \"cold_ms\": %.4f, \"warm_ms\": %.4f, "
        "\"speedup_warm_vs_cold\": %.3f, \"planted_recall_exact\": %s}%s\n",
        r.trees, r.elements, r.clusters, r.correspondences,
        1e3 * r.cold_seconds, 1e3 * r.warm_seconds,
        r.cold_seconds / r.warm_seconds, r.recall_ok ? "true" : "false",
        i + 1 < reports.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"determinism_verified\": %s,\n"
                "  \"planted_recall_ok\": %s\n}\n",
                determinism_ok ? "true" : "false",
                all_recall_ok ? "true" : "false");
  json += buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  // Hard gates, smoke included: correctness properties of the integration
  // pipeline, not performance targets.
  if (!all_recall_ok) {
    std::printf("PLANTED RECALL MISS: a known cluster was not recovered\n");
    return 1;
  }
  if (!determinism_ok) {
    std::printf("DETERMINISM VIOLATION across thread counts\n");
    return 1;
  }
  std::printf("integration verified: planted clusters recovered exactly; "
              "results byte-identical across thread counts\n");
  return 0;
}
