// Ablation: k-means convergence criterion (paper §4 "Convergence
// criteria": total stability can be relaxed; Bellflower stops when element
// switches and cluster-count change drop below e.g. 5%; "each unnecessary
// iteration is a waste of time"; picking the criterion automatically is an
// open question).
//
// Sweeps the convergence fraction and reports iterations, clustering time,
// and the effectiveness of the downstream matching. Expected shape:
// stricter criteria cost iterations without materially changing the
// preserved mappings.
#include <cstdio>

#include "core/preservation.h"
#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Ablation: k-means convergence criterion", *setup);

  auto baseline =
      setup->system->Match(setup->personal, VariantOptions(Variant::kTree));
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline failed\n");
    return 1;
  }

  const double kFractions[] = {0.0, 0.01, 0.05, 0.10, 0.25};
  std::printf("%-10s %12s %14s %12s %12s %10s\n", "fraction", "iterations",
              "cluster time", "clusters", "mappings", "preserved");
  for (double fraction : kFractions) {
    core::MatchOptions options = VariantOptions(Variant::kMedium);
    options.kmeans.convergence_fraction = fraction;
    options.kmeans.max_iterations = 50;
    auto result = setup->system->Match(setup->personal, options);
    if (!result.ok()) {
      std::fprintf(stderr, "fraction=%.2f failed: %s\n", fraction,
                   result.status().ToString().c_str());
      return 1;
    }
    double preserved =
        baseline->mappings.empty()
            ? 1.0
            : static_cast<double>(result->mappings.size()) /
                  static_cast<double>(baseline->mappings.size());
    std::printf("%-10.2f %12d %14.4f %12zu %12zu %10.3f\n", fraction,
                result->stats.kmeans.iterations,
                result->stats.kmeans.time_seconds,
                result->stats.num_clusters, result->mappings.size(),
                preserved);
  }
  std::printf("\nexpected shape: stricter criteria (smaller fractions) add "
              "iterations and time with little effect on preservation.\n");
  return 0;
}
