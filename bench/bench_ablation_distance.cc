// Ablation: clustering distance measures (paper §4: "the distance measure
// must be designed to support a specific objective function"; §7 future
// work (3): "design of other distance measures for clustering").
//
// Compares the paper's pure path-length distance with a lexical blend
// (path + name dissimilarity) across objective α values. Observed shape
// (a negative result worth recording): the blend slightly *reduces*
// preservation at every α — pulling same-name elements together breaks
// the spatial coherence that the Δpath-driven objective relies on, which
// supports the paper's point that the clustering distance must be designed
// for the objective function, not independently of it.
#include <cstdio>

#include "core/preservation.h"
#include "experiment_common.h"

int main() {
  using namespace xsm;
  using namespace xsm::bench;

  auto setup = MakeCanonicalSetup();
  PrintBanner("Ablation: clustering distance measures", *setup);

  const double kAlphas[] = {0.25, 0.50, 0.75};
  std::printf("%-8s %20s %20s\n", "alpha", "path distance",
              "path+name distance");
  for (double alpha : kAlphas) {
    core::MatchOptions baseline = VariantOptions(Variant::kTree);
    baseline.objective.alpha = alpha;
    auto base = setup->system->Match(setup->personal, baseline);
    if (!base.ok()) {
      std::fprintf(stderr, "baseline failed\n");
      return 1;
    }

    double preserved[2] = {0, 0};
    int slot = 0;
    for (cluster::ClusterDistance distance :
         {cluster::ClusterDistance::kPathLength,
          cluster::ClusterDistance::kPathAndName}) {
      core::MatchOptions options = VariantOptions(Variant::kMedium);
      options.objective.alpha = alpha;
      options.kmeans.distance = distance;
      auto result = setup->system->Match(setup->personal, options);
      if (!result.ok()) {
        std::fprintf(stderr, "match failed\n");
        return 1;
      }
      preserved[slot++] =
          base->mappings.empty()
              ? 1.0
              : static_cast<double>(result->mappings.size()) /
                    static_cast<double>(base->mappings.size());
    }
    std::printf("%-8.2f %20.3f %20.3f\n", alpha, preserved[0],
                preserved[1]);
  }
  std::printf("\n(values are preserved fractions at delta=0.75 relative to "
              "each alpha's own non-clustered run)\n"
              "observed: the lexical blend preserves slightly less at every "
              "alpha — the distance\nmeasure must follow the objective's "
              "dominant structural hint (paper S4).\n");
  return 0;
}
