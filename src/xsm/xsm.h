// Umbrella header for the Bellflower clustered schema matching library.
//
// Quickstart:
//   #include "xsm/xsm.h"
//
//   xsm::schema::SchemaForest repo = ...;           // load or generate
//   xsm::core::Bellflower system(&repo);
//   auto personal = xsm::schema::ParseTreeSpec("name(address,email)");
//   xsm::core::MatchOptions options;                // δ, α, clustering, ...
//   auto result = system.Match(*personal, options);
//   for (const auto& m : result->mappings) { ... }
#ifndef XSM_XSM_XSM_H_
#define XSM_XSM_XSM_H_

#include "cluster/kmeans.h"              // IWYU pragma: export
#include "core/bellflower.h"             // IWYU pragma: export
#include "core/preservation.h"           // IWYU pragma: export
#include "generate/mapping_generator.h"  // IWYU pragma: export
#include "generate/schema_mapping.h"     // IWYU pragma: export
#include "label/tree_index.h"            // IWYU pragma: export
#include "match/element_matcher.h"       // IWYU pragma: export
#include "match/element_matching.h"      // IWYU pragma: export
#include "objective/objective.h"         // IWYU pragma: export
#include "query/xpath.h"                 // IWYU pragma: export
#include "repo/loader.h"                 // IWYU pragma: export
#include "repo/synthetic.h"              // IWYU pragma: export
#include "schema/schema_forest.h"        // IWYU pragma: export
#include "schema/schema_tree.h"          // IWYU pragma: export
#include "service/cluster_index_cache.h"  // IWYU pragma: export
#include "service/match_service.h"        // IWYU pragma: export
#include "service/repository_snapshot.h"  // IWYU pragma: export
#include "sim/string_similarity.h"       // IWYU pragma: export
#include "sim/synonym_dictionary.h"      // IWYU pragma: export
#include "util/histogram.h"              // IWYU pragma: export
#include "util/random.h"                 // IWYU pragma: export
#include "util/status.h"                 // IWYU pragma: export
#include "util/thread_pool.h"            // IWYU pragma: export
#include "util/timer.h"                  // IWYU pragma: export
#include "xml/dtd_parser.h"              // IWYU pragma: export
#include "xml/xml_parser.h"              // IWYU pragma: export
#include "xml/xsd_parser.h"              // IWYU pragma: export

#endif  // XSM_XSM_XSM_H_
