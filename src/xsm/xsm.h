// Umbrella header for the Bellflower clustered schema matching library.
//
// Quickstart:
//   #include "xsm/xsm.h"
//
//   xsm::schema::SchemaForest repo = ...;           // load or generate
//   xsm::core::Bellflower system(&repo);
//   auto personal = xsm::schema::ParseTreeSpec("name(address,email)");
//   xsm::core::MatchOptions options;                // δ, α, clustering, ...
//   auto result = system.Match(*personal, options);
//   for (const auto& m : result->mappings) { ... }
//
// Streaming / anytime execution (cancellation, deadlines, early exit):
//   struct Printer : xsm::core::MatchObserver {
//     void OnMapping(const xsm::generate::SchemaMapping& m,
//                    size_t running_rank) override { ... }
//   } printer;
//   auto control = xsm::core::ExecutionControl::WithDeadline(0.5);  // 500 ms
//   control.stop_after_n_mappings = 10;             // first 10 are enough
//   auto run = system.Match(*personal, options, control, &printer);
//   // run->execution: kCompleted / kCancelled / kDeadlineExceeded /
//   // kEarlyStopped; run->mappings holds whatever was found in time.
//   // control.cancel.Cancel() (from any thread) stops the run cooperatively.
#ifndef XSM_XSM_XSM_H_
#define XSM_XSM_XSM_H_

#include "cluster/kmeans.h"              // IWYU pragma: export
#include "core/bellflower.h"             // IWYU pragma: export
#include "core/execution_control.h"      // IWYU pragma: export
#include "core/match_observer.h"         // IWYU pragma: export
#include "core/preservation.h"           // IWYU pragma: export
#include "generate/mapping_generator.h"  // IWYU pragma: export
#include "generate/schema_mapping.h"     // IWYU pragma: export
#include "integrate/integration_engine.h"  // IWYU pragma: export
#include "integrate/integration_io.h"      // IWYU pragma: export
#include "label/tree_index.h"            // IWYU pragma: export
#include "live/delta_codec.h"            // IWYU pragma: export
#include "live/repository_delta.h"       // IWYU pragma: export
#include "live/repository_manager.h"     // IWYU pragma: export
#include "match/element_matcher.h"       // IWYU pragma: export
#include "match/element_matching.h"      // IWYU pragma: export
#include "match/name_dictionary.h"       // IWYU pragma: export
#include "net/http.h"                    // IWYU pragma: export
#include "net/http_client.h"             // IWYU pragma: export
#include "net/http_server.h"             // IWYU pragma: export
#include "net/retrying_client.h"         // IWYU pragma: export
#include "net/tenant_registry.h"         // IWYU pragma: export
#include "objective/objective.h"         // IWYU pragma: export
#include "obs/metrics.h"                 // IWYU pragma: export
#include "obs/trace.h"                   // IWYU pragma: export
#include "query/xpath.h"                 // IWYU pragma: export
#include "repo/loader.h"                 // IWYU pragma: export
#include "repo/synthetic.h"              // IWYU pragma: export
#include "schema/schema_forest.h"        // IWYU pragma: export
#include "schema/schema_tree.h"          // IWYU pragma: export
#include "service/cluster_index_cache.h"  // IWYU pragma: export
#include "service/match_service.h"        // IWYU pragma: export
#include "service/repository_snapshot.h"  // IWYU pragma: export
#include "service/serve_session.h"        // IWYU pragma: export
#include "sim/string_similarity.h"       // IWYU pragma: export
#include "sim/synonym_dictionary.h"      // IWYU pragma: export
#include "store/snapshot_store.h"        // IWYU pragma: export
#include "util/histogram.h"              // IWYU pragma: export
#include "util/io.h"                     // IWYU pragma: export
#include "util/random.h"                 // IWYU pragma: export
#include "util/status.h"                 // IWYU pragma: export
#include "util/thread_pool.h"            // IWYU pragma: export
#include "util/timer.h"                  // IWYU pragma: export
#include "util/union_find.h"             // IWYU pragma: export
#include "wal/wal.h"                     // IWYU pragma: export
#include "xml/dtd_parser.h"              // IWYU pragma: export
#include "xml/xml_parser.h"              // IWYU pragma: export
#include "xml/xsd_parser.h"              // IWYU pragma: export

#endif  // XSM_XSM_XSM_H_
