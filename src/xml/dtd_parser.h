// DTD parsing and conversion to schema trees.
//
// The paper's repository was built from "1700 non-recursive DTDs and XML
// schemas" crawled from the web. This module parses <!ELEMENT> content
// models and <!ATTLIST> declarations and expands the declaration graph into
// rooted schema trees — one tree per root element ("one schema can have
// multiple roots, each represented with one tree").
#ifndef XSM_XML_DTD_PARSER_H_
#define XSM_XML_DTD_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm::xml {

/// A child reference extracted from a content model, with the cardinality
/// implied by the surrounding operators.
struct DtdChildRef {
  std::string name;
  bool repeatable = false;  ///< under a '*' or '+' anywhere in the model
  bool optional = false;    ///< under a '?', '*', or a '|' choice
};

/// One <!ELEMENT name model> declaration.
struct DtdElementDecl {
  std::string name;
  std::vector<DtdChildRef> children;  ///< document order, deduplicated
  bool has_pcdata = false;
  bool is_any = false;
  bool is_empty = false;
};

/// One attribute from an <!ATTLIST>.
struct DtdAttributeDecl {
  std::string element;
  std::string name;
  std::string type;  ///< "CDATA", "ID", "enum", ...
  bool required = false;
};

/// A parsed DTD (internal or external subset).
struct Dtd {
  std::vector<DtdElementDecl> elements;
  std::vector<DtdAttributeDecl> attributes;
  /// Declarations skipped in lenient mode with the reason (e.g. parameter
  /// entities, malformed models).
  std::vector<std::string> warnings;

  const DtdElementDecl* FindElement(std::string_view name) const;
};

struct DtdParseOptions {
  /// Lenient mode (default) skips unparseable declarations and records a
  /// warning; strict mode fails the whole parse.
  bool lenient = true;
};

/// Parses DTD text (the content of a .dtd file or an internal subset).
Result<Dtd> ParseDtd(std::string_view content,
                     const DtdParseOptions& options = {});

struct DtdToSchemaOptions {
  /// Expansion depth cap (defense against deep or pathological DTDs).
  int max_depth = 64;
  /// Recursive reference handling: fail, or cut the recursive occurrence
  /// (the paper's corpus is explicitly non-recursive).
  bool fail_on_recursion = false;
  /// Include attributes as attribute-kind nodes.
  bool include_attributes = true;
};

/// Expands a DTD into schema trees. Roots are the declared elements never
/// referenced as a child of another declared element; if every element is
/// referenced (pure cycle), every declared element becomes a root.
Result<std::vector<schema::SchemaTree>> DtdToSchemaTrees(
    const Dtd& dtd, const DtdToSchemaOptions& options = {});

}  // namespace xsm::xml

#endif  // XSM_XML_DTD_PARSER_H_
