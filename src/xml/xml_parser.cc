#include "xml/xml_parser.h"

#include <cctype>
#include <cstdlib>

namespace xsm::xml {

const std::string* XmlElement::FindAttribute(
    std::string_view attr_name) const {
  for (const auto& [key, value] : attributes) {
    if (key == attr_name) return &value;
  }
  return nullptr;
}

std::string_view XmlElement::LocalName() const {
  size_t colon = name.rfind(':');
  return colon == std::string::npos
             ? std::string_view(name)
             : std::string_view(name).substr(colon + 1);
}

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] != '&') {
      out.push_back(s[i++]);
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(s[i++]);  // Lone '&': pass through.
      continue;
    }
    std::string_view entity = s.substr(i + 1, semi - i - 1);
    if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr,
                           16);
      } else {
        code =
            std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      // Emit ASCII directly; encode the rest as UTF-8 (two/three bytes
      // cover the BMP, which is all schema files use in practice).
      if (code > 0 && code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      // Unknown entity: keep verbatim.
      out.append(s.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

namespace {

bool IsNameStartChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalpha(u) || c == '_' || c == ':' || u >= 0x80;
}

bool IsNameChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '_' || c == ':' || c == '-' || c == '.' ||
         u >= 0x80;
}

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Result<XmlDocument> Parse() {
    SkipBom();
    XmlDocument doc;
    // Prolog: XML declaration, comments, PIs, DOCTYPE, whitespace.
    XSM_RETURN_NOT_OK(SkipMisc(&doc, /*allow_doctype=*/true));
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    XSM_ASSIGN_OR_RETURN(doc.root, ParseElement());
    // Trailing misc.
    XSM_RETURN_NOT_OK(SkipMisc(&doc, /*allow_doctype=*/false));
    if (!AtEnd()) {
      return Error("content after document end");
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }
  void Advance() {
    if (in_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool Consume(std::string_view token) {
    if (in_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  void SkipBom() {
    if (in_.substr(0, 3) == "\xEF\xBB\xBF") pos_ = 3;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(line_) + ": " + msg);
  }

  // Skips whitespace, comments, PIs, the XML declaration, and (optionally)
  // one DOCTYPE.
  Status SkipMisc(XmlDocument* doc, bool allow_doctype) {
    while (true) {
      SkipWhitespace();
      if (Consume("<?")) {
        size_t end = in_.find("?>", pos_);
        if (end == std::string_view::npos) return Error("unterminated PI");
        while (pos_ < end + 2) Advance();
      } else if (in_.substr(pos_, 4) == "<!--") {
        size_t end = in_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) {
          return Error("unterminated comment");
        }
        while (pos_ < end + 3) Advance();
      } else if (in_.substr(pos_, 9) == "<!DOCTYPE") {
        if (!allow_doctype) return Error("unexpected DOCTYPE");
        XSM_RETURN_NOT_OK(ParseDoctype(doc));
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseDoctype(XmlDocument* doc) {
    Consume("<!DOCTYPE");
    SkipWhitespace();
    XSM_ASSIGN_OR_RETURN(doc->doctype_name, ParseName());
    // Scan to '>' honoring an optional [...] internal subset and quoted
    // public/system literals.
    while (true) {
      if (AtEnd()) return Error("unterminated DOCTYPE");
      char c = Peek();
      if (c == '[') {
        Advance();
        size_t start = pos_;
        int depth = 1;
        while (!AtEnd() && depth > 0) {
          if (Peek() == '[') ++depth;
          if (Peek() == ']') --depth;
          if (depth > 0) Advance();
        }
        if (AtEnd()) return Error("unterminated DOCTYPE internal subset");
        doc->internal_dtd = std::string(in_.substr(start, pos_ - start));
        Advance();  // ']'
      } else if (c == '"' || c == '\'') {
        char quote = c;
        Advance();
        while (!AtEnd() && Peek() != quote) Advance();
        if (AtEnd()) return Error("unterminated literal in DOCTYPE");
        Advance();
      } else if (c == '>') {
        Advance();
        return Status::OK();
      } else {
        Advance();
      }
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::unique_ptr<XmlElement>> ParseElement() {
    if (!Consume("<")) return Error("expected '<'");
    auto element = std::make_unique<XmlElement>();
    XSM_ASSIGN_OR_RETURN(element->name, ParseName());

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '/' || Peek() == '>') break;
      XSM_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '<') return Error("'<' in attribute value");
        Advance();
      }
      if (AtEnd()) return Error("unterminated attribute value");
      element->attributes.emplace_back(
          std::move(attr_name),
          DecodeEntities(in_.substr(start, pos_ - start)));
      Advance();  // closing quote
    }

    if (Consume("/>")) return element;
    if (!Consume(">")) return Error("expected '>'");

    // Content.
    while (true) {
      if (AtEnd()) return Error("unterminated element '" + element->name +
                                "'");
      if (in_.substr(pos_, 4) == "<!--") {
        size_t end = in_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) {
          return Error("unterminated comment");
        }
        while (pos_ < end + 3) Advance();
      } else if (in_.substr(pos_, 9) == "<![CDATA[") {
        size_t end = in_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        element->text.append(in_.substr(pos_ + 9, end - pos_ - 9));
        while (pos_ < end + 3) Advance();
      } else if (in_.substr(pos_, 2) == "<?") {
        size_t end = in_.find("?>", pos_);
        if (end == std::string_view::npos) return Error("unterminated PI");
        while (pos_ < end + 2) Advance();
      } else if (in_.substr(pos_, 2) == "</") {
        Consume("</");
        XSM_ASSIGN_OR_RETURN(std::string end_name, ParseName());
        if (end_name != element->name) {
          return Error("mismatched end tag: expected </" + element->name +
                       "> got </" + end_name + ">");
        }
        SkipWhitespace();
        if (!Consume(">")) return Error("expected '>' in end tag");
        return element;
      } else if (Peek() == '<') {
        XSM_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                             ParseElement());
        element->children.push_back(std::move(child));
      } else {
        size_t start = pos_;
        while (!AtEnd() && Peek() != '<') Advance();
        element->text.append(
            DecodeEntities(in_.substr(start, pos_ - start)));
      }
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace xsm::xml
