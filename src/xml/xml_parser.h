// Minimal non-validating XML parser.
//
// The repository import path needs to read XML Schema documents (and the
// XML prolog/doctype machinery around DTDs) without external dependencies.
// This parser covers the profile needed for schema files: prolog, comments,
// processing instructions, DOCTYPE (with internal subset capture), elements,
// attributes, character data, CDATA, and the five predefined entities plus
// numeric character references. It is not a full XML 1.0 implementation
// (no external entities, no namespaces processing beyond prefixes-as-text).
#ifndef XSM_XML_XML_PARSER_H_
#define XSM_XML_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace xsm::xml {

/// One parsed element.
struct XmlElement {
  std::string name;  ///< Qualified name as written ("xs:element").
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  /// Concatenated character data directly under this element (entity
  /// references resolved, surrounding whitespace kept).
  std::string text;

  /// Returns the attribute value or nullptr.
  const std::string* FindAttribute(std::string_view attr_name) const;

  /// Local part of the qualified name ("element" for "xs:element").
  std::string_view LocalName() const;
};

struct XmlDocument {
  std::unique_ptr<XmlElement> root;
  /// Raw internal DTD subset from <!DOCTYPE x [ ... ]>, if present.
  std::string internal_dtd;
  /// DOCTYPE root element name, if a DOCTYPE was present.
  std::string doctype_name;
};

/// Parses a complete document. Errors carry 1-based line numbers.
Result<XmlDocument> ParseXml(std::string_view input);

/// Decodes the five predefined entities and numeric character references in
/// `s` (exposed for tests; unknown entities are passed through verbatim).
std::string DecodeEntities(std::string_view s);

}  // namespace xsm::xml

#endif  // XSM_XML_XML_PARSER_H_
