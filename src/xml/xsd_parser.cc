#include "xml/xsd_parser.h"

#include <algorithm>
#include <unordered_map>

#include "xml/xml_parser.h"

namespace xsm::xml {

namespace {

// Expansion machinery over the parsed XML DOM of an xs:schema document.
class XsdBuilder {
 public:
  XsdBuilder(const XmlDocument& doc, const XsdParseOptions& options,
             XsdParseResult* out)
      : doc_(doc), options_(options), out_(out) {}

  Status Build() {
    const XmlElement* schema = doc_.root.get();
    if (schema == nullptr || schema->LocalName() != "schema") {
      return Status::ParseError("document root is not an xs:schema");
    }
    // Index global declarations.
    for (const auto& child : schema->children) {
      std::string_view local = child->LocalName();
      const std::string* name = child->FindAttribute("name");
      if (local == "element" && name != nullptr) {
        global_elements_[*name] = child.get();
      } else if (local == "complexType" && name != nullptr) {
        named_types_[*name] = child.get();
      } else if (local == "simpleType" && name != nullptr) {
        named_simple_types_[*name] = child.get();
      }
    }
    if (global_elements_.empty()) {
      Warn("schema has no global element declarations");
      return Status::OK();
    }
    // Deterministic order: document order of the global elements.
    for (const auto& child : schema->children) {
      if (child->LocalName() != "element") continue;
      const std::string* name = child->FindAttribute("name");
      if (name == nullptr) continue;
      schema::SchemaTree tree;
      std::vector<std::string> type_stack;
      XSM_RETURN_NOT_OK(ExpandElement(*child, &tree, schema::kInvalidNode,
                                      &type_stack, 0));
      if (!tree.empty()) out_->trees.push_back(std::move(tree));
    }
    return Status::OK();
  }

 private:
  void Warn(std::string msg) { out_->warnings.push_back(std::move(msg)); }

  static std::string_view StripPrefix(std::string_view qname) {
    size_t colon = qname.rfind(':');
    return colon == std::string_view::npos ? qname
                                           : qname.substr(colon + 1);
  }

  static bool IsOptional(const XmlElement& el) {
    const std::string* v = el.FindAttribute("minOccurs");
    return v != nullptr && *v == "0";
  }
  static bool IsRepeatable(const XmlElement& el) {
    const std::string* v = el.FindAttribute("maxOccurs");
    return v != nullptr && *v != "0" && *v != "1";
  }

  // Expands one xs:element occurrence (global or local).
  Status ExpandElement(const XmlElement& element, schema::SchemaTree* tree,
                       schema::NodeId parent,
                       std::vector<std::string>* type_stack, int depth) {
    if (depth >= options_.max_depth) {
      return Status::FailedPrecondition("XSD expansion exceeds max depth");
    }
    // ref= resolves to a global element.
    if (const std::string* ref = element.FindAttribute("ref")) {
      std::string local(StripPrefix(*ref));
      auto it = global_elements_.find(local);
      if (it == global_elements_.end()) {
        // Unknown ref: record as a leaf named after the reference.
        schema::NodeProperties props;
        props.name = local;
        props.optional = IsOptional(element);
        props.repeatable = IsRepeatable(element);
        if (parent == schema::kInvalidNode) return Status::OK();
        tree->AddNode(parent, std::move(props));
        return Status::OK();
      }
      if (std::find(type_stack->begin(), type_stack->end(),
                    "element:" + local) != type_stack->end()) {
        if (options_.fail_on_recursion) {
          return Status::FailedPrecondition("recursive element ref '" +
                                            local + "'");
        }
        return Status::OK();  // Cut recursion.
      }
      type_stack->push_back("element:" + local);
      Status st = ExpandNamedElement(*it->second, element, tree, parent,
                                     type_stack, depth);
      type_stack->pop_back();
      return st;
    }
    return ExpandNamedElement(element, element, tree, parent, type_stack,
                              depth);
  }

  // `decl` carries name/type/children; `occurrence` carries min/maxOccurs
  // (they differ for ref= uses).
  Status ExpandNamedElement(const XmlElement& decl,
                            const XmlElement& occurrence,
                            schema::SchemaTree* tree, schema::NodeId parent,
                            std::vector<std::string>* type_stack,
                            int depth) {
    const std::string* name = decl.FindAttribute("name");
    if (name == nullptr) {
      Warn("xs:element without name or ref skipped");
      return Status::OK();
    }
    schema::NodeProperties props;
    props.name = *name;
    props.optional = IsOptional(occurrence);
    props.repeatable = IsRepeatable(occurrence);

    const XmlElement* inline_complex = nullptr;
    const XmlElement* referenced_complex = nullptr;
    if (const std::string* type = decl.FindAttribute("type")) {
      std::string local(StripPrefix(*type));
      auto it = named_types_.find(local);
      if (it != named_types_.end()) {
        referenced_complex = it->second;
      } else {
        // Simple/builtin type: record as datatype.
        props.datatype = *type;
      }
    }
    for (const auto& child : decl.children) {
      std::string_view local = child->LocalName();
      if (local == "complexType") inline_complex = child.get();
      if (local == "simpleType" && props.datatype.empty()) {
        props.datatype = SimpleTypeName(*child);
      }
    }

    schema::NodeId node = tree->AddNode(parent, std::move(props));

    const XmlElement* complex =
        inline_complex != nullptr ? inline_complex : referenced_complex;
    if (complex == nullptr) return Status::OK();

    if (referenced_complex != nullptr) {
      const std::string* tname = referenced_complex->FindAttribute("name");
      std::string key = "type:" + (tname ? *tname : "");
      if (std::find(type_stack->begin(), type_stack->end(), key) !=
          type_stack->end()) {
        if (options_.fail_on_recursion) {
          return Status::FailedPrecondition("recursive type '" + key + "'");
        }
        return Status::OK();
      }
      type_stack->push_back(key);
      Status st = ExpandComplexType(*complex, tree, node, type_stack,
                                    depth + 1);
      type_stack->pop_back();
      return st;
    }
    return ExpandComplexType(*complex, tree, node, type_stack, depth + 1);
  }

  // Extracts a representative datatype string from an xs:simpleType
  // (restriction base if present).
  static std::string SimpleTypeName(const XmlElement& simple_type) {
    for (const auto& child : simple_type.children) {
      if (child->LocalName() == "restriction") {
        if (const std::string* base = child->FindAttribute("base")) {
          return *base;
        }
      }
    }
    return "xs:anySimpleType";
  }

  Status ExpandComplexType(const XmlElement& complex,
                           schema::SchemaTree* tree, schema::NodeId node,
                           std::vector<std::string>* type_stack, int depth) {
    if (depth >= options_.max_depth) {
      return Status::FailedPrecondition("XSD expansion exceeds max depth");
    }
    for (const auto& child : complex.children) {
      std::string_view local = child->LocalName();
      if (local == "sequence" || local == "choice" || local == "all") {
        XSM_RETURN_NOT_OK(
            ExpandParticle(*child, tree, node, type_stack, depth));
      } else if (local == "attribute") {
        AddAttribute(*child, tree, node);
      } else if (local == "complexContent" || local == "simpleContent") {
        for (const auto& content : child->children) {
          if (content->LocalName() == "extension" ||
              content->LocalName() == "restriction") {
            // Inherit base-type children first.
            if (const std::string* base =
                    content->FindAttribute("base")) {
              std::string base_local(StripPrefix(*base));
              auto it = named_types_.find(base_local);
              if (it != named_types_.end()) {
                std::string key = "type:" + base_local;
                if (std::find(type_stack->begin(), type_stack->end(),
                              key) == type_stack->end()) {
                  type_stack->push_back(key);
                  Status st = ExpandComplexType(*it->second, tree, node,
                                                type_stack, depth + 1);
                  type_stack->pop_back();
                  XSM_RETURN_NOT_OK(st);
                }
              }
            }
            XSM_RETURN_NOT_OK(ExpandComplexType(*content, tree, node,
                                                type_stack, depth + 1));
          }
        }
      } else if (local == "annotation") {
        continue;
      } else if (local == "anyAttribute" || local == "any") {
        continue;
      } else if (!options_.lenient) {
        return Status::ParseError("unsupported construct xs:" +
                                  std::string(local));
      } else {
        Warn("skipped unsupported construct xs:" + std::string(local));
      }
    }
    return Status::OK();
  }

  // Expands a model group (sequence/choice/all) under `node`.
  Status ExpandParticle(const XmlElement& group, schema::SchemaTree* tree,
                        schema::NodeId node,
                        std::vector<std::string>* type_stack, int depth) {
    for (const auto& child : group.children) {
      std::string_view local = child->LocalName();
      if (local == "element") {
        XSM_RETURN_NOT_OK(
            ExpandElement(*child, tree, node, type_stack, depth + 1));
      } else if (local == "sequence" || local == "choice" ||
                 local == "all") {
        XSM_RETURN_NOT_OK(
            ExpandParticle(*child, tree, node, type_stack, depth + 1));
      } else if (local == "annotation" || local == "any") {
        continue;
      } else if (!options_.lenient) {
        return Status::ParseError("unsupported particle xs:" +
                                  std::string(local));
      } else {
        Warn("skipped unsupported particle xs:" + std::string(local));
      }
    }
    return Status::OK();
  }

  void AddAttribute(const XmlElement& attribute, schema::SchemaTree* tree,
                    schema::NodeId node) {
    const std::string* name = attribute.FindAttribute("name");
    if (name == nullptr) {
      Warn("xs:attribute without name skipped");
      return;
    }
    schema::NodeProperties props;
    props.name = *name;
    props.kind = schema::NodeKind::kAttribute;
    if (const std::string* type = attribute.FindAttribute("type")) {
      props.datatype = *type;
    }
    const std::string* use = attribute.FindAttribute("use");
    props.optional = use == nullptr || *use != "required";
    tree->AddNode(node, std::move(props));
  }

  const XmlDocument& doc_;
  const XsdParseOptions& options_;
  XsdParseResult* out_;
  std::unordered_map<std::string, const XmlElement*> global_elements_;
  std::unordered_map<std::string, const XmlElement*> named_types_;
  std::unordered_map<std::string, const XmlElement*> named_simple_types_;
};

}  // namespace

Result<XsdParseResult> ParseXsd(std::string_view content,
                                const XsdParseOptions& options) {
  XSM_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(content));
  XsdParseResult result;
  XsdBuilder builder(doc, options, &result);
  XSM_RETURN_NOT_OK(builder.Build());
  return result;
}

}  // namespace xsm::xml
