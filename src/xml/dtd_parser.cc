#include "xml/dtd_parser.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace xsm::xml {

const DtdElementDecl* Dtd::FindElement(std::string_view name) const {
  for (const DtdElementDecl& e : elements) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

namespace {

bool IsDtdNameChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '_' || c == '-' || c == '.' || c == ':';
}

// Recursive-descent parser for one content model expression, e.g.
// "(title, author+, (isbn | issn)?, chapter*)". Collects child element
// references with cardinality flags.
class ContentModelParser {
 public:
  ContentModelParser(std::string_view model, DtdElementDecl* decl)
      : model_(model), decl_(decl) {}

  Status Parse() {
    SkipSpace();
    XSM_RETURN_NOT_OK(ParseGroup(/*repeat=*/false, /*opt=*/false));
    SkipSpace();
    if (pos_ != model_.size()) {
      return Status::ParseError("trailing characters in content model");
    }
    return Status::OK();
  }

 private:
  void SkipSpace() {
    while (pos_ < model_.size() &&
           std::isspace(static_cast<unsigned char>(model_[pos_]))) {
      ++pos_;
    }
  }

  // Reads a trailing cardinality operator if present.
  void ReadCardinality(bool* repeat, bool* opt) {
    if (pos_ >= model_.size()) return;
    char c = model_[pos_];
    if (c == '*') {
      *repeat = true;
      *opt = true;
      ++pos_;
    } else if (c == '+') {
      *repeat = true;
      ++pos_;
    } else if (c == '?') {
      *opt = true;
      ++pos_;
    }
  }

  // group := '(' item (sep item)* ')' card?   where sep is ',' or '|'.
  // item  := group | name card? | '#PCDATA'
  Status ParseGroup(bool repeat, bool opt) {
    SkipSpace();
    if (pos_ >= model_.size() || model_[pos_] != '(') {
      return Status::ParseError("expected '(' in content model");
    }
    ++pos_;
    bool is_choice = false;
    // First pass requires peeking at separators; parse items sequentially.
    std::vector<size_t> item_starts;
    while (true) {
      SkipSpace();
      if (pos_ < model_.size() && model_[pos_] == '(') {
        // Nested group: inherit current flags; choice-ness of this level is
        // applied after we know the separator, so conservatively pass
        // `opt` and patch below via is_choice handling (children of a
        // choice are optional; we approximate by treating any '|' level as
        // optional for all its items — matches how matchers use the flag).
        size_t before = decl_->children.size();
        XSM_RETURN_NOT_OK(ParseGroup(repeat, opt));
        item_starts.push_back(before);
      } else if (pos_ < model_.size() && model_[pos_] == '#') {
        // #PCDATA
        size_t start = pos_;
        ++pos_;
        while (pos_ < model_.size() && IsDtdNameChar(model_[pos_])) ++pos_;
        if (model_.substr(start, pos_ - start) != "#PCDATA") {
          return Status::ParseError("unknown token in content model");
        }
        decl_->has_pcdata = true;
        item_starts.push_back(decl_->children.size());
      } else {
        size_t start = pos_;
        while (pos_ < model_.size() && IsDtdNameChar(model_[pos_])) ++pos_;
        if (pos_ == start) {
          return Status::ParseError("expected name in content model");
        }
        DtdChildRef ref;
        ref.name = std::string(model_.substr(start, pos_ - start));
        ref.repeatable = repeat;
        ref.optional = opt;
        ReadCardinality(&ref.repeatable, &ref.optional);
        item_starts.push_back(decl_->children.size());
        decl_->children.push_back(std::move(ref));
      }
      SkipSpace();
      if (pos_ < model_.size() && (model_[pos_] == ',' ||
                                   model_[pos_] == '|')) {
        if (model_[pos_] == '|') is_choice = true;
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= model_.size() || model_[pos_] != ')') {
      return Status::ParseError("expected ')' in content model");
    }
    ++pos_;
    bool group_repeat = false;
    bool group_opt = false;
    ReadCardinality(&group_repeat, &group_opt);
    // Apply group-level flags to everything this group contributed.
    if (is_choice || group_repeat || group_opt) {
      size_t first =
          item_starts.empty() ? decl_->children.size() : item_starts.front();
      for (size_t i = first; i < decl_->children.size(); ++i) {
        if (is_choice) decl_->children[i].optional = true;
        if (group_opt) decl_->children[i].optional = true;
        if (group_repeat) decl_->children[i].repeatable = true;
      }
    }
    return Status::OK();
  }

  std::string_view model_;
  size_t pos_ = 0;
  DtdElementDecl* decl_;
};

// Splits "<!ATTLIST elem a1 CDATA #REQUIRED a2 (x|y) 'dflt'>" body into
// attribute declarations. `body` excludes the "<!ATTLIST" prefix and ">".
Status ParseAttlistBody(std::string_view body, Dtd* dtd) {
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < body.size() &&
           std::isspace(static_cast<unsigned char>(body[pos]))) {
      ++pos;
    }
  };
  auto read_token = [&]() -> std::string {
    skip_space();
    if (pos >= body.size()) return "";
    if (body[pos] == '(') {
      // Enumerated type: consume the whole parenthesized group.
      size_t start = pos;
      int depth = 0;
      while (pos < body.size()) {
        if (body[pos] == '(') ++depth;
        if (body[pos] == ')') {
          --depth;
          if (depth == 0) {
            ++pos;
            break;
          }
        }
        ++pos;
      }
      return std::string(body.substr(start, pos - start));
    }
    if (body[pos] == '"' || body[pos] == '\'') {
      char quote = body[pos];
      size_t start = ++pos;
      while (pos < body.size() && body[pos] != quote) ++pos;
      std::string value(body.substr(start, pos - start));
      if (pos < body.size()) ++pos;
      return "\"" + value + "\"";  // marker: quoted literal
    }
    size_t start = pos;
    while (pos < body.size() &&
           !std::isspace(static_cast<unsigned char>(body[pos]))) {
      ++pos;
    }
    return std::string(body.substr(start, pos - start));
  };

  std::string element = read_token();
  if (element.empty()) {
    return Status::ParseError("ATTLIST without element name");
  }
  while (true) {
    std::string attr = read_token();
    if (attr.empty()) break;
    std::string type = read_token();
    if (type.empty()) {
      return Status::ParseError("ATTLIST attribute without type");
    }
    DtdAttributeDecl decl;
    decl.element = element;
    decl.name = attr;
    decl.type = type[0] == '(' ? "enum" : type;
    // Default declaration: #REQUIRED | #IMPLIED | #FIXED "v" | "v".
    std::string dflt = read_token();
    if (dflt == "#REQUIRED") {
      decl.required = true;
    } else if (dflt == "#FIXED") {
      (void)read_token();  // the fixed literal
    } else if (dflt.empty()) {
      return Status::ParseError("ATTLIST attribute without default decl");
    }
    // #IMPLIED and quoted defaults need no extra handling.
    dtd->attributes.push_back(std::move(decl));
  }
  return Status::OK();
}

}  // namespace

Result<Dtd> ParseDtd(std::string_view content,
                     const DtdParseOptions& options) {
  Dtd dtd;
  size_t pos = 0;
  std::unordered_set<std::string> seen_elements;

  auto fail_or_warn = [&](const std::string& what) -> Status {
    if (options.lenient) {
      dtd.warnings.push_back(what);
      return Status::OK();
    }
    return Status::ParseError(what);
  };

  while (pos < content.size()) {
    // Find the next declaration.
    size_t lt = content.find('<', pos);
    if (lt == std::string_view::npos) break;
    if (content.substr(lt, 4) == "<!--") {
      size_t end = content.find("-->", lt + 4);
      if (end == std::string_view::npos) break;
      pos = end + 3;
      continue;
    }
    if (content.substr(lt, 2) == "<?") {
      size_t end = content.find("?>", lt + 2);
      if (end == std::string_view::npos) break;
      pos = end + 2;
      continue;
    }
    // Declaration runs to the matching '>' (no nested '<' inside DTDs
    // except in comments handled above; quoted literals may contain '>').
    size_t end = lt + 1;
    char quote = 0;
    while (end < content.size()) {
      char c = content[end];
      if (quote != 0) {
        if (c == quote) quote = 0;
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        break;
      }
      ++end;
    }
    if (end >= content.size()) {
      XSM_RETURN_NOT_OK(fail_or_warn("unterminated declaration"));
      break;
    }
    std::string_view decl = content.substr(lt, end - lt + 1);
    pos = end + 1;

    if (decl.find('%') != std::string_view::npos) {
      XSM_RETURN_NOT_OK(
          fail_or_warn("parameter entity in declaration (unsupported): " +
                       std::string(decl.substr(0, 60))));
      continue;
    }

    if (StartsWith(decl, "<!ELEMENT")) {
      std::string_view body = Trim(decl.substr(9, decl.size() - 10));
      size_t name_end = 0;
      while (name_end < body.size() && IsDtdNameChar(body[name_end])) {
        ++name_end;
      }
      if (name_end == 0) {
        XSM_RETURN_NOT_OK(fail_or_warn("ELEMENT without a name"));
        continue;
      }
      DtdElementDecl element;
      element.name = std::string(body.substr(0, name_end));
      std::string_view model = Trim(body.substr(name_end));
      Status model_status = Status::OK();
      if (model == "EMPTY") {
        element.is_empty = true;
      } else if (model == "ANY") {
        element.is_any = true;
      } else {
        ContentModelParser parser(model, &element);
        model_status = parser.Parse();
      }
      if (!model_status.ok()) {
        XSM_RETURN_NOT_OK(fail_or_warn("bad content model for '" +
                                       element.name +
                                       "': " + model_status.message()));
        continue;
      }
      // Deduplicate children (a name may appear several times in a model).
      std::vector<DtdChildRef> unique;
      std::unordered_set<std::string> names;
      for (DtdChildRef& ref : element.children) {
        if (names.insert(ref.name).second) {
          unique.push_back(std::move(ref));
        }
      }
      element.children = std::move(unique);
      if (seen_elements.insert(element.name).second) {
        dtd.elements.push_back(std::move(element));
      } else {
        XSM_RETURN_NOT_OK(
            fail_or_warn("duplicate element declaration '" + element.name +
                         "' ignored"));
      }
    } else if (StartsWith(decl, "<!ATTLIST")) {
      std::string_view body = decl.substr(9, decl.size() - 10);
      Status st = ParseAttlistBody(body, &dtd);
      if (!st.ok()) {
        XSM_RETURN_NOT_OK(fail_or_warn(st.message()));
      }
    } else if (StartsWith(decl, "<!ENTITY") ||
               StartsWith(decl, "<!NOTATION")) {
      // Not needed for schema-tree extraction.
      continue;
    } else {
      XSM_RETURN_NOT_OK(fail_or_warn("unknown declaration: " +
                                     std::string(decl.substr(0, 40))));
    }
  }
  return dtd;
}

namespace {

struct Expander {
  const Dtd* dtd;
  const DtdToSchemaOptions* options;
  std::unordered_map<std::string, std::vector<const DtdAttributeDecl*>>
      attrs_of;

  // Expands `decl` below `parent` (kInvalidNode for the root). `ancestors`
  // carries the names on the path for recursion detection.
  Status Expand(const DtdElementDecl& decl, schema::SchemaTree* tree,
                schema::NodeId parent, std::vector<std::string>* ancestors,
                const DtdChildRef* via_ref) {
    if (static_cast<int>(ancestors->size()) >= options->max_depth) {
      return Status::FailedPrecondition("DTD expansion exceeds max depth");
    }
    schema::NodeProperties props;
    props.name = decl.name;
    props.kind = schema::NodeKind::kElement;
    if (decl.has_pcdata) props.datatype = "PCDATA";
    if (via_ref != nullptr) {
      props.repeatable = via_ref->repeatable;
      props.optional = via_ref->optional;
    }
    schema::NodeId node = tree->AddNode(parent, std::move(props));

    // Attributes first (document order in the ATTLIST).
    if (options->include_attributes) {
      auto it = attrs_of.find(decl.name);
      if (it != attrs_of.end()) {
        for (const DtdAttributeDecl* attr : it->second) {
          schema::NodeProperties ap;
          ap.name = attr->name;
          ap.kind = schema::NodeKind::kAttribute;
          ap.datatype = attr->type;
          ap.optional = !attr->required;
          tree->AddNode(node, std::move(ap));
        }
      }
    }

    ancestors->push_back(decl.name);
    for (const DtdChildRef& ref : decl.children) {
      const DtdElementDecl* child = dtd->FindElement(ref.name);
      if (child == nullptr) {
        // Referenced but undeclared: keep as a leaf (common in crawled
        // DTDs).
        schema::NodeProperties leaf;
        leaf.name = ref.name;
        leaf.repeatable = ref.repeatable;
        leaf.optional = ref.optional;
        tree->AddNode(node, std::move(leaf));
        continue;
      }
      if (std::find(ancestors->begin(), ancestors->end(), ref.name) !=
          ancestors->end()) {
        if (options->fail_on_recursion) {
          return Status::FailedPrecondition("recursive element '" +
                                            ref.name + "'");
        }
        continue;  // Cut the recursive occurrence.
      }
      XSM_RETURN_NOT_OK(Expand(*child, tree, node, ancestors, &ref));
    }
    ancestors->pop_back();
    return Status::OK();
  }
};

}  // namespace

Result<std::vector<schema::SchemaTree>> DtdToSchemaTrees(
    const Dtd& dtd, const DtdToSchemaOptions& options) {
  std::vector<schema::SchemaTree> trees;
  if (dtd.elements.empty()) return trees;

  // Roots: declared elements not referenced by any other declared element.
  // Cyclic DTDs can leave declarations uncovered (everything referenced);
  // those are claimed greedily in declaration order — each uncovered
  // element becomes an extra root and marks its reachable set as covered,
  // so no vocabulary is lost and pure cycles yield a single tree.
  std::unordered_set<std::string> referenced;
  for (const DtdElementDecl& e : dtd.elements) {
    for (const DtdChildRef& ref : e.children) {
      if (ref.name != e.name) referenced.insert(ref.name);
    }
  }
  std::unordered_set<std::string> covered;
  auto mark_reachable = [&](const DtdElementDecl& root) {
    std::vector<const DtdElementDecl*> stack{&root};
    while (!stack.empty()) {
      const DtdElementDecl* e = stack.back();
      stack.pop_back();
      if (!covered.insert(e->name).second) continue;
      for (const DtdChildRef& ref : e->children) {
        const DtdElementDecl* child = dtd.FindElement(ref.name);
        if (child != nullptr) stack.push_back(child);
      }
    }
  };
  std::vector<const DtdElementDecl*> roots;
  for (const DtdElementDecl& e : dtd.elements) {
    if (!referenced.count(e.name)) {
      roots.push_back(&e);
      mark_reachable(e);
    }
  }
  for (const DtdElementDecl& e : dtd.elements) {
    if (!covered.count(e.name)) {
      roots.push_back(&e);
      mark_reachable(e);
    }
  }

  Expander expander;
  expander.dtd = &dtd;
  expander.options = &options;
  for (const DtdAttributeDecl& attr : dtd.attributes) {
    expander.attrs_of[attr.element].push_back(&attr);
  }

  for (const DtdElementDecl* root : roots) {
    schema::SchemaTree tree;
    std::vector<std::string> ancestors;
    XSM_RETURN_NOT_OK(expander.Expand(*root, &tree, schema::kInvalidNode,
                                      &ancestors, nullptr));
    trees.push_back(std::move(tree));
  }
  return trees;
}

}  // namespace xsm::xml
