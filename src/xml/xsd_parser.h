// XML Schema (XSD) subset parser: turns xs:schema documents into schema
// trees, one per global element declaration.
//
// Supported constructs (the profile that covers typical crawled schemas):
// global/local xs:element (name=/ref=/type=/inline types, minOccurs,
// maxOccurs), named and anonymous xs:complexType, xs:sequence / xs:choice /
// xs:all (arbitrarily nested), xs:attribute (incl. inside complex types),
// xs:simpleType (collapsed to a datatype string), xs:complexContent /
// xs:extension (base-type children are inherited), xs:annotation (skipped).
// Unsupported constructs are skipped with a warning in lenient mode.
#ifndef XSM_XML_XSD_PARSER_H_
#define XSM_XML_XSD_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm::xml {

struct XsdParseOptions {
  /// Skip-and-warn on unsupported constructs instead of failing.
  bool lenient = true;
  /// Expansion depth cap.
  int max_depth = 64;
  /// Recursive type/element references: fail or cut.
  bool fail_on_recursion = false;
};

struct XsdParseResult {
  /// One tree per global element declaration.
  std::vector<schema::SchemaTree> trees;
  std::vector<std::string> warnings;
};

/// Parses an XSD document (full XML text).
Result<XsdParseResult> ParseXsd(std::string_view content,
                                const XsdParseOptions& options = {});

}  // namespace xsm::xml

#endif  // XSM_XML_XSD_PARSER_H_
