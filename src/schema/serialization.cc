#include "schema/serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace xsm::schema {

namespace {

constexpr std::string_view kHeader = "#xsm-forest v1";

// %-escape spaces, percent signs and newlines so fields stay
// whitespace-delimited.
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case ' ':
        out += "%20";
        break;
      case '%':
        out += "%25";
        break;
      case '\n':
        out += "%0A";
        break;
      case '\t':
        out += "%09";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]);
      int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace

std::string SerializeForest(const SchemaForest& forest) {
  std::string out(kHeader);
  out += '\n';
  for (TreeId t = 0; t < static_cast<TreeId>(forest.num_trees()); ++t) {
    const SchemaTree& tree = forest.tree(t);
    out += "tree ";
    out += Escape(forest.source(t));
    out += '\n';
    for (NodeId n = 0; n < static_cast<NodeId>(tree.size()); ++n) {
      const NodeProperties& props = tree.props(n);
      std::string flags;
      if (props.repeatable) flags += 'r';
      if (props.optional) flags += 'o';
      if (flags.empty()) flags = "-";
      out += StringPrintf(
          "node %d %d %c %s %s", n, tree.parent(n),
          props.kind == NodeKind::kAttribute ? 'A' : 'E', flags.c_str(),
          Escape(props.name).c_str());
      if (!props.datatype.empty()) {
        out += ' ';
        out += Escape(props.datatype);
      }
      out += '\n';
    }
    out += "end\n";
  }
  return out;
}

Result<SchemaForest> DeserializeForest(std::string_view text) {
  std::vector<std::string> lines = Split(std::string(text), '\n');
  if (lines.empty() || Trim(lines[0]) != kHeader) {
    return Status::ParseError("missing #xsm-forest v1 header");
  }
  SchemaForest forest;
  SchemaTree current;
  std::string current_source;
  bool in_tree = false;

  for (size_t ln = 1; ln < lines.size(); ++ln) {
    std::string_view line = Trim(lines[ln]);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(std::string(line), ' ');
    const std::string& tag = fields[0];
    auto err = [&](const std::string& what) {
      return Status::ParseError("line " + std::to_string(ln + 1) + ": " +
                                what);
    };
    if (tag == "tree") {
      if (in_tree) return err("nested 'tree' (missing 'end')");
      in_tree = true;
      current = SchemaTree();
      current_source = fields.size() > 1 ? Unescape(fields[1]) : "";
    } else if (tag == "node") {
      if (!in_tree) return err("'node' outside a tree");
      if (fields.size() < 6) return err("short node line");
      int id = std::atoi(fields[1].c_str());
      int parent = std::atoi(fields[2].c_str());
      if (id != static_cast<int>(current.size())) {
        return err("node ids must be dense and in order");
      }
      if (parent != -1 &&
          (parent < 0 || parent >= static_cast<int>(current.size()))) {
        return err("parent id out of range");
      }
      if ((parent == -1) != current.empty()) {
        return err("exactly the first node must be the root");
      }
      NodeProperties props;
      if (fields[3] == "A") {
        props.kind = NodeKind::kAttribute;
      } else if (fields[3] == "E") {
        props.kind = NodeKind::kElement;
      } else {
        return err("bad node kind '" + fields[3] + "'");
      }
      for (char c : fields[4]) {
        if (c == 'r') props.repeatable = true;
        if (c == 'o') props.optional = true;
      }
      props.name = Unescape(fields[5]);
      if (fields.size() > 6) props.datatype = Unescape(fields[6]);
      current.AddNode(static_cast<NodeId>(parent), std::move(props));
    } else if (tag == "end") {
      if (!in_tree) return err("'end' outside a tree");
      XSM_RETURN_NOT_OK(current.Validate());
      forest.AddTree(std::move(current), std::move(current_source));
      current = SchemaTree();
      current_source.clear();
      in_tree = false;
    } else {
      return err("unknown tag '" + tag + "'");
    }
  }
  if (in_tree) return Status::ParseError("unterminated tree at end of input");
  return forest;
}

Status SaveForestToFile(const SchemaForest& forest,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << SerializeForest(forest);
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<SchemaForest> LoadForestFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on " + path);
  return DeserializeForest(buffer.str());
}

}  // namespace xsm::schema
