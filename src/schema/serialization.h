// Forest serialization: a versioned, line-based text format so repositories
// (crawled or synthetic) can be snapshotted and reloaded without re-parsing
// or re-generating.
//
// Format:
//   #xsm-forest v1
//   tree <source>                  (source is %-escaped)
//   node <id> <parent> <E|A> <flags> <name> [datatype]
//   ...
//   end
//
// `flags` is a compact letter set: 'r' repeatable, 'o' optional, '-' none.
// Node ids are the tree's own dense ids; parent of the root is -1.
#ifndef XSM_SCHEMA_SERIALIZATION_H_
#define XSM_SCHEMA_SERIALIZATION_H_

#include <string>
#include <string_view>

#include "schema/schema_forest.h"
#include "util/status.h"

namespace xsm::schema {

/// Serializes the whole forest into the text format above.
std::string SerializeForest(const SchemaForest& forest);

/// Parses text produced by SerializeForest. Fails with ParseError on
/// malformed input (wrong header, dangling parents, bad ids).
Result<SchemaForest> DeserializeForest(std::string_view text);

/// File convenience wrappers.
Status SaveForestToFile(const SchemaForest& forest, const std::string& path);
Result<SchemaForest> LoadForestFromFile(const std::string& path);

}  // namespace xsm::schema

#endif  // XSM_SCHEMA_SERIALIZATION_H_
