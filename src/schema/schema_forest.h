// The repository schema R: a forest of schema trees. The paper treats R as
// "a collection of a large number of trees" (one real-world schema may
// contribute several roots, each one tree).
#ifndef XSM_SCHEMA_SCHEMA_FOREST_H_
#define XSM_SCHEMA_SCHEMA_FOREST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "schema/schema_tree.h"

namespace xsm::schema {

/// Index of a tree within a SchemaForest.
using TreeId = int32_t;

/// Globally identifies a node in a forest: (tree, node-within-tree).
struct NodeRef {
  TreeId tree = -1;
  NodeId node = kInvalidNode;

  bool valid() const { return tree >= 0 && node >= 0; }

  friend bool operator==(const NodeRef& a, const NodeRef& b) {
    return a.tree == b.tree && a.node == b.node;
  }
  friend bool operator!=(const NodeRef& a, const NodeRef& b) {
    return !(a == b);
  }
  friend bool operator<(const NodeRef& a, const NodeRef& b) {
    return a.tree != b.tree ? a.tree < b.tree : a.node < b.node;
  }
};

/// Repository of schema trees with per-tree provenance (source name) and
/// aggregate statistics.
///
/// Trees are held as shared_ptr<const SchemaTree> and never mutated after
/// AddTree, so two forests may share tree payloads: live::RepositoryManager
/// builds each generation's forest by re-adding the previous generation's
/// tree pointers (copy-on-write — only touched trees get new payloads).
class SchemaForest {
 public:
  /// Adds a tree; `source` records where it came from (file path or
  /// generator tag). Returns its TreeId.
  TreeId AddTree(SchemaTree tree, std::string source = "");

  /// Adds an already-shared tree without copying its payload — the
  /// copy-on-write path. `tree` must be non-null; it is frozen by contract
  /// (no caller may mutate it afterwards).
  TreeId AddTree(std::shared_ptr<const SchemaTree> tree,
                 std::string source = "");

  size_t num_trees() const { return trees_.size(); }
  const SchemaTree& tree(TreeId id) const {
    return *trees_[static_cast<size_t>(id)];
  }
  /// The shared handle of a tree, for building a successor forest that
  /// shares this tree's payload. Pointer equality across forests certifies
  /// that two trees are the same frozen object.
  const std::shared_ptr<const SchemaTree>& tree_ptr(TreeId id) const {
    return trees_[static_cast<size_t>(id)];
  }
  const std::string& source(TreeId id) const {
    return sources_[static_cast<size_t>(id)];
  }

  /// Total number of element/attribute nodes over all trees (the paper's
  /// repository size measure, e.g. "9759 elements, distributed over 262
  /// trees").
  size_t total_nodes() const { return total_nodes_; }

  const NodeProperties& props(NodeRef ref) const {
    return tree(ref.tree).props(ref.node);
  }
  const std::string& name(NodeRef ref) const {
    return tree(ref.tree).name(ref.node);
  }

  /// Invokes `fn` for every node of every tree.
  void ForEachNode(const std::function<void(NodeRef)>& fn) const;

  /// Validates all member trees.
  Status Validate() const;

 private:
  std::vector<std::shared_ptr<const SchemaTree>> trees_;
  std::vector<std::string> sources_;
  size_t total_nodes_ = 0;
};

}  // namespace xsm::schema

template <>
struct std::hash<xsm::schema::NodeRef> {
  size_t operator()(const xsm::schema::NodeRef& r) const noexcept {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(static_cast<uint32_t>(r.tree)) << 32) |
        static_cast<uint32_t>(r.node));
  }
};

#endif  // XSM_SCHEMA_SCHEMA_FOREST_H_
