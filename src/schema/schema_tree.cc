#include "schema/schema_tree.h"

#include <cassert>
#include <cctype>

#include "util/string_util.h"

namespace xsm::schema {

NodeId SchemaTree::AddNode(NodeId parent, NodeProperties props) {
  assert((nodes_.empty()) == (parent == kInvalidNode) &&
         "root must be added first and exactly once");
  Node node;
  node.parent = parent;
  node.props = std::move(props);
  if (parent != kInvalidNode) {
    node.depth = nodes_[CheckId(parent)].depth + 1;
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  if (parent != kInvalidNode) {
    nodes_[static_cast<size_t>(parent)].children.push_back(id);
  }
  return id;
}

std::vector<NodeId> SchemaTree::PreOrder() const {
  std::vector<NodeId> order;
  if (nodes_.empty()) return order;
  order.reserve(nodes_.size());
  std::vector<NodeId> stack{root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    const auto& ch = children(n);
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

Status SchemaTree::Validate() const {
  if (nodes_.empty()) return Status::OK();
  if (nodes_[0].parent != kInvalidNode) {
    return Status::Internal("node 0 is not a root");
  }
  size_t reachable = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (i > 0) {
      if (n.parent < 0 || static_cast<size_t>(n.parent) >= nodes_.size()) {
        return Status::Internal("dangling parent link");
      }
      if (n.parent >= static_cast<NodeId>(i)) {
        return Status::Internal("parent id not smaller than child id");
      }
      if (n.depth != nodes_[static_cast<size_t>(n.parent)].depth + 1) {
        return Status::Internal("inconsistent depth");
      }
      bool found = false;
      for (NodeId c : nodes_[static_cast<size_t>(n.parent)].children) {
        if (c == static_cast<NodeId>(i)) {
          found = true;
          break;
        }
      }
      if (!found) return Status::Internal("child missing from parent list");
    }
    reachable += n.children.size();
  }
  if (reachable != nodes_.size() - 1) {
    return Status::Internal("child-list count does not match node count");
  }
  return Status::OK();
}

void SchemaTree::SerializeTo(wire::Writer* out) const {
  // Column layout: the parent links go out as one bulk vector and the
  // fixed-width per-node bits as one byte each, so a load decodes arrays,
  // not records. kind and flags pack into one byte (kind << 2 |
  // repeatable << 1 | optional).
  out->U64(nodes_.size());
  std::vector<int32_t> parents;
  parents.reserve(nodes_.size());
  for (const Node& node : nodes_) parents.push_back(node.parent);
  out->I32Vec(parents);
  for (const Node& node : nodes_) {
    out->U8(static_cast<uint8_t>(
        (static_cast<uint8_t>(node.props.kind) << 2) |
        (node.props.repeatable ? 2u : 0u) |
        (node.props.optional ? 1u : 0u)));
  }
  for (const Node& node : nodes_) out->Str(node.props.name);
  for (const Node& node : nodes_) out->Str(node.props.datatype);
}

Result<SchemaTree> SchemaTree::DeserializeBinary(wire::Reader* in) {
  const uint64_t count = in->U64();
  // No writer produces empty trees (parsers and DeltaBuilder both demand a
  // root), so an empty one is damage.
  if (in->ok() && count == 0) in->Fail("schema tree: empty tree");
  SchemaTree tree;
  std::vector<int32_t> parents;
  if (in->ok() && count > 0) {
    if (!in->I32Vec(&parents) || parents.size() != count) {
      in->Fail("schema tree: parent column size mismatch");
    }
  }
  // Parent links define the whole shape; validate them up front (the
  // reconstruction below indexes by them), then build nodes directly —
  // children counted first so every child list is allocated exactly once.
  for (uint64_t i = 0; in->ok() && i < count; ++i) {
    const bool valid = i == 0 ? parents[0] == kInvalidNode
                              : parents[i] >= 0 &&
                                    static_cast<uint64_t>(parents[i]) < i;
    if (!valid) in->Fail("schema tree: parent id out of range");
  }
  XSM_RETURN_NOT_OK(in->status());

  tree.nodes_.resize(count);
  std::vector<uint32_t> child_counts(count, 0);
  for (uint64_t i = 1; i < count; ++i) {
    ++child_counts[static_cast<size_t>(parents[i])];
  }
  for (uint64_t i = 0; i < count; ++i) {
    Node& node = tree.nodes_[i];
    node.parent = parents[i];
    node.children.reserve(child_counts[i]);
    if (i > 0) {
      Node& parent = tree.nodes_[static_cast<size_t>(parents[i])];
      node.depth = parent.depth + 1;
      parent.children.push_back(static_cast<NodeId>(i));
    }
  }
  for (uint64_t i = 0; i < count && in->ok(); ++i) {
    const uint8_t packed = in->U8();
    if (packed >> 2 > static_cast<uint8_t>(NodeKind::kAttribute)) {
      in->Fail("schema tree: unknown node kind");
      break;
    }
    NodeProperties& props = tree.nodes_[i].props;
    props.kind = static_cast<NodeKind>(packed >> 2);
    props.repeatable = (packed & 2u) != 0;
    props.optional = (packed & 1u) != 0;
  }
  for (uint64_t i = 0; i < count && in->ok(); ++i) {
    tree.nodes_[i].props.name = in->Str();
  }
  for (uint64_t i = 0; i < count && in->ok(); ++i) {
    tree.nodes_[i].props.datatype = in->Str();
  }
  XSM_RETURN_NOT_OK(in->status());
  Status valid = tree.Validate();
  if (!valid.ok()) {
    return Status::Corruption("schema tree: " + valid.ToString());
  }
  return tree;
}

std::string SchemaTree::ToString() const {
  std::string out;
  if (nodes_.empty()) return out;
  // Iterative pre-order with explicit depth to render indentation.
  std::vector<NodeId> stack{root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(depth(n)) * 2, ' ');
    if (props(n).kind == NodeKind::kAttribute) out += '@';
    out += name(n);
    if (!props(n).datatype.empty()) {
      out += " : ";
      out += props(n).datatype;
    }
    if (props(n).repeatable) out += " *";
    out += '\n';
    const auto& ch = children(n);
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

NodeId SchemaTree::CheckId(NodeId n) const {
  assert(n >= 0 && static_cast<size_t>(n) < nodes_.size());
  return n;
}

namespace {

bool IsNameChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '_' || c == '.' || c == ':' || c == '-';
}

// Recursive-descent parser for the tree-spec notation.
class SpecParser {
 public:
  explicit SpecParser(const std::string& spec) : spec_(spec) {}

  Result<SchemaTree> Parse() {
    SchemaTree tree;
    XSM_RETURN_NOT_OK(ParseNode(&tree, kInvalidNode));
    SkipSpace();
    if (pos_ != spec_.size()) {
      return Status::ParseError("trailing characters in tree spec at offset " +
                                std::to_string(pos_));
    }
    return tree;
  }

 private:
  void SkipSpace() {
    while (pos_ < spec_.size() &&
           std::isspace(static_cast<unsigned char>(spec_[pos_]))) {
      ++pos_;
    }
  }

  Status ParseNode(SchemaTree* tree, NodeId parent) {
    SkipSpace();
    NodeProperties props;
    if (pos_ < spec_.size() && spec_[pos_] == '@') {
      props.kind = NodeKind::kAttribute;
      ++pos_;
    }
    size_t start = pos_;
    while (pos_ < spec_.size() && IsNameChar(spec_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::ParseError("expected node name at offset " +
                                std::to_string(pos_));
    }
    props.name = spec_.substr(start, pos_ - start);
    NodeId id = tree->AddNode(parent, std::move(props));
    SkipSpace();
    if (pos_ < spec_.size() && spec_[pos_] == '(') {
      ++pos_;  // '('
      while (true) {
        XSM_RETURN_NOT_OK(ParseNode(tree, id));
        SkipSpace();
        if (pos_ < spec_.size() && spec_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipSpace();
      if (pos_ >= spec_.size() || spec_[pos_] != ')') {
        return Status::ParseError("expected ')' at offset " +
                                  std::to_string(pos_));
      }
      ++pos_;
    }
    return Status::OK();
  }

  const std::string& spec_;
  size_t pos_ = 0;
};

void SpecOf(const SchemaTree& tree, NodeId n, std::string* out) {
  if (tree.props(n).kind == NodeKind::kAttribute) *out += '@';
  *out += tree.name(n);
  const auto& ch = tree.children(n);
  if (ch.empty()) return;
  *out += '(';
  for (size_t i = 0; i < ch.size(); ++i) {
    if (i > 0) *out += ',';
    SpecOf(tree, ch[i], out);
  }
  *out += ')';
}

}  // namespace

Result<SchemaTree> ParseTreeSpec(const std::string& spec) {
  return SpecParser(spec).Parse();
}

std::string ToTreeSpec(const SchemaTree& tree) {
  std::string out;
  if (!tree.empty()) SpecOf(tree, tree.root(), &out);
  return out;
}

}  // namespace xsm::schema
