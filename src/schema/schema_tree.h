// Schema graph data model (paper Def. 1), specialized to trees as in the
// paper's experimental setting: an XML schema is a rooted tree of element /
// attribute nodes, each carrying (property, value) pairs via the H function.
#ifndef XSM_SCHEMA_SCHEMA_TREE_H_
#define XSM_SCHEMA_SCHEMA_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/wire.h"

namespace xsm::schema {

/// Index of a node within its SchemaTree. Node ids are dense [0, size()).
using NodeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// Whether a node models an XML element or an attribute. The paper counts
/// both as "element (attribute) nodes" of the schema graph.
enum class NodeKind : uint8_t {
  kElement = 0,
  kAttribute = 1,
};

/// The H function of Def. 1: properties attached to a node.
struct NodeProperties {
  /// Tag / attribute name, e.g. "authorName". The primary matching hint.
  std::string name;
  NodeKind kind = NodeKind::kElement;
  /// Declared simple type if known (e.g. "xs:string", "CDATA"); may be empty.
  std::string datatype;
  /// True if the element may repeat under its parent ('*' or '+' in a DTD).
  bool repeatable = false;
  /// True if the element/attribute is optional ('?' or #IMPLIED).
  bool optional = false;
};

/// A rooted, ordered tree representing one XML schema (Def. 1 with N, E, I
/// implied by parent/child links and H carried in NodeProperties).
///
/// Nodes are added top-down: the first added node is the root, later nodes
/// name an existing parent. Ids are assigned in insertion order, so a tree
/// built by a pre-order walk has pre-order ids (the parsers guarantee this).
class SchemaTree {
 public:
  SchemaTree() = default;

  /// Adds a node. `parent` must be kInvalidNode for the first node (the
  /// root) and a valid existing id afterwards. Returns the new node's id.
  NodeId AddNode(NodeId parent, NodeProperties props);

  /// Number of nodes |N|.
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Number of edges |E| (= |N| - 1 for a non-empty tree).
  int64_t num_edges() const {
    return nodes_.empty() ? 0 : static_cast<int64_t>(nodes_.size()) - 1;
  }

  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  NodeId parent(NodeId n) const { return nodes_[CheckId(n)].parent; }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[CheckId(n)].children;
  }
  /// Depth in edges from the root (root = 0).
  int depth(NodeId n) const { return nodes_[CheckId(n)].depth; }

  const NodeProperties& props(NodeId n) const {
    return nodes_[CheckId(n)].props;
  }
  NodeProperties* mutable_props(NodeId n) {
    return &nodes_[CheckId(n)].props;
  }
  /// Shorthand for props(n).name — the paper's name(n).
  const std::string& name(NodeId n) const { return props(n).name; }

  bool IsLeaf(NodeId n) const { return children(n).empty(); }

  /// Node ids in pre-order (document order).
  std::vector<NodeId> PreOrder() const;

  /// Structural invariants: single root, acyclic parent links, consistent
  /// child lists and depths.
  Status Validate() const;

  /// Binary serialization hook for the snapshot store: column layout in id
  /// order — the parent-link vector, one packed kind/flags byte per node,
  /// then the name and datatype columns. Ids are insertion order and every
  /// parent precedes its children, so the inverse rebuilds nodes in one
  /// pass with exact child-list allocation.
  void SerializeTo(wire::Writer* out) const;

  /// Inverse of SerializeTo. Corruption on inconsistent counts or parent
  /// links; the returned tree additionally passes Validate().
  static Result<SchemaTree> DeserializeBinary(wire::Reader* in);

  /// Human-readable indented rendering, for debugging and examples.
  std::string ToString() const;

 private:
  struct Node {
    NodeId parent = kInvalidNode;
    int depth = 0;
    NodeProperties props;
    std::vector<NodeId> children;
  };

  NodeId CheckId(NodeId n) const;

  std::vector<Node> nodes_;
};

/// Parses the compact tree-spec notation used throughout the tests and
/// examples:  name(child1,child2(leaf),@attr)
/// '@' marks attribute nodes; names may contain [A-Za-z0-9_.:-].
Result<SchemaTree> ParseTreeSpec(const std::string& spec);

/// Inverse of ParseTreeSpec (children in insertion order).
std::string ToTreeSpec(const SchemaTree& tree);

}  // namespace xsm::schema

#endif  // XSM_SCHEMA_SCHEMA_TREE_H_
