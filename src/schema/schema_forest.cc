#include "schema/schema_forest.h"

namespace xsm::schema {

TreeId SchemaForest::AddTree(SchemaTree tree, std::string source) {
  return AddTree(std::make_shared<const SchemaTree>(std::move(tree)),
                 std::move(source));
}

TreeId SchemaForest::AddTree(std::shared_ptr<const SchemaTree> tree,
                             std::string source) {
  total_nodes_ += tree->size();
  trees_.push_back(std::move(tree));
  sources_.push_back(std::move(source));
  return static_cast<TreeId>(trees_.size() - 1);
}

void SchemaForest::ForEachNode(
    const std::function<void(NodeRef)>& fn) const {
  for (TreeId t = 0; t < static_cast<TreeId>(trees_.size()); ++t) {
    const SchemaTree& tr = *trees_[static_cast<size_t>(t)];
    for (NodeId n = 0; n < static_cast<NodeId>(tr.size()); ++n) {
      fn(NodeRef{t, n});
    }
  }
}

Status SchemaForest::Validate() const {
  for (const std::shared_ptr<const SchemaTree>& t : trees_) {
    XSM_RETURN_NOT_OK(t->Validate());
  }
  return Status::OK();
}

}  // namespace xsm::schema
