// xsm::store — versioned on-disk persistence for RepositorySnapshots.
//
// The paper's economics rest on amortizing repository preprocessing (parse
// → TreeIndex labeling → NameDictionary folds/signatures/posting lists →
// content fingerprints) across many personal-schema queries. Without a
// store, every process restart forfeits that investment and rebuilds from
// raw schema text. This module turns restart into a single load: a saved
// snapshot file carries every derived structure verbatim, so a warm boot
// deserializes instead of re-indexing, and a warm-started generation chain
// continues delta ingestion from the persisted generation number.
//
// File format (magic "XSMSNAP\0", little-endian, format version 1):
//
//   header   magic[8] | u32 version | u32 section_count | u64 generation
//            | u64 forest_fingerprint | u64 trees | u64 total_nodes
//            | u32 crc32(header fields)
//   section  u32 id | u32 crc32(payload) | u64 payload_size | payload
//
// Version-1 sections, in order: kForest (trees + sources), kIndex
// (TreeIndex labelings), kDictionary (NameDictionary), kFingerprints
// (per-tree content hashes). Every section is individually CRC-protected.
//
// Failure taxonomy (typed, never UB):
//   - kIOError        file missing / unreadable / unwritable
//   - kParseError     not a snapshot file at all (bad magic)
//   - kUnimplemented  format version newer than this build reads
//   - kCorruption     truncation, CRC mismatch, or any internal
//                     inconsistency a CRC-clean but damaged/crafted file
//                     could carry (out-of-range ids, bad counts, ...)
//
// Beyond the CRCs, a load recomputes the content fingerprints from the
// deserialized forest and demands they equal the saved ones — a loaded
// snapshot provably holds the content that was saved.
//
// Versioning policy: the reader accepts format versions <= kFormatVersion
// and rejects newer ones with kUnimplemented (forward compatibility is
// explicitly refused rather than guessed at). Any layout change bumps
// kFormatVersion; old readers then fail typed instead of misreading.
#ifndef XSM_STORE_SNAPSHOT_STORE_H_
#define XSM_STORE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "service/repository_snapshot.h"
#include "util/io.h"
#include "util/status.h"

namespace xsm::store {

/// Format version this build writes (and the newest it reads).
inline constexpr uint32_t kFormatVersion = 1;

/// Section identifiers of format version 1.
enum class Section : uint32_t {
  kForest = 1,
  kIndex = 2,
  kDictionary = 3,
  kFingerprints = 4,
};

/// Header facts of one serialized snapshot (cheap to obtain: Probe* reads
/// only the fixed-size header, not the sections).
struct SnapshotFileInfo {
  uint32_t format_version = 0;
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
  uint64_t trees = 0;
  uint64_t total_nodes = 0;
  /// Whole-file size in bytes (header + all sections).
  uint64_t total_bytes = 0;
};

/// Serializes `snapshot` into the binary format above.
std::string SerializeSnapshot(const service::RepositorySnapshot& snapshot);

/// Reconstructs a snapshot from SerializeSnapshot output without
/// re-parsing, re-labeling, or re-folding anything. See the failure
/// taxonomy above for what damaged input returns.
Result<std::shared_ptr<const service::RepositorySnapshot>>
DeserializeSnapshot(std::string_view bytes);

/// Validates the header only: magic, version, and that the section table
/// fits the byte count. Does not verify CRCs or decode sections.
Result<SnapshotFileInfo> ProbeSnapshot(std::string_view bytes);

/// Saves atomically (util::AtomicFileWriter: unique tmp + fsync + rename
/// + directory fsync), so a crash mid-save can never leave a half-written
/// file under the final name. All I/O goes through `env` (nullptr = the
/// real filesystem); the fault-injection suites substitute a scheduled
/// one. Returns what was written.
Result<SnapshotFileInfo> SaveSnapshotToFile(
    const service::RepositorySnapshot& snapshot, const std::string& path,
    util::io::Env* env = nullptr);

/// Loads a file produced by SaveSnapshotToFile.
Result<std::shared_ptr<const service::RepositorySnapshot>>
LoadSnapshotFromFile(const std::string& path, util::io::Env* env = nullptr);

/// Header peek of a snapshot file (reads the whole file, validates only
/// the header).
Result<SnapshotFileInfo> ProbeSnapshotFile(const std::string& path,
                                           util::io::Env* env = nullptr);

}  // namespace xsm::store

#endif  // XSM_STORE_SNAPSHOT_STORE_H_
