#include "store/snapshot_store.h"

#include <cstring>
#include <utility>
#include <vector>

#include "label/tree_index.h"
#include "match/name_dictionary.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/io.h"
#include "util/wire.h"

namespace xsm::store {

namespace {

constexpr char kMagic[8] = {'X', 'S', 'M', 'S', 'N', 'A', 'P', '\0'};
// magic + version + section_count + generation + fingerprint + trees +
// total_nodes + header crc. The header fields live outside every section,
// so they carry their own CRC (over the fields, not the magic).
constexpr size_t kHeaderFieldsSize = 4 + 4 + 8 + 8 + 8 + 8;
constexpr size_t kHeaderSize = 8 + kHeaderFieldsSize + 4;
// id + crc + payload_size.
constexpr size_t kSectionFrameSize = 4 + 4 + 8;
constexpr uint32_t kSectionCount = 4;

const char* SectionName(Section id) {
  switch (id) {
    case Section::kForest:
      return "forest";
    case Section::kIndex:
      return "index";
    case Section::kDictionary:
      return "dictionary";
    case Section::kFingerprints:
      return "fingerprints";
  }
  return "unknown";
}

void AppendSection(std::string* out, Section id,
                   const std::string& payload) {
  wire::Writer frame(out);
  frame.U32(static_cast<uint32_t>(id));
  frame.U32(wire::Crc32c(payload));
  frame.U64(payload.size());
  out->append(payload);
}

/// Reads one section's framing and payload window, in the fixed v1 order.
/// CRC is verified here, so decoders below run on bytes proven to be the
/// ones that were written.
Result<std::string_view> TakeSection(std::string_view bytes,
                                     size_t* cursor, Section expected) {
  if (bytes.size() - *cursor < kSectionFrameSize) {
    return Status::Corruption("truncated before " +
                              std::string(SectionName(expected)) +
                              " section");
  }
  wire::Reader frame(bytes.substr(*cursor, kSectionFrameSize));
  const uint32_t id = frame.U32();
  const uint32_t crc = frame.U32();
  const uint64_t size = frame.U64();
  *cursor += kSectionFrameSize;
  if (id != static_cast<uint32_t>(expected)) {
    return Status::Corruption("expected " +
                              std::string(SectionName(expected)) +
                              " section, found id " + std::to_string(id));
  }
  if (size > bytes.size() - *cursor) {
    return Status::Corruption("truncated " +
                              std::string(SectionName(expected)) +
                              " section");
  }
  std::string_view payload = bytes.substr(*cursor, size);
  *cursor += static_cast<size_t>(size);
  if (wire::Crc32c(payload) != crc) {
    return Status::Corruption(std::string(SectionName(expected)) +
                              " section CRC mismatch");
  }
  return payload;
}

/// Every section must be consumed exactly: trailing bytes mean the writer
/// and reader disagree about the layout.
Status ExpectDrained(const wire::Reader& reader, Section id) {
  XSM_RETURN_NOT_OK(reader.status());
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes in " +
                              std::string(SectionName(id)) + " section");
  }
  return Status::OK();
}

}  // namespace

std::string SerializeSnapshot(const service::RepositorySnapshot& snapshot) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  wire::Writer header(&out);
  header.U32(kFormatVersion);
  header.U32(kSectionCount);
  header.U64(snapshot.generation());
  header.U64(snapshot.fingerprint());
  header.U64(snapshot.num_trees());
  header.U64(snapshot.total_nodes());
  header.U32(wire::Crc32c(
      std::string_view(out).substr(sizeof(kMagic), kHeaderFieldsSize)));

  const schema::SchemaForest& forest = snapshot.forest();
  std::string payload;
  wire::Writer writer(&payload);

  writer.U64(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    writer.Str(forest.source(t));
    forest.tree(t).SerializeTo(&writer);
  }
  AppendSection(&out, Section::kForest, payload);

  payload.clear();
  snapshot.index().SerializeTo(&writer);
  AppendSection(&out, Section::kIndex, payload);

  payload.clear();
  snapshot.name_dictionary().SerializeTo(&writer);
  AppendSection(&out, Section::kDictionary, payload);

  payload.clear();
  std::vector<uint64_t> tree_fingerprints;
  tree_fingerprints.reserve(forest.num_trees());
  for (schema::TreeId t = 0;
       t < static_cast<schema::TreeId>(forest.num_trees()); ++t) {
    tree_fingerprints.push_back(snapshot.tree_fingerprint(t));
  }
  writer.U64Vec(tree_fingerprints);
  AppendSection(&out, Section::kFingerprints, payload);
  return out;
}

Result<SnapshotFileInfo> ProbeSnapshot(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an xsm snapshot file (bad magic)");
  }
  if (bytes.size() < sizeof(kMagic) + 4) {
    return Status::Corruption("truncated snapshot header");
  }
  wire::Reader reader(bytes.substr(sizeof(kMagic)));
  SnapshotFileInfo info;
  info.format_version = reader.U32();
  // The version gate comes before any further header interpretation: a
  // future format may lay the rest out differently, and must be refused
  // typed rather than misread.
  if (info.format_version > kFormatVersion) {
    return Status::Unimplemented(
        "snapshot format version " + std::to_string(info.format_version) +
        " is newer than this build reads (<= " +
        std::to_string(kFormatVersion) + ")");
  }
  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("truncated snapshot header");
  }
  const uint32_t section_count = reader.U32();
  info.generation = reader.U64();
  info.fingerprint = reader.U64();
  info.trees = reader.U64();
  info.total_nodes = reader.U64();
  const uint32_t header_crc = reader.U32();
  info.total_bytes = bytes.size();
  if (wire::Crc32c(bytes.substr(sizeof(kMagic), kHeaderFieldsSize)) !=
      header_crc) {
    return Status::Corruption("snapshot header CRC mismatch");
  }
  if (info.format_version == 0 || section_count != kSectionCount) {
    return Status::Corruption("snapshot header is internally inconsistent");
  }
  // Walk the section framing (no CRC work) so a probe notices truncation.
  size_t cursor = kHeaderSize;
  for (uint32_t s = 0; s < section_count; ++s) {
    if (bytes.size() - cursor < kSectionFrameSize) {
      return Status::Corruption("truncated section table");
    }
    wire::Reader frame(bytes.substr(cursor, kSectionFrameSize));
    frame.U32();
    frame.U32();
    const uint64_t size = frame.U64();
    cursor += kSectionFrameSize;
    if (size > bytes.size() - cursor) {
      return Status::Corruption("truncated section payload");
    }
    cursor += static_cast<size_t>(size);
  }
  if (cursor != bytes.size()) {
    return Status::Corruption("trailing bytes after last section");
  }
  return info;
}

Result<std::shared_ptr<const service::RepositorySnapshot>>
DeserializeSnapshot(std::string_view bytes) {
  XSM_ASSIGN_OR_RETURN(SnapshotFileInfo info, ProbeSnapshot(bytes));
  size_t cursor = kHeaderSize;

  XSM_ASSIGN_OR_RETURN(
      std::string_view forest_bytes,
      TakeSection(bytes, &cursor, Section::kForest));
  wire::Reader forest_reader(forest_bytes);
  const uint64_t num_trees = forest_reader.U64();
  if (forest_reader.ok() && num_trees != info.trees) {
    return Status::Corruption("forest section tree count disagrees with "
                              "the header");
  }
  schema::SchemaForest forest;
  for (uint64_t t = 0; t < num_trees && forest_reader.ok(); ++t) {
    std::string source = forest_reader.Str();
    XSM_ASSIGN_OR_RETURN(schema::SchemaTree tree,
                         schema::SchemaTree::DeserializeBinary(
                             &forest_reader));
    forest.AddTree(std::move(tree), std::move(source));
  }
  XSM_RETURN_NOT_OK(ExpectDrained(forest_reader, Section::kForest));
  if (forest.total_nodes() != info.total_nodes) {
    return Status::Corruption("forest section node count disagrees with "
                              "the header");
  }

  XSM_ASSIGN_OR_RETURN(
      std::string_view index_bytes,
      TakeSection(bytes, &cursor, Section::kIndex));
  wire::Reader index_reader(index_bytes);
  XSM_ASSIGN_OR_RETURN(
      label::ForestIndex index,
      label::ForestIndex::DeserializeBinary(&index_reader, forest));
  XSM_RETURN_NOT_OK(ExpectDrained(index_reader, Section::kIndex));

  XSM_ASSIGN_OR_RETURN(
      std::string_view dict_bytes,
      TakeSection(bytes, &cursor, Section::kDictionary));
  wire::Reader dict_reader(dict_bytes);
  XSM_ASSIGN_OR_RETURN(
      match::NameDictionary dictionary,
      match::NameDictionary::DeserializeBinary(&dict_reader, forest));
  XSM_RETURN_NOT_OK(ExpectDrained(dict_reader, Section::kDictionary));

  XSM_ASSIGN_OR_RETURN(
      std::string_view fp_bytes,
      TakeSection(bytes, &cursor, Section::kFingerprints));
  wire::Reader fp_reader(fp_bytes);
  std::vector<uint64_t> tree_fingerprints;
  fp_reader.U64Vec(&tree_fingerprints);
  XSM_RETURN_NOT_OK(ExpectDrained(fp_reader, Section::kFingerprints));

  // FromParts re-fingerprints the forest and compares against the file's
  // values — the end-to-end guarantee that load == save, content-wise.
  return service::RepositorySnapshot::FromParts(
      std::move(forest), std::move(index), std::move(dictionary),
      info.generation, info.fingerprint, tree_fingerprints);
}

Result<SnapshotFileInfo> SaveSnapshotToFile(
    const service::RepositorySnapshot& snapshot, const std::string& path,
    util::io::Env* env) {
  if (env == nullptr) env = util::io::Env::Default();
  std::string bytes = SerializeSnapshot(snapshot);
  // Atomic publication (unique tmp + fsync + rename + dir fsync) and
  // strerror-detailed failures both live in AtomicFileWriter now.
  XSM_RETURN_NOT_OK(
      util::io::AtomicFileWriter::WriteFileAtomic(env, path, bytes));
  SnapshotFileInfo info;
  info.format_version = kFormatVersion;
  info.generation = snapshot.generation();
  info.fingerprint = snapshot.fingerprint();
  info.trees = snapshot.num_trees();
  info.total_nodes = snapshot.total_nodes();
  info.total_bytes = bytes.size();
  return info;
}

Result<std::shared_ptr<const service::RepositorySnapshot>>
LoadSnapshotFromFile(const std::string& path, util::io::Env* env) {
  if (env == nullptr) env = util::io::Env::Default();
  XSM_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  return DeserializeSnapshot(bytes);
}

Result<SnapshotFileInfo> ProbeSnapshotFile(const std::string& path,
                                           util::io::Env* env) {
  if (env == nullptr) env = util::io::Env::Default();
  XSM_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  return ProbeSnapshot(bytes);
}

}  // namespace xsm::store
