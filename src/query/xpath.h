// Personal-schema querying support (paper §1): the user writes an XPath
// query against their personal schema ("/book[title=\"Iliad\"]/author");
// after picking a schema mapping, the query is rewritten into a query over
// the mapped repository tree.
//
// Supported XPath subset: absolute child-axis location paths with optional
// equality predicates on child elements —
//   /step[child="literal"]/step/...
#ifndef XSM_QUERY_XPATH_H_
#define XSM_QUERY_XPATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "generate/schema_mapping.h"
#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm::query {

/// One equality predicate: [child = "literal"].
struct XPathPredicate {
  /// Relative child path of the predicate's subject ("title" or
  /// "data/title" after rewriting).
  std::vector<std::string> child_path;
  std::string literal;
};

/// One location step (child axis).
struct XPathStep {
  std::string name;  ///< ".." encodes a parent-axis step after rewriting.
  std::vector<XPathPredicate> predicates;
};

struct XPathQuery {
  std::vector<XPathStep> steps;

  /// Serializes back to XPath text.
  std::string ToString() const;
};

/// Parses an absolute location path. Errors on empty paths, unterminated
/// predicates, or non-absolute queries.
Result<XPathQuery> ParseXPath(std::string_view text);

/// Rewrites `query` (posed against `personal`) into a query over the
/// repository tree selected by `mapping`.
///
/// Every step name must resolve along `personal` from its root (step 0 is
/// the root itself); predicate children must name children of the step's
/// personal node. The rewritten query starts at the repository tree's root
/// and navigates between consecutive image nodes; ascending path segments
/// are emitted as ".." steps.
Result<XPathQuery> RewriteQuery(const XPathQuery& query,
                                const schema::SchemaTree& personal,
                                const generate::SchemaMapping& mapping,
                                const schema::SchemaForest& repo);

}  // namespace xsm::query

#endif  // XSM_QUERY_XPATH_H_
