#include "query/xpath.h"

#include <algorithm>
#include <cctype>

namespace xsm::query {

using schema::NodeId;
using schema::SchemaTree;

std::string XPathQuery::ToString() const {
  std::string out;
  for (const XPathStep& step : steps) {
    out += '/';
    out += step.name;
    for (const XPathPredicate& pred : step.predicates) {
      out += '[';
      for (size_t i = 0; i < pred.child_path.size(); ++i) {
        if (i > 0) out += '/';
        out += pred.child_path[i];
      }
      out += "=\"";
      out += pred.literal;
      out += "\"]";
    }
  }
  return out;
}

namespace {

bool IsStepChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '_' || c == '-' || c == '.' || c == ':';
}

}  // namespace

Result<XPathQuery> ParseXPath(std::string_view text) {
  XPathQuery query;
  size_t pos = 0;
  if (text.empty() || text[0] != '/') {
    return Status::ParseError("XPath query must be absolute (start with /)");
  }
  while (pos < text.size()) {
    if (text[pos] != '/') {
      return Status::ParseError("expected '/' at offset " +
                                std::to_string(pos));
    }
    ++pos;
    size_t start = pos;
    while (pos < text.size() && IsStepChar(text[pos])) ++pos;
    if (pos == start) {
      return Status::ParseError("empty step name at offset " +
                                std::to_string(pos));
    }
    XPathStep step;
    step.name = std::string(text.substr(start, pos - start));
    // Predicates.
    while (pos < text.size() && text[pos] == '[') {
      ++pos;
      XPathPredicate pred;
      // child path: name(/name)*
      while (true) {
        size_t cstart = pos;
        while (pos < text.size() && IsStepChar(text[pos])) ++pos;
        if (pos == cstart) {
          return Status::ParseError("empty predicate child at offset " +
                                    std::to_string(pos));
        }
        pred.child_path.push_back(
            std::string(text.substr(cstart, pos - cstart)));
        if (pos < text.size() && text[pos] == '/') {
          ++pos;
          continue;
        }
        break;
      }
      if (pos >= text.size() || text[pos] != '=') {
        return Status::ParseError("expected '=' in predicate");
      }
      ++pos;
      if (pos >= text.size() || (text[pos] != '"' && text[pos] != '\'')) {
        return Status::ParseError("expected quoted literal in predicate");
      }
      char quote = text[pos++];
      size_t lstart = pos;
      while (pos < text.size() && text[pos] != quote) ++pos;
      if (pos >= text.size()) {
        return Status::ParseError("unterminated literal in predicate");
      }
      pred.literal = std::string(text.substr(lstart, pos - lstart));
      ++pos;
      if (pos >= text.size() || text[pos] != ']') {
        return Status::ParseError("expected ']' after predicate");
      }
      ++pos;
      step.predicates.push_back(std::move(pred));
    }
    query.steps.push_back(std::move(step));
  }
  if (query.steps.empty()) {
    return Status::ParseError("empty XPath query");
  }
  return query;
}

namespace {

// Relative navigation between two nodes of one tree: ".." per up-step from
// `from` to the LCA, then the element names descending to `to`.
std::vector<std::string> RelativePath(const SchemaTree& tree, NodeId from,
                                      NodeId to) {
  // Ancestor chains to the root.
  std::vector<NodeId> from_chain;
  for (NodeId n = from; n != schema::kInvalidNode; n = tree.parent(n)) {
    from_chain.push_back(n);
  }
  std::vector<NodeId> to_chain;
  for (NodeId n = to; n != schema::kInvalidNode; n = tree.parent(n)) {
    to_chain.push_back(n);
  }
  // Find LCA: deepest common node of the chains.
  NodeId lca = schema::kInvalidNode;
  size_t i = from_chain.size();
  size_t j = to_chain.size();
  while (i > 0 && j > 0 && from_chain[i - 1] == to_chain[j - 1]) {
    lca = from_chain[i - 1];
    --i;
    --j;
  }
  std::vector<std::string> path;
  for (NodeId n = from; n != lca; n = tree.parent(n)) {
    path.push_back("..");
  }
  std::vector<std::string> down;
  for (NodeId n = to; n != lca; n = tree.parent(n)) {
    down.push_back(tree.name(n));
  }
  std::reverse(down.begin(), down.end());
  path.insert(path.end(), down.begin(), down.end());
  return path;
}

}  // namespace

Result<XPathQuery> RewriteQuery(const XPathQuery& query,
                                const SchemaTree& personal,
                                const generate::SchemaMapping& mapping,
                                const schema::SchemaForest& repo) {
  if (personal.empty()) {
    return Status::InvalidArgument("personal schema is empty");
  }
  if (mapping.images.size() != personal.size()) {
    return Status::InvalidArgument(
        "mapping does not match the personal schema");
  }
  if (query.steps.empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (query.steps[0].name != personal.name(personal.root())) {
    return Status::NotFound("step '" + query.steps[0].name +
                            "' is not the personal schema root");
  }
  const SchemaTree& target = repo.tree(mapping.tree);

  // Resolve each query step to a personal node.
  std::vector<NodeId> step_nodes;
  step_nodes.push_back(personal.root());
  for (size_t s = 1; s < query.steps.size(); ++s) {
    NodeId parent = step_nodes.back();
    NodeId found = schema::kInvalidNode;
    for (NodeId child : personal.children(parent)) {
      if (personal.name(child) == query.steps[s].name) {
        found = child;
        break;
      }
    }
    if (found == schema::kInvalidNode) {
      return Status::NotFound("step '" + query.steps[s].name +
                              "' is not a child of '" +
                              personal.name(parent) + "'");
    }
    step_nodes.push_back(found);
  }

  XPathQuery rewritten;
  // Descend from the repository root to the image of step 0.
  {
    std::vector<NodeId> chain;
    for (NodeId n = mapping.images[static_cast<size_t>(step_nodes[0])];
         n != schema::kInvalidNode; n = target.parent(n)) {
      chain.push_back(n);
    }
    std::reverse(chain.begin(), chain.end());
    for (NodeId n : chain) {
      XPathStep step;
      step.name = target.name(n);
      rewritten.steps.push_back(std::move(step));
    }
  }

  // Navigate between consecutive images; predicates attach to the step of
  // their subject node.
  for (size_t s = 0; s < query.steps.size(); ++s) {
    NodeId image = mapping.images[static_cast<size_t>(step_nodes[s])];
    if (s > 0) {
      NodeId prev_image =
          mapping.images[static_cast<size_t>(step_nodes[s - 1])];
      for (const std::string& seg :
           RelativePath(target, prev_image, image)) {
        XPathStep step;
        step.name = seg;
        rewritten.steps.push_back(std::move(step));
      }
    }
    // Rewrite predicates of this step.
    for (const XPathPredicate& pred : query.steps[s].predicates) {
      // Resolve the predicate child path inside the personal schema.
      NodeId subject = step_nodes[s];
      for (const std::string& child_name : pred.child_path) {
        NodeId found = schema::kInvalidNode;
        for (NodeId child : personal.children(subject)) {
          if (personal.name(child) == child_name) {
            found = child;
            break;
          }
        }
        if (found == schema::kInvalidNode) {
          return Status::NotFound("predicate child '" + child_name +
                                  "' not found under '" +
                                  personal.name(subject) + "'");
        }
        subject = found;
      }
      XPathPredicate rewritten_pred;
      rewritten_pred.literal = pred.literal;
      rewritten_pred.child_path = RelativePath(
          target, image, mapping.images[static_cast<size_t>(subject)]);
      if (rewritten_pred.child_path.empty()) {
        rewritten_pred.child_path.push_back(".");
      }
      if (rewritten.steps.empty()) {
        return Status::Internal("rewritten query has no steps");
      }
      rewritten.steps.back().predicates.push_back(
          std::move(rewritten_pred));
    }
  }
  return rewritten;
}

}  // namespace xsm::query
