// Binary wire primitives for the snapshot store: little-endian fixed-width
// encodes into a growable byte string, a bounds-checked sticky-error reader
// over one, and CRC-32 for per-section integrity.
//
// Everything here is deliberately dumb: no varints, no compression, no
// reflection. The store's sections are CRC-protected, so the reader's job
// is only (a) never to read past its window — a truncated or hostile
// length field degrades into a sticky Corruption status, not UB — and
// (b) to be fast enough that a warm load is dominated by I/O, not
// decoding (vector payloads are memcpy'd on little-endian targets).
#ifndef XSM_UTIL_WIRE_H_
#define XSM_UTIL_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xsm::wire {

/// CRC-32C (Castagnoli, reflected 0x82F63B78 — the iSCSI/RocksDB
/// polynomial) over `bytes`. The value is identical on every platform;
/// the implementation uses the SSE4.2 crc32 instruction where the CPU has
/// it and slicing-by-eight tables elsewhere, so checksumming a
/// multi-megabyte section costs microseconds, not the warm-load budget.
uint32_t Crc32c(std::string_view bytes);

/// Appends fixed-width little-endian values to a byte string.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I32(int32_t v) { AppendLe(static_cast<uint32_t>(v)); }

  /// u64 byte length + raw bytes.
  void Str(std::string_view s) {
    U64(s.size());
    out_->append(s);
  }

  /// u64 element count + packed little-endian elements.
  void I32Vec(const std::vector<int32_t>& v);
  void U64Vec(const std::vector<uint64_t>& v);

  size_t size() const { return out_->size(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    if constexpr (std::endian::native == std::endian::big) {
      for (size_t i = 0; i < sizeof(T); ++i) {
        out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
      }
    } else {
      char buf[sizeof(T)];
      std::memcpy(buf, &v, sizeof(T));
      out_->append(buf, sizeof(T));
    }
  }

  std::string* out_;
};

/// Sticky-error reader over one byte window. Every accessor bounds-checks;
/// the first underflow latches a Corruption status and every later read
/// returns zeros/empties, so a decode loop may run to its natural end and
/// check status() once. Length-prefixed reads validate the prefix against
/// the bytes actually remaining before allocating, so a crafted length
/// can neither overflow nor balloon memory.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  std::string Str();

  bool I32Vec(std::vector<int32_t>* out);
  bool U64Vec(std::vector<uint64_t>* out);

  /// Skips `n` bytes (section framing).
  void Skip(size_t n);

  size_t remaining() const { return bytes_.size() - pos_; }
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Latches an external decode failure (bad enum value, inconsistent
  /// count) into the same sticky channel the bounds checks use.
  void Fail(std::string message);

 private:
  /// Claims `n` bytes, or latches Corruption and returns nullptr.
  const char* Take(size_t n);

  template <typename T>
  T ReadLe() {
    const char* p = Take(sizeof(T));
    if (p == nullptr) return T{0};
    if constexpr (std::endian::native == std::endian::big) {
      T v{0};
      for (size_t i = 0; i < sizeof(T); ++i) {
        v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
      }
      return v;
    } else {
      T v;
      std::memcpy(&v, p, sizeof(T));
      return v;
    }
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  Status status_ = Status::OK();
};

}  // namespace xsm::wire

#endif  // XSM_UTIL_WIRE_H_
