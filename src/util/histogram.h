// Power-of-two bucketed histogram, used to reproduce the cluster-size
// distribution of Fig. 4 and for summary statistics in the harnesses, plus
// an exact-quantile accumulator for latency reporting (bench_service_load,
// the HTTP server's /stats endpoint).
#ifndef XSM_UTIL_HISTOGRAM_H_
#define XSM_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xsm {

/// Histogram over positive integer values with buckets
/// [1,1], [2,3], [4,7], [8,15], ... exactly as used by the paper's Fig. 4.
class PowerHistogram {
 public:
  /// `max_bucket_log2` buckets are created; values beyond the last bucket
  /// are clamped into it.
  explicit PowerHistogram(int num_buckets = 12)
      : counts_(static_cast<size_t>(num_buckets), 0) {}

  void Add(uint64_t value);

  /// Number of values recorded in bucket `i` (bucket i covers
  /// [2^i, 2^(i+1)-1]).
  uint64_t BucketCount(int i) const { return counts_[static_cast<size_t>(i)]; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }

  uint64_t total_count() const { return total_count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return total_count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return total_count_ == 0 ? 0.0
                             : static_cast<double>(sum_) /
                                   static_cast<double>(total_count_);
  }

  /// Label of bucket `i`, e.g. "[4,7]".
  static std::string BucketLabel(int i);

  /// Multi-line table "bucket count" for the harness output.
  std::string ToString() const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Streaming mean/min/max/stddev accumulator for doubles.
class StatsAccumulator {
 public:
  void Add(double v);
  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Population standard deviation.
  double StdDev() const;

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Exact quantile queries over every recorded sample. Unlike
/// StatsAccumulator this keeps the samples (8 bytes each), so it answers
/// Quantile(q) exactly — nearest-rank, no sketching error — which is what
/// a latency gate wants: a p99 that is *the* 99th-percentile sample.
/// Not thread-safe; callers serialize Add/Quantile externally.
class QuantileAccumulator {
 public:
  void Add(double v);

  uint64_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;

  /// Nearest-rank quantile of the recorded samples: the smallest sample x
  /// such that at least ceil(q * count) samples are <= x. q is clamped to
  /// [0, 1]; q = 0 returns the minimum, q = 1 the maximum. Returns 0 when
  /// empty. Amortized: the first query after an Add sorts once.
  double Quantile(double q) const;

  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  /// Folds another accumulator's samples into this one (per-thread
  /// recorders merged at the end of a load run).
  void Merge(const QuantileAccumulator& other);

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
};

}  // namespace xsm

#endif  // XSM_UTIL_HISTOGRAM_H_
