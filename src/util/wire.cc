#include "util/wire.h"

#include <array>

namespace xsm::wire {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82F63B78u;

/// Eight CRC-32C slicing tables, computed once at first use. Table 0 is
/// the classic byte-at-a-time table; table k folds a byte that sits k
/// positions ahead of the running remainder.
const std::array<std::array<uint32_t, 256>, 8>& CrcTables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = [] {
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32cPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
    return t;
  }();
  return tables;
}

uint32_t Crc32cSoftware(uint32_t crc, const unsigned char* p, size_t n) {
  const auto& t = CrcTables();
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    uint32_t crc, const unsigned char* p, size_t n) {
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return crc;
}

bool HaveSse42() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif

}  // namespace

uint32_t Crc32c(std::string_view bytes) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(bytes.data());
  uint32_t crc = 0xFFFFFFFFu;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (HaveSse42()) {
    return Crc32cHardware(crc, p, bytes.size()) ^ 0xFFFFFFFFu;
  }
#endif
  return Crc32cSoftware(crc, p, bytes.size()) ^ 0xFFFFFFFFu;
}

void Writer::I32Vec(const std::vector<int32_t>& v) {
  U64(v.size());
  if constexpr (std::endian::native == std::endian::big) {
    for (int32_t x : v) I32(x);
  } else {
    out_->append(reinterpret_cast<const char*>(v.data()),
                 v.size() * sizeof(int32_t));
  }
}

void Writer::U64Vec(const std::vector<uint64_t>& v) {
  U64(v.size());
  if constexpr (std::endian::native == std::endian::big) {
    for (uint64_t x : v) U64(x);
  } else {
    out_->append(reinterpret_cast<const char*>(v.data()),
                 v.size() * sizeof(uint64_t));
  }
}

const char* Reader::Take(size_t n) {
  if (!status_.ok()) return nullptr;
  if (n > bytes_.size() - pos_) {
    status_ = Status::Corruption("wire: read past end of input");
    pos_ = bytes_.size();
    return nullptr;
  }
  const char* p = bytes_.data() + pos_;
  pos_ += n;
  return p;
}

uint8_t Reader::U8() { return ReadLe<uint8_t>(); }
uint32_t Reader::U32() { return ReadLe<uint32_t>(); }
uint64_t Reader::U64() { return ReadLe<uint64_t>(); }

std::string Reader::Str() {
  uint64_t len = U64();
  if (!status_.ok()) return std::string();
  if (len > remaining()) {
    status_ = Status::Corruption("wire: string length exceeds input");
    pos_ = bytes_.size();
    return std::string();
  }
  const char* p = Take(static_cast<size_t>(len));
  return p == nullptr ? std::string()
                      : std::string(p, static_cast<size_t>(len));
}

bool Reader::I32Vec(std::vector<int32_t>* out) {
  uint64_t count = U64();
  if (!status_.ok()) return false;
  if (count > remaining() / sizeof(int32_t)) {
    status_ = Status::Corruption("wire: vector length exceeds input");
    pos_ = bytes_.size();
    return false;
  }
  const char* p = Take(static_cast<size_t>(count) * sizeof(int32_t));
  if (p == nullptr) return false;
  out->resize(static_cast<size_t>(count));
  if constexpr (std::endian::native == std::endian::big) {
    for (size_t i = 0; i < out->size(); ++i) {
      uint32_t v = 0;
      for (size_t b = 0; b < 4; ++b) {
        v |= static_cast<uint32_t>(
                 static_cast<unsigned char>(p[4 * i + b]))
             << (8 * b);
      }
      (*out)[i] = static_cast<int32_t>(v);
    }
  } else {
    std::memcpy(out->data(), p, out->size() * sizeof(int32_t));
  }
  return true;
}

bool Reader::U64Vec(std::vector<uint64_t>* out) {
  uint64_t count = U64();
  if (!status_.ok()) return false;
  if (count > remaining() / sizeof(uint64_t)) {
    status_ = Status::Corruption("wire: vector length exceeds input");
    pos_ = bytes_.size();
    return false;
  }
  const char* p = Take(static_cast<size_t>(count) * sizeof(uint64_t));
  if (p == nullptr) return false;
  out->resize(static_cast<size_t>(count));
  if constexpr (std::endian::native == std::endian::big) {
    for (size_t i = 0; i < out->size(); ++i) {
      uint64_t v = 0;
      for (size_t b = 0; b < 8; ++b) {
        v |= static_cast<uint64_t>(
                 static_cast<unsigned char>(p[8 * i + b]))
             << (8 * b);
      }
      (*out)[i] = v;
    }
  } else {
    std::memcpy(out->data(), p, out->size() * sizeof(uint64_t));
  }
  return true;
}

void Reader::Skip(size_t n) { Take(n); }

void Reader::Fail(std::string message) {
  if (status_.ok()) status_ = Status::Corruption(std::move(message));
}

}  // namespace xsm::wire
