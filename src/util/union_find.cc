#include "util/union_find.h"

namespace xsm {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), min_(n), num_components_(n) {
  for (size_t i = 0; i < n; ++i) {
    parent_[i] = i;
    min_[i] = i;
  }
}

size_t UnionFind::Add() {
  size_t i = parent_.size();
  parent_.push_back(i);
  size_.push_back(1);
  min_.push_back(i);
  ++num_components_;
  return i;
}

size_t UnionFind::Find(size_t x) {
  // Path halving: every other node on the walk re-points to its
  // grandparent, flattening the tree without a second pass.
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  // Union by size; ties attach the larger root index under the smaller so
  // the internal shape (never the Canonical value, which is order-free by
  // construction) is at least stable for a fixed operation sequence.
  if (size_[ra] < size_[rb] || (size_[ra] == size_[rb] && rb < ra)) {
    std::swap(ra, rb);
  }
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  if (min_[rb] < min_[ra]) min_[ra] = min_[rb];
  --num_components_;
  return true;
}

}  // namespace xsm
