// Wall-clock timing for the experiment harnesses.
#ifndef XSM_UTIL_TIMER_H_
#define XSM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xsm {

/// Monotonic stopwatch. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in integer microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xsm

#endif  // XSM_UTIL_TIMER_H_
