#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace xsm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::pending() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

size_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      // Drain the queue even when shutting down: tasks scheduled before
      // destruction are guaranteed to run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace xsm
