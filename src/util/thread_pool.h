// Fixed-size thread pool for the service layer: a mutex/condvar task queue
// drained by N worker threads. Tasks are std::function<void()>; Submit wraps
// a callable in a packaged_task and returns the future. The pool is the
// execution engine behind service::MatchService (single queries, batches and
// async submissions all end up here).
#ifndef XSM_UTIL_THREAD_POOL_H_
#define XSM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace xsm {

/// A fixed pool of worker threads executing queued tasks in FIFO order.
/// Thread-safe: Schedule / Submit / Wait may be called from any thread.
/// The destructor drains the queue (every task scheduled before destruction
/// runs) and joins the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues fire-and-forget work.
  void Schedule(std::function<void()> fn);

  /// Enqueues `fn` and returns a future for its result. The future's value
  /// (or exception) becomes available when the task finishes.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Schedule([task]() { (*task)(); });
    return future;
  }

  /// Blocks until the queue is empty and every in-flight task has finished.
  /// Tasks scheduled by other threads while waiting extend the wait.
  void Wait();

  /// Number of pending + running tasks (a snapshot; racy by nature).
  size_t pending() const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // popped but not yet finished
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xsm

#endif  // XSM_UTIL_THREAD_POOL_H_
