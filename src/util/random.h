// Deterministic pseudo-random number generation.
//
// Experiments in the paper depend on reproducible repositories and
// clusterings, so every randomized component takes an explicit Rng seeded by
// the caller; nothing reads global entropy.
#ifndef XSM_UTIL_RANDOM_H_
#define XSM_UTIL_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace xsm {

/// 64-bit FNV-1a over a byte string. Not cryptographic; used for seed
/// derivation and content fingerprints.
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

/// Derives a deterministic seed for one query from a service-level base
/// seed and the query's id. Concurrent service queries must not share
/// mutable RNG state — each query constructs its own Rng from this seed, so
/// results are a pure function of (base_seed, query_id) regardless of
/// thread interleaving or execution order. FNV-1a over the id, finalized
/// with a SplitMix64 step so that nearby ids map to unrelated seeds.
inline uint64_t SeedForQuery(uint64_t base_seed, std::string_view query_id) {
  uint64_t x = Fnv1a(query_id) ^ (base_seed + 0x9E3779B97F4A7C15ull);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// xoshiro256**-based generator: fast, high quality, fully deterministic for
/// a given seed across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator. Uses SplitMix64 to expand the seed so that
  /// nearby seeds produce unrelated streams.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Debiased multiply-shift (Lemire).
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool WithProbability(double p) { return NextDouble() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Total weight must be positive.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    assert(total > 0);
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.size() - 1;
  }

  /// Approximately Gaussian(mean, stddev) via sum of uniforms (Irwin–Hall,
  /// n=12); plenty for workload-shaping purposes and branch-free.
  double Gaussian(double mean, double stddev) {
    double acc = 0;
    for (int i = 0; i < 12; ++i) acc += NextDouble();
    return mean + (acc - 6.0) * stddev;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks a uniformly random element. Container must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Uniform(v.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace xsm

#endif  // XSM_UTIL_RANDOM_H_
