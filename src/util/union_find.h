// Disjoint-set union (union-find) with path halving and union by size.
//
// Extracted for the integration engine's correspondence-cluster fold
// (connected components over cross-schema match edges), but generic: any
// incremental connected-components problem over dense indices fits.
//
// Determinism: the *internal* root of a component depends on the union
// sequence, so callers that need a canonical representative independent of
// operation order use Canonical(), which always returns the smallest member
// index of the component. Two runs that union the same edge set — in any
// order, with any interleaving — therefore agree on every Canonical() and
// on the component partition.
//
// Not thread-safe: Find() compresses paths (mutates), so even read-style
// calls need external synchronization under concurrency.
#ifndef XSM_UTIL_UNION_FIND_H_
#define XSM_UTIL_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace xsm {

class UnionFind {
 public:
  UnionFind() = default;
  /// `n` singleton elements [0, n).
  explicit UnionFind(size_t n);

  /// Appends one new singleton element and returns its index.
  size_t Add();

  /// Number of elements.
  size_t size() const { return parent_.size(); }

  /// Number of disjoint components.
  size_t num_components() const { return num_components_; }

  /// Internal root of x's component (path-halving on the way). Stable
  /// between unions but dependent on union order — prefer Canonical() for
  /// order-independent identity.
  size_t Find(size_t x);

  /// Smallest member index of x's component; independent of the order the
  /// component's edges were unioned in.
  size_t Canonical(size_t x) { return min_[Find(x)]; }

  /// Members in x's component.
  size_t ComponentSize(size_t x) { return size_[Find(x)]; }

  /// Joins the components of a and b; returns true if they were distinct
  /// (i.e. the edge reduced the component count).
  bool Union(size_t a, size_t b);

  /// True if a and b are in one component.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

 private:
  std::vector<size_t> parent_;
  /// Members under each root (valid at roots only).
  std::vector<size_t> size_;
  /// Smallest member index under each root (valid at roots only).
  std::vector<size_t> min_;
  size_t num_components_ = 0;
};

}  // namespace xsm

#endif  // XSM_UTIL_UNION_FIND_H_
