#include "util/io.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace xsm::util::io {

namespace {

std::string ErrnoDetail(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

#if defined(__unix__) || defined(__APPLE__)

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition(path_ + " is closed");
    // write(2) may persist fewer bytes than asked or be interrupted;
    // resume until everything landed or a real error surfaced.
    while (!data.empty()) {
      const ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoDetail("cannot write", path_));
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition(path_ + " is closed");
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoDetail("fsync failure on", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) {
      return Status::IOError(ErrnoDetail("close failure on", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class RealEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    const int flags =
        O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::IOError(
          ErrnoDetail("cannot open for writing", path));
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError(ErrnoDetail("cannot open", path));
    }
    std::string bytes;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        bytes.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) break;
      if (errno == EINTR) continue;
      const Status status =
          Status::IOError(ErrnoDetail("read failure on", path));
      ::close(fd);
      return status;
    }
    ::close(fd);
    return bytes;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("cannot rename " + from + " to " + to + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(ErrnoDetail("cannot remove", path));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::IOError(ErrnoDetail("cannot truncate", path));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.empty() ? "." : path.c_str(),
                          O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError(ErrnoDetail("cannot open directory", path));
    }
    // Directory fsync is refused by some filesystems; publication already
    // happened via rename, so a refusal downgrades durability, not
    // correctness — report it and let the caller decide.
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      return Status::IOError(ErrnoDetail("fsync failure on directory", path));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::IOError(ErrnoDetail("cannot stat", path));
    }
    return static_cast<uint64_t>(st.st_size);
  }
};

#else
#error "util::io requires a POSIX platform"
#endif

}  // namespace

Env* Env::Default() {
  static RealEnv* real = new RealEnv();  // never destroyed: used at exit
  return real;
}

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// --- AtomicFileWriter -------------------------------------------------------

AtomicFileWriter::AtomicFileWriter(Env* env, std::string final_path)
    : env_(env), final_path_(std::move(final_path)) {
  // Unique tmp name (pid + in-process counter): concurrent stagers for the
  // same final path — other threads or other processes — must never
  // interleave into one tmp file (last rename wins whole, never mixed).
  static std::atomic<uint64_t> counter{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  tmp_path_ = final_path_ + ".tmp." + std::to_string(pid) + "." +
              std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

Status AtomicFileWriter::Append(std::string_view data) {
  if (!pending_.ok()) return pending_;
  if (committed_) {
    return Status::FailedPrecondition("already committed: " + final_path_);
  }
  if (file_ == nullptr) {
    auto file = env_->NewWritableFile(tmp_path_, /*truncate=*/true);
    if (!file.ok()) {
      pending_ = file.status();
      return pending_;
    }
    file_ = std::move(*file);
  }
  pending_ = file_->Append(data);
  return pending_;
}

Status AtomicFileWriter::Commit() {
  if (!pending_.ok()) {
    Status first = pending_;
    Abort();
    return first;
  }
  if (committed_) {
    return Status::FailedPrecondition("already committed: " + final_path_);
  }
  if (file_ == nullptr) {
    // Zero appends still publishes an (empty) file atomically.
    auto file = env_->NewWritableFile(tmp_path_, /*truncate=*/true);
    if (!file.ok()) {
      pending_ = file.status();
      return file.status();
    }
    file_ = std::move(*file);
  }
  // Data must be durable before the rename publishes the name: a power
  // loss after an unsynced rename can leave the final name pointing at
  // zero-length data while the previous file is already gone.
  Status status = file_->Sync();
  if (status.ok()) status = file_->Close();
  if (status.ok()) status = env_->RenameFile(tmp_path_, final_path_);
  if (!status.ok()) {
    pending_ = status;
    Abort();
    return status;
  }
  committed_ = true;
  file_.reset();
  // Directory durability is best-effort: the rename already published
  // atomically; a directory-fsync refusal must not un-publish it.
  (void)env_->SyncDir(DirnameOf(final_path_));
  return Status::OK();
}

void AtomicFileWriter::Abort() {
  if (committed_) return;
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  if (env_->FileExists(tmp_path_)) (void)env_->RemoveFile(tmp_path_);
  if (pending_.ok()) {
    pending_ = Status::FailedPrecondition("aborted: " + final_path_);
  }
}

Status AtomicFileWriter::WriteFileAtomic(Env* env, const std::string& path,
                                         std::string_view bytes) {
  AtomicFileWriter writer(env, path);
  XSM_RETURN_NOT_OK(writer.Append(bytes));
  return writer.Commit();
}

// --- FaultInjectionEnv ------------------------------------------------------

namespace {

Status SimulatedCrash() {
  return Status::IOError("simulated crash (fault injection)");
}

Status MakeInjected(StatusCode code, const std::string& detail,
                    const std::string& path) {
  const std::string message = detail + " (injected) on " + path;
  switch (code) {
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    default:
      return Status::Internal(message);
  }
}

}  // namespace

/// WritableFile decorator: consults the plan before handing bytes to the
/// base file, so short writes and crashes leave real torn prefixes on
/// disk for recovery code to chew on.
class FaultInjectedFile : public WritableFile {
 public:
  FaultInjectedFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base,
                    std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    FaultPlan& plan = env_->plan_;
    FaultStats& stats = env_->stats_;
    XSM_RETURN_NOT_OK(env_->ChargeOp());
    const int64_t ordinal = stats.appends++;

    // Scheduled append failure: persist the configured torn prefix, then
    // fail typed with the configured cause.
    if (ordinal == plan.fail_append_at) {
      const size_t keep = std::min(plan.append_persist_bytes, data.size());
      if (keep > 0) {
        XSM_RETURN_NOT_OK(base_->Append(data.substr(0, keep)));
        stats.bytes_appended += static_cast<int64_t>(keep);
      }
      return MakeInjected(plan.append_error, plan.append_detail, path_);
    }

    // Crash-at-byte: persist up to the boundary, then die.
    if (plan.crash_at_byte >= 0 &&
        stats.bytes_appended + static_cast<int64_t>(data.size()) >
            plan.crash_at_byte) {
      const size_t keep = static_cast<size_t>(
          std::max<int64_t>(0, plan.crash_at_byte - stats.bytes_appended));
      if (keep > 0) {
        XSM_RETURN_NOT_OK(base_->Append(data.substr(0, keep)));
        stats.bytes_appended += static_cast<int64_t>(keep);
      }
      stats.crashed = true;
      return SimulatedCrash();
    }

    if (plan.eintr_splits && data.size() > 1) {
      // An EINTR-shaped interruption: half the bytes land, the "syscall"
      // is interrupted, the resume loop writes the rest.
      const size_t half = data.size() / 2;
      XSM_RETURN_NOT_OK(base_->Append(data.substr(0, half)));
      ++stats.eintr_injected;
      XSM_RETURN_NOT_OK(base_->Append(data.substr(half)));
      stats.bytes_appended += static_cast<int64_t>(data.size());
      return Status::OK();
    }

    XSM_RETURN_NOT_OK(base_->Append(data));
    stats.bytes_appended += static_cast<int64_t>(data.size());
    return Status::OK();
  }

  Status Sync() override {
    XSM_RETURN_NOT_OK(env_->ChargeOp());
    if (env_->stats_.syncs++ == env_->plan_.fail_sync_at) {
      return MakeInjected(StatusCode::kIOError, "injected fsync failure",
                          path_);
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

FaultInjectionEnv::FaultInjectionEnv(FaultPlan plan, Env* base)
    : plan_(std::move(plan)),
      base_(base != nullptr ? base : Env::Default()) {}

Status FaultInjectionEnv::ChargeOp() {
  if (stats_.crashed) return SimulatedCrash();
  if (plan_.crash_after_ops >= 0 && stats_.ops >= plan_.crash_after_ops) {
    stats_.crashed = true;
    return SimulatedCrash();
  }
  ++stats_.ops;
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  XSM_RETURN_NOT_OK(ChargeOp());
  XSM_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectedFile>(this, std::move(base), path));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  // Reads pass through unscheduled: recovery must see the real bytes.
  return base_->ReadFileToString(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  XSM_RETURN_NOT_OK(ChargeOp());
  if (stats_.renames++ == plan_.fail_rename_at) {
    return MakeInjected(StatusCode::kIOError, "injected rename failure", to);
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  XSM_RETURN_NOT_OK(ChargeOp());
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  XSM_RETURN_NOT_OK(ChargeOp());
  return base_->TruncateFile(path, size);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  XSM_RETURN_NOT_OK(ChargeOp());
  if (stats_.syncs++ == plan_.fail_sync_at) {
    return MakeInjected(StatusCode::kIOError, "injected fsync failure", path);
  }
  return base_->SyncDir(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

}  // namespace xsm::util::io
