#include "util/status.h"

namespace xsm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xsm
