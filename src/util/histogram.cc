#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace xsm {

void PowerHistogram::Add(uint64_t value) {
  if (value == 0) value = 1;  // Histogram is over positive sizes.
  int bucket = 0;
  uint64_t v = value;
  while (v > 1) {
    v >>= 1;
    ++bucket;
  }
  if (bucket >= num_buckets()) bucket = num_buckets() - 1;
  ++counts_[static_cast<size_t>(bucket)];
  ++total_count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

std::string PowerHistogram::BucketLabel(int i) {
  uint64_t lo = 1ull << i;
  uint64_t hi = (1ull << (i + 1)) - 1;
  return StringPrintf("[%llu,%llu]", static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(hi));
}

std::string PowerHistogram::ToString() const {
  std::string out;
  for (int i = 0; i < num_buckets(); ++i) {
    if (counts_[static_cast<size_t>(i)] == 0) continue;
    out += StringPrintf("%-12s %llu\n", BucketLabel(i).c_str(),
                        static_cast<unsigned long long>(
                            counts_[static_cast<size_t>(i)]));
  }
  return out;
}

void StatsAccumulator::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
}

double StatsAccumulator::StdDev() const {
  if (count_ == 0) return 0.0;
  double m = mean();
  double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var > 0 ? std::sqrt(var) : 0.0;
}

void QuantileAccumulator::Add(double v) {
  // Appending in already-sorted order (monotone input) keeps the sorted
  // flag, so Quantile never re-sorts a stream that arrives ordered.
  if (sorted_ && !samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
  sum_ += v;
}

void QuantileAccumulator::EnsureSorted() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double QuantileAccumulator::min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double QuantileAccumulator::max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double QuantileAccumulator::mean() const {
  return samples_.empty() ? 0.0
                          : sum_ / static_cast<double>(samples_.size());
}

double QuantileAccumulator::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  // Nearest-rank: 1-based rank ceil(q * N), clamped into [1, N].
  const double n = static_cast<double>(samples_.size());
  size_t rank = static_cast<size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > samples_.size()) rank = samples_.size();
  return samples_[rank - 1];
}

void QuantileAccumulator::Merge(const QuantileAccumulator& other) {
  if (other.samples_.empty()) return;
  if (samples_.empty()) {
    samples_ = other.samples_;
    sorted_ = other.sorted_;
    sum_ = other.sum_;
    return;
  }
  sorted_ = false;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
}

}  // namespace xsm
