#include "util/histogram.h"

#include <cmath>

#include "util/string_util.h"

namespace xsm {

void PowerHistogram::Add(uint64_t value) {
  if (value == 0) value = 1;  // Histogram is over positive sizes.
  int bucket = 0;
  uint64_t v = value;
  while (v > 1) {
    v >>= 1;
    ++bucket;
  }
  if (bucket >= num_buckets()) bucket = num_buckets() - 1;
  ++counts_[static_cast<size_t>(bucket)];
  ++total_count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

std::string PowerHistogram::BucketLabel(int i) {
  uint64_t lo = 1ull << i;
  uint64_t hi = (1ull << (i + 1)) - 1;
  return StringPrintf("[%llu,%llu]", static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(hi));
}

std::string PowerHistogram::ToString() const {
  std::string out;
  for (int i = 0; i < num_buckets(); ++i) {
    if (counts_[static_cast<size_t>(i)] == 0) continue;
    out += StringPrintf("%-12s %llu\n", BucketLabel(i).c_str(),
                        static_cast<unsigned long long>(
                            counts_[static_cast<size_t>(i)]));
  }
  return out;
}

void StatsAccumulator::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
}

double StatsAccumulator::StdDev() const {
  if (count_ == 0) return 0.0;
  double m = mean();
  double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var > 0 ? std::sqrt(var) : 0.0;
}

}  // namespace xsm
