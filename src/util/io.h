// util::io — the filesystem seam every durable artifact is written
// through.
//
// Production code writes snapshots, integration results and write-ahead
// journals through an abstract Env instead of calling the filesystem
// directly. That buys two things:
//
//   1. One place that gets the hard parts right. POSIX write(2) may write
//      fewer bytes than asked or return EINTR; fsync can fail; rename is
//      the only atomic publication primitive. RealEnv implements the
//      resume loops and carries strerror(errno) detail in every error, so
//      call sites never re-derive that lore.
//   2. Deterministic fault injection. FaultInjectionEnv wraps another Env
//      and fails operations on a precise schedule — the Nth append (with
//      an optional short write of k bytes first), the Nth fsync, the Nth
//      rename, ENOSPC, EINTR-shaped partial writes, and whole-process
//      "crash" points (after N operations, or mid-append at a global byte
//      offset, leaving a torn prefix on disk). The crash-point sweep
//      suites kill a write sequence at every boundary and prove recovery
//      is exact; without the seam those schedules are unreproducible.
//
// AtomicFileWriter packages the atomic-publication ritual (unique tmp name
// → write → fsync → rename over the final name → directory fsync) that
// snapshot_store and integration_io used to hand-roll separately. A crash
// at any point leaves either the complete old file or the complete new
// file under the final name, never a torn hybrid.
#ifndef XSM_UTIL_IO_H_
#define XSM_UTIL_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace xsm::util::io {

/// Sequential append handle. Append either persists every byte or fails
/// typed; Sync flushes to stable storage (data loss after an OK Sync means
/// the device lied, not this library).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  /// Idempotent; the destructor closes too (without surfacing errors — call
  /// Close explicitly on paths that must observe them).
  virtual Status Close() = 0;
};

/// Abstract filesystem. All paths are interpreted by the underlying
/// implementation (RealEnv: the host filesystem).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for writing: truncate=true starts empty (creating the
  /// file), truncate=false appends to what exists (creating if absent).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Atomic within a filesystem; replaces `to` if it exists.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Truncates an existing file to exactly `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  /// Flushes a directory entry table (making renames/creates durable).
  /// Best-effort on filesystems that refuse directory fsync.
  virtual Status SyncDir(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// The process-wide real-filesystem Env (never null, never destroyed).
  static Env* Default();
};

/// The directory part of `path` ("." when there is no '/').
std::string DirnameOf(const std::string& path);

/// Atomic file publication through an Env. Stages bytes into
/// `<final>.tmp.<pid>.<seq>`; Commit() fsyncs the data, renames it over
/// the final name and fsyncs the directory. If the writer dies without
/// Commit (error or destructor), the tmp file is removed and the final
/// name is untouched.
class AtomicFileWriter {
 public:
  AtomicFileWriter(Env* env, std::string final_path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// First error (open or append) latches; later calls return it.
  Status Append(std::string_view data);

  /// fsync + rename + directory fsync. After OK the final name durably
  /// holds exactly the appended bytes. After an error the final name is
  /// whatever it was before (the tmp file is cleaned up).
  Status Commit();

  /// Removes the staged tmp file; idempotent, called by the destructor.
  void Abort();

  const std::string& tmp_path() const { return tmp_path_; }

  /// One-shot convenience: stage `bytes` and commit.
  static Status WriteFileAtomic(Env* env, const std::string& path,
                                std::string_view bytes);

 private:
  Env* env_;
  std::string final_path_;
  std::string tmp_path_;
  std::unique_ptr<WritableFile> file_;
  Status pending_;    // first staging error
  bool committed_ = false;
};

// --- fault injection --------------------------------------------------------

/// One deterministic failure/crash schedule. Operation ordinals are
/// 0-based and counted per kind across the whole Env (appends count every
/// WritableFile::Append call; syncs count file Sync + SyncDir; renames
/// count RenameFile). -1 disables a rule.
struct FaultPlan {
  /// Fail the Nth Append with `append_error` after persisting
  /// `append_persist_bytes` of that append's data (a short/torn write;
  /// 0 = nothing persisted).
  int64_t fail_append_at = -1;
  size_t append_persist_bytes = 0;
  StatusCode append_error = StatusCode::kIOError;
  /// Message detail for the injected append failure ("No space left on
  /// device" for an ENOSPC drill, ...).
  std::string append_detail = "injected write failure";

  /// Fail the Nth Sync (file fsync or directory fsync).
  int64_t fail_sync_at = -1;
  /// Fail the Nth RenameFile.
  int64_t fail_rename_at = -1;

  /// Deliver every Append in two chunks with a simulated EINTR between
  /// them — exercises the resume path; the write still succeeds and the
  /// bytes must be identical.
  bool eintr_splits = false;

  /// Simulated kill: once the total bytes appended through this Env reach
  /// this offset, the in-flight append persists only up to the boundary
  /// (a torn record) and every later operation fails with
  /// "simulated crash". What is on disk afterwards is exactly what a
  /// SIGKILL at that write would have left.
  int64_t crash_at_byte = -1;
  /// Simulated kill between operations: after this many successful
  /// operations (of any kind), every operation fails. Catches the
  /// boundaries crash_at_byte cannot (between fsync and rename, ...).
  int64_t crash_after_ops = -1;
};

/// Counters a test reads back to discover a run's write-boundary universe
/// (total ops / bytes) before sweeping crash points across it.
struct FaultStats {
  int64_t appends = 0;
  int64_t syncs = 0;
  int64_t renames = 0;
  int64_t ops = 0;             ///< all counted operations
  int64_t bytes_appended = 0;  ///< bytes actually persisted
  int64_t eintr_injected = 0;
  bool crashed = false;        ///< a crash rule has triggered
};

/// Env decorator applying a FaultPlan to a base Env (default: the real
/// one). Reads are passed through unscathed — recovery code under test
/// reads real bytes; only mutations are scheduled. Not thread-safe: fault
/// schedules are meaningful only for single-threaded scripted sequences.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(FaultPlan plan, Env* base = nullptr);

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;

  const FaultStats& stats() const { return stats_; }
  /// True once a crash rule has fired (every further mutation fails).
  bool crashed() const { return stats_.crashed; }

 private:
  friend class FaultInjectedFile;

  /// Charges one operation against the crash-after-ops budget. Returns
  /// non-OK when the process is "dead".
  Status ChargeOp();

  FaultPlan plan_;
  Env* base_;
  FaultStats stats_;
};

}  // namespace xsm::util::io

#endif  // XSM_UTIL_IO_H_
