// Status and Result<T>: exception-free error propagation for the public API,
// following the idiom used by production database libraries (RocksDB, Arrow).
#ifndef XSM_UTIL_STATUS_H_
#define XSM_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace xsm {

/// Machine-readable category of an error carried by Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kParseError = 5,
  kIOError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  /// Stored data failed an integrity check (truncation, CRC mismatch,
  /// internally inconsistent sections). Distinct from kParseError — the
  /// input claimed to be ours and is damaged, rather than malformed text.
  kCorruption = 11,
  /// The peer is temporarily unable to serve (admission shed, overload,
  /// retry budget exhausted). Retrying later may succeed; distinct from
  /// kIOError, which reports a transport-level failure.
  kUnavailable = 12,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK or an error code plus message.
///
/// Status is cheap to copy in the OK case (no allocation) and is used by
/// every fallible operation in the library instead of exceptions.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Aborts in debug builds if `status` is OK —
  /// an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Undefined if !ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace xsm

/// Propagates a non-OK Status from the enclosing function.
#define XSM_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::xsm::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Evaluates a Result expression; assigns the value to `lhs` or propagates
/// the error. `lhs` may declare a new variable.
#define XSM_ASSIGN_OR_RETURN(lhs, rexpr)     \
  XSM_ASSIGN_OR_RETURN_IMPL(                 \
      XSM_CONCAT_(_xsm_result_, __LINE__), lhs, rexpr)

#define XSM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define XSM_CONCAT_(a, b) XSM_CONCAT_IMPL_(a, b)
#define XSM_CONCAT_IMPL_(a, b) a##b

#endif  // XSM_UTIL_STATUS_H_
