// String helpers shared by the similarity matchers, parsers, and the
// synthetic vocabulary machinery.
#ifndef XSM_UTIL_STRING_UTIL_H_
#define XSM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xsm {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on a single-character delimiter. Empty fields are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Splits an XML-ish identifier into lowercase word tokens: camelCase,
/// PascalCase, snake_case, kebab-case, dotted and digit boundaries all
/// separate tokens. "authorName-2" -> {"author", "name", "2"}.
std::vector<std::string> TokenizeIdentifier(std::string_view ident);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace xsm

#endif  // XSM_UTIL_STRING_UTIL_H_
