#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace xsm {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> TokenizeIdentifier(std::string_view ident) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (size_t i = 0; i < ident.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(ident[i]);
    if (!std::isalnum(c)) {
      flush();  // Separator: _ - . : etc.
      continue;
    }
    if (std::isupper(c)) {
      // Upper char starts a new token unless we are inside an acronym run
      // (previous char also upper and next is not lower).
      bool prev_upper =
          i > 0 && std::isupper(static_cast<unsigned char>(ident[i - 1]));
      bool next_lower =
          i + 1 < ident.size() &&
          std::islower(static_cast<unsigned char>(ident[i + 1]));
      if (!prev_upper || next_lower) flush();
    } else if (std::isdigit(c)) {
      bool prev_digit =
          i > 0 && std::isdigit(static_cast<unsigned char>(ident[i - 1]));
      if (!prev_digit) flush();
    } else {
      // Lowercase following a digit starts a new token.
      bool prev_digit =
          i > 0 && std::isdigit(static_cast<unsigned char>(ident[i - 1]));
      if (prev_digit) flush();
    }
    current.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  flush();
  return tokens;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace xsm
