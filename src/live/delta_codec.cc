#include "live/delta_codec.h"

#include <memory>
#include <utility>

#include "schema/schema_tree.h"
#include "util/wire.h"

namespace xsm::live {

std::string SerializeJournaledDelta(const RepositoryDelta& delta,
                                    uint64_t resulting_generation,
                                    uint64_t resulting_fingerprint) {
  std::string out;
  wire::Writer w(&out);
  w.U64(resulting_generation);
  w.U64(resulting_fingerprint);
  w.U32(static_cast<uint32_t>(delta.ops().size()));
  for (const DeltaOp& op : delta.ops()) {
    w.U8(static_cast<uint8_t>(op.kind));
    w.I32(op.target);
    w.Str(op.source);
    w.U8(op.tree != nullptr ? 1 : 0);
    if (op.tree != nullptr) op.tree->SerializeTo(&w);
  }
  return out;
}

Result<JournaledDelta> DeserializeJournaledDelta(std::string_view bytes) {
  wire::Reader r(bytes);
  JournaledDelta out;
  out.resulting_generation = r.U64();
  out.resulting_fingerprint = r.U64();
  const uint32_t num_ops = r.U32();
  // Ops replay through DeltaBuilder in journal order, re-running every
  // validation a live ingest would have faced.
  DeltaBuilder builder;
  for (uint32_t i = 0; i < num_ops && r.ok(); ++i) {
    const uint8_t kind = r.U8();
    const schema::TreeId target = r.I32();
    std::string source = r.Str();
    const uint8_t has_tree = r.U8();
    std::shared_ptr<const schema::SchemaTree> tree;
    if (has_tree == 1) {
      XSM_ASSIGN_OR_RETURN(schema::SchemaTree decoded,
                           schema::SchemaTree::DeserializeBinary(&r));
      tree = std::make_shared<const schema::SchemaTree>(std::move(decoded));
    } else if (has_tree != 0) {
      return Status::Corruption("journaled delta op " + std::to_string(i) +
                                " has an invalid tree marker");
    }
    switch (static_cast<DeltaOpKind>(kind)) {
      case DeltaOpKind::kAdd:
        if (tree == nullptr) {
          return Status::Corruption("journaled add op " + std::to_string(i) +
                                    " lacks a tree");
        }
        builder.AddTree(std::move(tree), std::move(source));
        break;
      case DeltaOpKind::kReplace:
        if (tree == nullptr) {
          return Status::Corruption("journaled replace op " +
                                    std::to_string(i) + " lacks a tree");
        }
        builder.ReplaceTree(target, std::move(tree), std::move(source));
        break;
      case DeltaOpKind::kRemove:
        builder.RemoveTree(target);
        break;
      default:
        return Status::Corruption("journaled delta op " + std::to_string(i) +
                                  " has unknown kind " +
                                  std::to_string(kind));
    }
  }
  if (!r.ok()) return r.status();
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after journaled delta");
  }
  auto delta = builder.Build();
  if (!delta.ok()) {
    // Only validated deltas are journaled, so a build failure here means
    // the bytes do not describe any delta that was ever acknowledged.
    return Status::Corruption("journaled delta fails re-validation: " +
                              delta.status().message());
  }
  out.delta = std::move(*delta);
  return out;
}

}  // namespace xsm::live
