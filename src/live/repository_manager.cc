#include "live/repository_manager.h"

#include <utility>

#include "util/timer.h"

namespace xsm::live {

Result<std::unique_ptr<RepositoryManager>> RepositoryManager::Create(
    schema::SchemaForest initial) {
  XSM_ASSIGN_OR_RETURN(
      std::shared_ptr<const service::RepositorySnapshot> snapshot,
      service::RepositorySnapshot::Create(std::move(initial)));
  return std::make_unique<RepositoryManager>(std::move(snapshot));
}

Result<std::unique_ptr<RepositoryManager>> RepositoryManager::WarmStart(
    const std::string& path) {
  XSM_ASSIGN_OR_RETURN(
      std::shared_ptr<const service::RepositorySnapshot> snapshot,
      store::LoadSnapshotFromFile(path));
  return std::make_unique<RepositoryManager>(std::move(snapshot));
}

RepositoryManager::RepositoryManager(
    std::shared_ptr<const service::RepositorySnapshot> initial)
    : current_(std::move(initial)) {}

Result<ApplyReport> RepositoryManager::Apply(const RepositoryDelta& delta) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  // Writers are serialized, so the snapshot read here is the one the
  // successor chains from — readers may fetch it concurrently, which is
  // fine: it is immutable either way.
  std::shared_ptr<const service::RepositorySnapshot> base =
      current_.load(std::memory_order_acquire);

  Timer timer;
  XSM_ASSIGN_OR_RETURN(AppliedDelta applied,
                       ApplyDeltaToForest(base->forest(), delta));
  XSM_ASSIGN_OR_RETURN(
      std::shared_ptr<const service::RepositorySnapshot> successor,
      service::RepositorySnapshot::CreateSuccessor(
          base, std::move(applied.forest), applied.reuse_map));

  ApplyReport report;
  report.generation = successor->generation();
  report.fingerprint = successor->fingerprint();
  report.trees_total = successor->num_trees();
  const service::RepositorySnapshot::BuildStats& stats =
      successor->build_stats();
  report.trees_reused = stats.trees_reused;
  report.trees_rebuilt = stats.trees_rebuilt;
  report.name_entries_copied = stats.name_entries_copied;
  report.name_entries_computed = stats.name_entries_computed;
  report.build_seconds = timer.ElapsedSeconds();
  report.snapshot = successor;

  // The swap is the publication: new readers see the successor, in-flight
  // readers keep the base until they drop their shared_ptr.
  current_.store(std::move(successor), std::memory_order_release);
  return report;
}

}  // namespace xsm::live
