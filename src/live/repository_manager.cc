#include "live/repository_manager.h"

#include <utility>

#include "live/delta_codec.h"
#include "util/timer.h"

namespace xsm::live {

Result<std::unique_ptr<RepositoryManager>> RepositoryManager::Create(
    schema::SchemaForest initial) {
  XSM_ASSIGN_OR_RETURN(
      std::shared_ptr<const service::RepositorySnapshot> snapshot,
      service::RepositorySnapshot::Create(std::move(initial)));
  return std::make_unique<RepositoryManager>(std::move(snapshot));
}

Result<std::unique_ptr<RepositoryManager>> RepositoryManager::WarmStart(
    const std::string& path) {
  XSM_ASSIGN_OR_RETURN(
      std::shared_ptr<const service::RepositorySnapshot> snapshot,
      store::LoadSnapshotFromFile(path));
  return std::make_unique<RepositoryManager>(std::move(snapshot));
}

RepositoryManager::RepositoryManager(
    std::shared_ptr<const service::RepositorySnapshot> initial)
    : current_(std::move(initial)) {}

Status RepositoryManager::AttachWal(util::io::Env* env,
                                    const std::string& wal_path) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  std::shared_ptr<const service::RepositorySnapshot> current =
      current_.load(std::memory_order_acquire);
  XSM_ASSIGN_OR_RETURN(
      std::unique_ptr<wal::WalWriter> writer,
      wal::WalWriter::Create(env, wal_path, current->generation(),
                             current->fingerprint()));
  env_ = env;
  wal_path_ = wal_path;
  wal_ = std::move(writer);
  return Status::OK();
}

bool RepositoryManager::wal_attached() const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  return wal_ != nullptr;
}

Result<ApplyReport> RepositoryManager::Apply(const RepositoryDelta& delta,
                                             obs::TraceContext* trace) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  // Writers are serialized, so the snapshot read here is the one the
  // successor chains from — readers may fetch it concurrently, which is
  // fine: it is immutable either way.
  std::shared_ptr<const service::RepositorySnapshot> base =
      current_.load(std::memory_order_acquire);

  Timer timer;
  AppliedDelta applied;
  {
    obs::ScopedSpan span(trace, "delta_validate");
    XSM_ASSIGN_OR_RETURN(applied, ApplyDeltaToForest(base->forest(), delta));
  }
  std::shared_ptr<const service::RepositorySnapshot> successor;
  {
    obs::ScopedSpan span(trace, "snapshot_build");
    XSM_ASSIGN_OR_RETURN(
        successor,
        service::RepositorySnapshot::CreateSuccessor(
            base, std::move(applied.forest), applied.reuse_map));
  }

  // Write-ahead: the delta must be durable before the generation becomes
  // visible. If the journal append fails (disk full, fsync failure,
  // crash), nothing is published and the caller sees the typed error —
  // an unacknowledged delta may be retried or abandoned, but never
  // silently half-applied.
  if (wal_ != nullptr) {
    obs::ScopedSpan span(trace, "wal_fsync");
    XSM_RETURN_NOT_OK(wal_->Append(
        wal::RecordType::kDelta,
        SerializeJournaledDelta(delta, successor->generation(),
                                successor->fingerprint())));
    if (metrics_.wal_appends != nullptr) metrics_.wal_appends->Increment();
  }

  ApplyReport report;
  report.generation = successor->generation();
  report.fingerprint = successor->fingerprint();
  report.trees_total = successor->num_trees();
  const service::RepositorySnapshot::BuildStats& stats =
      successor->build_stats();
  report.trees_reused = stats.trees_reused;
  report.trees_rebuilt = stats.trees_rebuilt;
  report.name_entries_copied = stats.name_entries_copied;
  report.name_entries_computed = stats.name_entries_computed;
  report.build_seconds = timer.ElapsedSeconds();
  report.snapshot = successor;

  // The swap is the publication: new readers see the successor, in-flight
  // readers keep the base until they drop their shared_ptr.
  {
    obs::ScopedSpan span(trace, "publish");
    current_.store(std::move(successor), std::memory_order_release);
  }
  return report;
}

Result<store::SnapshotFileInfo> RepositoryManager::SaveSnapshot(
    const std::string& path, obs::TraceContext* trace) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  std::shared_ptr<const service::RepositorySnapshot> snapshot =
      current_.load(std::memory_order_acquire);
  store::SnapshotFileInfo info;
  {
    obs::ScopedSpan span(trace, "store_save");
    XSM_ASSIGN_OR_RETURN(
        info,
        store::SaveSnapshotToFile(*snapshot, path,
                                  env_ != nullptr
                                      ? env_
                                      : util::io::Env::Default()));
  }
  if (metrics_.snapshot_saves != nullptr) {
    metrics_.snapshot_saves->Increment();
  }
  if (wal_ != nullptr) {
    // Checkpoint compaction: the snapshot at generation G is durable, so
    // the journal restarts empty, based at G. Create is atomic (tmp +
    // rename); a crash mid-compaction leaves the old journal, whose
    // records are all <= G and get skipped on recovery. A compaction
    // failure keeps journaling into the old file for the same reason.
    obs::ScopedSpan span(trace, "wal_compact");
    auto writer = wal::WalWriter::Create(env_, wal_path_,
                                         snapshot->generation(),
                                         snapshot->fingerprint());
    if (!writer.ok()) return writer.status();
    wal_ = std::move(*writer);
    if (metrics_.wal_compactions != nullptr) {
      metrics_.wal_compactions->Increment();
    }
  }
  return info;
}

void RepositoryManager::SetMetrics(const ManagerMetrics& metrics) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  metrics_ = metrics;
}

Result<std::unique_ptr<RepositoryManager>> RepositoryManager::Recover(
    util::io::Env* env, const std::string& snapshot_path,
    const std::string& wal_path, RecoveryReport* report) {
  XSM_ASSIGN_OR_RETURN(
      std::shared_ptr<const service::RepositorySnapshot> snapshot,
      store::LoadSnapshotFromFile(snapshot_path, env));
  auto manager = std::make_unique<RepositoryManager>(std::move(snapshot));

  RecoveryReport local;
  local.snapshot_generation = manager->CurrentGeneration();

  auto read = wal::ReadWal(env, wal_path);
  if (!read.ok() && read.status().code() == StatusCode::kNotFound) {
    // No journal (first boot, or it was never attached): start one fresh.
    XSM_RETURN_NOT_OK(manager->AttachWal(env, wal_path));
    local.recovered_generation = manager->CurrentGeneration();
    if (report != nullptr) *report = local;
    return manager;
  }
  XSM_RETURN_NOT_OK(read.status());
  local.torn_tail = read->torn_tail;
  local.dropped_bytes = read->dropped_bytes;

  if (read->info.base_generation > local.snapshot_generation) {
    // The journal's first record would chain onto a generation newer than
    // the checkpoint we have — deltas between them are unrecoverable.
    return Status::Corruption(
        "journal " + wal_path + " begins at generation " +
        std::to_string(read->info.base_generation) +
        " but snapshot " + snapshot_path + " is at generation " +
        std::to_string(local.snapshot_generation));
  }

  for (const wal::WalRecord& record : read->records) {
    XSM_ASSIGN_OR_RETURN(JournaledDelta journaled,
                         DeserializeJournaledDelta(record.payload));
    const uint64_t current = manager->CurrentGeneration();
    if (journaled.resulting_generation <= current) {
      // Pre-checkpoint record (a compaction crashed before rewriting the
      // journal): the snapshot already contains it.
      ++local.records_skipped;
      continue;
    }
    if (journaled.resulting_generation != current + 1) {
      return Status::Corruption(
          "journal gap: record yields generation " +
          std::to_string(journaled.resulting_generation) +
          " but the chain is at " + std::to_string(current));
    }
    XSM_ASSIGN_OR_RETURN(ApplyReport applied,
                         manager->Apply(journaled.delta));
    if (applied.fingerprint != journaled.resulting_fingerprint) {
      return Status::Corruption(
          "journal replay diverged at generation " +
          std::to_string(applied.generation) + ": fingerprint " +
          std::to_string(applied.fingerprint) + " vs acknowledged " +
          std::to_string(journaled.resulting_fingerprint));
    }
    ++local.records_replayed;
  }
  local.recovered_generation = manager->CurrentGeneration();

  // Re-attach in append mode: the replayed records stay (the checkpoint
  // on disk is still the old generation; a second crash must find them),
  // and any torn tail is truncated to put the next append on a frame
  // boundary.
  XSM_ASSIGN_OR_RETURN(std::unique_ptr<wal::WalWriter> writer,
                       wal::WalWriter::Open(env, wal_path, *read));
  {
    std::lock_guard<std::mutex> lock(manager->apply_mu_);
    manager->env_ = env;
    manager->wal_path_ = wal_path;
    manager->wal_ = std::move(writer);
  }
  if (report != nullptr) *report = local;
  return manager;
}

}  // namespace xsm::live
