// RepositoryDelta: one validated, batched unit of repository change —
// trees to add, replace, or retire — applied copy-on-write by
// live::RepositoryManager to produce the next repository generation.
//
// The paper's reclustering experiments (Fig. 4/5) measure how much
// clustering work survives repository change; this is the API that makes
// such change expressible at serving time. A delta is built through
// DeltaBuilder, which validates every tree and rejects conflicting
// operations up front, so an invalid delta can never reach publication.
//
// Addressing: ReplaceTree / RemoveTree target TreeIds *of the base
// generation* the delta is applied to. After application the surviving
// trees are renumbered compactly (removals close their gaps, replacements
// keep their slot, additions append in op order), and the returned reuse
// map records where every new tree came from.
#ifndef XSM_LIVE_REPOSITORY_DELTA_H_
#define XSM_LIVE_REPOSITORY_DELTA_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "schema/schema_forest.h"
#include "schema/schema_tree.h"
#include "util/status.h"

namespace xsm::live {

enum class DeltaOpKind {
  kAdd = 0,      ///< append a new tree
  kReplace = 1,  ///< swap the payload of an existing tree, keeping its slot
  kRemove = 2,   ///< retire an existing tree (later ids shift down)
};

/// One operation of a delta. `tree` is shared (never copied again) so the
/// applied forest and any retained delta alias one frozen payload.
struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kAdd;
  /// Target tree of the *base* generation; unused for kAdd.
  schema::TreeId target = -1;
  /// Payload for kAdd / kReplace; null for kRemove.
  std::shared_ptr<const schema::SchemaTree> tree;
  /// Provenance recorded in the forest (file path, feed name, ...).
  std::string source;
};

/// An immutable, validated batch of operations. Obtain via DeltaBuilder.
class RepositoryDelta {
 public:
  const std::vector<DeltaOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

  size_t num_adds() const { return num_adds_; }
  size_t num_replaces() const { return num_replaces_; }
  size_t num_removes() const { return num_removes_; }

  /// Trees the delta touches (replace + remove targets plus additions) —
  /// the upper bound on rebuild work a copy-on-write apply may do.
  size_t num_touched() const { return ops_.size(); }

 private:
  friend class DeltaBuilder;
  /// delta_codec rebuilds journaled deltas through DeltaBuilder but needs
  /// an empty value to deserialize into.
  friend struct JournaledDelta;
  RepositoryDelta() = default;

  std::vector<DeltaOp> ops_;
  size_t num_adds_ = 0;
  size_t num_replaces_ = 0;
  size_t num_removes_ = 0;
};

/// Accumulates operations, validating as it goes; Build() yields the
/// immutable delta or the first error encountered. One builder produces
/// one delta.
///
/// Validation performed here (target-range checks happen at apply time,
/// against the generation the delta actually lands on):
///   - added/replacement trees must be non-empty and structurally valid
///   - at most one operation may target a given base tree
///   - a delta must contain at least one operation
class DeltaBuilder {
 public:
  DeltaBuilder() = default;

  DeltaBuilder& AddTree(schema::SchemaTree tree, std::string source = "");
  DeltaBuilder& AddTree(std::shared_ptr<const schema::SchemaTree> tree,
                        std::string source = "");
  DeltaBuilder& ReplaceTree(schema::TreeId target, schema::SchemaTree tree,
                            std::string source = "");
  DeltaBuilder& ReplaceTree(schema::TreeId target,
                            std::shared_ptr<const schema::SchemaTree> tree,
                            std::string source = "");
  DeltaBuilder& RemoveTree(schema::TreeId target);

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  /// First validation error so far (callers may check early; Build
  /// returns it too).
  const Status& status() const { return status_; }

  /// Finalizes the batch. The builder is consumed either way.
  Result<RepositoryDelta> Build();

 private:
  /// Records the first error; later operations are ignored once failed.
  void Fail(Status status);
  /// Validates a payload tree and the uniqueness of `target` (-1 = add).
  bool CheckOp(const std::shared_ptr<const schema::SchemaTree>& tree,
               schema::TreeId target, bool needs_tree);

  std::vector<DeltaOp> ops_;
  /// Duplicate-target detection; a set so whole-repository deltas (e.g.
  /// the CLI's !reload, one remove per tree) stay linear.
  std::unordered_set<schema::TreeId> targets_;
  Status status_ = Status::OK();
  bool consumed_ = false;
};

/// Result of applying a delta to one forest.
struct AppliedDelta {
  schema::SchemaForest forest;
  /// reuse_map[new_tree] = base tree it shares its payload with, or -1 for
  /// added/replaced trees — exactly the shape ForestIndex::BuildIncremental
  /// and NameDictionary::BuildIncremental consume.
  std::vector<schema::TreeId> reuse_map;
  size_t trees_reused = 0;
};

/// Applies `delta` to `base`, sharing every untouched tree's payload
/// (copy-on-write: no SchemaTree is copied, ever). Fails with
/// InvalidArgument if a replace/remove target is out of range for `base`;
/// `base` is never modified.
Result<AppliedDelta> ApplyDeltaToForest(const schema::SchemaForest& base,
                                        const RepositoryDelta& delta);

}  // namespace xsm::live

#endif  // XSM_LIVE_REPOSITORY_DELTA_H_
