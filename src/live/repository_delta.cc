#include "live/repository_delta.h"

#include <utility>

namespace xsm::live {

void DeltaBuilder::Fail(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

bool DeltaBuilder::CheckOp(
    const std::shared_ptr<const schema::SchemaTree>& tree,
    schema::TreeId target, bool needs_tree) {
  if (!status_.ok()) return false;
  if (needs_tree) {
    if (tree == nullptr || tree->empty()) {
      Fail(Status::InvalidArgument("delta tree must be non-empty"));
      return false;
    }
    Status valid = tree->Validate();
    if (!valid.ok()) {
      Fail(std::move(valid));
      return false;
    }
  }
  if (target >= 0) {
    if (!targets_.insert(target).second) {
      Fail(Status::InvalidArgument(
          "delta already has an operation for tree " +
          std::to_string(target)));
      return false;
    }
  }
  return true;
}

DeltaBuilder& DeltaBuilder::AddTree(schema::SchemaTree tree,
                                    std::string source) {
  return AddTree(std::make_shared<const schema::SchemaTree>(std::move(tree)),
                 std::move(source));
}

DeltaBuilder& DeltaBuilder::AddTree(
    std::shared_ptr<const schema::SchemaTree> tree, std::string source) {
  if (!CheckOp(tree, -1, /*needs_tree=*/true)) return *this;
  ops_.push_back(DeltaOp{DeltaOpKind::kAdd, -1, std::move(tree),
                         std::move(source)});
  return *this;
}

DeltaBuilder& DeltaBuilder::ReplaceTree(schema::TreeId target,
                                        schema::SchemaTree tree,
                                        std::string source) {
  return ReplaceTree(
      target, std::make_shared<const schema::SchemaTree>(std::move(tree)),
      std::move(source));
}

DeltaBuilder& DeltaBuilder::ReplaceTree(
    schema::TreeId target, std::shared_ptr<const schema::SchemaTree> tree,
    std::string source) {
  if (target < 0) {
    Fail(Status::InvalidArgument("replace target must be a valid TreeId"));
    return *this;
  }
  if (!CheckOp(tree, target, /*needs_tree=*/true)) return *this;
  ops_.push_back(DeltaOp{DeltaOpKind::kReplace, target, std::move(tree),
                         std::move(source)});
  return *this;
}

DeltaBuilder& DeltaBuilder::RemoveTree(schema::TreeId target) {
  if (target < 0) {
    Fail(Status::InvalidArgument("remove target must be a valid TreeId"));
    return *this;
  }
  if (!CheckOp(nullptr, target, /*needs_tree=*/false)) return *this;
  ops_.push_back(DeltaOp{DeltaOpKind::kRemove, target, nullptr, ""});
  return *this;
}

Result<RepositoryDelta> DeltaBuilder::Build() {
  if (consumed_) {
    return Status::FailedPrecondition("DeltaBuilder already consumed");
  }
  consumed_ = true;
  XSM_RETURN_NOT_OK(status_);
  if (ops_.empty()) {
    return Status::InvalidArgument("delta has no operations");
  }
  RepositoryDelta delta;
  delta.ops_ = std::move(ops_);
  for (const DeltaOp& op : delta.ops_) {
    switch (op.kind) {
      case DeltaOpKind::kAdd:
        ++delta.num_adds_;
        break;
      case DeltaOpKind::kReplace:
        ++delta.num_replaces_;
        break;
      case DeltaOpKind::kRemove:
        ++delta.num_removes_;
        break;
    }
  }
  return delta;
}

Result<AppliedDelta> ApplyDeltaToForest(const schema::SchemaForest& base,
                                        const RepositoryDelta& delta) {
  const schema::TreeId num_base =
      static_cast<schema::TreeId>(base.num_trees());
  // Per-base-tree plan: untouched trees carry over, replaced trees swap
  // their payload in place, removed trees drop out.
  std::vector<const DeltaOp*> plan(static_cast<size_t>(num_base), nullptr);
  for (const DeltaOp& op : delta.ops()) {
    if (op.kind == DeltaOpKind::kAdd) continue;
    if (op.target >= num_base) {
      return Status::InvalidArgument(
          "delta targets tree " + std::to_string(op.target) +
          " but the repository has " + std::to_string(num_base) + " trees");
    }
    plan[static_cast<size_t>(op.target)] = &op;
  }

  AppliedDelta applied;
  for (schema::TreeId t = 0; t < num_base; ++t) {
    const DeltaOp* op = plan[static_cast<size_t>(t)];
    if (op == nullptr) {
      applied.forest.AddTree(base.tree_ptr(t), base.source(t));
      applied.reuse_map.push_back(t);
      ++applied.trees_reused;
    } else if (op->kind == DeltaOpKind::kReplace) {
      applied.forest.AddTree(op->tree, op->source);
      applied.reuse_map.push_back(-1);
    }
    // kRemove: the tree simply does not carry over.
  }
  for (const DeltaOp& op : delta.ops()) {
    if (op.kind != DeltaOpKind::kAdd) continue;
    applied.forest.AddTree(op.tree, op.source);
    applied.reuse_map.push_back(-1);
  }
  return applied;
}

}  // namespace xsm::live
