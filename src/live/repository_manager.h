// RepositoryManager: the evolving-repository front end. Owns a
// generation-numbered chain of immutable RepositorySnapshots and applies
// RepositoryDeltas copy-on-write: untouched trees share their payload,
// structural index and name-dictionary state between generations; only the
// trees a delta touches are rebuilt (ForestIndex::BuildIncremental /
// NameDictionary::BuildIncremental — proven equivalent to from-scratch
// builds by the live equivalence suite).
//
// Publication is an atomic swap of the current
// shared_ptr<const RepositorySnapshot>: readers that already fetched a
// snapshot keep it (and its whole generation stays alive through the
// shared_ptr) while new readers pick up the successor — no locks on the
// read path, no torn state, no pause in query serving. Writers are
// serialized: concurrent Apply calls queue on an internal mutex and land
// as consecutive generations.
#ifndef XSM_LIVE_REPOSITORY_MANAGER_H_
#define XSM_LIVE_REPOSITORY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "live/repository_delta.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schema/schema_forest.h"
#include "service/repository_snapshot.h"
#include "store/snapshot_store.h"
#include "util/io.h"
#include "util/status.h"
#include "wal/wal.h"

namespace xsm::live {

/// What one Apply built and published.
struct ApplyReport {
  uint64_t generation = 0;   ///< generation number just published
  uint64_t fingerprint = 0;  ///< content fingerprint of that generation
  size_t trees_total = 0;    ///< trees in the new generation
  size_t trees_reused = 0;   ///< carried over without any rebuild
  size_t trees_rebuilt = 0;  ///< indexed and labeled from scratch
  size_t name_entries_copied = 0;    ///< name folds/signatures carried over
  size_t name_entries_computed = 0;  ///< name folds/signatures computed
  double build_seconds = 0;  ///< delta apply + incremental snapshot build
  /// The published snapshot (same object Current() now returns, until the
  /// next delta lands).
  std::shared_ptr<const service::RepositorySnapshot> snapshot;
};

/// Registry counter handles the manager bumps on durability events; any
/// member may be null (not collected). The owner (MatchService) registers
/// the series and hands the handles down via SetMetrics, so WAL and
/// checkpoint activity shows up on the same scrape surface as queries.
struct ManagerMetrics {
  obs::Counter* wal_appends = nullptr;      ///< journaled+fsynced deltas
  obs::Counter* wal_compactions = nullptr;  ///< checkpoint compactions
  obs::Counter* snapshot_saves = nullptr;   ///< successful SaveSnapshot calls
};

/// What a Recover rebuilt from disk.
struct RecoveryReport {
  uint64_t snapshot_generation = 0;   ///< checkpoint the chain resumed from
  uint64_t recovered_generation = 0;  ///< generation after journal replay
  size_t records_replayed = 0;        ///< deltas re-applied from the journal
  size_t records_skipped = 0;         ///< journal records <= the checkpoint
  bool torn_tail = false;             ///< a crash-torn record was dropped
  uint64_t dropped_bytes = 0;         ///< bytes of that torn record
};

/// Thread-safe. Readers call Current() from any thread at any time;
/// writers call Apply() from any thread (serialized internally).
class RepositoryManager {
 public:
  /// Validates `initial` and wraps it as generation 0.
  static Result<std::unique_ptr<RepositoryManager>> Create(
      schema::SchemaForest initial);

  /// Boots from a persisted snapshot (store::SaveSnapshotToFile output):
  /// no re-parsing or re-indexing, and the generation chain continues
  /// where it left off — the first Apply after a warm start publishes
  /// the loaded generation + 1.
  static Result<std::unique_ptr<RepositoryManager>> WarmStart(
      const std::string& path);

  /// Adopts an existing snapshot (whatever its generation) as the current
  /// one — the path service::MatchService uses when constructed from a
  /// snapshot it already has.
  explicit RepositoryManager(
      std::shared_ptr<const service::RepositorySnapshot> initial);

  RepositoryManager(const RepositoryManager&) = delete;
  RepositoryManager& operator=(const RepositoryManager&) = delete;

  /// The current snapshot. Lock-free; the returned shared_ptr pins the
  /// whole generation (forest, index, dictionary) for as long as the
  /// caller holds it, regardless of later deltas.
  std::shared_ptr<const service::RepositorySnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  uint64_t CurrentGeneration() const { return Current()->generation(); }

  /// Boots from a checkpoint + journal pair: loads the snapshot, replays
  /// every journal record past its generation (each re-validated and
  /// fingerprint-verified against what was acknowledged), truncates any
  /// crash-torn tail, and re-attaches the journal so the chain keeps
  /// journaling. A missing journal file starts a fresh one at the
  /// snapshot's generation. Damage — a CRC-failing complete record, a
  /// generation gap, a fingerprint divergence, a journal that begins
  /// after the snapshot — is kCorruption; a torn tail is not damage.
  static Result<std::unique_ptr<RepositoryManager>> Recover(
      util::io::Env* env, const std::string& snapshot_path,
      const std::string& wal_path, RecoveryReport* report = nullptr);

  /// Attaches a write-ahead journal at `wal_path` (created fresh, based
  /// at the current generation): every subsequent successful Apply
  /// appends its delta — fsync'd — *before* publication, so acknowledged
  /// deltas survive a kill. The caller should persist (or have persisted)
  /// a checkpoint at or before the current generation; Recover needs one
  /// to replay onto.
  Status AttachWal(util::io::Env* env, const std::string& wal_path);

  bool wal_attached() const;

  /// Applies `delta` to the current generation and atomically publishes
  /// the successor. On error (invalid target, failed validation, journal
  /// append failure) nothing is published and the current generation is
  /// unchanged — an unjournaled delta is never acknowledged. In-flight
  /// readers of the previous generation are never disturbed. `trace`
  /// (may be null) receives per-stage spans: delta_validate,
  /// snapshot_build, wal_fsync, publish.
  Result<ApplyReport> Apply(const RepositoryDelta& delta,
                            obs::TraceContext* trace = nullptr);

  /// Persists the current snapshot (atomic write; see
  /// store::SaveSnapshotToFile). With a journal attached this is the
  /// checkpoint: once the snapshot is durable, the journal is compacted
  /// to a fresh one based at the saved generation (writers are held out
  /// for the duration, so no acknowledged delta can fall between the
  /// checkpoint and the new journal). If compaction itself fails the old
  /// journal stays — recovery then skips its pre-checkpoint records.
  /// `trace` (may be null) receives store_save / wal_compact spans.
  Result<store::SnapshotFileInfo> SaveSnapshot(
      const std::string& path, obs::TraceContext* trace = nullptr);

  /// Installs registry counter handles for durability events (see
  /// ManagerMetrics); pass {} to detach. Handles must outlive the manager
  /// (registry series do — they live as long as the registry).
  void SetMetrics(const ManagerMetrics& metrics);

 private:
  /// Serializes writers so generations form a chain, never a fork, and
  /// guards the journal writer.
  mutable std::mutex apply_mu_;
  std::atomic<std::shared_ptr<const service::RepositorySnapshot>> current_;
  // Journal state (all under apply_mu_; null when journaling is off).
  util::io::Env* env_ = nullptr;
  std::string wal_path_;
  std::unique_ptr<wal::WalWriter> wal_;
  /// Durability-event counter handles (under apply_mu_; null = off).
  ManagerMetrics metrics_;
};

}  // namespace xsm::live

#endif  // XSM_LIVE_REPOSITORY_MANAGER_H_
