// RepositoryManager: the evolving-repository front end. Owns a
// generation-numbered chain of immutable RepositorySnapshots and applies
// RepositoryDeltas copy-on-write: untouched trees share their payload,
// structural index and name-dictionary state between generations; only the
// trees a delta touches are rebuilt (ForestIndex::BuildIncremental /
// NameDictionary::BuildIncremental — proven equivalent to from-scratch
// builds by the live equivalence suite).
//
// Publication is an atomic swap of the current
// shared_ptr<const RepositorySnapshot>: readers that already fetched a
// snapshot keep it (and its whole generation stays alive through the
// shared_ptr) while new readers pick up the successor — no locks on the
// read path, no torn state, no pause in query serving. Writers are
// serialized: concurrent Apply calls queue on an internal mutex and land
// as consecutive generations.
#ifndef XSM_LIVE_REPOSITORY_MANAGER_H_
#define XSM_LIVE_REPOSITORY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "live/repository_delta.h"
#include "schema/schema_forest.h"
#include "service/repository_snapshot.h"
#include "store/snapshot_store.h"
#include "util/status.h"

namespace xsm::live {

/// What one Apply built and published.
struct ApplyReport {
  uint64_t generation = 0;   ///< generation number just published
  uint64_t fingerprint = 0;  ///< content fingerprint of that generation
  size_t trees_total = 0;    ///< trees in the new generation
  size_t trees_reused = 0;   ///< carried over without any rebuild
  size_t trees_rebuilt = 0;  ///< indexed and labeled from scratch
  size_t name_entries_copied = 0;    ///< name folds/signatures carried over
  size_t name_entries_computed = 0;  ///< name folds/signatures computed
  double build_seconds = 0;  ///< delta apply + incremental snapshot build
  /// The published snapshot (same object Current() now returns, until the
  /// next delta lands).
  std::shared_ptr<const service::RepositorySnapshot> snapshot;
};

/// Thread-safe. Readers call Current() from any thread at any time;
/// writers call Apply() from any thread (serialized internally).
class RepositoryManager {
 public:
  /// Validates `initial` and wraps it as generation 0.
  static Result<std::unique_ptr<RepositoryManager>> Create(
      schema::SchemaForest initial);

  /// Boots from a persisted snapshot (store::SaveSnapshotToFile output):
  /// no re-parsing or re-indexing, and the generation chain continues
  /// where it left off — the first Apply after a warm start publishes
  /// the loaded generation + 1.
  static Result<std::unique_ptr<RepositoryManager>> WarmStart(
      const std::string& path);

  /// Adopts an existing snapshot (whatever its generation) as the current
  /// one — the path service::MatchService uses when constructed from a
  /// snapshot it already has.
  explicit RepositoryManager(
      std::shared_ptr<const service::RepositorySnapshot> initial);

  RepositoryManager(const RepositoryManager&) = delete;
  RepositoryManager& operator=(const RepositoryManager&) = delete;

  /// The current snapshot. Lock-free; the returned shared_ptr pins the
  /// whole generation (forest, index, dictionary) for as long as the
  /// caller holds it, regardless of later deltas.
  std::shared_ptr<const service::RepositorySnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  uint64_t CurrentGeneration() const { return Current()->generation(); }

  /// Applies `delta` to the current generation and atomically publishes
  /// the successor. On error (invalid target, failed validation) nothing
  /// is published and the current generation is unchanged. In-flight
  /// readers of the previous generation are never disturbed.
  Result<ApplyReport> Apply(const RepositoryDelta& delta);

  /// Persists the current snapshot (atomic write; see
  /// store::SaveSnapshotToFile). Concurrent Apply calls are fine: the
  /// snapshot pinned at entry is saved, whole and consistent.
  Result<store::SnapshotFileInfo> SaveSnapshot(
      const std::string& path) const {
    return store::SaveSnapshotToFile(*Current(), path);
  }

 private:
  /// Serializes writers so generations form a chain, never a fork.
  std::mutex apply_mu_;
  std::atomic<std::shared_ptr<const service::RepositorySnapshot>> current_;
};

}  // namespace xsm::live

#endif  // XSM_LIVE_REPOSITORY_MANAGER_H_
