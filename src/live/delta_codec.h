// Binary codec for journaled RepositoryDeltas — the payload format of
// wal::RecordType::kDelta records.
//
// A journaled delta carries the delta's operations (trees serialized via
// SchemaTree::SerializeTo) plus the generation number and content
// fingerprint its application produced on the writer's chain. Replay
// re-applies the delta through the normal validation pipeline and then
// *verifies* the resulting fingerprint against the journaled one, so a
// replayed chain is provably the chain that was acknowledged — any
// divergence (bit rot the CRC missed, a journal paired with the wrong
// snapshot) is refused typed as kCorruption rather than silently served.
//
// Deserialization rebuilds the delta through DeltaBuilder, re-running
// every structural validation; journal bytes can never smuggle an invalid
// delta past the checks a live ingest would have faced.
#ifndef XSM_LIVE_DELTA_CODEC_H_
#define XSM_LIVE_DELTA_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "live/repository_delta.h"
#include "util/status.h"

namespace xsm::live {

/// A delta plus the chain position its application produced.
struct JournaledDelta {
  uint64_t resulting_generation = 0;
  uint64_t resulting_fingerprint = 0;
  RepositoryDelta delta;
};

/// Serializes `delta` with its application outcome.
std::string SerializeJournaledDelta(const RepositoryDelta& delta,
                                    uint64_t resulting_generation,
                                    uint64_t resulting_fingerprint);

/// Inverse of SerializeJournaledDelta; kCorruption on any damage or on a
/// delta that fails re-validation.
Result<JournaledDelta> DeserializeJournaledDelta(std::string_view bytes);

}  // namespace xsm::live

#endif  // XSM_LIVE_DELTA_CODEC_H_
