// Persistence and diffing for integration results.
//
// An IntegrationResult serializes through util::wire with the store's
// framing idiom: 8-byte magic, format version (readers accept <= theirs,
// newer fails typed kUnimplemented), and a CRC-32C over the whole payload —
// any flipped byte or truncation is rejected with a typed Corruption /
// ParseError, never UB (the reader is bounds-checked and sticky). Wall-clock
// timings are deliberately NOT serialized: two runs over the same snapshot
// fingerprint + seed serialize byte-identically, which is how the
// determinism suites compare results.
//
// Cross-generation diffing: cluster identity is keyed on the *member set*
// expressed as (tree content fingerprint, node id) pairs — TreeIds renumber
// when xsm::live removals compact the forest, but content fingerprints
// follow the tree — so "same cluster" survives generation churn, and
// DiffIntegrations reports which mediated concepts appeared, disappeared,
// or kept their exact membership between two saved integrations.
#ifndef XSM_INTEGRATE_INTEGRATION_IO_H_
#define XSM_INTEGRATE_INTEGRATION_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "integrate/integration_engine.h"
#include "util/io.h"
#include "util/status.h"

namespace xsm::integrate {

/// Current file format version ("XSMINTG\0" files).
inline constexpr uint32_t kIntegrationFormatVersion = 1;

/// Serializes everything deterministic about `result` (no timings).
std::string SerializeIntegration(const IntegrationResult& result);

/// Decodes a SerializeIntegration byte string, verifying magic, version and
/// CRC and validating every index/enum against the decoded universe.
Result<IntegrationResult> DeserializeIntegration(std::string_view bytes);

/// Atomic save (util::AtomicFileWriter: unique tmp + fsync + rename +
/// directory fsync): readers of `path` see the old file or the new one,
/// never a torn mix. I/O goes through `env` (nullptr = real filesystem).
/// Returns the byte size written.
Result<size_t> SaveIntegrationToFile(const IntegrationResult& result,
                                     const std::string& path,
                                     util::io::Env* env = nullptr);

Result<IntegrationResult> LoadIntegrationFromFile(
    const std::string& path, util::io::Env* env = nullptr);

/// Membership-level comparison of two integrations (typically of two
/// xsm::live generations of one repository).
struct IntegrationDiff {
  size_t before_clusters = 0;
  size_t after_clusters = 0;
  /// Clusters whose member sets — as (tree fingerprint, node) pairs — are
  /// identical in both runs.
  size_t kept = 0;
  size_t added = 0;    ///< member sets only in `after`
  size_t removed = 0;  ///< member sets only in `before`
  /// Representative names of the added/removed clusters, in the owning
  /// run's rank order.
  std::vector<std::string> added_names;
  std::vector<std::string> removed_names;
};

IntegrationDiff DiffIntegrations(const IntegrationResult& before,
                                 const IntegrationResult& after);

}  // namespace xsm::integrate

#endif  // XSM_INTEGRATE_INTEGRATION_IO_H_
